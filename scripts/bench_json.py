#!/usr/bin/env python3
"""Convert `cargo bench` output lines into a diffable BENCH_*.json.

The vendored criterion shim prints one line per benchmark:

    group/large/espp/chunked64k    time: [612.3 ms 634.1 ms 671.9 ms]  (N iters/sample)

Usage:

    cargo bench -p kf-bench --bench synth_corpus | tee bench.log
    python3 scripts/bench_json.py --pr 5 bench.log \
        --filter corpus/ group/ > BENCH_pr5.json

Only rows whose id starts with one of the --filter prefixes are kept
(all rows when no filter is given). Units normalise to nanoseconds.

--trace TRACE.json additionally folds a `repro --trace` artifact's flat
timing section into the rows: one row per span path, id `trace/<path>`,
with min == mean == max == the span's total nanoseconds (a trace is one
observation, not a sampled distribution). Trace rows bypass --filter —
asking for them is the filter.

--scenarios SCENARIOS.json folds the hostile-corpus matrix artifact
(the `scenario_matrix_gate_writes_artifact` output) into quality rows:
one row per (scenario, method) cell, id
`scenario/<scenario>/<method>/<metric>` for wdev, auc_pr and the
injected-phenomenon false-positive total — so scenario robustness is
diffable across PRs exactly like the timing rows. Like trace rows,
scenario rows bypass --filter.

--metrics METRICS.json folds a `kf-serve watch --json-out` (or any
MetricsSnapshot JSON) into histogram rows: per query kind and family,
id `hist/serve.<family>.<kind>/<quantile>` — latency quantiles as
nanosecond rows, result-size quantiles and observation counts as value
rows — so serving tail latency is diffable across PRs. Like trace
rows, metrics rows bypass --filter.
"""

import argparse
import json
import re
import sys

ROW = re.compile(
    r"^(?P<id>\S+)\s+time:\s*\[(?P<min>[\d.]+) (?P<min_u>\S+) "
    r"(?P<mean>[\d.]+) (?P<mean_u>\S+) (?P<max>[\d.]+) (?P<max_u>\S+)\]"
)

# Throughput rows (the serve bench): same table shape, `thrpt:` instead
# of `time:`, all three values in queries/second.
THRPT = re.compile(
    r"^(?P<id>\S+)\s+thrpt:\s*\[(?P<min>[\d.]+) q/s "
    r"(?P<mean>[\d.]+) q/s (?P<max>[\d.]+) q/s\]"
)

UNIT_NS = {"ns": 1.0, "µs": 1e3, "us": 1e3, "ms": 1e6, "s": 1e9}


def to_ns(value: str, unit: str) -> float:
    return float(value) * UNIT_NS[unit]


def trace_rows(path: str) -> list:
    """Rows from the `timings` section of a `repro --trace` artifact."""
    with open(path, encoding="utf-8") as f:
        trace = json.load(f)
    rows = []
    for entry in trace.get("run", {}).get("timings", []):
        ns = float(entry["total_ns"])
        rows.append(
            {
                "id": f"trace/{entry['path']}",
                "min_ns": ns,
                "mean_ns": ns,
                "max_ns": ns,
            }
        )
    return rows


def scenario_rows(path: str) -> list:
    """Quality rows from a scenario-matrix `scenarios.json` artifact."""
    with open(path, encoding="utf-8") as f:
        matrix = json.load(f)
    rows = []
    for row in matrix.get("scenarios", []):
        scenario = row["scenario"]
        for cell in row.get("methods", []):
            base = f"scenario/{scenario}/{cell['method']}"
            for metric in ("wdev", "auc_pr"):
                value = cell.get(metric)
                if value is None:
                    continue
                rows.append({"id": f"{base}/{metric}", "value": float(value)})
            leaked = sum(p["false_positives"] for p in cell.get("phenomena", []))
            rows.append({"id": f"{base}/injected_fp", "value": float(leaked)})
    return rows


def metrics_rows(path: str) -> list:
    """Histogram rows from a serialized MetricsSnapshot (kf-serve watch)."""
    with open(path, encoding="utf-8") as f:
        snap = json.load(f)
    rows = [
        {
            "id": "hist/serve.queries/total",
            "value": float(snap.get("total_queries", 0)),
        }
    ]
    for kind in snap.get("kinds", []):
        name = kind["kind"]
        for family in ("latency_ns", "result_size"):
            hist = kind.get(family)
            if not hist or not hist.get("count"):
                continue
            base = f"hist/serve.{family}.{name}"
            for quantile in ("p50", "p95", "p99"):
                value = float(hist[quantile])
                if family == "latency_ns":
                    rows.append(
                        {
                            "id": f"{base}/{quantile}",
                            "min_ns": value,
                            "mean_ns": value,
                            "max_ns": value,
                        }
                    )
                else:
                    rows.append({"id": f"{base}/{quantile}", "value": value})
            rows.append({"id": f"{base}/count", "value": float(hist["count"])})
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("logs", nargs="*", help="cargo bench output files")
    parser.add_argument("--pr", type=int, required=True, help="PR number for the header")
    parser.add_argument(
        "--filter",
        nargs="*",
        default=[],
        help="keep only rows whose id starts with one of these prefixes",
    )
    parser.add_argument(
        "--trace",
        help="repro --trace artifact whose per-phase timings become trace/ rows",
    )
    parser.add_argument(
        "--scenarios",
        help="scenario-matrix scenarios.json whose cells become scenario/ rows",
    )
    parser.add_argument(
        "--metrics",
        help="MetricsSnapshot JSON (kf-serve watch --json-out) folded into hist/ rows",
    )
    args = parser.parse_args()
    if not args.logs and not args.trace and not args.scenarios and not args.metrics:
        print(
            "nothing to convert: pass bench logs, --trace, --scenarios and/or --metrics",
            file=sys.stderr,
        )
        return 2

    rows = []
    for path in args.logs:
        with open(path, encoding="utf-8") as f:
            for line in f:
                stripped = line.strip()
                m = ROW.match(stripped)
                t = None if m else THRPT.match(stripped)
                if not m and not t:
                    continue
                row_id = (m or t).group("id")
                if args.filter and not any(row_id.startswith(p) for p in args.filter):
                    continue
                if m:
                    rows.append(
                        {
                            "id": row_id,
                            "min_ns": to_ns(m.group("min"), m.group("min_u")),
                            "mean_ns": to_ns(m.group("mean"), m.group("mean_u")),
                            "max_ns": to_ns(m.group("max"), m.group("max_u")),
                        }
                    )
                else:
                    rows.append(
                        {
                            "id": row_id,
                            "min_qps": float(t.group("min")),
                            "mean_qps": float(t.group("mean")),
                            "max_qps": float(t.group("max")),
                        }
                    )
    if args.trace:
        rows.extend(trace_rows(args.trace))
    if args.scenarios:
        rows.extend(scenario_rows(args.scenarios))
    if args.metrics:
        rows.extend(metrics_rows(args.metrics))

    if not rows:
        print("no bench rows matched", file=sys.stderr)
        return 1
    json.dump({"pr": args.pr, "rows": rows}, sys.stdout, indent=2)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
