#!/usr/bin/env python3
"""Unit tests for the CI bench plumbing: the tolerance bands, baseline
selection and exit codes of `bench_check.py`, and the log-parse and
artifact-fold paths of `bench_json.py`.

Run directly (CI's lint job does) or through unittest:

    python3 scripts/test_bench_scripts.py
"""

import contextlib
import io
import json
import os
import subprocess
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_check  # noqa: E402
import bench_json  # noqa: E402


def ns_row(row_id, mean_ns):
    return {"id": row_id, "min_ns": mean_ns, "mean_ns": mean_ns, "max_ns": mean_ns}


def qps_row(row_id, mean_qps):
    return {"id": row_id, "min_qps": mean_qps, "mean_qps": mean_qps, "max_qps": mean_qps}


def value_row(row_id, value):
    return {"id": row_id, "value": value}


def run_check(previous, latest):
    """Drive bench_check.check on row dicts, swallowing its table."""
    with contextlib.redirect_stdout(io.StringIO()):
        return bench_check.check(
            {r["id"]: r for r in previous}, {r["id"]: r for r in latest}
        )


class ToleranceBands(unittest.TestCase):
    def test_timing_band_is_30_percent_by_default(self):
        # +29% passes, +31% regresses; only slower counts.
        _, regressions = run_check([ns_row("group/x", 1e6)], [ns_row("group/x", 1.29e6)])
        self.assertEqual(regressions, [])
        _, regressions = run_check([ns_row("group/x", 1e6)], [ns_row("group/x", 1.31e6)])
        self.assertEqual(regressions, ["group/x"])
        _, regressions = run_check([ns_row("group/x", 1e6)], [ns_row("group/x", 0.5e6)])
        self.assertEqual(regressions, [], "getting faster is never a regression")

    def test_trace_and_hist_rows_get_the_wide_band(self):
        for prefix in ("trace/run/fuse", "hist/serve.latency_ns.point/p99"):
            _, regressions = run_check([ns_row(prefix, 1e6)], [ns_row(prefix, 1.45e6)])
            self.assertEqual(regressions, [], prefix)
            _, regressions = run_check([ns_row(prefix, 1e6)], [ns_row(prefix, 1.55e6)])
            self.assertEqual(regressions, [prefix])

    def test_qps_regresses_only_downward(self):
        _, regressions = run_check([qps_row("serve/qps", 1000)], [qps_row("serve/qps", 710)])
        self.assertEqual(regressions, [])
        _, regressions = run_check([qps_row("serve/qps", 1000)], [qps_row("serve/qps", 690)])
        self.assertEqual(regressions, ["serve/qps"])
        _, regressions = run_check([qps_row("serve/qps", 1000)], [qps_row("serve/qps", 5000)])
        self.assertEqual(regressions, [])

    def test_value_rows_drift_both_ways_scenario_band_tighter(self):
        # scenario/ rows: ±10%; other value rows: ±25%.
        _, regressions = run_check(
            [value_row("scenario/spam/vote/wdev", 0.100)],
            [value_row("scenario/spam/vote/wdev", 0.089)],
        )
        self.assertEqual(regressions, ["scenario/spam/vote/wdev"])
        _, regressions = run_check(
            [value_row("hist/serve.queries/total", 100)],
            [value_row("hist/serve.queries/total", 120)],
        )
        self.assertEqual(regressions, [])
        _, regressions = run_check(
            [value_row("hist/serve.queries/total", 100)],
            [value_row("hist/serve.queries/total", 130)],
        )
        self.assertEqual(regressions, ["hist/serve.queries/total"])

    def test_noise_floor_skips_sub_microsecond_rows(self):
        compared, regressions = run_check(
            [ns_row("group/tiny", 200.0)], [ns_row("group/tiny", 900.0)]
        )
        self.assertEqual((compared, regressions), (0, []))

    def test_new_dropped_and_reshaped_rows_never_regress(self):
        compared, regressions = run_check(
            [ns_row("a", 1e6), value_row("b", 1.0)],
            [ns_row("c", 1e6), value_row("a", 1.0)],  # a reshaped, b dropped, c new
        )
        self.assertEqual((compared, regressions), (0, []))


class BaselineSelection(unittest.TestCase):
    def test_best_of_takes_min_ns_and_max_qps_per_row(self):
        older = {r["id"]: r for r in [ns_row("t", 1e6), qps_row("q", 900)]}
        newer = {r["id"]: r for r in [ns_row("t", 2e6), qps_row("q", 700)]}
        best = bench_check.best_of(older, newer)
        self.assertEqual(best["t"]["mean_ns"], 1e6)
        self.assertEqual(best["q"]["mean_qps"], 900)
        # The other direction: the newer file wins where it is better.
        best = bench_check.best_of(newer, older)
        self.assertEqual(best["t"]["mean_ns"], 1e6)
        self.assertEqual(best["q"]["mean_qps"], 900)

    def test_best_of_value_rows_take_the_newer_file(self):
        older = {r["id"]: r for r in [value_row("v", 1.0)]}
        newer = {r["id"]: r for r in [value_row("v", 2.0)]}
        self.assertEqual(bench_check.best_of(older, newer)["v"]["value"], 2.0)

    def test_best_of_falls_back_to_the_older_file_for_dropped_rows(self):
        older = {r["id"]: r for r in [ns_row("only-old", 1e6)]}
        best = bench_check.best_of(older, {})
        self.assertEqual(best["only-old"]["mean_ns"], 1e6)


class ExitCodes(unittest.TestCase):
    """bench_check.py as CI runs it: a subprocess whose exit status is
    the sentinel verdict."""

    def run_script(self, *docs):
        with tempfile.TemporaryDirectory() as tmp:
            paths = []
            for i, rows in enumerate(docs):
                path = os.path.join(tmp, f"BENCH_{i}.json")
                with open(path, "w", encoding="utf-8") as f:
                    json.dump({"pr": i, "rows": rows}, f)
                paths.append(path)
            script = os.path.join(os.path.dirname(os.path.abspath(__file__)), "bench_check.py")
            return subprocess.run(
                [sys.executable, script, *paths], capture_output=True, text=True
            )

    def test_clean_run_exits_zero(self):
        result = self.run_script([ns_row("a", 1e6)], [ns_row("a", 1.1e6)])
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_regression_exits_one_and_names_the_row(self):
        result = self.run_script([ns_row("a", 1e6)], [ns_row("a", 2e6)])
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION a", result.stderr)

    def test_too_few_files_exits_two(self):
        result = self.run_script([ns_row("a", 1e6)])
        self.assertEqual(result.returncode, 2)

    def test_three_files_baseline_is_the_best_of_the_first_two(self):
        # Older run was fast (1ms), newer committed run was slow (2ms).
        # 1.5ms against the slow baseline alone would pass (-25%); the
        # best-of baseline (1ms) flags it (+50% > +30% band).
        result = self.run_script(
            [ns_row("a", 1e6)], [ns_row("a", 2e6)], [ns_row("a", 1.5e6)]
        )
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("best of", result.stdout)


class BenchJsonFolds(unittest.TestCase):
    def write(self, tmp, name, content):
        path = os.path.join(tmp, name)
        with open(path, "w", encoding="utf-8") as f:
            if isinstance(content, str):
                f.write(content)
            else:
                json.dump(content, f)
        return path

    def test_log_lines_parse_times_and_throughput_with_units(self):
        log = (
            "group/large/espp    time: [612.3 ms 634.1 ms 671.9 ms]  (10 iters)\n"
            "corpus/load         time: [1.2 µs 2.4 µs 3.6 µs]\n"
            "noise line\n"
            "paper/point/c4      thrpt: [900.0 q/s 1000.0 q/s 1100.0 q/s]\n"
        )
        with tempfile.TemporaryDirectory() as tmp:
            path = self.write(tmp, "bench.log", log)
            rows = self.parse_main(["--pr", "1", path])
        by_id = {r["id"]: r for r in rows}
        self.assertEqual(by_id["group/large/espp"]["mean_ns"], 634.1e6)
        self.assertEqual(by_id["corpus/load"]["mean_ns"], 2.4e3)
        self.assertEqual(by_id["paper/point/c4"]["mean_qps"], 1000.0)

    def test_filter_keeps_only_matching_prefixes(self):
        log = (
            "group/a   time: [1.0 ms 1.0 ms 1.0 ms]\n"
            "other/b   time: [1.0 ms 1.0 ms 1.0 ms]\n"
        )
        with tempfile.TemporaryDirectory() as tmp:
            path = self.write(tmp, "bench.log", log)
            rows = self.parse_main(["--pr", "1", path, "--filter", "group/"])
        self.assertEqual([r["id"] for r in rows], ["group/a"])

    def test_trace_fold_bypasses_filter(self):
        trace = {"run": {"timings": [{"path": "run/fuse", "total_ns": 123456}]}}
        with tempfile.TemporaryDirectory() as tmp:
            path = self.write(tmp, "trace.json", trace)
            rows = self.parse_main(["--pr", "1", "--filter", "group/", "--trace", path])
        self.assertEqual(rows, [ns_row("trace/run/fuse", 123456.0)])

    def test_scenario_fold_emits_quality_and_leak_rows(self):
        scenarios = {
            "scenarios": [
                {
                    "scenario": "spam",
                    "methods": [
                        {
                            "method": "vote",
                            "wdev": 0.12,
                            "auc_pr": 0.9,
                            "phenomena": [
                                {"false_positives": 3},
                                {"false_positives": 4},
                            ],
                        }
                    ],
                }
            ]
        }
        with tempfile.TemporaryDirectory() as tmp:
            path = self.write(tmp, "scenarios.json", scenarios)
            rows = self.parse_main(["--pr", "1", "--scenarios", path])
        by_id = {r["id"]: r["value"] for r in rows}
        self.assertEqual(by_id["scenario/spam/vote/wdev"], 0.12)
        self.assertEqual(by_id["scenario/spam/vote/auc_pr"], 0.9)
        self.assertEqual(by_id["scenario/spam/vote/injected_fp"], 7.0)

    def test_metrics_fold_splits_latency_ns_from_value_rows(self):
        snap = {
            "total_queries": 42,
            "kinds": [
                {
                    "kind": "point",
                    "latency_ns": {"count": 10, "p50": 100, "p95": 200, "p99": 300},
                    "result_size": {"count": 10, "p50": 1, "p95": 2, "p99": 3},
                },
                {"kind": "idle", "latency_ns": {"count": 0}},
            ],
        }
        with tempfile.TemporaryDirectory() as tmp:
            path = self.write(tmp, "metrics.json", snap)
            rows = self.parse_main(["--pr", "1", "--metrics", path])
        by_id = {r["id"]: r for r in rows}
        self.assertEqual(by_id["hist/serve.queries/total"]["value"], 42.0)
        self.assertEqual(by_id["hist/serve.latency_ns.point/p99"]["mean_ns"], 300.0)
        self.assertEqual(by_id["hist/serve.result_size.point/p95"]["value"], 2.0)
        self.assertEqual(by_id["hist/serve.latency_ns.point/count"]["value"], 10.0)
        # Empty histograms contribute nothing.
        self.assertNotIn("hist/serve.latency_ns.idle/p50", by_id)

    def parse_main(self, argv):
        """Run bench_json.main under an argv/stdout harness, returning
        the emitted rows."""
        out = io.StringIO()
        old_argv = sys.argv
        sys.argv = ["bench_json.py", *argv]
        try:
            with contextlib.redirect_stdout(out):
                code = bench_json.main()
        finally:
            sys.argv = old_argv
        self.assertEqual(code, 0, out.getvalue())
        return json.loads(out.getvalue())["rows"]


if __name__ == "__main__":
    unittest.main(verbosity=2)
