#!/usr/bin/env python3
"""Perf sentinel: diff the newest BENCH_*.json against its trajectory.

Usage:

    python3 scripts/bench_check.py BENCH_pr5.json BENCH_pr7.json BENCH_ci.json

The *last* file in argument order is the run under test; its baseline is
the per-row **best of the two preceding files** (when only two files are
given, the single preceding file). Best means the lower `mean_ns` for
timing rows and the higher `mean_qps` for throughput rows — one lucky
runner in the previous CI run must not ratchet the bar down for
everyone after. Quality/value rows take the *newer* committed value
("best" is undefined for a drift-in-either-direction metric), and a row
missing from the newer file falls back to the older one. Earlier files
only document the trajectory. Every baselined row id present in the run
under test is checked against a per-prefix tolerance band:

    prefix      metric        band    regression when
    trace/      mean_ns       ±50%    latest > previous * 1.5
    hist/       mean_ns       ±50%    latest > previous * 1.5
    (other)     mean_ns       ±30%    latest > previous * 1.3
    (any)       mean_qps      ±30%    latest < previous * 0.7
    scenario/   value         ±10%    |latest - previous| > 10%
    (other)     value         ±25%    |latest - previous| > 25%

Timing rows only regress by getting *slower*, throughput rows by
getting slower, value rows (quality metrics, observation counts) by
drifting in either direction. Trace and hist rows get the widest band:
they are single observations of one CI run, not sampled distributions.
Rows below NOISE_FLOOR_NS are skipped — a sub-microsecond phase's
relative jitter says nothing.

Exit status: 1 when any regression is found, else 0. Designed to run as
a non-blocking CI annotate step (`continue-on-error`), so a regression
paints the log red without failing the build — the committed BENCH
trajectory is the durable record.
"""

import json
import sys

NOISE_FLOOR_NS = 1_000.0

# (prefix, metric) -> allowed relative change. Checked most-specific
# first; "" matches everything.
TIME_BANDS = [("trace/", 0.50), ("hist/", 0.50), ("", 0.30)]
QPS_BAND = 0.30
VALUE_BANDS = [("scenario/", 0.10), ("", 0.25)]


def band(bands, row_id):
    for prefix, tol in bands:
        if row_id.startswith(prefix):
            return tol
    raise AssertionError("unreachable: empty prefix matches all")


def load_rows(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    return {row["id"]: row for row in doc.get("rows", [])}


def best_of(older, newer):
    """Per-row baseline from the two newest committed files: the faster
    timing, the higher throughput, the newer value — and the older file's
    row when the newer one dropped it."""
    merged = dict(newer)
    for row_id, old_row in older.items():
        new_row = merged.get(row_id)
        if new_row is None:
            merged[row_id] = old_row
        elif "mean_ns" in old_row and "mean_ns" in new_row:
            if old_row["mean_ns"] < new_row["mean_ns"]:
                merged[row_id] = old_row
        elif "mean_qps" in old_row and "mean_qps" in new_row:
            if old_row["mean_qps"] > new_row["mean_qps"]:
                merged[row_id] = old_row
    return merged


def fmt_ns(ns):
    if ns < 1e3:
        return f"{ns:.0f} ns"
    if ns < 1e6:
        return f"{ns / 1e3:.2f} µs"
    if ns < 1e9:
        return f"{ns / 1e6:.2f} ms"
    return f"{ns / 1e9:.2f} s"


def check(previous, latest):
    regressions = []
    compared = 0
    for row_id, row in sorted(latest.items()):
        prev = previous.get(row_id)
        if prev is None:
            print(f"  new       {row_id}")
            continue
        if "mean_ns" in row and "mean_ns" in prev:
            before, after = prev["mean_ns"], row["mean_ns"]
            if max(before, after) < NOISE_FLOOR_NS:
                continue
            tol = band(TIME_BANDS, row_id)
            compared += 1
            change = (after - before) / before if before else 0.0
            verdict = "REGRESSED" if after > before * (1 + tol) else "ok"
            print(
                f"  {verdict:<9} {row_id}: {fmt_ns(before)} -> {fmt_ns(after)} "
                f"({change:+.1%}, band +{tol:.0%})"
            )
            if verdict == "REGRESSED":
                regressions.append(row_id)
        elif "mean_qps" in row and "mean_qps" in prev:
            before, after = prev["mean_qps"], row["mean_qps"]
            compared += 1
            change = (after - before) / before if before else 0.0
            verdict = "REGRESSED" if after < before * (1 - QPS_BAND) else "ok"
            print(
                f"  {verdict:<9} {row_id}: {before:.0f} -> {after:.0f} q/s "
                f"({change:+.1%}, band -{QPS_BAND:.0%})"
            )
            if verdict == "REGRESSED":
                regressions.append(row_id)
        elif "value" in row and "value" in prev:
            before, after = prev["value"], row["value"]
            tol = band(VALUE_BANDS, row_id)
            compared += 1
            change = (after - before) / before if before else (1.0 if after else 0.0)
            verdict = "REGRESSED" if abs(change) > tol else "ok"
            print(
                f"  {verdict:<9} {row_id}: {before:g} -> {after:g} "
                f"({change:+.1%}, band ±{tol:.0%})"
            )
            if verdict == "REGRESSED":
                regressions.append(row_id)
        # Metric-shape mismatch (a row changed family): report, don't fail.
        else:
            print(f"  reshaped  {row_id}")
    for row_id in sorted(set(previous) - set(latest)):
        print(f"  dropped   {row_id}")
    return compared, regressions


def main():
    paths = sys.argv[1:]
    if len(paths) < 2:
        print("usage: bench_check.py BENCH_old.json ... BENCH_new.json", file=sys.stderr)
        print(
            "(needs at least two files; the last is checked against the "
            "best of the two before it)",
            file=sys.stderr,
        )
        return 2
    latest_path = paths[-1]
    if len(paths) >= 3:
        older_path, newer_path = paths[-3], paths[-2]
        print(f"bench-check: {latest_path} vs best of {older_path} + {newer_path}")
        baseline = best_of(load_rows(older_path), load_rows(newer_path))
    else:
        print(f"bench-check: {latest_path} vs {paths[-2]}")
        baseline = load_rows(paths[-2])
    compared, regressions = check(baseline, load_rows(latest_path))
    print(f"bench-check: {compared} rows compared, {len(regressions)} regressed")
    if regressions:
        for row_id in regressions:
            print(f"bench-check: REGRESSION {row_id}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
