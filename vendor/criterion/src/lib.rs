//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Provides the `criterion_group!` / `criterion_main!` /
//! [`Criterion::bench_function`] / [`Bencher::iter`] surface so the
//! workspace's `benches/` compile and produce wall-clock numbers without
//! the real crate. Methodology is intentionally simple: per benchmark, a
//! calibration pass sizes the iteration count to a fixed time budget, then
//! a set of timed samples reports min / mean / max per-iteration time.
//! Numbers are comparable within a machine, not across the statistical
//! machinery of real criterion.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample time budget. Keeps `cargo bench` interactive: each benchmark
/// costs roughly `SAMPLES × BUDGET` plus calibration.
const BUDGET: Duration = Duration::from_millis(60);
const SAMPLES: usize = 10;

/// Benchmark driver handed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    /// Substring filter over benchmark ids, mirroring real criterion's
    /// `cargo bench -- <filter>`: non-matching benchmarks are skipped.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First non-flag CLI argument = filter (cargo appends `--bench`
        // and friends for harness = false targets; ignore flags).
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

/// Timing loop handle passed to the closure of
/// [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, called `self.iters` times back-to-back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

impl Criterion {
    /// Run one named benchmark (skipped when a CLI filter is set and the
    /// id does not contain it).
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        // Calibration: find an iteration count that fills the budget.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        loop {
            f(&mut b);
            if b.elapsed >= BUDGET || b.iters >= 1 << 30 {
                break;
            }
            let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
            let target = (BUDGET.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64;
            b.iters = target.clamp(b.iters + 1, b.iters.saturating_mul(100));
        }
        let iters = b.iters;

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter_ns[0];
        let max = per_iter_ns[SAMPLES - 1];
        let mean = per_iter_ns.iter().sum::<f64>() / SAMPLES as f64;
        println!(
            "{id:<40} time: [{} {} {}]  ({iters} iters/sample)",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max),
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `fn main` running the given groups (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        // Explicit no-filter Criterion: the default reads this *test*
        // binary's CLI args, which may carry a libtest name filter.
        let mut c = Criterion { filter: None };
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn filter_skips_non_matching_ids() {
        let mut c = Criterion {
            filter: Some("corpus/".into()),
        };
        let mut matched = 0u64;
        let mut skipped = 0u64;
        c.bench_function("corpus/load/small", |b| b.iter(|| matched += 1));
        c.bench_function("fuse/small/vote", |b| b.iter(|| skipped += 1));
        assert!(matched > 0);
        assert_eq!(skipped, 0);
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with(" s"));
    }
}
