//! Offline stand-in for serde's derive macros.
//!
//! The workspace annotates its data types with
//! `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` attributes so the
//! real serde can be dropped in the moment a registry is reachable, but no
//! code path in this repository *calls* serde serialization — the evaluation
//! report uses the hand-rolled JSON writer in `kf-eval` instead. These
//! derives therefore only need to accept the annotations; they expand to
//! nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts (and ignores) `#[serde(...)]` helper
/// attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts (and ignores) `#[serde(...)]` helper
/// attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
