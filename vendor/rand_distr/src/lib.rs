//! Offline stand-in for the `rand_distr` crate: only the [`Poisson`]
//! distribution the workspace uses. See `vendor/README.md` for why this
//! exists and how to swap the real crate back in.

use rand::{Rng, RngCore};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore>(&self, rng: &mut R) -> T;
}

/// Error constructing a [`Poisson`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoissonError {
    /// `lambda` was not a finite positive number.
    ShapeTooSmall,
}

impl std::fmt::Display for PoissonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Poisson lambda must be finite and > 0")
    }
}

impl std::error::Error for PoissonError {}

/// Poisson distribution with rate `lambda`.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Construct; `lambda` must be finite and positive.
    pub fn new(lambda: f64) -> Result<Poisson, PoissonError> {
        if lambda.is_finite() && lambda > 0.0 {
            Ok(Poisson { lambda })
        } else {
            Err(PoissonError::ShapeTooSmall)
        }
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        if self.lambda < 30.0 {
            // Knuth's product-of-uniforms method: exact for small lambda,
            // which is the only regime the corpus generator uses.
            let limit = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.gen_range(0.0..1.0f64);
                if p <= limit {
                    return k as f64;
                }
                k += 1;
            }
        }
        // Large lambda: normal approximation, adequate far outside the
        // generator's operating range.
        let u: f64 = rng.gen_range(1e-12..1.0f64);
        let v: f64 = rng.gen_range(0.0..1.0f64);
        let z = (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos();
        (self.lambda + z * self.lambda.sqrt()).max(0.0).round()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_lambda() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-1.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
        assert!(Poisson::new(0.05).is_ok());
    }

    #[test]
    fn small_lambda_mean_matches() {
        let mut rng = SmallRng::seed_from_u64(11);
        let d = Poisson::new(0.7).unwrap();
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.7).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn large_lambda_mean_matches() {
        let mut rng = SmallRng::seed_from_u64(12);
        let d = Poisson::new(100.0).unwrap();
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn samples_are_non_negative_integers() {
        let mut rng = SmallRng::seed_from_u64(13);
        let d = Poisson::new(1.7).unwrap();
        for _ in 0..1_000 {
            let x = d.sample(&mut rng);
            assert!(x >= 0.0);
            assert_eq!(x, x.trunc());
        }
    }
}
