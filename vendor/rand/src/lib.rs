//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! subset of the `rand` 0.8 API the workspace actually uses is implemented
//! here: [`rngs::SmallRng`] (xoshiro256++), the [`Rng`] extension trait with
//! `gen` / `gen_bool` / `gen_range`, [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::choose`]. Call-site compatibility is the goal: when a
//! registry is available again, deleting `vendor/` and restoring the real
//! dependency must require no source changes in the workspace crates.
//!
//! The streams are *not* bit-compatible with the real `rand`; nothing in the
//! workspace depends on specific stream values, only on determinism per seed.

pub mod rngs;
pub mod seq;

/// Low-level uniform 64-bit generator.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds. Only the `seed_from_u64` entry point the
/// workspace uses is provided.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded internally).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform f64 in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, span)` by Lemire's widening-multiply method
/// (unbiased).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Types samplable uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + (unit_f64(rng) as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing extension trait, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T`'s standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self) < p
    }

    /// Uniform draw from a (half-open or inclusive) range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17u64);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(-0.25..0.25f64);
            assert!((-0.25..0.25).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn unit_f64_is_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn choose_picks_existing_elements() {
        use crate::seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(5);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
