//! Small, fast generators.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ — the algorithm behind the real `SmallRng` on 64-bit
/// targets: fast, 256-bit state, more than adequate statistical quality for
/// simulation workloads (not cryptographic).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

/// splitmix64 step, used to expand a 64-bit seed into the full state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_is_never_all_zero() {
        // splitmix64 expansion guarantees a non-degenerate state even for
        // seed 0 (an all-zero xoshiro state would be a fixed point).
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(rng.s.iter().any(|&w| w != 0));
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn output_looks_uniform_per_bit() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut ones = [0u32; 64];
        let n = 10_000;
        for _ in 0..n {
            let x = rng.next_u64();
            for (bit, slot) in ones.iter_mut().enumerate() {
                *slot += ((x >> bit) & 1) as u32;
            }
        }
        for (bit, &count) in ones.iter().enumerate() {
            let rate = count as f64 / n as f64;
            assert!((rate - 0.5).abs() < 0.03, "bit {bit} rate {rate}");
        }
    }
}
