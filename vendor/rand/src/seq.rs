//! Sequence-related helpers.

use crate::{uniform_below, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// A uniformly random element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }
}
