//! Value-generation strategies.

use rand::rngs::SmallRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

trait DynStrategy<V> {
    fn sample_dyn(&self, rng: &mut SmallRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut SmallRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut SmallRng) -> V {
        self.0.sample_dyn(rng)
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from at least one option.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut SmallRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut SmallRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> f64 {
        rng.gen()
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// String strategies from `[class]{m,n}`-style patterns.
///
/// Supports exactly the regex-literal shape used by the workspace's
/// property tests: one character class (ranges like `a-z` and literal
/// characters) followed by a `{min,max}` repetition. Any other pattern
/// panics, loudly, rather than silently generating the wrong language.
pub fn pattern_string(pattern: &str, rng: &mut SmallRng) -> String {
    fn bad<T>(pattern: &str) -> T {
        panic!("unsupported string pattern for the proptest shim: {pattern:?}")
    }
    let rest = pattern.strip_prefix('[').unwrap_or_else(|| bad(pattern));
    let (class, rest) = rest.split_once(']').unwrap_or_else(|| bad(pattern));
    let counts = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| bad(pattern));
    let (min, max) = match counts.split_once(',') {
        Some((a, b)) => (
            a.parse::<usize>().unwrap_or_else(|_| bad(pattern)),
            b.parse::<usize>().unwrap_or_else(|_| bad(pattern)),
        ),
        None => {
            let n = counts.parse::<usize>().unwrap_or_else(|_| bad(pattern));
            (n, n)
        }
    };
    // Expand the class into its alphabet.
    let mut alphabet: Vec<char> = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            alphabet.extend((lo..=hi).filter(|c| c.is_ascii()));
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        bad::<()>(pattern);
    }
    let len = rng.gen_range(min..=max);
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect()
}

impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut SmallRng) -> String {
        pattern_string(self, rng)
    }
}
