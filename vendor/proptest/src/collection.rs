//! Collection strategies.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = if self.size.is_empty() {
            self.size.start
        } else {
            rng.gen_range(self.size.clone())
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `prop::collection::vec(element, len_range)` — vectors of `element` with
/// length in `size` (half-open, like proptest's `Range` size bound).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
