//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map`/`boxed`,
//! range / tuple / [`strategy::Just`] / regex-string strategies,
//! [`collection::vec`], `any::<T>()`, and the `proptest!` / `prop_oneof!` /
//! `prop_assert*` macros.
//!
//! Differences from the real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its inputs via the assert
//!   message but is not minimised.
//! * **Fixed case count** — every property runs [`CASES`] deterministic
//!   cases seeded from the test's name, so failures reproduce exactly.
//! * **Regex strategies** are limited to the `[class]{m,n}`-style patterns
//!   used here (see [`strategy::pattern_string`]).

pub mod collection;
pub mod strategy;

/// Number of random cases each `proptest!` property executes.
pub const CASES: usize = 100;

/// Deterministic per-test RNG: seeded from the test's name so every test
/// draws an independent, reproducible stream.
pub fn test_rng(name: &str) -> rand::rngs::SmallRng {
    use rand::SeedableRng;
    // FNV-1a over the name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    rand::rngs::SmallRng::seed_from_u64(h)
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec(..)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests. Each property runs [`CASES`](crate::CASES)
/// deterministic cases drawn from its argument strategies.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..$crate::CASES {
                    let _ = __case;
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Assert within a property (no shrinking; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_sample() {
        let mut rng = crate::test_rng("ranges_tuples_and_maps_sample");
        let s = ((0u32..10), (5i64..=6), 0.0f64..1.0).prop_map(|(a, b, c)| (a, b, c));
        for _ in 0..200 {
            let (a, b, c) = s.sample(&mut rng);
            assert!(a < 10);
            assert!((5..=6).contains(&b));
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::test_rng("oneof_hits_every_arm");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = crate::test_rng("vec_strategy_respects_length_range");
        let s = prop::collection::vec(any::<u8>(), 2..5);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn string_pattern_strategy() {
        let mut rng = crate::test_rng("string_pattern_strategy");
        let s = "[a-c]{1,3}";
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((1..=3).contains(&v.len()), "{v:?}");
            assert!(v.chars().all(|c| ('a'..='c').contains(&c)), "{v:?}");
        }
    }

    proptest! {
        /// The macro itself: bindings, multiple args, trailing comma.
        #[test]
        fn macro_smoke(a in 0u32..100, b in any::<u16>(),) {
            prop_assert!(a < 100);
            prop_assert_eq!(b, b);
            prop_assert_ne!(a + 1, a);
        }
    }
}
