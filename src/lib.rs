//! # `kf` — knowledge fusion, end to end
//!
//! A laptop-scale reproduction of *From Data Fusion to Knowledge Fusion*
//! (Dong et al., VLDB 2014) as a Rust workspace. This facade crate
//! re-exports the sub-crates so one dependency gives you the whole
//! pipeline:
//!
//! | crate | role |
//! |---|---|
//! | [`types`] | data model: ids, triples, extractions, provenance, gold standard (LCWA) |
//! | [`mapreduce`] | local MapReduce substrate: map/shuffle/reduce with combiners + spill-to-disk, reservoir sampling, round driver |
//! | [`core`] | fusion methods VOTE / ACCU / POPACCU plus the §4.3 refinement stack (POPACCU+) |
//! | [`synth`] | synthetic web-extraction corpus with the paper's statistical artifacts |
//! | [`eval`] | calibration (WDEV/ECE), PR curves (AUC-PR, precision@k), ablation runner |
//! | [`diagnose`] | Fig. 17 automated error taxonomy with per-extractor attribution |
//! | [`serve`] | online query engine: the `FusedKb` artifact + concurrent `KbReader` |
//! | [`telemetry`] | structured spans, counters & run traces across the pipeline |
//!
//! ## Quickstart
//!
//! Generate a corpus, fuse it, and measure quality against the gold
//! standard:
//!
//! ```
//! use kf::prelude::*;
//!
//! // A tiny deterministic corpus: simulated web + extractors + gold KB.
//! let corpus = Corpus::generate(&SynthConfig::tiny(), 42);
//!
//! // Fuse with the paper's best system (POPACCU+, gold-seeded accuracies).
//! let output = Fuser::new(FusionConfig::popaccu_plus())
//!     .run(&corpus.batch, Some(&corpus.gold));
//! assert_eq!(output.scored.len(), corpus.batch.unique_triples());
//!
//! // Evaluate: calibration + ranking quality under LCWA.
//! let runner = AblationRunner::default();
//! let eval = runner.evaluate(Preset::PopAccuPlus, &output, &corpus.gold, 0.0);
//! assert!(eval.wdev().is_finite());
//! assert!(eval.auc_pr() > 0.0);
//! ```
//!
//! The full reproduction (five presets, `report.json`, summary table) is
//! the `repro` binary:
//!
//! ```text
//! cargo run --release --bin repro -- --scale paper --seed 42
//! ```
//!
//! Runnable walkthroughs live in `examples/`: `quickstart`,
//! `calibration_study`, `custom_extractor`, `webscale_pipeline`,
//! `error_taxonomy`, `checkpoint_shard`, `trace_pipeline`,
//! `hostile_corpus`.

pub use kf_core as core;
pub use kf_diagnose as diagnose;
pub use kf_eval as eval;
pub use kf_mapreduce as mapreduce;
pub use kf_serve as serve;
pub use kf_synth as synth;
pub use kf_telemetry as telemetry;
pub use kf_types as types;

/// The names most programs need, in one import.
pub mod prelude {
    pub use kf_core::{
        Fuser, FusionConfig, FusionOutput, InitAccuracy, Method, ProvenanceAttribution,
        ScoredTriple,
    };
    pub use kf_diagnose::{DiagnoseConfig, Diagnoser, SupportIndex, SupportProfile};
    pub use kf_eval::{
        AblationRunner, Binning, CalibrationCurve, EvalReport, LabeledOutput, MethodEval, PrCurve,
        Preset,
    };
    pub use kf_mapreduce::MrConfig;
    pub use kf_serve::{FusedKb, KbBuildOptions, KbReader, MetricsSnapshot, ServeMetrics};
    pub use kf_synth::{Corpus, SynthConfig};
    pub use kf_telemetry::{Trace, TraceReport};
    pub use kf_types::{
        DataItem, EntityId, ErrorCategory, Extraction, ExtractionBatch, ExtractorId, GoldStandard,
        Granularity, Label, PageId, PatternId, PredicateId, Provenance, SiteId, TaxonomyReport,
        Triple, Value,
    };
}
