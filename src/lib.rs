//! placeholder — facade lands here last.
