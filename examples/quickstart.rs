//! Smallest end-to-end run: generate a corpus, fuse it, inspect the output.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use kf::prelude::*;

fn main() {
    // A small deterministic corpus: ground-truth world, simulated web,
    // 12 imperfect extractors, and a Freebase-style partial gold KB.
    let corpus = Corpus::generate(&SynthConfig::small(), 42);
    println!(
        "corpus: {} extraction records, {} unique triples, {} data items",
        corpus.batch.len(),
        corpus.batch.unique_triples(),
        corpus.batch.unique_data_items(),
    );
    println!(
        "raw extraction accuracy under LCWA: {:.1}% (the paper's ~30%)",
        100.0 * corpus.lcwa_accuracy()
    );

    // Fuse with POPACCU+ — the paper's best configuration.
    let output = Fuser::new(FusionConfig::popaccu_plus()).run(&corpus.batch, Some(&corpus.gold));
    println!(
        "\nfused {} triples in {} rounds ({} provenances)",
        output.scored.len(),
        output.outcome.rounds(),
        output.n_provenances,
    );

    // High-probability triples can be trusted directly (§3.2.2).
    let trusted: Vec<_> = output.accepted(0.9).collect();
    let correct = trusted
        .iter()
        .filter(|s| corpus.gold.label(&s.triple) == Label::True)
        .count();
    let labelled = trusted
        .iter()
        .filter(|s| corpus.gold.label(&s.triple) != Label::Unknown)
        .count();
    println!(
        "triples with P >= 0.9: {} ({} of {} gold-labelled ones are true: {:.1}%)",
        trusted.len(),
        correct,
        labelled,
        100.0 * correct as f64 / labelled.max(1) as f64,
    );

    // And the one-line quality summary the eval subsystem provides.
    let eval = AblationRunner::default().evaluate(Preset::PopAccuPlus, &output, &corpus.gold, 0.0);
    println!(
        "\nPOPACCU+ quality: WDEV {:.4}, ECE {:.4}, AUC-PR {:.3}, coverage {:.1}%",
        eval.wdev(),
        eval.ece(),
        eval.auc_pr(),
        100.0 * eval.coverage,
    );
}
