//! The Fig. 17 reproduction: diagnose a fusion run's high-confidence
//! false positives into the paper's error taxonomy, with per-extractor
//! attribution, and score the heuristic classifiers against the
//! generator-injected ground truth.
//!
//! ```text
//! cargo run --release --example error_taxonomy
//! ```

use kf::prelude::*;
use kf_types::Spread;

fn main() {
    let corpus = Corpus::generate(&SynthConfig::small(), 42);
    println!(
        "corpus: {} records, {} unique triples, LCWA accuracy {:.3}",
        corpus.batch.len(),
        corpus.batch.unique_triples(),
        corpus.lcwa_accuracy(),
    );

    // The shared context: support shapes from the raw batch, the
    // generator-truth category join, extractor names.
    let (support, stats) = SupportIndex::build(&corpus.batch.records, &MrConfig::default());
    println!(
        "support index: {} profiles (map_output {}, grouped peak {})",
        support.len(),
        stats.map_output,
        stats.peak_grouped_records,
    );
    let truth = corpus.taxonomy_truth();
    let labels: Vec<String> = corpus.extractors.iter().map(|e| e.name.clone()).collect();

    // Fuse with the paper's strongest unsupervised system and diagnose.
    let (output, attribution) =
        Fuser::new(FusionConfig::popaccu_plus_unsup()).run_with_attribution(&corpus.batch, None);
    let (report, _) = Diagnoser::new(&corpus.gold, &corpus.world, &support)
        .with_truth(&truth)
        .with_attribution(&attribution)
        .with_extractor_labels(&labels)
        .run(&output);

    // ---- The Fig. 17 table: error mass per confidence band -------------
    println!(
        "\nerror taxonomy (POPACCU+unsup), {} false positives of {} labelled accepted triples:",
        report.n_false_positives, report.n_labelled
    );
    println!(
        "{:>12} {:>9} {:>7} {:>9} {:>9} {:>11} {:>9}",
        "band", "labelled", "FPs", "general", "LCWA", "systematic", "linkage"
    );
    for band in &report.bands {
        println!(
            "[{:.2}, {:.2}) {:>9} {:>7} {:>9} {:>9} {:>11} {:>9}",
            band.lo,
            band.hi,
            band.n_labelled,
            band.n_false(),
            band.counts.get(ErrorCategory::WrongButGeneral),
            band.counts.get(ErrorCategory::LcwaArtifact),
            band.counts.get(ErrorCategory::SystematicExtraction),
            band.counts.get(ErrorCategory::LinkageError),
        );
    }

    // ---- Per-extractor attribution --------------------------------------
    println!("\nfalse-positive mass per supporting extractor (top 6):");
    let mut extractors = report.extractors.clone();
    extractors.sort_by_key(|g| std::cmp::Reverse(g.counts.total()));
    for g in extractors.iter().take(6) {
        println!(
            "  {:6} total {:5}  systematic {:4}  linkage {:4}",
            g.label,
            g.counts.total(),
            g.counts.get(ErrorCategory::SystematicExtraction),
            g.counts.get(ErrorCategory::LinkageError),
        );
    }

    // ---- Support-spread profile -----------------------------------------
    println!("\nsupport spread of the false positives:");
    for g in &report.spread {
        println!("  {:28} {:6}", g.label, g.counts.total());
    }
    let _ = Spread::ALL; // spread classes documented in kf_types::taxonomy

    // ---- How much does fusion trust each category's provenances? --------
    println!("\nmean final provenance accuracy per category:");
    for &(cat, acc) in &report.mean_prov_accuracy {
        println!("  {:24} {acc:.3}", cat.name());
    }

    // ---- The measured part: heuristics vs injected ground truth ---------
    println!("\nheuristic-vs-injected confusion (counts):");
    for cell in &report.confusion {
        println!(
            "  injected {:24} -> heuristic {:24} x{}",
            cell.injected.name(),
            cell.heuristic.name(),
            cell.count
        );
    }
    if let (Some(sys), Some(gen)) = (
        report.systematic_attribution,
        report.generalized_attribution,
    ) {
        println!(
            "\nattribution accuracy: systematic {}/{} ({:.1}%), generalized {}/{}",
            sys.correct,
            sys.total,
            100.0 * sys.accuracy(),
            gen.correct,
            gen.total,
        );
    }
}
