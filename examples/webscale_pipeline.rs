//! The scaling story: run the three-stage MapReduce fusion pipeline over
//! the large corpus preset with explicit worker counts and inspect the
//! engine's execution counters (the paper's Fig. 8 architecture).
//!
//! ```text
//! cargo run --release --example webscale_pipeline
//! ```

use kf::prelude::*;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let corpus = Corpus::generate(&SynthConfig::large(), 42);
    println!(
        "generated large corpus in {:.2}s: {} records, {} unique triples, {} items",
        t0.elapsed().as_secs_f64(),
        corpus.batch.len(),
        corpus.batch.unique_triples(),
        corpus.batch.unique_data_items(),
    );

    for workers in [1usize, 2, 4] {
        let config = FusionConfig::popaccu().with_workers(workers);
        let t = Instant::now();
        let output = Fuser::new(config).run(&corpus.batch, None);
        let secs = t.elapsed().as_secs_f64();
        println!(
            "\nworkers={workers}: fused in {secs:.2}s \
             ({:.0} records/s, {} rounds, converged={})",
            corpus.batch.len() as f64 / secs,
            output.outcome.rounds(),
            output.outcome.converged(),
        );
        println!(
            "  engine counters: map_in={} map_out={} reduce_keys={} reduce_out={} (fanout {:.2})",
            output.stats.map_input,
            output.stats.map_output,
            output.stats.reduce_keys,
            output.stats.reduce_output,
            output.stats.fanout(),
        );
    }

    // Chunked shuffle: bound the raw records resident in the shuffle to a
    // 64K-record envelope. Output is identical; `JobStats` shows the peak.
    let full = Fuser::new(FusionConfig::popaccu()).run(&corpus.batch, None);
    let chunked_cfg = FusionConfig {
        mr: MrConfig::default().with_chunk_records(1 << 16),
        ..FusionConfig::popaccu()
    };
    let chunked = Fuser::new(chunked_cfg).run(&corpus.batch, None);
    assert_eq!(full.scored.len(), chunked.scored.len());
    for (a, b) in full.scored.iter().zip(&chunked.scored) {
        assert_eq!(a.triple, b.triple);
        assert_eq!(a.probability, b.probability);
    }
    println!(
        "\nchunked shuffle (quota 64K): peak resident records {} -> {} ({:.1}x smaller), \
         output identical",
        full.stats.peak_resident_records,
        chunked.stats.peak_resident_records,
        full.stats.peak_resident_records as f64 / chunked.stats.peak_resident_records.max(1) as f64,
    );

    // Reducer-side sampling (the paper's L) barely moves the output while
    // bounding per-key work — Fig. 14's claim. (`full` is the unchunked
    // run from above.)
    let sampled =
        Fuser::new(FusionConfig::popaccu().with_sample_limit(1_000)).run(&corpus.batch, None);
    let full_map = full.probability_map();
    let (mut moved, mut compared) = (0usize, 0usize);
    for s in &sampled.scored {
        if let (Some(p), Some(&q)) = (s.probability, full_map.get(&s.triple)) {
            compared += 1;
            moved += usize::from((p - q).abs() > 0.05);
        }
    }
    println!(
        "\nL=1000 vs L=1M: {:.3}% of {} triples moved by more than 0.05",
        100.0 * moved as f64 / compared.max(1) as f64,
        compared,
    );
}
