//! The scaling story: run the three-stage MapReduce fusion pipeline over
//! the large corpus preset with explicit worker counts and inspect the
//! engine's execution counters (the paper's Fig. 8 architecture).
//!
//! ```text
//! cargo run --release --example webscale_pipeline
//! ```

use kf::prelude::*;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let corpus = Corpus::generate(&SynthConfig::large(), 42);
    println!(
        "generated large corpus in {:.2}s: {} records, {} unique triples, {} items",
        t0.elapsed().as_secs_f64(),
        corpus.batch.len(),
        corpus.batch.unique_triples(),
        corpus.batch.unique_data_items(),
    );

    for workers in [1usize, 2, 4] {
        let config = FusionConfig::popaccu().with_workers(workers);
        let t = Instant::now();
        let output = Fuser::new(config).run(&corpus.batch, None);
        let secs = t.elapsed().as_secs_f64();
        println!(
            "\nworkers={workers}: fused in {secs:.2}s \
             ({:.0} records/s, {} rounds, converged={})",
            corpus.batch.len() as f64 / secs,
            output.outcome.rounds(),
            output.outcome.converged(),
        );
        println!(
            "  engine counters: map_in={} map_out={} reduce_keys={} reduce_out={} (fanout {:.2})",
            output.stats.map_input,
            output.stats.map_output,
            output.stats.reduce_keys,
            output.stats.reduce_output,
            output.stats.fanout(),
        );
    }

    // Reducer-side sampling (the paper's L) barely moves the output while
    // bounding per-key work — Fig. 14's claim.
    let full = Fuser::new(FusionConfig::popaccu()).run(&corpus.batch, None);
    let sampled =
        Fuser::new(FusionConfig::popaccu().with_sample_limit(1_000)).run(&corpus.batch, None);
    let full_map = full.probability_map();
    let (mut moved, mut compared) = (0usize, 0usize);
    for s in &sampled.scored {
        if let (Some(p), Some(&q)) = (s.probability, full_map.get(&s.triple)) {
            compared += 1;
            moved += usize::from((p - q).abs() > 0.05);
        }
    }
    println!(
        "\nL=1000 vs L=1M: {:.3}% of {} triples moved by more than 0.05",
        100.0 * moved as f64 / compared.max(1) as f64,
        compared,
    );
}
