//! The scaling story: run the three-stage MapReduce fusion pipeline over
//! the large corpus preset with explicit worker counts and inspect the
//! engine's execution counters (the paper's Fig. 8 architecture) —
//! including a forced spill-to-disk run proving the external shuffle
//! reproduces the in-memory output byte-for-byte under a bounded memory
//! envelope.
//!
//! ```text
//! cargo run --release --example webscale_pipeline
//! # Force a much smaller grouped-residency envelope (CI uses this to
//! # exercise the disk path on every push):
//! KF_SPILL_THRESHOLD=4096 cargo run --release --example webscale_pipeline
//! ```

use kf::prelude::*;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let corpus = Corpus::generate(&SynthConfig::large(), 42);
    println!(
        "generated large corpus in {:.2}s: {} records, {} unique triples, {} items",
        t0.elapsed().as_secs_f64(),
        corpus.batch.len(),
        corpus.batch.unique_triples(),
        corpus.batch.unique_data_items(),
    );

    for workers in [1usize, 2, 4] {
        let config = FusionConfig::popaccu().with_workers(workers);
        let t = Instant::now();
        let output = Fuser::new(config).run(&corpus.batch, None);
        let secs = t.elapsed().as_secs_f64();
        println!(
            "\nworkers={workers}: fused in {secs:.2}s \
             ({:.0} records/s, {} rounds, converged={})",
            corpus.batch.len() as f64 / secs,
            output.outcome.rounds(),
            output.outcome.converged(),
        );
        println!(
            "  engine counters: map_in={} map_out={} reduce_keys={} reduce_out={} (fanout {:.2})",
            output.stats.map_input,
            output.stats.map_output,
            output.stats.reduce_keys,
            output.stats.reduce_output,
            output.stats.fanout(),
        );
    }

    // Chunked shuffle: bound the raw records resident in the shuffle to a
    // 64K-record envelope. Output is identical; `JobStats` shows the peak.
    let full = Fuser::new(FusionConfig::popaccu()).run(&corpus.batch, None);
    let chunked_cfg = FusionConfig {
        mr: MrConfig::default().with_chunk_records(1 << 16),
        ..FusionConfig::popaccu()
    };
    let chunked = Fuser::new(chunked_cfg).run(&corpus.batch, None);
    assert_eq!(full.scored.len(), chunked.scored.len());
    for (a, b) in full.scored.iter().zip(&chunked.scored) {
        assert_eq!(a.triple, b.triple);
        assert_eq!(a.probability, b.probability);
    }
    println!(
        "\nchunked shuffle (quota 64K): peak resident records {} -> {} ({:.1}x smaller), \
         output identical",
        full.stats.peak_resident_records,
        chunked.stats.peak_resident_records,
        full.stats.peak_resident_records as f64 / chunked.stats.peak_resident_records.max(1) as f64,
    );

    // External shuffle: additionally bound the *grouped* records resident
    // across partition accumulators. Past the threshold, partitions spill
    // to sorted run files (KvCodec-encoded) and every round reduces by
    // k-way merging its runs — output must still be byte-identical.
    // KF_SPILL_THRESHOLD overrides the envelope; CI sets it tiny so the
    // disk path is exercised on every push.
    let spill_threshold: usize = std::env::var("KF_SPILL_THRESHOLD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 18);
    let spilled_cfg = FusionConfig {
        // Waves must fit under the spill threshold for the envelope to be
        // exact; a quarter of it keeps the raw and grouped bounds aligned.
        mr: MrConfig::default()
            .with_chunk_records((spill_threshold / 4).max(1))
            .with_spill_threshold(spill_threshold),
        ..FusionConfig::popaccu()
    };
    let t = Instant::now();
    let spilled = Fuser::new(spilled_cfg).run(&corpus.batch, None);
    let spill_secs = t.elapsed().as_secs_f64();
    assert_eq!(full.scored.len(), spilled.scored.len());
    for (a, b) in full.scored.iter().zip(&spilled.scored) {
        assert_eq!(a.triple, b.triple);
        assert_eq!(a.probability, b.probability, "spill changed {:?}", a.triple);
    }
    assert!(
        spilled.stats.spilled_bytes > 0,
        "spill threshold {spill_threshold} never triggered — raise the corpus or lower it"
    );
    assert!(
        spilled.stats.spill_runs > 0,
        "spilled bytes without spill runs — run accounting is broken"
    );
    // The engine invariant: grouped residency never exceeds the threshold
    // OR the largest single wave, whichever is bigger — a wave can
    // overshoot only because a single input's emissions never split, and
    // Stage II's Zipf-head items (the paper's 2.7M-extraction data items)
    // can emit more than a small threshold in one go.
    let envelope = (spill_threshold as u64).max(spilled.stats.peak_resident_records);
    assert!(
        spilled.stats.peak_grouped_records <= envelope,
        "grouped peak {} above max(threshold {}, largest wave {})",
        spilled.stats.peak_grouped_records,
        spill_threshold,
        spilled.stats.peak_resident_records
    );
    println!(
        "\nexternal shuffle (spill threshold {}): peak grouped records {} -> {} \
         ({:.1}x smaller), {:.1} MiB spilled to disk, output identical, fused in {:.2}s",
        spill_threshold,
        full.stats.peak_grouped_records,
        spilled.stats.peak_grouped_records,
        full.stats.peak_grouped_records as f64 / spilled.stats.peak_grouped_records.max(1) as f64,
        spilled.stats.spilled_bytes as f64 / (1024.0 * 1024.0),
        spill_secs,
    );
    println!(
        "  spill accounting: {} sorted run files written, {} combiner invocations \
         folded duplicates before reduce",
        spilled.stats.spill_runs, spilled.stats.combiner_invocations,
    );

    // Reducer-side sampling (the paper's L) barely moves the output while
    // bounding per-key work — Fig. 14's claim. (`full` is the unchunked
    // run from above.)
    let sampled =
        Fuser::new(FusionConfig::popaccu().with_sample_limit(1_000)).run(&corpus.batch, None);
    let full_map = full.probability_map();
    let (mut moved, mut compared) = (0usize, 0usize);
    for s in &sampled.scored {
        if let (Some(p), Some(&q)) = (s.probability, full_map.get(&s.triple)) {
            compared += 1;
            moved += usize::from((p - q).abs() > 0.05);
        }
    }
    println!(
        "\nL=1000 vs L=1M: {:.3}% of {} triples moved by more than 0.05",
        100.0 * moved as f64 / compared.max(1) as f64,
        compared,
    );
}
