//! Observability walkthrough: run the fusion pipeline end to end under a
//! `kf-telemetry` trace and read the run back — the phase tree with
//! wall-clock timings, the engine's spill accounting, and the per-round
//! convergence deltas of the iterative fuser.
//!
//! ```text
//! cargo run --release --example trace_pipeline
//! ```

use kf::prelude::*;
use kf::telemetry;

fn main() {
    // Everything recorded between install() and snapshot() lands in this
    // trace: spans nest under the coordinator thread's current phase,
    // counters accumulate atomically from any thread that reports one.
    let trace = telemetry::Trace::with_root("trace_pipeline");
    let installed = telemetry::install(&trace);

    let corpus = {
        let _span = telemetry::span("corpus");
        Corpus::generate(&SynthConfig::small(), 42)
    };
    println!(
        "corpus: {} records, {} unique triples, {} gold items",
        corpus.batch.len(),
        corpus.batch.unique_triples(),
        corpus.gold.n_items(),
    );

    // Fuse under a deliberately small spill envelope so the run exercises
    // the external shuffle and the trace shows disk traffic.
    let config = FusionConfig {
        mr: MrConfig::default()
            .with_chunk_records(1 << 10)
            .with_spill_threshold(1 << 12),
        ..FusionConfig::popaccu()
    };
    let output = Fuser::new(config).run(&corpus.batch, None);

    // Evaluate calibration and PR quality under the same trace.
    let runner = AblationRunner {
        scale: "small".into(),
        ..Default::default()
    };
    let eval = runner.evaluate(Preset::PopAccu, &output, &corpus.gold, 0.0);

    drop(installed);
    let report = trace.snapshot();

    // The human-readable phase table: span tree with call counts and
    // timings, then counters (merge rule annotated) and series.
    println!("\n{}", report.summary());

    // Reading individual facts back out of the frozen trace:
    let counter = |name: &str| {
        report
            .counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    println!(
        "spill accounting: {} sorted run files, {:.1} MiB spilled, {} combiner invocations",
        counter("mr.spill_runs"),
        counter("mr.spilled_bytes") as f64 / (1024.0 * 1024.0),
        counter("mr.combiner_invocations"),
    );
    assert!(
        counter("mr.spilled_bytes") > 0,
        "spill envelope never triggered — shrink the threshold"
    );

    // POPACCU iterates accuracy estimation to a fixed point; the trace's
    // `fuse.round_delta` series is the convergence curve (the fraction of
    // votes that moved each round), one value per `fuse.rounds`.
    let deltas = report
        .series
        .iter()
        .find(|s| s.name == "fuse.round_delta")
        .expect("fuser pushed per-round deltas");
    assert_eq!(deltas.values.len() as u64, counter("fuse.rounds"));
    for (round, delta) in deltas.values.iter().enumerate() {
        println!("round {:>2}: delta {delta:.6}", round + 1);
    }

    println!(
        "\npopaccu on small corpus: wdev {:.4}, auc-pr {:.4}, {} rounds, converged={}",
        eval.wdev(),
        eval.auc_pr(),
        output.outcome.rounds(),
        output.outcome.converged(),
    );
}
