//! Plug a user-defined extractor into the corpus generator: a high-recall,
//! low-precision "sloppy" scraper next to a precise Wikipedia-only one, then
//! measure how fusion treats their provenances.
//!
//! ```text
//! cargo run --release --example custom_extractor
//! ```

use kf::prelude::*;
use kf::synth::{ConfidenceModel, ErrorProfile, ExtractorSpec, SiteFilter};

fn main() {
    use kf::synth::ContentType::*;

    let extractors = vec![
        ExtractorSpec {
            name: "SLOPPY".into(),
            sections: vec![Txt, Dom],
            site_filter: SiteFilter::All,
            page_coverage: 0.9,
            recall: 0.85,
            n_patterns: 500,
            base_error: 0.7,
            pattern_spread: 2.0,
            profile: ErrorProfile::paper_mix(),
            systematic_rate: 0.05,
            generalize_rate: 0.02,
            confidence: ConfidenceModel::BimodalUninformative,
            linkage_group: 0,
        },
        ExtractorSpec {
            name: "PRECISE".into(),
            sections: vec![Dom, Tbl],
            site_filter: SiteFilter::WikipediaOnly,
            page_coverage: 0.95,
            recall: 0.6,
            n_patterns: 40,
            base_error: 0.08,
            pattern_spread: 1.2,
            profile: ErrorProfile::paper_mix(),
            systematic_rate: 0.002,
            generalize_rate: 0.01,
            confidence: ConfidenceModel::BimodalCalibrated,
            linkage_group: 1,
        },
    ];

    let corpus = Corpus::generate_with_extractors(&SynthConfig::small(), extractors, 7);
    println!(
        "corpus with custom extractors: {} records, {} unique triples",
        corpus.batch.len(),
        corpus.batch.unique_triples()
    );

    // Per-extractor raw accuracy under LCWA.
    for (i, spec) in corpus.extractors.iter().enumerate() {
        let (mut labelled, mut correct, mut total) = (0usize, 0usize, 0usize);
        for e in corpus.batch.iter() {
            if e.provenance.extractor.index() != i {
                continue;
            }
            total += 1;
            if let Some(ok) = corpus.gold.label(&e.triple).as_bool() {
                labelled += 1;
                correct += ok as usize;
            }
        }
        println!(
            "{:>8}: {:>7} extractions, LCWA accuracy {:.2}",
            spec.name,
            total,
            correct as f64 / labelled.max(1) as f64
        );
    }

    // Fusion should discover the quality difference without supervision.
    let output = Fuser::new(FusionConfig::popaccu()).run(&corpus.batch, None);
    let eval = AblationRunner::default().evaluate(Preset::PopAccu, &output, &corpus.gold, 0.0);
    println!(
        "\nPOPACCU over the custom corpus: WDEV {:.4}, AUC-PR {:.3}, coverage {:.1}%",
        eval.wdev(),
        eval.auc_pr(),
        100.0 * eval.coverage
    );
}
