//! Hostile-corpus walkthrough: turn on each adversarial generator
//! scenario (copying, spam, drift, hard linkage), fuse under VOTE and
//! POPACCU+, and measure what each method let through against the
//! generator's *injected* ground truth — the same join the CI scenario
//! matrix gates on.
//!
//! ```text
//! cargo run --release --example hostile_corpus
//! ```

use kf::prelude::*;
use kf_synth::{CopyingConfig, DriftConfig, LinkageConfig, ScenarioConfig, SpamConfig};
use kf_types::ScenarioPhenomenon;

fn main() {
    // The four hostile phenomena, one at a time, with the knobs the
    // CI matrix uses (see `kf_bench::scenario_config`). Each violates a
    // different assumption the fusion methods share.
    let base = SynthConfig::small();
    let scenarios: [(&str, ScenarioConfig); 4] = [
        (
            // Extractor pairs where the copier replicates 60% of its
            // source's records — mistakes included — so provenance
            // counts stop being independent evidence.
            "copying",
            ScenarioConfig {
                copying: CopyingConfig { dependence: 0.6 },
                ..Default::default()
            },
        ),
        (
            // Low-quality pages on fresh sites, each pushing the same
            // fabricated voice for its target item.
            "spam",
            ScenarioConfig {
                spam: SpamConfig {
                    n_pages: (base.web.n_pages / 8).max(8),
                    n_items: 50,
                    claims_per_page: 4,
                    n_sites: 8,
                },
                ..Default::default()
            },
        ),
        (
            // A fifth of the items flip truth halfway through the
            // crawl; earlier pages still claim the stale value.
            "drift",
            ScenarioConfig {
                drift: DriftConfig {
                    fraction: 0.2,
                    position: 0.5,
                },
                ..Default::default()
            },
        ),
        (
            // Confusable entities chained into rings of six, with the
            // extractor error budget tilted 3x toward linkage mistakes.
            "linkage",
            ScenarioConfig {
                linkage: LinkageConfig {
                    confusable_ring: 6,
                    error_boost: 3.0,
                },
                ..Default::default()
            },
        ),
    ];

    let runner = AblationRunner::default();
    for (name, sc) in scenarios {
        let cfg = SynthConfig {
            scenarios: sc,
            ..base.clone()
        };
        let corpus = Corpus::generate(&cfg, 42);

        // The generator records exactly which triples it injected and
        // through which mechanism — the measurement baseline.
        let truth = corpus.scenario_truth();
        println!(
            "\nscenario {name}: {} records, {} injected hostile triples",
            corpus.batch.len(),
            truth.len()
        );

        let (support, _) = SupportIndex::build(&corpus.batch.records, &MrConfig::default());
        let taxonomy_truth = corpus.taxonomy_truth();
        for preset in [Preset::Vote, Preset::PopAccuPlus] {
            let gold = preset.needs_gold().then_some(&corpus.gold);
            let (output, attribution) =
                Fuser::new(preset.config()).run_with_attribution(&corpus.batch, gold);
            let eval = runner.evaluate(preset, &output, &corpus.gold, 0.0);

            // The diagnoser joins every accepted false positive against
            // the injected scenario truth: `report.scenarios` says how
            // much of each phenomenon's mass this method admitted.
            let (report, _) = Diagnoser::new(&corpus.gold, &corpus.world, &support)
                .with_truth(&taxonomy_truth)
                .with_scenario(&truth)
                .with_attribution(&attribution)
                .run(&output);
            let leaked = |p: ScenarioPhenomenon| -> u64 {
                report
                    .scenarios
                    .iter()
                    .filter(|g| g.key == p.index() as u32)
                    .map(|g| g.counts.total())
                    .sum()
            };
            println!(
                "  {:12} wdev={:.4} auc_pr={:.3} | injected mass admitted: \
                 copied={} spam={} drift={} linkage={}",
                preset.label(),
                eval.wdev(),
                eval.auc_pr(),
                leaked(ScenarioPhenomenon::Copied),
                leaked(ScenarioPhenomenon::Spam),
                leaked(ScenarioPhenomenon::Drift),
                leaked(ScenarioPhenomenon::Linkage),
            );
        }
    }
    println!(
        "\nThe CI matrix (`cargo test --release -p kf-bench --test scenario_matrix`) \
         asserts these degradations stay put; `scenarios.json` is its artifact."
    );
}
