//! Reproduce the paper's calibration comparison (Fig. 9): run all five
//! presets over one corpus and print each method's calibration curve and
//! summary statistics.
//!
//! ```text
//! cargo run --release --example calibration_study
//! ```

use kf::prelude::*;

fn main() {
    let corpus = Corpus::generate(&SynthConfig::small(), 42);
    let runner = AblationRunner {
        scale: "small".into(),
        ..Default::default()
    };
    let report = runner.run(&corpus);

    for method in &report.methods {
        println!(
            "\n=== {} — WDEV {:.4}, ECE {:.4} ===",
            method.label,
            method.wdev(),
            method.ece()
        );
        println!(
            "{:>12} {:>8} {:>10} {:>10}",
            "bin", "count", "predicted", "observed"
        );
        for bin in &method.calibration_width.bins {
            if bin.count == 0 {
                continue;
            }
            // A calibrated method has observed ≈ predicted in every row.
            println!(
                "[{:.1}, {:.1}) {:>8} {:>10.3} {:>10.3}",
                bin.lo, bin.hi, bin.count, bin.mean_predicted, bin.observed_accuracy
            );
        }
    }

    println!("\n{}", report.summary_table());
    let vote = report.method("vote").expect("vote in report");
    let plus = report
        .method("popaccu_plus")
        .expect("popaccu_plus in report");
    println!(
        "POPACCU+ vs VOTE: WDEV {:.4} vs {:.4}, AUC-PR {:.3} vs {:.3}",
        plus.wdev(),
        vote.wdev(),
        plus.auc_pr(),
        vote.auc_pr(),
    );
}
