//! Checkpoint-and-fan-out walkthrough: snapshot a corpus once, fuse
//! disjoint preset slices as independent "shards" (each reloading the
//! checkpoint, exactly as separate processes would), merge the shard
//! reports, and verify the merged report is byte-identical to a
//! single-process run.
//!
//! ```text
//! cargo run --release --example checkpoint_shard
//! ```
//!
//! The same flow through the `repro` binary:
//!
//! ```text
//! repro --save-corpus corpus.kfc
//! repro --corpus corpus.kfc --deterministic --shard 0/2 --out s0.bin
//! repro --corpus corpus.kfc --deterministic --shard 1/2 --out s1.bin
//! repro --merge s0.bin s1.bin --out report.json
//! ```

use kf::eval::{merge_reports, AblationRunner, EvalReport, Preset};
use kf::synth::{Corpus, SynthConfig};
use std::time::Instant;

fn main() {
    let dir = std::env::temp_dir().join(format!("kf-checkpoint-shard-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    // ---- Snapshot: generate once, save the checkpoint -------------------
    let t = Instant::now();
    let corpus = Corpus::generate(&SynthConfig::small(), 42);
    let generate_ms = t.elapsed().as_secs_f64() * 1e3;
    let corpus_path = dir.join("corpus.kfc");
    corpus.save(&corpus_path).expect("save corpus");
    let bytes = std::fs::metadata(&corpus_path).unwrap().len();
    let t = Instant::now();
    let reloaded = Corpus::load(&corpus_path).expect("load corpus");
    let load_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(reloaded, corpus, "load(save(corpus)) == corpus");
    println!(
        "snapshot: {} records -> {:.1} MiB checkpoint (generate {generate_ms:.0} ms, \
         load {load_ms:.0} ms)",
        corpus.batch.len(),
        bytes as f64 / (1024.0 * 1024.0),
    );

    let runner = AblationRunner {
        scale: "small".into(),
        ..Default::default()
    };

    // ---- Reference: one process runs all five presets -------------------
    let mut single = runner.run(&corpus);
    zero_fuse_ms(&mut single);

    // ---- Fan out: shard i of 2 loads the checkpoint and fuses its slice -
    let mut shards = Vec::new();
    for index in 0..2usize {
        let shard_corpus = Corpus::load(&corpus_path).expect("shard loads checkpoint");
        let presets: Vec<Preset> = Preset::ALL
            .into_iter()
            .enumerate()
            .filter(|(j, _)| j % 2 == index)
            .map(|(_, p)| p)
            .collect();
        let names: Vec<&str> = presets.iter().map(|p| p.name()).collect();
        let mut report = EvalReport {
            corpus: runner.corpus_summary(&shard_corpus),
            methods: presets
                .iter()
                .map(|&p| runner.run_preset(&shard_corpus, p))
                .collect(),
        };
        zero_fuse_ms(&mut report);
        let path = dir.join(format!("shard{index}.bin"));
        report.save(&path).expect("save shard report");
        println!(
            "shard {index}/2: presets [{}] -> {} ({} methods)",
            names.join(", "),
            path.display(),
            report.methods.len(),
        );
        shards.push(EvalReport::load(&path).expect("reload shard report"));
    }

    // ---- Merge: reassemble in ablation order, byte-identical ------------
    let merged = merge_reports(shards).expect("shards merge");
    assert_eq!(
        merged.to_json_string(),
        single.to_json_string(),
        "merged sharded report must be byte-identical to the single-process run"
    );
    println!(
        "merge: {} methods reassembled; report.json byte-identical to the \
         single-process run ({} bytes)",
        merged.methods.len(),
        merged.to_json_string().len(),
    );
    print!("{}", merged.summary_table());

    std::fs::remove_dir_all(&dir).ok();
}

/// Zero the one nondeterministic report field (wall-clock fuse time) so
/// the byte-comparison is meaningful — `repro --deterministic` does the
/// same.
fn zero_fuse_ms(report: &mut EvalReport) {
    for m in &mut report.methods {
        m.fuse_ms = 0.0;
    }
}
