//! Checkpoint robustness for the `FusedKb` artifact kind, mirroring the
//! PR 5 error taxonomy: a damaged, mislabeled or version-skewed KB file
//! must fail with the *specific* typed error — never load as garbage —
//! and KB writes must be atomic (a torn write leaves the previous file
//! intact).

use kf_serve::{FusedKb, KbBuildOptions, KbReader};
use kf_synth::{Corpus, SynthConfig};
use kf_types::checkpoint::{self, ArtifactKind, CheckpointError, FORMAT_VERSION, MAGIC};
use std::path::PathBuf;

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("kf-serve-ckpt-{}-{name}", std::process::id()))
}

fn fixture_kb() -> FusedKb {
    let corpus = Corpus::generate(&SynthConfig::tiny(), 3);
    FusedKb::build_from_corpus(&corpus, &KbBuildOptions::default(), "tiny").expect("build")
}

fn kb_bytes(kb: &FusedKb) -> Vec<u8> {
    checkpoint::encode(ArtifactKind::FusedKb, kb)
}

#[test]
fn save_load_roundtrips_exactly() {
    let kb = fixture_kb();
    let path = tmp_path("roundtrip.kb");
    kb.save(&path).expect("save");
    let loaded = FusedKb::load(&path).expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, kb);
}

#[test]
fn truncation_is_rejected_at_every_prefix_class() {
    let kb = fixture_kb();
    let bytes = kb_bytes(&kb);
    // Inside the header → BadMagic; after the header → Corrupt. Probe a
    // spread of cut points rather than every byte (the payload is big).
    for cut in [0, 1, 3, 5, 6] {
        match checkpoint::decode::<FusedKb>(ArtifactKind::FusedKb, &bytes[..cut]) {
            Err(CheckpointError::BadMagic) => {}
            other => panic!("cut {cut}: expected BadMagic, got {other:?}"),
        }
    }
    for cut in [7, 8, bytes.len() / 2, bytes.len() - 1] {
        match checkpoint::decode::<FusedKb>(ArtifactKind::FusedKb, &bytes[..cut]) {
            Err(CheckpointError::Corrupt) => {}
            other => panic!("cut {cut}: expected Corrupt, got {other:?}"),
        }
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    let kb = fixture_kb();
    let mut bytes = kb_bytes(&kb);
    bytes.push(0);
    match checkpoint::decode::<FusedKb>(ArtifactKind::FusedKb, &bytes) {
        Err(CheckpointError::TrailingBytes) => {}
        other => panic!("expected TrailingBytes, got {other:?}"),
    }
}

#[test]
fn wrong_kind_is_rejected_both_ways() {
    let kb = fixture_kb();
    // A KB file handed to a corpus loader…
    let bytes = kb_bytes(&kb);
    match checkpoint::decode::<Corpus>(ArtifactKind::Corpus, &bytes) {
        Err(e @ CheckpointError::WrongKind { .. }) => {
            let msg = e.to_string();
            assert!(msg.contains("fused-kb") && msg.contains("corpus"), "{msg}");
        }
        other => panic!("expected WrongKind, got {other:?}"),
    }
    // …and a corpus file handed to the KB loader.
    let corpus = Corpus::generate(&SynthConfig::tiny(), 3);
    let corpus_bytes = checkpoint::encode(ArtifactKind::Corpus, &corpus);
    match checkpoint::decode::<FusedKb>(ArtifactKind::FusedKb, &corpus_bytes) {
        Err(CheckpointError::WrongKind { .. }) => {}
        other => panic!("expected WrongKind, got {other:?}"),
    }
}

#[test]
fn version_skew_is_rejected_with_found_version() {
    let kb = fixture_kb();
    let mut bytes = kb_bytes(&kb);
    // A pre-serving (version 2) writer's header: same magic, older
    // version — the skew must be reported before the kind is examined,
    // so a v2 reader meeting a KB file sees a version error, not an
    // unknown-kind one.
    bytes[4..6].copy_from_slice(&(FORMAT_VERSION - 1).to_le_bytes());
    match checkpoint::decode::<FusedKb>(ArtifactKind::FusedKb, &bytes) {
        Err(CheckpointError::VersionSkew { found }) => {
            assert_eq!(found, FORMAT_VERSION - 1);
        }
        other => panic!("expected VersionSkew, got {other:?}"),
    }
    assert_eq!(&bytes[..4], MAGIC.as_slice(), "magic untouched");
}

/// KB writes are atomic: overwriting a valid KB with a new build leaves
/// no observable intermediate state, and a failed build-path write (no
/// such directory) leaves the original file byte-identical.
#[test]
fn kb_writes_are_atomic_on_the_build_path() {
    let kb = fixture_kb();
    let path = tmp_path("atomic.kb");
    kb.save(&path).expect("first save");
    let original = std::fs::read(&path).expect("readable");

    // Same-seed rebuild overwrites in place via temp-file + rename.
    let rebuilt = fixture_kb();
    rebuilt.save(&path).expect("overwrite");
    assert_eq!(
        std::fs::read(&path).expect("readable"),
        original,
        "same-seed rebuild must be byte-identical"
    );

    // A write that fails mid-stream must not clobber the existing file.
    let failed = checkpoint::write_atomic(&path, |_w| {
        Err::<(), std::io::Error>(std::io::Error::other("simulated torn write"))
    });
    assert!(failed.is_err());
    assert_eq!(
        std::fs::read(&path).expect("still readable"),
        original,
        "failed write must leave the previous KB intact"
    );
    // And the reader still serves it.
    let reader = KbReader::open(&path).expect("opens");
    assert_eq!(reader.kb().n_triples(), kb.n_triples());
    std::fs::remove_file(&path).ok();

    // No leftover temp files from any of the writes above.
    let dir = path.parent().expect("has parent");
    let leftovers: Vec<_> = std::fs::read_dir(dir)
        .expect("listable")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains("atomic.kb.tmp-"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "temp files left behind: {leftovers:?}"
    );
}
