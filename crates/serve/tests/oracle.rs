//! Oracle-pinned serving tests: across corpus shapes × seeds × presets,
//! every answer a [`KbReader`] gives must *byte*-equal an independent
//! sequential scan of the source artifacts (fusion output, attribution,
//! gold standard, calibration curve). The serving layer may never
//! disagree with the batch artifact it was compiled from.
//!
//! "Byte-equal" is literal: probabilities are compared via `f64::to_bits`
//! and the checkpoint roundtrip is compared as encoded bytes.

use kf_core::{Fuser, ProvenanceAttribution, ScoredTriple};
use kf_eval::{AblationRunner, CalibrationCurve, EvalReport, Preset};
use kf_serve::{FusedKb, KbBuildOptions, KbReader};
use kf_synth::{Corpus, SynthConfig, WebConfig, WorldConfig};
use kf_types::{DataItem, EntityId, KvCodec, Label, PredicateId, Triple};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("kf-serve-oracle-{}-{name}", std::process::id()))
}

/// Small corpus shapes spanning the axes serving branches on: item
/// multiplicity (entities × predicates), page count (provenance
/// volume), and error rate (label mix). Kept tiny so 100 cases ×
/// full-oracle scans stay fast.
fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (40usize..160, 6usize..16, 60usize..200, 0.0f64..0.1).prop_map(
        |(n_entities, n_predicates, n_pages, source_error_rate)| SynthConfig {
            world: WorldConfig {
                n_types: 4,
                n_predicates,
                n_entities,
                ..WorldConfig::default()
            },
            web: WebConfig {
                n_sites: 12,
                n_pages,
                source_error_rate,
                ..WebConfig::default()
            },
            ..SynthConfig::tiny()
        },
    )
}

/// Rotate through the presets whose scoring paths differ (voting,
/// accuracy-iterating, popularity-aware, refined).
fn arb_preset() -> impl Strategy<Value = Preset> {
    prop_oneof![
        Just(Preset::Vote),
        Just(Preset::Accu),
        Just(Preset::PopAccu),
        Just(Preset::PopAccuPlus),
    ]
}

/// The oracle's own calibration lookup, written against the documented
/// bin-assignment rule rather than shared with the serving crate.
fn oracle_calibrate(curve: &CalibrationCurve, p: f64) -> f64 {
    let clamped = p.clamp(0.0, 1.0);
    let n = curve.bins.len();
    if n == 0 {
        return clamped;
    }
    let idx = usize::min((clamped * n as f64) as usize, n - 1);
    let bin = &curve.bins[idx];
    if bin.count == 0 || bin.observed_accuracy.is_nan() {
        clamped
    } else {
        bin.observed_accuracy
    }
}

/// Run the full oracle over one (config, seed, preset) triple: compile a
/// KB through the report path, independently re-derive every answer by
/// sequential scan, and compare byte-for-byte.
fn check_oracle(cfg: &SynthConfig, seed: u64, preset: Preset) {
    let corpus = Corpus::generate(cfg, seed);
    let runner = AblationRunner {
        scale: "oracle".to_string(),
        ..AblationRunner::default()
    };
    let report = EvalReport {
        corpus: runner.corpus_summary(&corpus),
        methods: vec![runner.run_preset(&corpus, preset)],
    };
    let opts = KbBuildOptions {
        method: preset.name().to_string(),
        workers: None,
    };
    let kb = FusedKb::compile(&report, &corpus, &opts).expect("compile succeeds");

    // The independent scan: re-fuse exactly as the preset specifies.
    let gold = preset.needs_gold().then_some(&corpus.gold);
    let (output, attribution) =
        Fuser::new(preset.config()).run_with_attribution(&corpus.batch, gold);
    let curve = &report.methods[0].calibration_width;

    // Expected rows: predicted triples in ascending triple order.
    let mut expected: Vec<(usize, &ScoredTriple)> = output
        .scored
        .iter()
        .enumerate()
        .filter(|(_, st)| st.probability.is_some())
        .collect();
    expected.sort_by_key(|&(_, st)| st.triple);

    assert_eq!(kb.n_triples(), expected.len());
    assert_eq!(kb.n_dropped as usize, output.scored.len() - expected.len());
    let reader = KbReader::new(kb);

    check_rows(&reader, &expected, curve, &corpus, &attribution);
    check_beliefs(&reader, &expected);
    check_rankings(&reader, &expected, curve);

    // Triples the fuser could not score are not served.
    for st in output.scored.iter().filter(|st| st.probability.is_none()) {
        assert!(reader.lookup(&st.triple).is_none());
        assert!(reader.drilldown(&st.triple).is_none());
    }

    check_roundtrip(reader.kb(), seed);
}

/// Point lookups + provenance drill-down for every served row.
fn check_rows(
    reader: &KbReader,
    expected: &[(usize, &ScoredTriple)],
    curve: &CalibrationCurve,
    corpus: &Corpus,
    attribution: &ProvenanceAttribution,
) {
    for &(orig, st) in expected {
        let v = reader.lookup(&st.triple).expect("served triple found");
        let p = st.probability.expect("expected rows are predicted");
        assert_eq!(v.triple, st.triple);
        assert_eq!(v.raw.to_bits(), p.to_bits());
        assert_eq!(v.calibrated.to_bits(), oracle_calibrate(curve, p).to_bits());
        assert_eq!(v.label, corpus.gold.label(&st.triple));
        assert_eq!(v.n_pages, st.n_pages);
        assert_eq!(v.n_extractors, st.n_extractors);
        assert_eq!(v.fallback, st.fallback);

        let d = reader.drilldown(&st.triple).expect("drill-down found");
        let provs = attribution.provs(orig);
        assert_eq!(d.len(), provs.len());
        for (got, &id) in d.iter().zip(provs) {
            assert_eq!(got.id, id);
            assert_eq!(got.key, attribution.keys[id as usize]);
            assert_eq!(
                got.accuracy.to_bits(),
                attribution.accuracy[id as usize].to_bits()
            );
            assert_eq!(got.evaluated, attribution.evaluated[id as usize]);
        }
    }
}

/// Belief distributions: group the scan by (subject, predicate) and
/// require identical candidate lists in identical (canonical) order.
fn check_beliefs(reader: &KbReader, expected: &[(usize, &ScoredTriple)]) {
    let mut i = 0;
    while i < expected.len() {
        let t = expected[i].1.triple;
        let item = DataItem {
            subject: t.subject,
            predicate: t.predicate,
        };
        let mut j = i;
        while j < expected.len()
            && expected[j].1.triple.subject == t.subject
            && expected[j].1.triple.predicate == t.predicate
        {
            j += 1;
        }
        let belief = reader.belief(item).expect("item has a belief");
        assert_eq!(belief.len(), j - i);
        for (v, &(_, st)) in belief.iter().zip(&expected[i..j]) {
            assert_eq!(v.triple, st.triple);
            assert_eq!(
                v.raw.to_bits(),
                st.probability.expect("predicted").to_bits()
            );
        }
        // best() is the calibrated argmax with first-in-canonical-order
        // tie-break — exactly a sequential max scan.
        let best = belief.best();
        let oracle_best = belief
            .iter()
            .reduce(|a, b| if b.calibrated > a.calibrated { b } else { a })
            .expect("non-empty");
        assert_eq!(best, oracle_best);
        i = j;
    }
    assert!(reader
        .belief(DataItem {
            subject: EntityId(u32::MAX),
            predicate: PredicateId(u32::MAX),
        })
        .is_none());
}

/// Predicate rankings: for every predicate, the full top-k must equal
/// the scan sorted by (calibrated desc, canonical triple asc), and a
/// smaller k must be exactly its prefix.
fn check_rankings(
    reader: &KbReader,
    expected: &[(usize, &ScoredTriple)],
    curve: &CalibrationCurve,
) {
    let mut preds: Vec<u32> = expected
        .iter()
        .map(|(_, st)| st.triple.predicate.0)
        .collect();
    preds.sort_unstable();
    preds.dedup();
    for &p in &preds {
        let mut rows: Vec<&ScoredTriple> = expected
            .iter()
            .map(|&(_, st)| st)
            .filter(|st| st.triple.predicate.0 == p)
            .collect();
        rows.sort_by(|a, b| {
            let ca = oracle_calibrate(curve, a.probability.expect("predicted"));
            let cb = oracle_calibrate(curve, b.probability.expect("predicted"));
            cb.total_cmp(&ca).then_with(|| a.triple.cmp(&b.triple))
        });
        let top = reader
            .top_k(PredicateId(p), usize::MAX)
            .expect("predicate served");
        assert_eq!(top.len(), rows.len());
        for (v, st) in top.iter().zip(&rows) {
            assert_eq!(v.triple, st.triple);
        }
        let k = rows.len().min(3);
        let prefix = reader.top_k(PredicateId(p), k).expect("predicate served");
        assert_eq!(prefix.len(), k);
        for (a, b) in prefix.iter().zip(top.iter()) {
            assert_eq!(a, b);
        }
    }
    assert!(reader.top_k(PredicateId(u32::MAX), 5).is_none());
}

/// Checkpoint roundtrip: encoded bytes are canonical and survive
/// save/load exactly.
fn check_roundtrip(kb: &FusedKb, seed: u64) {
    let mut bytes = Vec::new();
    kb.encode(&mut bytes);
    let decoded = FusedKb::decode(&mut &bytes[..]).expect("decodes");
    assert_eq!(&decoded, kb);
    let mut again = Vec::new();
    decoded.encode(&mut again);
    assert_eq!(bytes, again, "re-encode must be byte-identical");

    let path = tmp_path(&format!("roundtrip-{seed}.kb"));
    kb.save(&path).expect("save");
    let loaded = FusedKb::load(&path).expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(&loaded, kb);
}

proptest! {
    /// The serving layer never disagrees with the batch artifacts: for
    /// any corpus shape, seed and preset, every reader answer equals an
    /// independent sequential scan, bit-for-bit.
    #[test]
    fn reader_matches_sequential_oracle(
        cfg in arb_config(),
        seed in 0u64..1_000,
        preset in arb_preset(),
    ) {
        check_oracle(&cfg, seed, preset);
    }
}

/// Compiling the same report + corpus twice — and compiling from a
/// freshly regenerated same-seed corpus — yields byte-identical KBs
/// (the property the CI `cmp` gate holds the CLI to).
#[test]
fn kb_compilation_is_deterministic() {
    let cfg = SynthConfig::tiny();
    let corpus = Corpus::generate(&cfg, 7);
    let opts = KbBuildOptions::default();
    let a = FusedKb::build_from_corpus(&corpus, &opts, "tiny").expect("build");
    let b = FusedKb::build_from_corpus(&corpus, &opts, "tiny").expect("build");
    let regenerated = Corpus::generate(&cfg, 7);
    let c = FusedKb::build_from_corpus(&regenerated, &opts, "tiny").expect("build");
    let (mut ba, mut bb, mut bc) = (Vec::new(), Vec::new(), Vec::new());
    a.encode(&mut ba);
    b.encode(&mut bb);
    c.encode(&mut bc);
    assert_eq!(ba, bb);
    assert_eq!(ba, bc);
}

/// A report from one corpus must not compile against another corpus —
/// the seed guard catches the mismatch.
#[test]
fn compile_rejects_mismatched_corpus() {
    let corpus = Corpus::generate(&SynthConfig::tiny(), 1);
    let other = Corpus::generate(&SynthConfig::tiny(), 2);
    let runner = AblationRunner::default();
    let report = EvalReport {
        corpus: runner.corpus_summary(&corpus),
        methods: vec![runner.run_preset(&corpus, Preset::Vote)],
    };
    let opts = KbBuildOptions {
        method: "vote".to_string(),
        workers: None,
    };
    let err = FusedKb::compile(&report, &other, &opts).expect_err("must refuse");
    assert!(matches!(err, kf_serve::BuildError::CorpusMismatch { .. }));
    let err = FusedKb::compile(
        &report,
        &corpus,
        &KbBuildOptions {
            method: "no-such-method".to_string(),
            workers: None,
        },
    )
    .expect_err("must refuse");
    assert!(matches!(err, kf_serve::BuildError::UnknownMethod(_)));
    let err = FusedKb::compile(
        &report,
        &corpus,
        &KbBuildOptions {
            method: "popaccu_plus".to_string(),
            workers: None,
        },
    )
    .expect_err("must refuse");
    assert!(matches!(err, kf_serve::BuildError::MethodNotInReport(_)));
}

/// Labels survive the round through the KB: a served row's label always
/// equals a fresh gold-standard lookup (spot check at `small` scale so
/// the label column sees a realistic True/False/Unknown mix).
#[test]
fn labels_match_gold_at_small_scale() {
    let corpus = Corpus::generate(&SynthConfig::tiny(), 11);
    let kb =
        FusedKb::build_from_corpus(&corpus, &KbBuildOptions::default(), "tiny").expect("build");
    let reader = KbReader::new(kb);
    let mut seen = [false; 3];
    for row in 0..reader.kb().n_triples() {
        let v = reader.view(row as u32);
        assert_eq!(v.label, corpus.gold.label(&v.triple));
        seen[match v.label {
            Label::False => 0,
            Label::True => 1,
            Label::Unknown => 2,
        }] = true;
    }
    assert!(seen[1], "expected at least one true label");
}

/// Paper-scale oracle gate (CI runs it `--ignored` in release against
/// the shared corpus snapshot named by `KF_CORPUS`): the full per-row
/// oracle at the scale the paper reports.
#[test]
#[ignore = "paper-scale gate; needs KF_CORPUS and a release build"]
fn paper_scale_oracle_gate() {
    let path = std::env::var("KF_CORPUS").expect("KF_CORPUS names a corpus checkpoint");
    let corpus = Corpus::load(&path).expect("corpus loads");
    let opts = KbBuildOptions::default();
    let kb = FusedKb::build_from_corpus(&corpus, &opts, "paper").expect("build");

    let preset = Preset::PopAccuPlus;
    let gold = preset.needs_gold().then_some(&corpus.gold);
    let (output, attribution) =
        Fuser::new(preset.config()).run_with_attribution(&corpus.batch, gold);
    let runner = AblationRunner {
        scale: "paper".to_string(),
        ..AblationRunner::default()
    };
    let method = runner.evaluate(preset, &output, &corpus.gold, 0.0);
    let curve = &method.calibration_width;

    let mut expected: Vec<(usize, &ScoredTriple)> = output
        .scored
        .iter()
        .enumerate()
        .filter(|(_, st)| st.probability.is_some())
        .collect();
    expected.sort_by_key(|&(_, st)| st.triple);
    assert_eq!(kb.n_triples(), expected.len());

    let reader = KbReader::new(kb);
    check_rows(&reader, &expected, curve, &corpus, &attribution);
    check_beliefs(&reader, &expected);
    check_rankings(&reader, &expected, curve);
    check_roundtrip(reader.kb(), corpus.seed);
}

/// The worked example in the README's "Querying a fused KB" section:
/// keep the REPL transcript honest by replaying its commands against a
/// seed-42 tiny KB and pinning the answers' shape.
#[test]
fn repl_session_from_readme_works() {
    let corpus = Corpus::generate(&SynthConfig::tiny(), 42);
    let kb =
        FusedKb::build_from_corpus(&corpus, &KbBuildOptions::default(), "tiny").expect("build");
    let reader = KbReader::new(kb);
    let stats = match kf_serve::eval_command(&reader, "stats").expect("stats") {
        kf_serve::ReplOutput::Text(t) => t,
        other => panic!("expected text, got {other:?}"),
    };
    assert!(
        stats.contains("method      popaccu_plus (POPACCU+)"),
        "{stats}"
    );
    assert!(stats.contains("scale=tiny seed=42"), "{stats}");

    // The README's worked session, verbatim (prefixed ids exercise the
    // paste-back-what-was-printed parsing). If fusion numerics change
    // upstream, regenerate the README transcript along with this test.
    let text = |cmd: &str| match kf_serve::eval_command(&reader, cmd).expect("command runs") {
        kf_serve::ReplOutput::Text(t) => t,
        other => panic!("expected text, got {other:?}"),
    };
    let top = text("top p9 3");
    assert!(top.starts_with("  1. (e0 p9 s1042)"), "{top}");
    assert_eq!(top.lines().count(), 3, "{top}");

    let item = text("item e0 p9");
    assert!(item.lines().count() >= 2, "{item}");
    assert!(
        item.contains("(e0 p9 s1042)") && item.contains("fallback"),
        "{item}"
    );

    let prov = text("prov e0 p9 s1042");
    assert!(prov.contains("support: 13 provenances"), "{prov}");
    assert!(
        prov.contains("ext=e0(TXT1)") && prov.contains("pattern="),
        "{prov}"
    );

    // Drive `top`/`item` on the canonical-first row too, like a user
    // exploring from `view`.
    let Triple {
        subject, predicate, ..
    } = reader.view(0).triple;
    for cmd in [
        format!("top p{} 5", predicate.0),
        format!("item e{} p{}", subject.0, predicate.0),
    ] {
        assert!(!text(&cmd).is_empty());
    }
}
