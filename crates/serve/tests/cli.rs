//! Binary-level tests for the `kf-serve` CLI: the run-scoped trace must
//! make `serve.*` counters visible to `counters`/`stats` (they used to
//! be silent no-ops without an installed trace), `stats --metrics` must
//! print the Prometheus-style exposition after its self-probe, and
//! `watch` must drive load and emit both the table and the JSON
//! snapshot.

use kf_serve::{FusedKb, KbBuildOptions};
use kf_synth::{Corpus, SynthConfig};
use std::path::PathBuf;
use std::process::Command;

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("kf-serve-cli-{}-{name}", std::process::id()))
}

/// Build and save the shared tiny KB fixture, returning its path.
fn kb_file(name: &str) -> PathBuf {
    let corpus = Corpus::generate(&SynthConfig::tiny(), 42);
    let kb =
        FusedKb::build_from_corpus(&corpus, &KbBuildOptions::default(), "tiny").expect("builds");
    let path = tmp_path(name);
    kb.save(&path).expect("saves");
    path
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_kf-serve"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
        out.status.success(),
    )
}

#[test]
fn query_counters_are_visible_without_explicit_trace() {
    // The regression this pins: `serve.*` counters were invisible to the
    // `counters` command unless the caller installed a trace — the CLI
    // never did, so `--cmd counters` always printed the empty-state
    // line. The binary now installs a run-scoped trace in `main`.
    let kb = kb_file("counters");
    let (stdout, stderr, ok) = run(&[
        "query",
        kb.to_str().unwrap(),
        "--cmd",
        "top p0 3",
        "--cmd",
        "counters",
    ]);
    std::fs::remove_file(&kb).ok();
    assert!(ok, "query failed: {stderr}");
    assert!(
        !stdout.contains("no trace installed"),
        "trace missing in CLI run:\n{stdout}"
    );
    assert!(
        stdout.contains("serve.query"),
        "serve.query counter not printed:\n{stdout}"
    );
}

#[test]
fn stats_prints_counters_and_metrics_exposition() {
    let kb = kb_file("stats");
    let (stdout, stderr, ok) = run(&["stats", kb.to_str().unwrap(), "--metrics"]);
    std::fs::remove_file(&kb).ok();
    assert!(ok, "stats failed: {stderr}");
    // KB header, then the run's own counters (the probe queried each
    // surface once), then the exposition.
    assert!(stdout.contains("method      "), "{stdout}");
    assert!(stdout.contains("counters:"), "{stdout}");
    assert!(stdout.contains("serve.query              4"), "{stdout}");
    for line in [
        "# TYPE kf_serve_queries_total counter",
        "kf_serve_queries_total{kind=\"lookup\",outcome=\"hit\"} 1",
        "kf_serve_queries_total{kind=\"belief\",outcome=\"hit\"} 1",
        "kf_serve_queries_total{kind=\"top_k\",outcome=\"hit\"} 1",
        "kf_serve_queries_total{kind=\"drilldown\",outcome=\"hit\"} 1",
        "kf_serve_errors_total 0",
        "# TYPE kf_serve_latency histogram",
        "kf_serve_latency_count{kind=\"lookup\"} 1",
        "# TYPE kf_serve_result_size histogram",
        "kf_serve_result_size_bucket{kind=\"lookup\",le=\"1\"} 1",
    ] {
        assert!(stdout.contains(line), "missing `{line}` in:\n{stdout}");
    }
}

#[test]
fn stats_without_metrics_flag_omits_exposition() {
    let kb = kb_file("stats-plain");
    let (stdout, stderr, ok) = run(&["stats", kb.to_str().unwrap()]);
    std::fs::remove_file(&kb).ok();
    assert!(ok, "stats failed: {stderr}");
    assert!(stdout.contains("counters:"), "{stdout}");
    assert!(
        !stdout.contains("kf_serve_queries_total"),
        "exposition printed without --metrics:\n{stdout}"
    );
}

#[test]
fn watch_drives_load_and_writes_json_snapshot() {
    let kb = kb_file("watch");
    let json = tmp_path("watch.json");
    let (stdout, stderr, ok) = run(&[
        "watch",
        kb.to_str().unwrap(),
        "--clients",
        "2",
        "--ticks",
        "2",
        "--interval-ms",
        "60",
        "--json-out",
        json.to_str().unwrap(),
    ]);
    std::fs::remove_file(&kb).ok();
    let snapshot = std::fs::read_to_string(&json);
    std::fs::remove_file(&json).ok();
    assert!(ok, "watch failed: {stderr}");
    assert!(
        stdout.contains(" tick      qps   p50_ns   p95_ns   p99_ns   hit%"),
        "{stdout}"
    );
    assert!(stdout.contains("watched "), "{stdout}");
    let snapshot = snapshot.expect("json written");
    assert!(snapshot.contains("\"total_queries\""), "{snapshot}");
    assert!(snapshot.contains("\"kind\": \"drilldown\""), "{snapshot}");
    assert!(snapshot.contains("\"p99\""), "{snapshot}");
}
