//! Concurrent-reader stress tests: many threads hammer one shared
//! [`KbReader`] with an interleaved query mix and must get answers
//! identical to a single-threaded run — and the hot read path must not
//! allocate.
//!
//! Allocation accounting is per-thread (a counting `#[global_allocator]`
//! incrementing a `thread_local` counter), so the harness running other
//! tests on sibling threads cannot pollute the measurement.

use kf_serve::{FusedKb, KbBuildOptions, KbReader};
use kf_synth::{Corpus, SynthConfig};
use kf_types::{DataItem, PredicateId, Triple};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // Never allocates: const-initialised Cell needs no lazy init.
    THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

/// The shared fixture: a tiny-scale KB under the default serving preset.
fn reader() -> KbReader {
    let corpus = Corpus::generate(&SynthConfig::tiny(), 42);
    let kb =
        FusedKb::build_from_corpus(&corpus, &KbBuildOptions::default(), "tiny").expect("build");
    KbReader::new(kb)
}

/// FNV-1a fold, the digest accumulator for query answers.
fn mix(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x0000_0100_0000_01b3)
}

/// Run the interleaved query mix for one row and fold every answer
/// byte into a digest. Allocation-free.
fn query_row(reader: &KbReader, row: u32, h: u64) -> u64 {
    let mut h = h;
    let v = reader.view(row);
    let Triple {
        subject, predicate, ..
    } = v.triple;

    let looked = reader.lookup(&v.triple).expect("row is served");
    h = mix(h, looked.raw.to_bits());
    h = mix(h, looked.calibrated.to_bits());
    h = mix(h, looked.n_pages as u64);

    let belief = reader
        .belief(DataItem { subject, predicate })
        .expect("row has an item");
    h = mix(h, belief.len() as u64);
    for c in belief.iter() {
        h = mix(h, c.calibrated.to_bits());
    }
    h = mix(h, belief.best().raw.to_bits());

    let k = 1 + (row as usize % 7);
    let top = reader.top_k(predicate, k).expect("predicate is served");
    for t in top.iter() {
        h = mix(h, t.triple.subject.0 as u64);
        h = mix(h, t.calibrated.to_bits());
    }

    let d = reader.drilldown(&v.triple).expect("row drills down");
    for p in d.iter() {
        h = mix(h, p.id as u64);
        h = mix(h, p.accuracy.to_bits());
    }
    // Misses exercise the not-found paths without allocating either.
    h = mix(h, reader.top_k(PredicateId(u32::MAX), 3).is_none() as u64);
    h
}

/// Digest a contiguous row range single-threadedly.
fn digest_range(reader: &KbReader, rows: std::ops::Range<u32>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for row in rows {
        h = query_row(reader, row, h);
    }
    h
}

/// The reader handle is shareable across threads by construction.
#[test]
fn reader_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<KbReader>();
    assert_send_sync::<kf_serve::TripleView>();
}

/// No query on the hot read path allocates: run the full interleaved
/// mix over every row and require zero allocations on this thread.
#[test]
fn hot_path_does_not_allocate() {
    let reader = reader();
    let n = reader.kb().n_triples() as u32;
    assert!(n > 100, "fixture KB too small to be meaningful");
    // Warm-up pass (faults in lazy pages; everything is already built).
    let warm = digest_range(&reader, 0..n);

    let before = allocs_on_this_thread();
    let hot = digest_range(&reader, 0..n);
    let after = allocs_on_this_thread();

    assert_eq!(hot, warm, "same queries must digest identically");
    assert_eq!(
        after - before,
        0,
        "hot read path allocated {} times over {n} rows",
        after - before
    );
}

/// The zero-allocation guarantee survives metrics: with a live
/// [`ServeMetrics`] recorder attached, every query also records latency,
/// outcome and result size — into preallocated per-thread shards, so the
/// hot path must still not allocate once.
#[test]
fn hot_path_does_not_allocate_with_metrics_enabled() {
    let metrics = std::sync::Arc::new(kf_serve::ServeMetrics::new());
    let reader = reader().with_metrics(metrics.clone());
    let n = reader.kb().n_triples() as u32;
    // Warm-up also pins this thread to its recorder shard.
    let warm = digest_range(&reader, 0..n);

    let before = allocs_on_this_thread();
    let hot = digest_range(&reader, 0..n);
    let after = allocs_on_this_thread();

    assert_eq!(hot, warm, "same queries must digest identically");
    assert_eq!(
        after - before,
        0,
        "metrics-enabled hot path allocated {} times over {n} rows",
        after - before
    );
    // And the recording actually happened: both passes landed.
    let snap = metrics.snapshot();
    // Per row: 1 lookup + 1 belief + 1 top_k + 1 drilldown + 1 top_k miss.
    assert_eq!(snap.total_queries(), 2 * 5 * n as u64);
}

/// 8 threads × disjoint row ranges, all on one shared reader: every
/// thread's digest equals the single-threaded digest of its range.
#[test]
fn concurrent_partitions_match_single_threaded() {
    let reader = reader();
    let n = reader.kb().n_triples() as u32;
    let threads = 8u32;
    let chunk = n.div_ceil(threads);
    let ranges: Vec<std::ops::Range<u32>> = (0..threads)
        .map(|t| (t * chunk).min(n)..((t + 1) * chunk).min(n))
        .collect();
    let sequential: Vec<u64> = ranges
        .iter()
        .map(|r| digest_range(&reader, r.clone()))
        .collect();

    let concurrent: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|r| {
                let reader = &reader;
                let r = r.clone();
                scope.spawn(move || digest_range(reader, r))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("joins"))
            .collect()
    });
    assert_eq!(concurrent, sequential);
}

/// 8 cloned handles over the *same* full workload, racing: every thread
/// sees the identical answer stream (the arena is immutable; clones
/// share it rather than copy it).
#[test]
fn racing_full_scans_agree() {
    let reader = reader();
    let n = reader.kb().n_triples() as u32;
    let expected = digest_range(&reader, 0..n);

    let digests: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let local = reader.clone();
                scope.spawn(move || digest_range(&local, 0..n))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("joins"))
            .collect()
    });
    for d in digests {
        assert_eq!(d, expected);
    }
}
