//! Tests for the live serving metrics layer: sharded recording must be
//! indistinguishable from sequential recording (the merge algebra at
//! work), reader queries must land in the right families with the right
//! result sizes, and the exposition formats must keep their pinned
//! shapes.

use kf_eval::AblationRunner;
use kf_serve::{
    FusedKb, KbBuildOptions, KbReader, MetricsSnapshot, QueryKind, ServeMetrics, SnapshotRing,
};
use kf_synth::{Corpus, SynthConfig};
use kf_types::{DataItem, EntityId, PredicateId, Triple, Value};
use std::sync::Arc;

fn tiny_reader() -> KbReader {
    let corpus = Corpus::generate(&SynthConfig::tiny(), 42);
    let report = AblationRunner::default().run(&corpus);
    let kb = FusedKb::compile(&report, &corpus, &KbBuildOptions::default()).expect("compiles");
    KbReader::new(kb)
}

/// A deterministic workload of direct recordings: kind, latency,
/// hit, result size — valued so every family and both outcomes appear.
fn workload(n: usize) -> Vec<(QueryKind, u64, bool, u64)> {
    (0..n as u64)
        .map(|i| {
            let kind = QueryKind::ALL[(i % 4) as usize];
            // Latencies spread across octaves; every 7th query misses.
            let ns = 50 + (i % 13) * 1_000 + (i % 3) * 100_000;
            let hit = i % 7 != 0;
            (kind, ns, hit, i % 9)
        })
        .collect()
}

fn replay(metrics: &ServeMetrics, tuples: &[(QueryKind, u64, bool, u64)]) {
    for &(kind, ns, hit, size) in tuples {
        metrics.record(kind, ns, hit, size);
    }
}

#[test]
fn eight_thread_sharded_recording_equals_sequential_replay() {
    // The race test the sharding contract demands: 8 threads record
    // disjoint slices of one workload concurrently; the aggregate must
    // equal a single-threaded replay of the whole workload — bucket
    // counts, sums, hit/miss tallies, everything. (Latencies here are
    // explicit values, not wall clock, so the comparison is exact.)
    let tuples = workload(8_000);
    let concurrent = ServeMetrics::new();
    std::thread::scope(|scope| {
        for chunk in tuples.chunks(1_000) {
            let concurrent = &concurrent;
            scope.spawn(move || replay(concurrent, chunk));
        }
    });
    let sequential = ServeMetrics::new();
    replay(&sequential, &tuples);
    assert_eq!(concurrent.snapshot(), sequential.snapshot());
}

#[test]
fn reader_queries_land_in_their_families() {
    let metrics = Arc::new(ServeMetrics::new());
    let reader = tiny_reader().with_metrics(metrics.clone());
    let v = reader.view(0);
    let item = DataItem {
        subject: v.triple.subject,
        predicate: v.triple.predicate,
    };

    let belief_len = reader.belief(item).expect("served row has a belief").len();
    let top_len = reader
        .top_k(v.triple.predicate, 7)
        .expect("pred served")
        .len();
    assert!(reader.lookup(&v.triple).is_some());
    let drill_len = reader.drilldown(&v.triple).expect("row drills").len();
    // And one guaranteed miss per family that can miss.
    let absent = Triple {
        subject: EntityId(u32::MAX),
        predicate: PredicateId(u32::MAX),
        object: Value::Entity(EntityId(u32::MAX)),
    };
    assert!(reader.lookup(&absent).is_none());
    assert!(reader
        .belief(DataItem {
            subject: EntityId(u32::MAX),
            predicate: PredicateId(u32::MAX),
        })
        .is_none());
    assert!(reader.top_k(PredicateId(u32::MAX), 3).is_none());
    assert!(reader.drilldown(&absent).is_none());

    let snap = metrics.snapshot();
    assert_eq!(snap.total_queries(), 8);
    assert_eq!(snap.errors, 0);
    for k in &snap.kinds {
        assert_eq!(k.hits, 1, "{} hits", k.kind.name());
        assert_eq!(k.misses, 1, "{} misses", k.kind.name());
        // Latency observed for hit AND miss; result size for the hit only.
        assert_eq!(k.latency.count, 2);
        assert_eq!(k.result_size.count, 1);
        assert!(k.latency.sum > 0, "clock advanced");
        let expected_size = match k.kind {
            QueryKind::Lookup => 1,
            QueryKind::Belief => belief_len as u64,
            QueryKind::TopK => top_len as u64,
            QueryKind::Drilldown => drill_len as u64,
        };
        assert_eq!(k.result_size.sum, expected_size, "{}", k.kind.name());
    }
}

#[test]
fn snapshot_delta_isolates_the_window() {
    let metrics = ServeMetrics::new();
    let tuples = workload(500);
    replay(&metrics, &tuples[..200]);
    let first = metrics.snapshot();
    replay(&metrics, &tuples[200..]);
    let second = metrics.snapshot();

    // The window equals a fresh recorder fed only the in-between slice.
    let window = second.delta(&first);
    let fresh = ServeMetrics::new();
    replay(&fresh, &tuples[200..]);
    assert_eq!(window, fresh.snapshot());
    // And delta against an empty baseline is the identity.
    let empty = ServeMetrics::new().snapshot();
    assert_eq!(second.delta(&empty), second);
}

#[test]
fn exposition_text_has_the_pinned_shape() {
    let metrics = ServeMetrics::new();
    // Two lookup hits of size 1 at known latencies, one belief miss.
    metrics.record(QueryKind::Lookup, 100, true, 1);
    metrics.record(QueryKind::Lookup, 200, true, 1);
    metrics.record(QueryKind::Belief, 300, false, 0);
    metrics.record_error();

    let text = metrics.snapshot().render_text();
    for expected in [
        "# TYPE kf_serve_queries_total counter",
        "kf_serve_queries_total{kind=\"lookup\",outcome=\"hit\"} 2",
        "kf_serve_queries_total{kind=\"lookup\",outcome=\"miss\"} 0",
        "kf_serve_queries_total{kind=\"belief\",outcome=\"miss\"} 1",
        "kf_serve_errors_total 1",
        "# TYPE kf_serve_latency histogram",
        "kf_serve_latency_bucket{kind=\"lookup\",le=\"+Inf\"} 2",
        "kf_serve_latency_sum{kind=\"lookup\"} 300",
        "kf_serve_latency_count{kind=\"lookup\"} 2",
        "# TYPE kf_serve_result_size histogram",
        // Size-1 results land in exact bucket 1: cumulative count 2 at le=1.
        "kf_serve_result_size_bucket{kind=\"lookup\",le=\"1\"} 2",
        "kf_serve_result_size_sum{kind=\"lookup\"} 2",
    ] {
        assert!(text.contains(expected), "missing `{expected}` in:\n{text}");
    }
    // Cumulative le buckets: each line's value never decreases per family.
    let mut last = 0u64;
    for line in text
        .lines()
        .filter(|l| l.starts_with("kf_serve_latency_bucket{kind=\"lookup\""))
    {
        let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(v >= last, "non-cumulative bucket line: {line}");
        last = v;
    }
}

#[test]
fn json_snapshot_carries_quantiles_and_counts() {
    let metrics = ServeMetrics::new();
    for _ in 0..90 {
        metrics.record(QueryKind::TopK, 1_000, true, 8);
    }
    for _ in 0..10 {
        metrics.record(QueryKind::TopK, 1_000_000, true, 8);
    }
    let snap = metrics.snapshot();
    let json = snap.to_json().to_string_compact();
    assert!(json.contains("\"total_queries\":100"), "{json}");
    assert!(json.contains("\"kind\":\"top_k\""), "{json}");
    assert!(json.contains("\"errors\":0"), "{json}");

    let top_k = snap
        .kinds
        .iter()
        .find(|k| k.kind == QueryKind::TopK)
        .unwrap();
    // p50 sits in the 1µs bucket, p99 in the 1ms one: within the
    // layout's 2^-5 relative error of the exact values.
    let p50 = top_k.latency.quantile(0.50);
    let p99 = top_k.latency.quantile(0.99);
    assert!((1_000..=1_000 + (1_000 >> 5)).contains(&p50), "p50={p50}");
    assert!(
        (1_000_000..=1_000_000 + (1_000_000 >> 5)).contains(&p99),
        "p99={p99}"
    );
}

#[test]
fn pooled_latency_merges_every_kind() {
    let metrics = ServeMetrics::new();
    metrics.record(QueryKind::Lookup, 100, true, 1);
    metrics.record(QueryKind::Belief, 100, true, 3);
    metrics.record(QueryKind::Drilldown, 100, false, 0);
    let pooled = metrics.snapshot().pooled_latency();
    assert_eq!(pooled.count, 3);
    assert_eq!(pooled.sum, 300);
}

#[test]
fn snapshot_ring_keeps_recent_windows() {
    let metrics = ServeMetrics::new();
    let ring = SnapshotRing::new(3);
    assert!(ring.is_empty());
    assert!(ring.latest().is_none());
    assert!(ring.last_window().is_none());

    ring.push(metrics.snapshot());
    assert!(ring.last_window().is_none(), "one poll has no window");

    metrics.record(QueryKind::Lookup, 500, true, 1);
    ring.push(metrics.snapshot());
    let window = ring.last_window().expect("two polls");
    assert_eq!(window.total_queries(), 1);

    // Push past capacity: the ring holds the newest three, and the
    // window still reflects only the latest pair.
    for i in 0..5 {
        metrics.record(QueryKind::TopK, 500, true, i);
        ring.push(metrics.snapshot());
    }
    assert_eq!(ring.len(), 3);
    assert_eq!(ring.last_window().expect("full ring").total_queries(), 1);
    assert_eq!(
        ring.latest().expect("non-empty").total_queries(),
        metrics.snapshot().total_queries()
    );
}

#[test]
fn empty_snapshot_renders_and_serializes() {
    let snap: MetricsSnapshot = ServeMetrics::new().snapshot();
    assert_eq!(snap.total_queries(), 0);
    let text = snap.render_text();
    assert!(text.contains("kf_serve_queries_total{kind=\"lookup\",outcome=\"hit\"} 0"));
    assert!(text.contains("kf_serve_latency_count{kind=\"drilldown\"} 0"));
    let json = snap.to_json().to_string_compact();
    assert!(json.contains("\"total_queries\":0"), "{json}");
    assert_eq!(snap.pooled_latency().quantile(0.99), 0);
}
