//! `KbReader`: the concurrent, zero-copy query surface over a loaded
//! [`FusedKb`].
//!
//! One KB arena is loaded once and wrapped in an [`Arc`]; every
//! [`KbReader`] clone shares it. The KB is immutable after load, so the
//! reader is [`Sync`] by construction — no locks, no interior
//! mutability, and any number of threads can query one reader (or cheap
//! clones of it) concurrently with answers identical to a
//! single-threaded run.
//!
//! The hot read path allocates nothing: lookups are binary searches over
//! the columnar indexes, and answers are [`Copy`] row views
//! ([`TripleView`], [`ProvSupport`]) or borrowed slices of the arena
//! ([`Belief`], [`TopK`], [`Drilldown`]). Telemetry is counters
//! (`serve.query`, `serve.topk`, per-index hit/miss) — free-function
//! no-ops unless a trace is installed, so serving without a trace pays
//! one atomic-free branch per counter — plus an optional
//! [`ServeMetrics`] recorder attached with [`KbReader::with_metrics`]:
//! per-kind latency and result-size histograms recorded into
//! preallocated per-thread shards, also allocation-free.

use crate::kb::{label_from_tag, FusedKb};
use crate::metrics::{MetricTimer, QueryKind, ServeMetrics};
use kf_telemetry::add;
use kf_types::checkpoint::CheckpointError;
use kf_types::{DataItem, Label, PredicateId, ProvenanceKey, Triple};
use std::path::Path;
use std::sync::Arc;

/// A shareable, `Sync` handle over one loaded [`FusedKb`] arena.
#[derive(Debug, Clone)]
pub struct KbReader {
    kb: Arc<FusedKb>,
    metrics: Option<Arc<ServeMetrics>>,
}

/// One served triple row, copied out of the columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripleView {
    /// Row index in canonical triple order.
    pub row: u32,
    /// The triple.
    pub triple: Triple,
    /// The fuser's raw probability.
    pub raw: f64,
    /// Calibrated confidence (see [`crate::kb::calibrate`]).
    pub calibrated: f64,
    /// Gold-standard LCWA label at build time.
    pub label: Label,
    /// Distinct supporting pages.
    pub n_pages: u32,
    /// Distinct supporting extractors.
    pub n_extractors: u16,
    /// True when the probability came from the mean-accuracy fallback.
    pub fallback: bool,
}

/// The belief distribution of one `(subject, predicate)` item: its
/// triple rows, in canonical (object-ascending) order.
#[derive(Debug, Clone, Copy)]
pub struct Belief<'a> {
    kb: &'a FusedKb,
    start: usize,
    end: usize,
}

/// The top-k ranked triples of one predicate, most confident first.
#[derive(Debug, Clone, Copy)]
pub struct TopK<'a> {
    kb: &'a FusedKb,
    rows: &'a [u32],
}

/// Provenance drill-down of one triple: which provenances support it,
/// at what final learned accuracy.
#[derive(Debug, Clone, Copy)]
pub struct Drilldown<'a> {
    kb: &'a FusedKb,
    row: u32,
    ids: &'a [u32],
}

/// One supporting provenance, resolved from the registry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProvSupport {
    /// Dense provenance id.
    pub id: u32,
    /// The provenance key at the run's granularity.
    pub key: ProvenanceKey,
    /// Final (post-iteration) learned accuracy.
    pub accuracy: f64,
    /// Whether the accuracy was ever re-estimated from data.
    pub evaluated: bool,
}

/// Binary search: first index in `0..len` for which `less` is false.
#[inline]
fn lower_bound(len: usize, mut less: impl FnMut(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (0usize, len);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if less(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

impl KbReader {
    /// Wrap an in-memory KB.
    pub fn new(kb: FusedKb) -> Self {
        KbReader {
            kb: Arc::new(kb),
            metrics: None,
        }
    }

    /// Load a KB checkpoint and wrap it.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        Ok(Self::new(FusedKb::load(path)?))
    }

    /// Attach a live metrics recorder: every query records its latency,
    /// outcome and result size into `metrics`. Clones of this reader
    /// share the recorder.
    pub fn with_metrics(mut self, metrics: Arc<ServeMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The attached recorder, when metrics are enabled.
    pub fn metrics(&self) -> Option<&Arc<ServeMetrics>> {
        self.metrics.as_ref()
    }

    /// The underlying arena.
    pub fn kb(&self) -> &FusedKb {
        &self.kb
    }

    /// Copy out the row view at `row` (callers get rows from the index
    /// views below).
    #[inline]
    pub fn view(&self, row: u32) -> TripleView {
        view_at(&self.kb, row)
    }

    /// The belief distribution of `(subject, predicate)`, or `None` when
    /// the KB has no prediction for the item.
    pub fn belief(&self, item: DataItem) -> Option<Belief<'_>> {
        let timer = MetricTimer::start(self.metrics.as_deref(), QueryKind::Belief);
        add("serve.query", 1);
        let kb = &*self.kb;
        let key = (item.subject.0, item.predicate.0);
        let m = kb.item_subjects.len();
        let i = lower_bound(m, |j| (kb.item_subjects[j], kb.item_predicates[j]) < key);
        if i == m || (kb.item_subjects[i], kb.item_predicates[i]) != key {
            add("serve.miss.item", 1);
            timer.finish(false, 0);
            return None;
        }
        add("serve.hit.item", 1);
        let belief = Belief {
            kb,
            start: kb.item_offsets[i] as usize,
            end: kb.item_offsets[i + 1] as usize,
        };
        timer.finish(true, belief.len() as u64);
        Some(belief)
    }

    /// The `k` most confident triples for `predicate` (calibrated
    /// descending, ties in canonical triple order), or `None` when the
    /// KB serves no triple of that predicate.
    pub fn top_k(&self, predicate: PredicateId, k: usize) -> Option<TopK<'_>> {
        let timer = MetricTimer::start(self.metrics.as_deref(), QueryKind::TopK);
        add("serve.query", 1);
        add("serve.topk", 1);
        let kb = &*self.kb;
        match kb.pred_ids.binary_search(&predicate.0) {
            Ok(i) => {
                add("serve.hit.pred", 1);
                let start = kb.pred_offsets[i] as usize;
                let end = kb.pred_offsets[i + 1] as usize;
                let end = start + k.min(end - start);
                let top = TopK {
                    kb,
                    rows: &kb.rank[start..end],
                };
                timer.finish(true, top.len() as u64);
                Some(top)
            }
            Err(_) => {
                add("serve.miss.pred", 1);
                timer.finish(false, 0);
                None
            }
        }
    }

    /// The served row for an exact triple, or `None` when the KB does
    /// not predict it.
    pub fn lookup(&self, triple: &Triple) -> Option<TripleView> {
        let timer = MetricTimer::start(self.metrics.as_deref(), QueryKind::Lookup);
        add("serve.query", 1);
        let Some(row) = self.find_row(triple) else {
            timer.finish(false, 0);
            return None;
        };
        timer.finish(true, 1);
        Some(view_at(&self.kb, row))
    }

    /// Provenance drill-down for an exact triple: every supporting
    /// provenance with its final learned accuracy.
    pub fn drilldown(&self, triple: &Triple) -> Option<Drilldown<'_>> {
        let timer = MetricTimer::start(self.metrics.as_deref(), QueryKind::Drilldown);
        add("serve.query", 1);
        add("serve.drilldown", 1);
        let Some(row) = self.find_row(triple) else {
            timer.finish(false, 0);
            return None;
        };
        let kb = &*self.kb;
        let start = kb.prov_offsets[row as usize] as usize;
        let end = kb.prov_offsets[row as usize + 1] as usize;
        let drill = Drilldown {
            kb,
            row,
            ids: &kb.prov_ids[start..end],
        };
        timer.finish(true, drill.len() as u64);
        Some(drill)
    }

    /// Extractor display name for `id`, when the KB carries one.
    pub fn extractor_name(&self, id: u32) -> Option<&str> {
        self.kb.extractor_names.get(id as usize).map(String::as_str)
    }

    fn find_row(&self, triple: &Triple) -> Option<u32> {
        let kb = &*self.kb;
        let n = kb.n_triples();
        // The object payload column is not order-preserving for negative
        // numerics, so comparisons reconstruct the typed triple.
        let i = lower_bound(n, |j| kb.triple_at(j) < *triple);
        if i < n && kb.triple_at(i) == *triple {
            add("serve.hit.triple", 1);
            Some(i as u32)
        } else {
            add("serve.miss.triple", 1);
            None
        }
    }
}

#[inline]
fn view_at(kb: &FusedKb, row: u32) -> TripleView {
    let i = row as usize;
    TripleView {
        row,
        triple: kb.triple_at(i),
        raw: kb.raw[i],
        calibrated: kb.calibrated[i],
        label: label_from_tag(kb.labels[i]).expect("validated at decode"),
        n_pages: kb.pages[i],
        n_extractors: kb.extractor_counts[i],
        fallback: kb.fallback[i] != 0,
    }
}

impl<'a> Belief<'a> {
    /// Number of candidate values for the item.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for an empty distribution (cannot occur for a belief
    /// returned by [`KbReader::belief`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row view of the `j`-th candidate, in canonical (object-ascending)
    /// order.
    pub fn get(&self, j: usize) -> TripleView {
        assert!(j < self.len(), "belief index out of range");
        view_at(self.kb, (self.start + j) as u32)
    }

    /// Iterate the distribution in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = TripleView> + 'a {
        let kb = self.kb;
        (self.start..self.end).map(move |i| view_at(kb, i as u32))
    }

    /// The most confident candidate (calibrated descending, ties in
    /// canonical order).
    pub fn best(&self) -> TripleView {
        let mut best = self.get(0);
        for v in self.iter().skip(1) {
            if v.calibrated > best.calibrated {
                best = v;
            }
        }
        best
    }
}

impl<'a> TopK<'a> {
    /// Number of returned rows (≤ k).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the predicate exists but k was 0.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row view at rank `i` (0 = most confident).
    pub fn get(&self, i: usize) -> TripleView {
        view_at(self.kb, self.rows[i])
    }

    /// Iterate most-confident-first.
    pub fn iter(&self) -> impl Iterator<Item = TripleView> + 'a {
        let kb = self.kb;
        self.rows.iter().map(move |&row| view_at(kb, row))
    }
}

impl<'a> Drilldown<'a> {
    /// The row this drill-down describes.
    pub fn view(&self) -> TripleView {
        view_at(self.kb, self.row)
    }

    /// Number of supporting provenances.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the run carried no attribution.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The `i`-th supporting provenance (ids ascending).
    pub fn get(&self, i: usize) -> ProvSupport {
        let id = self.ids[i];
        ProvSupport {
            id,
            key: ProvenanceKey::unpack(self.kb.prov_keys[id as usize]),
            accuracy: self.kb.prov_accuracy[id as usize],
            evaluated: self.kb.prov_evaluated[id as usize] != 0,
        }
    }

    /// Iterate supporting provenances, ids ascending.
    pub fn iter(&self) -> impl Iterator<Item = ProvSupport> + 'a {
        let kb = self.kb;
        self.ids.iter().map(move |&id| ProvSupport {
            id,
            key: ProvenanceKey::unpack(kb.prov_keys[id as usize]),
            accuracy: kb.prov_accuracy[id as usize],
            evaluated: kb.prov_evaluated[id as usize] != 0,
        })
    }

    /// Mean final accuracy across the supporting provenances (`None`
    /// when unattributed).
    pub fn mean_accuracy(&self) -> Option<f64> {
        if self.ids.is_empty() {
            return None;
        }
        let sum: f64 = self
            .ids
            .iter()
            .map(|&id| self.kb.prov_accuracy[id as usize])
            .sum();
        Some(sum / self.ids.len() as f64)
    }
}
