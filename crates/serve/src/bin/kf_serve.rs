//! `kf-serve` — build and query fused knowledge bases.
//!
//! ```text
//! kf-serve build --corpus PATH --out KB [--report PATH] [--method NAME]
//!                [--workers N] [--scale LABEL]
//! kf-serve query KB [--cmd 'LINE']...
//! kf-serve stats KB
//! ```
//!
//! `build` compiles a [`FusedKb`] from a corpus snapshot — against an
//! existing evaluation report when `--report` is given (refusing a
//! mismatched pair), or by fusing and evaluating in-process otherwise.
//! `query` opens a REPL (or runs `--cmd` lines non-interactively);
//! `stats` prints the KB header and exits.

use kf_eval::EvalReport;
use kf_serve::repl::{eval_command, run_repl, ReplOutput};
use kf_serve::{FusedKb, KbBuildOptions, KbReader};
use kf_synth::Corpus;
use std::io::IsTerminal;
use std::process::ExitCode;

const USAGE: &str = "usage:
  kf-serve build --corpus PATH --out KB [--report PATH] [--method NAME]
                 [--workers N] [--scale LABEL]
  kf-serve query KB [--cmd 'LINE']...
  kf-serve stats KB";

fn fail(msg: &str) -> ExitCode {
    eprintln!("kf-serve: {msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("build") => build(&args[1..]),
        Some("query") => query(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => fail(&format!("unknown subcommand `{other}`")),
        None => fail("missing subcommand"),
    }
}

fn build(args: &[String]) -> ExitCode {
    let mut corpus_path = None;
    let mut report_path = None;
    let mut out_path = None;
    let mut opts = KbBuildOptions::default();
    let mut scale = "snapshot".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let result = match arg.as_str() {
            "--corpus" => value("--corpus").map(|v| corpus_path = Some(v)),
            "--report" => value("--report").map(|v| report_path = Some(v)),
            "--out" => value("--out").map(|v| out_path = Some(v)),
            "--method" => value("--method").map(|v| opts.method = v),
            "--scale" => value("--scale").map(|v| scale = v),
            "--workers" => value("--workers").and_then(|v| {
                v.parse()
                    .map(|w| opts.workers = Some(w))
                    .map_err(|_| format!("bad --workers `{v}`"))
            }),
            other => Err(format!("unknown flag `{other}`")),
        };
        if let Err(e) = result {
            return fail(&e);
        }
    }
    let (Some(corpus_path), Some(out_path)) = (corpus_path, out_path) else {
        return fail("build needs --corpus and --out");
    };

    let corpus = match Corpus::load(&corpus_path) {
        Ok(c) => c,
        Err(e) => return fail(&format!("loading corpus {corpus_path}: {e}")),
    };
    let kb = match &report_path {
        Some(path) => match EvalReport::load(path) {
            Ok(report) => FusedKb::compile(&report, &corpus, &opts),
            Err(e) => return fail(&format!("loading report {path}: {e}")),
        },
        None => FusedKb::build_from_corpus(&corpus, &opts, &scale),
    };
    let kb = match kb {
        Ok(kb) => kb,
        Err(e) => return fail(&format!("compiling KB: {e}")),
    };
    if let Err(e) = kb.save(&out_path) {
        return fail(&format!("writing {out_path}: {e}"));
    }
    println!(
        "wrote {out_path}: {} triples, {} items, {} predicates, {} provenances ({})",
        kb.n_triples(),
        kb.n_items(),
        kb.n_predicates(),
        kb.n_provenances(),
        kb.method
    );
    ExitCode::SUCCESS
}

fn open(path: &str) -> Result<KbReader, String> {
    KbReader::open(path).map_err(|e| format!("loading KB {path}: {e}"))
}

fn query(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return fail("query needs a KB path");
    };
    let mut cmds = Vec::new();
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        if arg != "--cmd" {
            return fail(&format!("unknown flag `{arg}`"));
        }
        match it.next() {
            Some(line) => cmds.push(line.clone()),
            None => return fail("--cmd needs a value"),
        }
    }
    let reader = match open(path) {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    if !cmds.is_empty() {
        for line in &cmds {
            match eval_command(&reader, line) {
                Ok(ReplOutput::Text(text)) => println!("{text}"),
                Ok(ReplOutput::Empty) => {}
                Ok(ReplOutput::Quit) => break,
                Err(e) => {
                    eprintln!("kf-serve: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }
    let stdin = std::io::stdin();
    let interactive = stdin.is_terminal();
    match run_repl(&reader, stdin.lock(), std::io::stdout(), interactive) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&format!("repl I/O: {e}")),
    }
}

fn stats(args: &[String]) -> ExitCode {
    let [path] = args else {
        return fail("stats needs exactly a KB path");
    };
    let reader = match open(path) {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    match eval_command(&reader, "stats") {
        Ok(ReplOutput::Text(text)) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        _ => unreachable!("stats always renders"),
    }
}
