//! `kf-serve` — build, query and watch fused knowledge bases.
//!
//! ```text
//! kf-serve build --corpus PATH --out KB [--report PATH] [--method NAME]
//!                [--workers N] [--scale LABEL]
//! kf-serve query KB [--cmd 'LINE']...
//! kf-serve stats KB [--metrics]
//! kf-serve watch KB [--clients N] [--ticks T] [--interval-ms MS]
//!                   [--json-out PATH]
//! ```
//!
//! `build` compiles a [`FusedKb`] from a corpus snapshot — against an
//! existing evaluation report when `--report` is given (refusing a
//! mismatched pair), or by fusing and evaluating in-process otherwise.
//! `query` opens a REPL (or runs `--cmd` lines non-interactively);
//! `stats` prints the KB header plus the run's `serve.*` trace counters,
//! and with `--metrics` probes each query surface once and prints the
//! Prometheus-style exposition. `watch` drives a deterministic query mix
//! from `--clients` threads and prints one qps/p50/p95/p99 table row per
//! tick, sampled from a live snapshot ring.
//!
//! Every subcommand runs under an installed run-scoped
//! [`Trace`](kf_telemetry::Trace), so library-layer counters (`serve.*`
//! and friends) land somewhere visible instead of the no-op default.

use kf_eval::EvalReport;
use kf_serve::repl::{eval_command, run_repl, ReplOutput};
use kf_serve::{FusedKb, KbBuildOptions, KbReader, ServeMetrics, SnapshotRing};
use kf_synth::Corpus;
use kf_types::DataItem;
use std::io::IsTerminal;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const USAGE: &str = "usage:
  kf-serve build --corpus PATH --out KB [--report PATH] [--method NAME]
                 [--workers N] [--scale LABEL]
  kf-serve query KB [--cmd 'LINE']...
  kf-serve stats KB [--metrics]
  kf-serve watch KB [--clients N] [--ticks T] [--interval-ms MS]
                    [--json-out PATH]";

fn fail(msg: &str) -> ExitCode {
    eprintln!("kf-serve: {msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    // Run-scoped trace: without it every library-layer counter bump
    // (serve.query, the hit/miss families) is a silent no-op and
    // `counters` / `stats` have nothing to print.
    let trace = kf_telemetry::Trace::new();
    let _scope = kf_telemetry::install(&trace);
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("build") => build(&args[1..]),
        Some("query") => query(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("watch") => watch(&args[1..]),
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => fail(&format!("unknown subcommand `{other}`")),
        None => fail("missing subcommand"),
    }
}

fn build(args: &[String]) -> ExitCode {
    let mut corpus_path = None;
    let mut report_path = None;
    let mut out_path = None;
    let mut opts = KbBuildOptions::default();
    let mut scale = "snapshot".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let result = match arg.as_str() {
            "--corpus" => value("--corpus").map(|v| corpus_path = Some(v)),
            "--report" => value("--report").map(|v| report_path = Some(v)),
            "--out" => value("--out").map(|v| out_path = Some(v)),
            "--method" => value("--method").map(|v| opts.method = v),
            "--scale" => value("--scale").map(|v| scale = v),
            "--workers" => value("--workers").and_then(|v| {
                v.parse()
                    .map(|w| opts.workers = Some(w))
                    .map_err(|_| format!("bad --workers `{v}`"))
            }),
            other => Err(format!("unknown flag `{other}`")),
        };
        if let Err(e) = result {
            return fail(&e);
        }
    }
    let (Some(corpus_path), Some(out_path)) = (corpus_path, out_path) else {
        return fail("build needs --corpus and --out");
    };

    let corpus = match Corpus::load(&corpus_path) {
        Ok(c) => c,
        Err(e) => return fail(&format!("loading corpus {corpus_path}: {e}")),
    };
    let kb = match &report_path {
        Some(path) => match EvalReport::load(path) {
            Ok(report) => FusedKb::compile(&report, &corpus, &opts),
            Err(e) => return fail(&format!("loading report {path}: {e}")),
        },
        None => FusedKb::build_from_corpus(&corpus, &opts, &scale),
    };
    let kb = match kb {
        Ok(kb) => kb,
        Err(e) => return fail(&format!("compiling KB: {e}")),
    };
    if let Err(e) = kb.save(&out_path) {
        return fail(&format!("writing {out_path}: {e}"));
    }
    println!(
        "wrote {out_path}: {} triples, {} items, {} predicates, {} provenances ({})",
        kb.n_triples(),
        kb.n_items(),
        kb.n_predicates(),
        kb.n_provenances(),
        kb.method
    );
    ExitCode::SUCCESS
}

fn open(path: &str) -> Result<KbReader, String> {
    KbReader::open(path).map_err(|e| format!("loading KB {path}: {e}"))
}

fn query(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return fail("query needs a KB path");
    };
    let mut cmds = Vec::new();
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        if arg != "--cmd" {
            return fail(&format!("unknown flag `{arg}`"));
        }
        match it.next() {
            Some(line) => cmds.push(line.clone()),
            None => return fail("--cmd needs a value"),
        }
    }
    // The REPL's `metrics` command reads an attached recorder; give the
    // session one so per-command latencies are observable.
    let reader = match open(path) {
        Ok(r) => r.with_metrics(Arc::new(ServeMetrics::new())),
        Err(e) => return fail(&e),
    };
    if !cmds.is_empty() {
        for line in &cmds {
            match eval_command(&reader, line) {
                Ok(ReplOutput::Text(text)) => println!("{text}"),
                Ok(ReplOutput::Empty) => {}
                Ok(ReplOutput::Quit) => break,
                Err(e) => {
                    eprintln!("kf-serve: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }
    let stdin = std::io::stdin();
    let interactive = stdin.is_terminal();
    match run_repl(&reader, stdin.lock(), std::io::stdout(), interactive) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&format!("repl I/O: {e}")),
    }
}

/// Touch each query surface once, seeded from row 0, so a bare
/// `stats --metrics` run has a deterministic non-empty exposition
/// (four queries, all hits) without external load.
fn probe(reader: &KbReader) {
    if reader.kb().n_triples() == 0 {
        return;
    }
    let v = reader.view(0);
    let _ = reader.lookup(&v.triple);
    let _ = reader.belief(DataItem {
        subject: v.triple.subject,
        predicate: v.triple.predicate,
    });
    let _ = reader.top_k(v.triple.predicate, 5);
    let _ = reader.drilldown(&v.triple);
}

fn stats(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut metrics = false;
    for arg in args {
        match arg.as_str() {
            "--metrics" => metrics = true,
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => return fail(&format!("unknown flag `{other}`")),
        }
    }
    let Some(path) = path else {
        return fail("stats needs a KB path");
    };
    let recorder = Arc::new(ServeMetrics::new());
    let reader = match open(&path) {
        Ok(r) => r.with_metrics(recorder.clone()),
        Err(e) => return fail(&e),
    };
    if metrics {
        probe(&reader);
    }
    match eval_command(&reader, "stats") {
        Ok(ReplOutput::Text(text)) => println!("{text}"),
        _ => unreachable!("stats always renders"),
    }
    // The run-scoped trace makes the serve.* counters of this very
    // process (the probe's queries, or none) printable here.
    match eval_command(&reader, "counters") {
        Ok(ReplOutput::Text(text)) => {
            println!("counters:");
            for line in text.lines() {
                println!("  {line}");
            }
        }
        _ => unreachable!("counters always renders"),
    }
    if metrics {
        print!("{}", recorder.snapshot().render_text());
    }
    ExitCode::SUCCESS
}

fn watch(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut clients = 2usize;
    let mut ticks = 5usize;
    let mut interval_ms = 200u64;
    let mut json_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let result = match arg.as_str() {
            "--clients" => value("--clients").and_then(|v| {
                v.parse()
                    .map(|n: usize| clients = n.max(1))
                    .map_err(|_| format!("bad --clients `{v}`"))
            }),
            "--ticks" => value("--ticks").and_then(|v| {
                v.parse()
                    .map(|n: usize| ticks = n.max(1))
                    .map_err(|_| format!("bad --ticks `{v}`"))
            }),
            "--interval-ms" => value("--interval-ms").and_then(|v| {
                v.parse()
                    .map(|n: u64| interval_ms = n.max(1))
                    .map_err(|_| format!("bad --interval-ms `{v}`"))
            }),
            "--json-out" => value("--json-out").map(|v| json_out = Some(v)),
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(other.to_string());
                Ok(())
            }
            other => Err(format!("unknown flag `{other}`")),
        };
        if let Err(e) = result {
            return fail(&e);
        }
    }
    let Some(path) = path else {
        return fail("watch needs a KB path");
    };
    let recorder = Arc::new(ServeMetrics::new());
    let reader = match open(&path) {
        Ok(r) => r.with_metrics(recorder.clone()),
        Err(e) => return fail(&e),
    };
    if reader.kb().n_triples() == 0 {
        return fail("watch needs a non-empty KB");
    }

    let stop = AtomicBool::new(false);
    let ring = SnapshotRing::new(ticks + 1);
    std::thread::scope(|scope| {
        for client in 0..clients {
            let reader = reader.clone();
            let stop = &stop;
            scope.spawn(move || drive_queries(&reader, stop, client as u64));
        }
        ring.push(recorder.snapshot());
        println!(" tick      qps   p50_ns   p95_ns   p99_ns   hit%");
        for tick in 1..=ticks {
            std::thread::sleep(std::time::Duration::from_millis(interval_ms));
            ring.push(recorder.snapshot());
            let window = ring.last_window().expect("two polls pushed");
            let pooled = window.pooled_latency();
            let queries = window.total_queries();
            let qps = queries as f64 / (interval_ms as f64 / 1_000.0);
            let hits: u64 = window.kinds.iter().map(|k| k.hits).sum();
            let hit_pct = if queries == 0 {
                0.0
            } else {
                100.0 * hits as f64 / queries as f64
            };
            println!(
                "{tick:>5} {qps:>8.0} {:>8} {:>8} {:>8} {hit_pct:>6.1}",
                pooled.quantile(0.50),
                pooled.quantile(0.95),
                pooled.quantile(0.99),
            );
        }
        stop.store(true, Ordering::Relaxed);
    });

    let snapshot = recorder.snapshot();
    println!(
        "watched {} queries over {} ticks ({} clients)",
        snapshot.total_queries(),
        ticks,
        clients
    );
    if let Some(out) = json_out {
        if let Err(e) = std::fs::write(&out, snapshot.to_json().to_string_pretty()) {
            return fail(&format!("writing {out}: {e}"));
        }
        println!("wrote {out}");
    }
    ExitCode::SUCCESS
}

/// A deterministic query mix (the bench's kind rotation over strided
/// rows), run until `stop`: every kind exercised, mostly hits.
fn drive_queries(reader: &KbReader, stop: &AtomicBool, client: u64) {
    let n = reader.kb().n_triples() as u64;
    let mut q = client.wrapping_mul(7919);
    while !stop.load(Ordering::Relaxed) {
        for _ in 0..256 {
            let row = (q.wrapping_mul(2_654_435_761) % n) as u32;
            let v = reader.view(row);
            match q % 4 {
                0 => {
                    let _ = reader.lookup(&v.triple);
                }
                1 => {
                    let _ = reader.belief(DataItem {
                        subject: v.triple.subject,
                        predicate: v.triple.predicate,
                    });
                }
                2 => {
                    let _ = reader.top_k(v.triple.predicate, 8);
                }
                _ => {
                    let _ = reader.drilldown(&v.triple);
                }
            }
            q = q.wrapping_add(1);
        }
    }
}
