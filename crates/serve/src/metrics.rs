//! Live serving metrics: per-thread sharded recorders on the query hot
//! path, merged point-in-time snapshots, and a Prometheus-style text
//! exposition.
//!
//! # Sharding
//!
//! A [`ServeMetrics`] preallocates [`SHARD_COUNT`] shards at
//! construction, each holding one latency and one result-size
//! [`LiveHistogram`] plus hit/miss counters per [`QueryKind`]. A thread
//! is pinned to a shard on its first recording (process-global
//! round-robin over a thread-local cell) and every recording after that
//! is a handful of relaxed atomic adds on its own shard — no locks, no
//! allocation, so the reader's pinned zero-allocation guarantee holds
//! with metrics enabled. Reading aggregates all shards through the
//! histogram merge algebra (bucket-wise addition), which is exactly the
//! shard-report reassembly rule the rest of the pipeline uses.
//!
//! # Cumulative snapshots and windows
//!
//! [`ServeMetrics::snapshot`] is cumulative since construction.
//! Windowed views (what `kf-serve watch` prints) come from
//! [`MetricsSnapshot::delta`] between two polls of the same recorder —
//! counts subtract saturating, distributions subtract bucket-wise — and
//! a [`SnapshotRing`] keeps the recent polls a watcher diffs.
//!
//! # Determinism
//!
//! Latency histograms are [`HistKind::Time`]: their observation counts
//! are input-determined but their bucket occupancy is wall-clock and
//! quarantines with span timings. Result-size histograms and the
//! hit/miss counters are [`HistKind::Value`]-style data quantities and
//! are reproducible run-to-run for a fixed query stream.

use kf_eval::Json;
use kf_telemetry::{bucket_bounds, HistKind, HistogramSnapshot, LiveHistogram};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Fixed number of recorder shards. Threads are assigned round-robin,
/// so up to this many recording threads never contend on a cache line;
/// beyond it they share shards (still correct, just contended).
pub const SHARD_COUNT: usize = 16;

/// The query surfaces of [`crate::KbReader`], one metrics family each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Exact-triple row lookup.
    Lookup,
    /// Belief distribution of one `(subject, predicate)` item.
    Belief,
    /// Ranked top-k of one predicate.
    TopK,
    /// Provenance drill-down of one triple.
    Drilldown,
}

impl QueryKind {
    /// Every kind, in stable exposition order.
    pub const ALL: [QueryKind; 4] = [
        QueryKind::Lookup,
        QueryKind::Belief,
        QueryKind::TopK,
        QueryKind::Drilldown,
    ];

    /// Stable lowercase label used in metric names and JSON.
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Lookup => "lookup",
            QueryKind::Belief => "belief",
            QueryKind::TopK => "top_k",
            QueryKind::Drilldown => "drilldown",
        }
    }

    fn index(self) -> usize {
        match self {
            QueryKind::Lookup => 0,
            QueryKind::Belief => 1,
            QueryKind::TopK => 2,
            QueryKind::Drilldown => 3,
        }
    }

    fn latency_metric(self) -> &'static str {
        match self {
            QueryKind::Lookup => "serve.latency_ns.lookup",
            QueryKind::Belief => "serve.latency_ns.belief",
            QueryKind::TopK => "serve.latency_ns.top_k",
            QueryKind::Drilldown => "serve.latency_ns.drilldown",
        }
    }

    fn size_metric(self) -> &'static str {
        match self {
            QueryKind::Lookup => "serve.result_size.lookup",
            QueryKind::Belief => "serve.result_size.belief",
            QueryKind::TopK => "serve.result_size.top_k",
            QueryKind::Drilldown => "serve.result_size.drilldown",
        }
    }
}

/// One query kind's recorders inside one shard.
struct KindShard {
    latency: LiveHistogram,
    result_size: LiveHistogram,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl KindShard {
    fn new() -> KindShard {
        KindShard {
            latency: LiveHistogram::new(),
            result_size: LiveHistogram::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

/// One recorder shard: four kind families plus an error counter.
struct Shard {
    kinds: [KindShard; 4],
    errors: AtomicU64,
}

// A thread keeps one shard index for its whole life, assigned on first
// recording from a process-global round-robin. The index is valid for
// every `ServeMetrics` instance (all use SHARD_COUNT shards), so the
// cell is shared across instances without ambiguity.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static THREAD_SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

fn thread_shard() -> usize {
    THREAD_SHARD.with(|cell| {
        let mut shard = cell.get();
        if shard == usize::MAX {
            shard = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARD_COUNT;
            cell.set(shard);
        }
        shard
    })
}

/// The live recorder: preallocated shards, lock-free recording,
/// merge-on-read snapshots. Wrap in an [`std::sync::Arc`] and hand a
/// clone to every [`crate::KbReader`] that should report into it.
pub struct ServeMetrics {
    shards: Vec<Shard>,
    started: Instant,
}

impl ServeMetrics {
    /// Allocate every shard up front (recording never allocates).
    pub fn new() -> ServeMetrics {
        ServeMetrics {
            shards: (0..SHARD_COUNT)
                .map(|_| Shard {
                    kinds: std::array::from_fn(|_| KindShard::new()),
                    errors: AtomicU64::new(0),
                })
                .collect(),
            started: Instant::now(),
        }
    }

    /// Record one finished query: latency always, result size only when
    /// the query hit (a miss has no result to size). Lock- and
    /// allocation-free.
    #[inline]
    pub fn record(&self, kind: QueryKind, latency_ns: u64, hit: bool, result_size: u64) {
        let shard = &self.shards[thread_shard()];
        let ks = &shard.kinds[kind.index()];
        ks.latency.record(latency_ns);
        if hit {
            ks.hits.fetch_add(1, Ordering::Relaxed);
            ks.result_size.record(result_size);
        } else {
            ks.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count one serving-layer error (bad command, I/O failure).
    #[inline]
    pub fn record_error(&self) {
        self.shards[thread_shard()]
            .errors
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Seconds since the recorder was constructed.
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Merge every shard into one cumulative snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut kinds: Vec<KindSnapshot> = QueryKind::ALL
            .iter()
            .map(|&kind| KindSnapshot {
                kind,
                hits: 0,
                misses: 0,
                latency: HistogramSnapshot::empty(kind.latency_metric(), HistKind::Time),
                result_size: HistogramSnapshot::empty(kind.size_metric(), HistKind::Value),
            })
            .collect();
        let mut errors = 0u64;
        for shard in &self.shards {
            errors += shard.errors.load(Ordering::Relaxed);
            for (out, ks) in kinds.iter_mut().zip(&shard.kinds) {
                out.hits += ks.hits.load(Ordering::Relaxed);
                out.misses += ks.misses.load(Ordering::Relaxed);
                let latency = ks.latency.snapshot(&out.latency.name, HistKind::Time);
                out.latency.merge(&latency);
                let sizes = ks
                    .result_size
                    .snapshot(&out.result_size.name, HistKind::Value);
                out.result_size.merge(&sizes);
            }
        }
        MetricsSnapshot { kinds, errors }
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

impl std::fmt::Debug for ServeMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeMetrics")
            .field("shards", &SHARD_COUNT)
            .finish()
    }
}

/// A timer for one in-flight query. Does not read the clock at all when
/// metrics are disabled, so the uninstrumented path pays one branch.
/// Finishing is explicit (not `Drop`) so the hot path records exactly
/// once, with the hit/size outcome in hand.
pub(crate) struct MetricTimer<'a> {
    armed: Option<(&'a ServeMetrics, Instant)>,
    kind: QueryKind,
}

impl<'a> MetricTimer<'a> {
    #[inline]
    pub(crate) fn start(metrics: Option<&'a ServeMetrics>, kind: QueryKind) -> MetricTimer<'a> {
        MetricTimer {
            armed: metrics.map(|m| (m, Instant::now())),
            kind,
        }
    }

    #[inline]
    pub(crate) fn finish(self, hit: bool, result_size: u64) {
        if let Some((metrics, start)) = self.armed {
            metrics.record(
                self.kind,
                start.elapsed().as_nanos() as u64,
                hit,
                result_size,
            );
        }
    }
}

/// One query kind's aggregated state inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct KindSnapshot {
    /// Which query surface this row describes.
    pub kind: QueryKind,
    /// Queries that found their item/predicate/triple.
    pub hits: u64,
    /// Queries that found nothing.
    pub misses: u64,
    /// Latency distribution (nanoseconds, [`HistKind::Time`]).
    pub latency: HistogramSnapshot,
    /// Result-size distribution over hits ([`HistKind::Value`]).
    pub result_size: HistogramSnapshot,
}

impl KindSnapshot {
    /// Total queries of this kind.
    pub fn queries(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A point-in-time aggregate of a [`ServeMetrics`]: every kind's
/// counters and distributions, merged across shards.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Per-kind rows, in [`QueryKind::ALL`] order.
    pub kinds: Vec<KindSnapshot>,
    /// Serving-layer errors.
    pub errors: u64,
}

impl MetricsSnapshot {
    /// Total queries across every kind.
    pub fn total_queries(&self) -> u64 {
        self.kinds.iter().map(KindSnapshot::queries).sum()
    }

    /// Latency distribution pooled across every kind (what a qps/pXX
    /// headline quotes).
    pub fn pooled_latency(&self) -> HistogramSnapshot {
        let mut pooled = HistogramSnapshot::empty("serve.latency_ns", HistKind::Time);
        for k in &self.kinds {
            pooled.merge(&k.latency);
        }
        pooled
    }

    /// The window `self - prev` for two cumulative snapshots of the same
    /// recorder: what happened between the two polls.
    pub fn delta(&self, prev: &MetricsSnapshot) -> MetricsSnapshot {
        let kinds = self
            .kinds
            .iter()
            .map(|k| {
                let before = prev.kinds.iter().find(|p| p.kind == k.kind);
                match before {
                    Some(p) => KindSnapshot {
                        kind: k.kind,
                        hits: k.hits.saturating_sub(p.hits),
                        misses: k.misses.saturating_sub(p.misses),
                        latency: k.latency.delta(&p.latency),
                        result_size: k.result_size.delta(&p.result_size),
                    },
                    None => k.clone(),
                }
            })
            .collect();
        MetricsSnapshot {
            kinds,
            errors: self.errors.saturating_sub(prev.errors),
        }
    }

    /// Render in Prometheus text exposition style: `counter` families
    /// for query outcomes and errors, `histogram` families with
    /// cumulative `le` buckets (only non-empty layout buckets are
    /// listed; `+Inf`, `_sum` and `_count` always close a family).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE kf_serve_queries_total counter\n");
        for k in &self.kinds {
            let name = k.kind.name();
            let _ = writeln!(
                out,
                "kf_serve_queries_total{{kind=\"{name}\",outcome=\"hit\"}} {}",
                k.hits
            );
            let _ = writeln!(
                out,
                "kf_serve_queries_total{{kind=\"{name}\",outcome=\"miss\"}} {}",
                k.misses
            );
        }
        out.push_str("# TYPE kf_serve_errors_total counter\n");
        let _ = writeln!(out, "kf_serve_errors_total {}", self.errors);
        for (family, unit, pick) in [
            (
                "kf_serve_latency",
                "nanoseconds",
                (|k: &KindSnapshot| &k.latency) as fn(&KindSnapshot) -> &HistogramSnapshot,
            ),
            ("kf_serve_result_size", "rows", |k: &KindSnapshot| {
                &k.result_size
            }),
        ] {
            let _ = writeln!(out, "# TYPE {family} histogram");
            let _ = writeln!(out, "# UNIT {family} {unit}");
            for k in &self.kinds {
                let name = k.kind.name();
                let h = pick(k);
                let mut cumulative = 0u64;
                for b in &h.buckets {
                    cumulative += b.count;
                    let le = bucket_bounds(b.index as usize).1;
                    let _ = writeln!(
                        out,
                        "{family}_bucket{{kind=\"{name}\",le=\"{le}\"}} {cumulative}"
                    );
                }
                let _ = writeln!(
                    out,
                    "{family}_bucket{{kind=\"{name}\",le=\"+Inf\"}} {cumulative}"
                );
                let _ = writeln!(out, "{family}_sum{{kind=\"{name}\"}} {}", h.sum);
                let _ = writeln!(out, "{family}_count{{kind=\"{name}\"}} {}", h.count);
            }
        }
        out
    }

    /// The snapshot as a JSON document (quantiles read from bucket upper
    /// bounds, so they carry the layout's `2^-5` relative error).
    pub fn to_json(&self) -> Json {
        fn hist_json(h: &HistogramSnapshot) -> Json {
            Json::obj([
                ("count", Json::from(h.count)),
                ("sum", Json::from(h.sum)),
                ("p50", Json::from(h.quantile(0.50))),
                ("p95", Json::from(h.quantile(0.95))),
                ("p99", Json::from(h.quantile(0.99))),
            ])
        }
        Json::obj([
            ("errors", Json::from(self.errors)),
            ("total_queries", Json::from(self.total_queries())),
            (
                "kinds",
                Json::arr(self.kinds.iter().map(|k| {
                    Json::obj([
                        ("kind", Json::from(k.kind.name())),
                        ("hits", Json::from(k.hits)),
                        ("misses", Json::from(k.misses)),
                        ("latency_ns", hist_json(&k.latency)),
                        ("result_size", hist_json(&k.result_size)),
                    ])
                })),
            ),
        ])
    }
}

/// A bounded ring of recent cumulative snapshots — what a watcher polls
/// to compute windowed qps/quantiles without holding the recorder.
#[derive(Debug)]
pub struct SnapshotRing {
    entries: Mutex<VecDeque<MetricsSnapshot>>,
    capacity: usize,
}

impl SnapshotRing {
    /// An empty ring holding at most `capacity` snapshots (≥ 2, so a
    /// window is always computable once two polls landed).
    pub fn new(capacity: usize) -> SnapshotRing {
        SnapshotRing {
            entries: Mutex::new(VecDeque::new()),
            capacity: capacity.max(2),
        }
    }

    /// Append the newest cumulative snapshot, evicting the oldest past
    /// capacity.
    pub fn push(&self, snapshot: MetricsSnapshot) {
        let mut entries = self.entries.lock().expect("ring poisoned");
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(snapshot);
    }

    /// Snapshots currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("ring poisoned").len()
    }

    /// True before the first push.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The most recent cumulative snapshot.
    pub fn latest(&self) -> Option<MetricsSnapshot> {
        self.entries.lock().expect("ring poisoned").back().cloned()
    }

    /// The window between the two most recent polls (`None` until two
    /// landed).
    pub fn last_window(&self) -> Option<MetricsSnapshot> {
        let entries = self.entries.lock().expect("ring poisoned");
        let n = entries.len();
        if n < 2 {
            return None;
        }
        Some(entries[n - 1].delta(&entries[n - 2]))
    }
}
