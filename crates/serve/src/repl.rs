//! A tiny line-oriented query language over a [`KbReader`] — the
//! engine behind the `kf-serve query` REPL, kept as a library function
//! so tests can drive it without a terminal.
//!
//! Commands (ids are the corpus's integer ids; object values are typed
//! tokens — `e12` entity, `s7` interned string, `n3.5` numeric):
//!
//! ```text
//! stats                       KB summary (method, sizes, quality)
//! item <subj> <pred>          belief distribution of one data item
//! top <pred> [k]              top-k triples by calibrated confidence
//! triple <subj> <pred> <obj>  one served row
//! prov <subj> <pred> <obj>    provenance drill-down for a row
//! counters                    serve.* counters of the installed trace
//! metrics                     exposition of the attached live recorder
//! help                        this text
//! quit                        leave the REPL
//! ```

use crate::kb::FusedKb;
use crate::reader::{KbReader, TripleView};
use kf_types::{DataItem, EntityId, Label, Numeric, PredicateId, StrId, Triple, Value};
use std::fmt::Write as _;
use std::io::{BufRead, Write};

/// Result of evaluating one REPL line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplOutput {
    /// Text to print (possibly multi-line, no trailing newline).
    Text(String),
    /// Blank input: print nothing.
    Empty,
    /// `quit` / `exit`.
    Quit,
}

/// Render a value as a typed token (`e12`, `s7`, `n3.5`).
pub fn fmt_value(v: Value) -> String {
    match v {
        Value::Entity(e) => format!("e{}", e.0),
        Value::Str(s) => format!("s{}", s.0),
        Value::Num(n) => format!("n{}", n.to_f64()),
    }
}

/// Parse a typed value token (inverse of [`fmt_value`]).
pub fn parse_value(tok: &str) -> Result<Value, String> {
    let err = || format!("bad value `{tok}` (expected e<id>, s<id> or n<number>)");
    let (kind, rest) = tok.split_at(if tok.is_empty() { 0 } else { 1 });
    match kind {
        "e" => rest
            .parse()
            .map(|id| Value::Entity(EntityId(id)))
            .map_err(|_| err()),
        "s" => rest
            .parse()
            .map(|id| Value::Str(StrId(id)))
            .map_err(|_| err()),
        "n" => rest
            .parse()
            .map(|x| Value::Num(Numeric::from_f64(x)))
            .map_err(|_| err()),
        _ => Err(err()),
    }
}

/// Parse a u32 id, accepting the prefixed form the REPL itself prints
/// (`e93` for a subject, `p4` for a predicate) so output lines can be
/// pasted straight back in.
fn parse_id(tok: &str, what: &str, prefix: char) -> Result<u32, String> {
    tok.strip_prefix(prefix)
        .unwrap_or(tok)
        .parse()
        .map_err(|_| format!("bad {what} id `{tok}`"))
}

fn label_str(l: Label) -> &'static str {
    match l {
        Label::True => "true",
        Label::False => "false",
        Label::Unknown => "unknown",
    }
}

fn fmt_view(v: &TripleView) -> String {
    format!(
        "(e{} p{} {})  cal={:.4} raw={:.4} label={} pages={} extractors={}{}",
        v.triple.subject.0,
        v.triple.predicate.0,
        fmt_value(v.triple.object),
        v.calibrated,
        v.raw,
        label_str(v.label),
        v.n_pages,
        v.n_extractors,
        if v.fallback { " fallback" } else { "" },
    )
}

fn stats_text(kb: &FusedKb) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "method      {} ({})", kb.method, kb.method_label);
    let _ = writeln!(
        s,
        "corpus      scale={} seed={} records={} unique_triples={}",
        kb.corpus.scale, kb.corpus.seed, kb.corpus.n_records, kb.corpus.n_unique_triples
    );
    let _ = writeln!(
        s,
        "served      triples={} items={} predicates={} provenances={} dropped={}",
        kb.n_triples(),
        kb.n_items(),
        kb.n_predicates(),
        kb.n_provenances(),
        kb.n_dropped
    );
    let _ = write!(
        s,
        "quality     wdev={:.5} ece={:.5} auc_pr={:.5}",
        kb.wdev, kb.ece, kb.auc_pr
    );
    s
}

fn counters_text() -> String {
    let Some(trace) = kf_telemetry::current() else {
        return "no trace installed".to_string();
    };
    let report = trace.snapshot();
    let mut rows: Vec<String> = report
        .counters
        .iter()
        .filter(|c| c.name.starts_with("serve."))
        .map(|c| format!("{:<24} {}", c.name, c.value))
        .collect();
    rows.sort();
    if rows.is_empty() {
        "no serve.* counters yet".to_string()
    } else {
        rows.join("\n")
    }
}

fn metrics_text(reader: &KbReader) -> String {
    match reader.metrics() {
        Some(metrics) => {
            let text = metrics.snapshot().render_text();
            text.trim_end().to_string()
        }
        None => "no metrics recorder attached".to_string(),
    }
}

const HELP: &str = "commands:
  stats                       KB summary
  item <subj> <pred>          belief distribution of one data item
  top <pred> [k]              top-k triples by calibrated confidence (default k=10)
  triple <subj> <pred> <obj>  one served row
  prov <subj> <pred> <obj>    provenance drill-down
  counters                    serve.* counters of the installed trace
  metrics                     exposition of the attached live recorder
  help                        this text
  quit                        leave the REPL
values: e<id> entity, s<id> interned string, n<number> numeric";

/// Evaluate one REPL line against a reader.
pub fn eval_command(reader: &KbReader, line: &str) -> Result<ReplOutput, String> {
    let mut words = line.split_whitespace();
    let Some(cmd) = words.next() else {
        return Ok(ReplOutput::Empty);
    };
    let args: Vec<&str> = words.collect();
    let arity = |n: usize, usage: &str| -> Result<(), String> {
        if args.len() == n {
            Ok(())
        } else {
            Err(format!("usage: {usage}"))
        }
    };
    match cmd {
        "quit" | "exit" => Ok(ReplOutput::Quit),
        "help" => Ok(ReplOutput::Text(HELP.to_string())),
        "stats" => Ok(ReplOutput::Text(stats_text(reader.kb()))),
        "counters" => Ok(ReplOutput::Text(counters_text())),
        "metrics" => Ok(ReplOutput::Text(metrics_text(reader))),
        "item" => {
            arity(2, "item <subj> <pred>")?;
            let item = DataItem {
                subject: EntityId(parse_id(args[0], "subject", 'e')?),
                predicate: PredicateId(parse_id(args[1], "predicate", 'p')?),
            };
            match reader.belief(item) {
                None => Ok(ReplOutput::Text(format!(
                    "no belief for (e{} p{})",
                    item.subject.0, item.predicate.0
                ))),
                Some(belief) => {
                    let rows: Vec<String> = belief.iter().map(|v| fmt_view(&v)).collect();
                    Ok(ReplOutput::Text(rows.join("\n")))
                }
            }
        }
        "top" => {
            if args.is_empty() || args.len() > 2 {
                return Err("usage: top <pred> [k]".to_string());
            }
            let pred = PredicateId(parse_id(args[0], "predicate", 'p')?);
            let k = match args.get(1) {
                Some(tok) => tok.parse().map_err(|_| format!("bad k `{tok}`"))?,
                None => 10usize,
            };
            match reader.top_k(pred, k) {
                None => Ok(ReplOutput::Text(format!("no triples for p{}", pred.0))),
                Some(top) => {
                    let rows: Vec<String> = top
                        .iter()
                        .enumerate()
                        .map(|(i, v)| format!("{:>3}. {}", i + 1, fmt_view(&v)))
                        .collect();
                    Ok(ReplOutput::Text(rows.join("\n")))
                }
            }
        }
        "triple" | "prov" => {
            arity(3, &format!("{cmd} <subj> <pred> <obj>"))?;
            let triple = Triple {
                subject: EntityId(parse_id(args[0], "subject", 'e')?),
                predicate: PredicateId(parse_id(args[1], "predicate", 'p')?),
                object: parse_value(args[2])?,
            };
            if cmd == "triple" {
                return Ok(ReplOutput::Text(match reader.lookup(&triple) {
                    Some(v) => fmt_view(&v),
                    None => "not served".to_string(),
                }));
            }
            match reader.drilldown(&triple) {
                None => Ok(ReplOutput::Text("not served".to_string())),
                Some(d) => {
                    let mut s = fmt_view(&d.view());
                    match d.mean_accuracy() {
                        Some(mean) => {
                            let _ = write!(
                                s,
                                "\nsupport: {} provenances, mean accuracy {:.4}",
                                d.len(),
                                mean
                            );
                        }
                        None => {
                            let _ = write!(s, "\nsupport: no attribution recorded");
                        }
                    }
                    for p in d.iter() {
                        let _ = write!(s, "\n  prov {}", p.id);
                        if let Some(ext) = p.key.extractor {
                            let name = reader.extractor_name(ext.0 as u32).unwrap_or("?");
                            let _ = write!(s, " ext=e{}({name})", ext.0);
                        }
                        if let Some(site) = p.key.site {
                            let _ = write!(s, " site={}", site.0);
                        }
                        if let Some(page) = p.key.page {
                            let _ = write!(s, " page={}", page.0);
                        }
                        if let Some(pred) = p.key.predicate {
                            let _ = write!(s, " pred={}", pred.0);
                        }
                        // Pattern-free extractions carry the NONE sentinel,
                        // not an absent field — render them as such.
                        if let Some(pat) = p.key.pattern.filter(|p| !p.is_none()) {
                            let _ = write!(s, " pattern={}", pat.0);
                        }
                        let _ = write!(
                            s,
                            " accuracy={:.4}{}",
                            p.accuracy,
                            if p.evaluated { "" } else { " (prior)" }
                        );
                    }
                    Ok(ReplOutput::Text(s))
                }
            }
        }
        other => Err(format!("unknown command `{other}` (try `help`)")),
    }
}

/// Drive the REPL over arbitrary input/output streams until EOF or
/// `quit`. Prompts with `kf> ` when `prompt` is set (interactive use).
pub fn run_repl(
    reader: &KbReader,
    input: impl BufRead,
    mut out: impl Write,
    prompt: bool,
) -> std::io::Result<()> {
    if prompt {
        write!(out, "kf> ")?;
        out.flush()?;
    }
    for line in input.lines() {
        let line = line?;
        match eval_command(reader, &line) {
            Ok(ReplOutput::Quit) => break,
            Ok(ReplOutput::Empty) => {}
            Ok(ReplOutput::Text(text)) => writeln!(out, "{text}")?,
            Err(e) => writeln!(out, "error: {e}")?,
        }
        if prompt {
            write!(out, "kf> ")?;
            out.flush()?;
        }
    }
    Ok(())
}
