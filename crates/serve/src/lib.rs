//! # kf-serve — an online query engine over fused checkpoints
//!
//! The fusion pipeline ends in batch artifacts: an
//! [`EvalReport`](kf_eval::EvalReport) checkpoint and a corpus snapshot. This crate turns them into
//! something a *consumer* can query at interactive latency, the way the
//! paper frames its output — calibrated triple probabilities plus the
//! provenance evidence behind each belief (§3.1.1, §5.2):
//!
//! * [`FusedKb`] — the serving artifact: one method's scored triples
//!   compiled into read-only columnar indexes (item → belief
//!   distribution, predicate → confidence ranking, triple → provenance
//!   drill-down), persisted through the `KFCP` checkpoint container as
//!   its own [`ArtifactKind`](kf_types::ArtifactKind::FusedKb).
//! * [`KbReader`] — the `Sync`, zero-copy query surface: one loaded
//!   arena shared across any number of threads, with an allocation-free
//!   hot read path.
//! * [`ServeMetrics`] — the live metrics layer: per-thread sharded
//!   latency/result-size histograms and outcome counters recorded on
//!   the hot path (still allocation-free), aggregated into
//!   [`MetricsSnapshot`]s with a Prometheus-style text exposition
//!   (`kf-serve stats --metrics`, `kf-serve watch`).
//! * [`repl`] — the line-oriented query language behind the `kf-serve`
//!   CLI, exposed as a library so tests can drive it.
//!
//! Build a KB either from artifacts on disk (`kf-serve build`, or
//! [`FusedKb::compile`]) or directly at the end of a `repro` run
//! (`--build-kb`, via [`FusedKb::compile_from_parts`]).
//!
//! ```
//! use kf_serve::{FusedKb, KbBuildOptions, KbReader};
//! use kf_eval::AblationRunner;
//! use kf_synth::{Corpus, SynthConfig};
//! use kf_types::DataItem;
//!
//! let corpus = Corpus::generate(&SynthConfig::tiny(), 42);
//! let report = AblationRunner::default().run(&corpus);
//! let kb = FusedKb::compile(&report, &corpus, &KbBuildOptions::default()).unwrap();
//! let reader = KbReader::new(kb);
//!
//! // Every served triple belongs to some item's belief distribution.
//! let view = reader.view(0);
//! let belief = reader
//!     .belief(DataItem {
//!         subject: view.triple.subject,
//!         predicate: view.triple.predicate,
//!     })
//!     .expect("served triple has a belief");
//! assert!(belief.iter().any(|v| v.triple == view.triple));
//! ```

pub mod kb;
pub mod metrics;
pub mod reader;
pub mod repl;

pub use kb::{calibrate, BuildError, FusedKb, KbBuildOptions};
pub use metrics::{
    KindSnapshot, MetricsSnapshot, QueryKind, ServeMetrics, SnapshotRing, SHARD_COUNT,
};
pub use reader::{Belief, Drilldown, KbReader, ProvSupport, TopK, TripleView};
pub use repl::{eval_command, run_repl, ReplOutput};

// Re-exported for the doc example above.
#[doc(hidden)]
pub use kf_eval;
#[doc(hidden)]
pub use kf_synth;
#[doc(hidden)]
pub use kf_types;
