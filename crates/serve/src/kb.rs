//! The `FusedKb` artifact: a fused run compiled into read-only columnar
//! indexes.
//!
//! A fusion run produces a [`FusionOutput`] (scored triples) and an
//! [`EvalReport`] (calibration curves, PR curves). Neither is shaped for
//! *queries*: answering "what does the KB believe about `(subject,
//! predicate)`?" or "the 10 most confident triples for predicate P" from
//! the batch artifacts means a full scan. [`FusedKb`] is the serving
//! shape: one flat arena of columns sorted in canonical triple order,
//! plus three indexes built at compile time —
//!
//! * **item index** — contiguous runs of `(subject, predicate)` over the
//!   triple columns, binary-searchable, so a belief-distribution lookup
//!   is two `partition_point`s and a slice;
//! * **predicate index** — a per-predicate permutation of triple rows
//!   ordered by calibrated confidence (descending, ties broken by
//!   canonical triple order), so top-k is a slice of precomputed ranks;
//! * **provenance registry** — the [`ProvenanceAttribution`] columns
//!   (packed keys, final learned accuracies, evaluated flags) plus
//!   per-triple provenance id lists, so drill-down walks an offset range.
//!
//! Confidences are stored twice: the fuser's raw probability and the
//! *calibrated* probability read off the report's equal-width calibration
//! curve (the bin's observed accuracy where the bin has mass — §5.2's
//! "among triples predicted with probability ~p, a fraction ~p is true"
//! made actionable per triple).
//!
//! Everything is columnar `Vec`s of plain data: loading a KB is one
//! checkpoint decode into one arena that [`KbReader`](crate::KbReader)s
//! then share across threads without copying.

use kf_core::{Fuser, FusionOutput, ProvenanceAttribution};
use kf_eval::{AblationRunner, CalibrationCurve, CorpusSummary, EvalReport, MethodEval, Preset};
use kf_synth::Corpus;
use kf_telemetry::{add, span};
use kf_types::checkpoint::{self, ArtifactKind, CheckpointError};
use kf_types::codec::{decode_column, encode_column};
use kf_types::{EntityId, GoldStandard, KvCodec, Label, Numeric, StrId, Triple, Value};
use std::fmt;
use std::path::Path;

/// Options for compiling a [`FusedKb`] from a report + corpus.
#[derive(Debug, Clone)]
pub struct KbBuildOptions {
    /// Preset whose scores the KB serves (must appear in the report).
    pub method: String,
    /// Worker override for the compile-time fusion re-run (`None` keeps
    /// the preset's default).
    pub workers: Option<usize>,
}

impl Default for KbBuildOptions {
    fn default() -> Self {
        KbBuildOptions {
            method: "popaccu_plus".to_string(),
            workers: None,
        }
    }
}

/// Why a KB compile was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The requested method is not a known preset.
    UnknownMethod(String),
    /// The report does not contain an evaluation for the method.
    MethodNotInReport(String),
    /// The report was produced from a different corpus than the one
    /// supplied (seed or record count disagree).
    CorpusMismatch {
        /// Seed recorded in the report header.
        report_seed: u64,
        /// Seed of the supplied corpus snapshot.
        corpus_seed: u64,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownMethod(m) => write!(f, "unknown fusion method `{m}`"),
            BuildError::MethodNotInReport(m) => {
                write!(f, "report has no evaluation for method `{m}`")
            }
            BuildError::CorpusMismatch {
                report_seed,
                corpus_seed,
            } => write!(
                f,
                "report was built from corpus seed {report_seed}, \
                 but the supplied corpus has seed {corpus_seed}"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// A fused knowledge base: read-optimized columnar indexes over one
/// method's scored triples. See the [module docs](self) for the layout.
///
/// All row-aligned columns are ordered by the canonical triple order —
/// the derived [`Triple`] `Ord` (subject, then predicate, then object) —
/// which is also the deterministic tie-break everywhere a confidence
/// comparison ties.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedKb {
    /// Corpus the KB was fused from (scale, seed, sizes).
    pub corpus: CorpusSummary,
    /// Fusion preset name (e.g. `popaccu_plus`).
    pub method: String,
    /// Human-readable method label (e.g. `POPACCU+`).
    pub method_label: String,
    /// Equal-width calibration WDEV of the serving method.
    pub wdev: f64,
    /// Equal-width calibration ECE of the serving method.
    pub ece: f64,
    /// AUC-PR of the serving method.
    pub auc_pr: f64,
    /// Scored triples excluded because the fuser predicted no
    /// probability for them (§4.3.2's "cannot predict" residue).
    pub n_dropped: u64,

    // --- triple columns, canonical triple order ---------------------
    pub(crate) subjects: Vec<u32>,
    pub(crate) predicates: Vec<u32>,
    pub(crate) obj_tags: Vec<u8>,
    pub(crate) obj_payloads: Vec<u64>,
    pub(crate) raw: Vec<f64>,
    pub(crate) calibrated: Vec<f64>,
    pub(crate) labels: Vec<u8>,
    pub(crate) pages: Vec<u32>,
    pub(crate) extractor_counts: Vec<u16>,
    pub(crate) fallback: Vec<u8>,

    // --- item index: runs of (subject, predicate) -------------------
    pub(crate) item_subjects: Vec<u32>,
    pub(crate) item_predicates: Vec<u32>,
    /// `item_offsets[i]..item_offsets[i + 1]` is item `i`'s row range.
    pub(crate) item_offsets: Vec<u32>,

    // --- predicate index: per-predicate confidence ranking ----------
    pub(crate) pred_ids: Vec<u32>,
    /// `pred_offsets[i]..pred_offsets[i + 1]` indexes `rank`.
    pub(crate) pred_offsets: Vec<u32>,
    /// Triple rows, grouped by predicate, calibrated-descending
    /// (ties: canonical triple order).
    pub(crate) rank: Vec<u32>,

    // --- provenance registry + per-triple drill-down lists ----------
    /// [`ProvenanceKey::pack`](kf_types::ProvenanceKey::pack)ed keys,
    /// indexed by dense provenance id.
    pub(crate) prov_keys: Vec<u128>,
    pub(crate) prov_accuracy: Vec<f64>,
    pub(crate) prov_evaluated: Vec<u8>,
    /// `prov_offsets[row]..prov_offsets[row + 1]` indexes `prov_ids`.
    pub(crate) prov_offsets: Vec<u32>,
    pub(crate) prov_ids: Vec<u32>,

    /// Extractor display names, indexed by extractor id.
    pub(crate) extractor_names: Vec<String>,
}

/// `Label` → stored tag. (False = 0, True = 1, Unknown = 2.)
pub(crate) fn label_tag(l: Label) -> u8 {
    match l {
        Label::False => 0,
        Label::True => 1,
        Label::Unknown => 2,
    }
}

/// Stored tag → `Label`.
pub(crate) fn label_from_tag(tag: u8) -> Option<Label> {
    match tag {
        0 => Some(Label::False),
        1 => Some(Label::True),
        2 => Some(Label::Unknown),
        _ => None,
    }
}

/// `Value` → (variant tag, 8-byte payload), losslessly.
pub(crate) fn obj_columns(v: Value) -> (u8, u64) {
    match v {
        Value::Entity(e) => (0, e.0 as u64),
        Value::Str(s) => (1, s.0 as u64),
        Value::Num(n) => (2, n.0 as u64),
    }
}

/// Inverse of [`obj_columns`].
pub(crate) fn obj_value(tag: u8, payload: u64) -> Option<Value> {
    match tag {
        0 => Some(Value::Entity(EntityId(u32::try_from(payload).ok()?))),
        1 => Some(Value::Str(StrId(u32::try_from(payload).ok()?))),
        2 => Some(Value::Num(Numeric(payload as i64))),
        _ => None,
    }
}

/// Read a raw probability through an equal-width calibration curve: the
/// containing bin's observed accuracy where the bin has mass, the raw
/// probability otherwise.
///
/// Bin assignment mirrors `kf_eval`'s curve construction exactly
/// (`(p·n) as usize`, clamped), so a probability maps to the same bin it
/// was counted into when the report was built.
pub fn calibrate(curve: &CalibrationCurve, p: f64) -> f64 {
    let n = curve.bins.len();
    let p = p.clamp(0.0, 1.0);
    if n == 0 {
        return p;
    }
    let bin = &curve.bins[((p * n as f64) as usize).min(n - 1)];
    if bin.count > 0 && bin.observed_accuracy.is_finite() {
        bin.observed_accuracy
    } else {
        p
    }
}

impl FusedKb {
    /// Compile a KB from an evaluation report plus the corpus snapshot it
    /// was produced from.
    ///
    /// The report carries aggregate curves, not per-triple scores, so the
    /// compile re-runs the preset's fusion (bit-deterministic — identical
    /// to the run the report measured) and reads calibrated confidences
    /// off the report's equal-width curve. Refuses a report/corpus pair
    /// that disagrees on the generating seed.
    pub fn compile(
        report: &EvalReport,
        corpus: &Corpus,
        opts: &KbBuildOptions,
    ) -> Result<FusedKb, BuildError> {
        let _span = span("serve.compile");
        let preset = Preset::by_name(&opts.method)
            .ok_or_else(|| BuildError::UnknownMethod(opts.method.clone()))?;
        let method = report
            .method(preset.name())
            .ok_or_else(|| BuildError::MethodNotInReport(opts.method.clone()))?;
        if report.corpus.seed != corpus.seed {
            return Err(BuildError::CorpusMismatch {
                report_seed: report.corpus.seed,
                corpus_seed: corpus.seed,
            });
        }
        let mut config = preset.config();
        if let Some(w) = opts.workers {
            config = config.with_workers(w);
        }
        let gold = preset.needs_gold().then_some(&corpus.gold);
        let (output, attribution) = {
            let _span = span("serve.compile.fuse");
            Fuser::new(config).run_with_attribution(&corpus.batch, gold)
        };
        let names = corpus.extractors.iter().map(|e| e.name.clone()).collect();
        Ok(Self::compile_from_parts(
            report.corpus.clone(),
            method,
            &output,
            &attribution,
            &corpus.gold,
            names,
        ))
    }

    /// Compile a KB straight from a corpus snapshot, when no evaluation
    /// report exists yet: runs the preset's fusion and evaluates it
    /// in-process (the `kf-serve build` path). `scale` is the label
    /// recorded in the KB header.
    ///
    /// No wall-clock measurement enters the artifact, so two builds from
    /// the same snapshot are byte-identical.
    pub fn build_from_corpus(
        corpus: &Corpus,
        opts: &KbBuildOptions,
        scale: &str,
    ) -> Result<FusedKb, BuildError> {
        let _span = span("serve.compile");
        let preset = Preset::by_name(&opts.method)
            .ok_or_else(|| BuildError::UnknownMethod(opts.method.clone()))?;
        let mut config = preset.config();
        if let Some(w) = opts.workers {
            config = config.with_workers(w);
        }
        let gold = preset.needs_gold().then_some(&corpus.gold);
        let (output, attribution) = {
            let _span = span("serve.compile.fuse");
            Fuser::new(config).run_with_attribution(&corpus.batch, gold)
        };
        let runner = AblationRunner {
            workers: opts.workers,
            scale: scale.to_string(),
            ..AblationRunner::default()
        };
        let method = runner.evaluate(preset, &output, &corpus.gold, 0.0);
        let names = corpus.extractors.iter().map(|e| e.name.clone()).collect();
        Ok(Self::compile_from_parts(
            runner.corpus_summary(corpus),
            &method,
            &output,
            &attribution,
            &corpus.gold,
            names,
        ))
    }

    /// Compile a KB from an already-fused output and its evaluation —
    /// the zero-extra-fusion path `repro` uses when it just produced
    /// both.
    pub fn compile_from_parts(
        corpus: CorpusSummary,
        method: &MethodEval,
        output: &FusionOutput,
        attribution: &ProvenanceAttribution,
        gold: &GoldStandard,
        extractor_names: Vec<String>,
    ) -> FusedKb {
        let _span = span("serve.compile.index");
        let scored = &output.scored;

        // Keep predicted triples only, in canonical triple order.
        let mut kept: Vec<u32> = (0..scored.len() as u32)
            .filter(|&i| scored[i as usize].probability.is_some())
            .collect();
        kept.sort_unstable_by(|&a, &b| scored[a as usize].triple.cmp(&scored[b as usize].triple));
        let n = kept.len();
        let n_dropped = (scored.len() - n) as u64;
        add("serve.build.triples", n as u64);
        add("serve.build.dropped", n_dropped);

        let mut kb = FusedKb {
            corpus,
            method: method.name.clone(),
            method_label: method.label.clone(),
            wdev: method.wdev(),
            ece: method.ece(),
            auc_pr: method.auc_pr(),
            n_dropped,
            subjects: Vec::with_capacity(n),
            predicates: Vec::with_capacity(n),
            obj_tags: Vec::with_capacity(n),
            obj_payloads: Vec::with_capacity(n),
            raw: Vec::with_capacity(n),
            calibrated: Vec::with_capacity(n),
            labels: Vec::with_capacity(n),
            pages: Vec::with_capacity(n),
            extractor_counts: Vec::with_capacity(n),
            fallback: Vec::with_capacity(n),
            item_subjects: Vec::new(),
            item_predicates: Vec::new(),
            item_offsets: vec![0],
            pred_ids: Vec::new(),
            pred_offsets: Vec::new(),
            rank: Vec::new(),
            prov_keys: attribution.keys.iter().map(|k| k.pack()).collect(),
            prov_accuracy: attribution.accuracy.clone(),
            prov_evaluated: attribution.evaluated.iter().map(|&e| e as u8).collect(),
            prov_offsets: Vec::with_capacity(n + 1),
            prov_ids: Vec::new(),
            extractor_names,
        };

        let attributed = !scored.is_empty() && attribution.len() == scored.len();
        kb.prov_offsets.push(0);
        for (row, &orig) in kept.iter().enumerate() {
            let st = &scored[orig as usize];
            let t = st.triple;
            let (tag, payload) = obj_columns(t.object);
            kb.subjects.push(t.subject.0);
            kb.predicates.push(t.predicate.0);
            kb.obj_tags.push(tag);
            kb.obj_payloads.push(payload);
            let p = st.probability.expect("kept rows are predicted");
            kb.raw.push(p);
            kb.calibrated.push(calibrate(&method.calibration_width, p));
            kb.labels.push(label_tag(gold.label(&t)));
            kb.pages.push(st.n_pages);
            kb.extractor_counts.push(st.n_extractors);
            kb.fallback.push(st.fallback as u8);

            // Item index: a new run starts whenever (subject, predicate)
            // changes; canonical order makes runs contiguous.
            let new_item = row == 0
                || (t.subject.0, t.predicate.0) != (kb.subjects[row - 1], kb.predicates[row - 1]);
            if new_item {
                if row > 0 {
                    kb.item_offsets.push(row as u32);
                }
                kb.item_subjects.push(t.subject.0);
                kb.item_predicates.push(t.predicate.0);
            }

            if attributed {
                kb.prov_ids
                    .extend_from_slice(attribution.provs(orig as usize));
            }
            kb.prov_offsets.push(kb.prov_ids.len() as u32);
        }
        if n > 0 {
            kb.item_offsets.push(n as u32);
        }
        add("serve.build.provs", kb.prov_ids.len() as u64);

        // Predicate index: group rows by predicate, order each group by
        // calibrated confidence descending; ties fall back to the row
        // index, i.e. canonical triple order — the determinism-ledger
        // tie-break rule.
        let mut by_pred: Vec<(u32, u32)> = (0..n as u32)
            .map(|row| (kb.predicates[row as usize], row))
            .collect();
        by_pred.sort_unstable_by(|&(pa, ra), &(pb, rb)| {
            pa.cmp(&pb)
                .then_with(|| kb.calibrated[rb as usize].total_cmp(&kb.calibrated[ra as usize]))
                .then_with(|| ra.cmp(&rb))
        });
        for &(pred, row) in &by_pred {
            if kb.pred_ids.last() != Some(&pred) {
                kb.pred_ids.push(pred);
                kb.pred_offsets.push(kb.rank.len() as u32);
            }
            kb.rank.push(row);
        }
        kb.pred_offsets.push(kb.rank.len() as u32);
        kb
    }

    /// Number of served triples.
    pub fn n_triples(&self) -> usize {
        self.subjects.len()
    }

    /// Number of distinct `(subject, predicate)` items.
    pub fn n_items(&self) -> usize {
        self.item_subjects.len()
    }

    /// Number of distinct predicates.
    pub fn n_predicates(&self) -> usize {
        self.pred_ids.len()
    }

    /// Number of provenances in the registry.
    pub fn n_provenances(&self) -> usize {
        self.prov_keys.len()
    }

    /// Reconstruct the triple stored at `row`.
    pub(crate) fn triple_at(&self, row: usize) -> Triple {
        Triple {
            subject: EntityId(self.subjects[row]),
            predicate: kf_types::PredicateId(self.predicates[row]),
            object: obj_value(self.obj_tags[row], self.obj_payloads[row])
                .expect("validated at decode"),
        }
    }

    /// Atomically write the KB checkpoint at `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let _span = span("serve.kb_save");
        checkpoint::save(path.as_ref(), ArtifactKind::FusedKb, self)
    }

    /// Load a KB checkpoint from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<FusedKb, CheckpointError> {
        let _span = span("serve.kb_load");
        let kb: FusedKb = checkpoint::load(path.as_ref(), ArtifactKind::FusedKb)?;
        add("serve.load.triples", kb.n_triples() as u64);
        Ok(kb)
    }

    /// Structural invariants the binary-search read path relies on.
    /// Checked after every decode so a corrupted-but-parseable payload is
    /// rejected as `Corrupt` instead of serving garbage.
    fn validate(&self) -> bool {
        let n = self.subjects.len();
        let columns_aligned = self.predicates.len() == n
            && self.obj_tags.len() == n
            && self.obj_payloads.len() == n
            && self.raw.len() == n
            && self.calibrated.len() == n
            && self.labels.len() == n
            && self.pages.len() == n
            && self.extractor_counts.len() == n
            && self.fallback.len() == n
            && self.prov_offsets.len() == n + 1;
        if !columns_aligned {
            return false;
        }
        let values_ok = (0..n).all(|i| {
            obj_value(self.obj_tags[i], self.obj_payloads[i]).is_some()
                && self.labels[i] <= 2
                && self.fallback[i] <= 1
        });
        if !values_ok {
            return false;
        }
        // Canonical order, strictly: equal adjacent triples would break
        // binary-search uniqueness.
        if !(1..n).all(|i| self.triple_at(i - 1) < self.triple_at(i)) {
            return false;
        }
        // Item index: sorted keys, monotone offsets covering every row.
        let m = self.item_subjects.len();
        if self.item_predicates.len() != m || self.item_offsets.len() != m + 1 {
            return false;
        }
        let item_key = |i: usize| (self.item_subjects[i], self.item_predicates[i]);
        if !(1..m).all(|i| item_key(i - 1) < item_key(i)) {
            return false;
        }
        if self.item_offsets[0] != 0
            || self.item_offsets[m] as usize != n
            || !(1..=m).all(|i| self.item_offsets[i - 1] < self.item_offsets[i])
        {
            return false;
        }
        // Predicate index: sorted ids, monotone offsets, a permutation of
        // the rows.
        let k = self.pred_ids.len();
        if self.pred_offsets.len() != k + 1 || self.rank.len() != n {
            return false;
        }
        if !(1..k).all(|i| self.pred_ids[i - 1] < self.pred_ids[i]) {
            return false;
        }
        if k > 0
            && (self.pred_offsets[0] != 0
                || self.pred_offsets[k] as usize != n
                || !(1..=k).all(|i| self.pred_offsets[i - 1] < self.pred_offsets[i]))
        {
            return false;
        }
        if k == 0 && n > 0 {
            return false;
        }
        let mut seen = vec![false; n];
        for &row in &self.rank {
            match seen.get_mut(row as usize) {
                Some(s) if !*s => *s = true,
                _ => return false,
            }
        }
        // Provenance registry: aligned columns, in-range ids, monotone
        // offsets.
        let p = self.prov_keys.len();
        if self.prov_accuracy.len() != p || self.prov_evaluated.len() != p {
            return false;
        }
        if self.prov_evaluated.iter().any(|&e| e > 1) {
            return false;
        }
        if self.prov_offsets[0] != 0
            || *self.prov_offsets.last().expect("n + 1 entries") as usize != self.prov_ids.len()
            || !(1..=n).all(|i| self.prov_offsets[i - 1] <= self.prov_offsets[i])
        {
            return false;
        }
        self.prov_ids.iter().all(|&id| (id as usize) < p)
    }
}

impl KvCodec for FusedKb {
    fn encode(&self, out: &mut Vec<u8>) {
        self.corpus.encode(out);
        self.method.encode(out);
        self.method_label.encode(out);
        self.wdev.encode(out);
        self.ece.encode(out);
        self.auc_pr.encode(out);
        self.n_dropped.encode(out);
        encode_column(&self.subjects, out);
        encode_column(&self.predicates, out);
        encode_column(&self.obj_tags, out);
        encode_column(&self.obj_payloads, out);
        self.raw.encode(out);
        self.calibrated.encode(out);
        encode_column(&self.labels, out);
        encode_column(&self.pages, out);
        encode_column(&self.extractor_counts, out);
        encode_column(&self.fallback, out);
        encode_column(&self.item_subjects, out);
        encode_column(&self.item_predicates, out);
        encode_column(&self.item_offsets, out);
        encode_column(&self.pred_ids, out);
        encode_column(&self.pred_offsets, out);
        encode_column(&self.rank, out);
        self.prov_keys.encode(out);
        self.prov_accuracy.encode(out);
        encode_column(&self.prov_evaluated, out);
        encode_column(&self.prov_offsets, out);
        encode_column(&self.prov_ids, out);
        self.extractor_names.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let kb = FusedKb {
            corpus: CorpusSummary::decode(input)?,
            method: String::decode(input)?,
            method_label: String::decode(input)?,
            wdev: f64::decode(input)?,
            ece: f64::decode(input)?,
            auc_pr: f64::decode(input)?,
            n_dropped: u64::decode(input)?,
            subjects: decode_column(input)?,
            predicates: decode_column(input)?,
            obj_tags: decode_column(input)?,
            obj_payloads: decode_column(input)?,
            raw: Vec::decode(input)?,
            calibrated: Vec::decode(input)?,
            labels: decode_column(input)?,
            pages: decode_column(input)?,
            extractor_counts: decode_column(input)?,
            fallback: decode_column(input)?,
            item_subjects: decode_column(input)?,
            item_predicates: decode_column(input)?,
            item_offsets: decode_column(input)?,
            pred_ids: decode_column(input)?,
            pred_offsets: decode_column(input)?,
            rank: decode_column(input)?,
            prov_keys: Vec::decode(input)?,
            prov_accuracy: Vec::decode(input)?,
            prov_evaluated: decode_column(input)?,
            prov_offsets: decode_column(input)?,
            prov_ids: decode_column(input)?,
            extractor_names: Vec::decode(input)?,
        };
        kb.validate().then_some(kb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kf_eval::{Binning, CalibrationBin};
    use kf_synth::SynthConfig;

    fn fixture() -> FusedKb {
        let corpus = Corpus::generate(&SynthConfig::tiny(), 9);
        FusedKb::build_from_corpus(&corpus, &KbBuildOptions::default(), "tiny").expect("build")
    }

    fn reencode_decodes(kb: &FusedKb) -> Option<FusedKb> {
        let mut payload = Vec::new();
        kb.encode(&mut payload);
        let mut input = payload.as_slice();
        let decoded = FusedKb::decode(&mut input)?;
        input.is_empty().then_some(decoded)
    }

    /// A parseable payload with a broken structural invariant must be
    /// rejected by decode-time validation — the read path binary-searches
    /// these columns unchecked.
    #[test]
    fn broken_invariants_fail_decode() {
        let kb = fixture();
        assert!(reencode_decodes(&kb).is_some(), "fixture itself decodes");

        let mut out_of_range_rank = kb.clone();
        out_of_range_rank.rank[0] = kb.n_triples() as u32 + 7;
        assert!(reencode_decodes(&out_of_range_rank).is_none());

        let mut non_canonical = kb.clone();
        non_canonical.subjects[0] = u32::MAX;
        assert!(reencode_decodes(&non_canonical).is_none());

        let mut misaligned = kb.clone();
        misaligned.raw.pop();
        assert!(reencode_decodes(&misaligned).is_none());

        let mut bad_label = kb.clone();
        bad_label.labels[0] = 9;
        assert!(reencode_decodes(&bad_label).is_none());

        let mut bad_prov = kb.clone();
        if let Some(id) = bad_prov.prov_ids.first_mut() {
            *id = kb.prov_keys.len() as u32;
            assert!(reencode_decodes(&bad_prov).is_none());
        }

        let mut non_monotone = kb.clone();
        let last = non_monotone.item_offsets.len() - 1;
        non_monotone.item_offsets[last] += 1;
        assert!(reencode_decodes(&non_monotone).is_none());
    }

    /// Duplicate rows in the rank permutation (a row served twice under
    /// one predicate) are caught even when lengths line up.
    #[test]
    fn duplicate_rank_rows_fail_decode() {
        let kb = fixture();
        let mut duped = kb.clone();
        assert!(duped.rank.len() >= 2);
        duped.rank[1] = duped.rank[0];
        assert!(reencode_decodes(&duped).is_none());
    }

    /// The calibration lookup mirrors curve construction: a probability
    /// lands in the bin it was counted into, bin mass wins over the raw
    /// value, and empty bins fall back to the raw probability.
    #[test]
    fn calibrate_reads_the_curve() {
        let curve = CalibrationCurve {
            binning: Binning::EqualWidth(2),
            bins: vec![
                CalibrationBin {
                    lo: 0.0,
                    hi: 0.5,
                    count: 4,
                    mean_predicted: 0.3,
                    observed_accuracy: 0.25,
                },
                CalibrationBin {
                    lo: 0.5,
                    hi: 1.0,
                    count: 0,
                    mean_predicted: 0.75,
                    observed_accuracy: f64::NAN,
                },
            ],
            wdev: 0.0,
            ece: 0.0,
        };
        assert_eq!(calibrate(&curve, 0.2), 0.25);
        assert_eq!(calibrate(&curve, 0.49), 0.25);
        // Empty upper bin: raw probability passes through.
        assert_eq!(calibrate(&curve, 0.8), 0.8);
        // Boundary goes to the upper bin, exactly like curve building.
        assert_eq!(calibrate(&curve, 0.5), 0.5);
        // p = 1.0 clamps into the last bin.
        assert_eq!(calibrate(&curve, 1.0), 1.0);
        // Out-of-range inputs clamp first.
        assert_eq!(calibrate(&curve, -3.0), 0.25);
        let empty = CalibrationCurve {
            binning: Binning::EqualWidth(1),
            bins: vec![],
            wdev: 0.0,
            ece: 0.0,
        };
        assert_eq!(calibrate(&empty, 0.7), 0.7);
    }

    /// Value and label column tags roundtrip losslessly — including
    /// negative numerics, whose u64 payload is not order-preserving
    /// (the reason the read path compares reconstructed values).
    #[test]
    fn column_tags_roundtrip() {
        for v in [
            Value::Entity(EntityId(0)),
            Value::Entity(EntityId(u32::MAX)),
            Value::Str(StrId(7)),
            Value::Num(Numeric(-1_500)),
            Value::Num(Numeric(i64::MIN)),
            Value::Num(Numeric(i64::MAX)),
        ] {
            let (tag, payload) = obj_columns(v);
            assert_eq!(obj_value(tag, payload), Some(v));
        }
        assert_eq!(obj_value(3, 0), None);
        // Entity/str payloads wider than u32 are malformed.
        assert_eq!(obj_value(0, u64::MAX), None);
        for l in [Label::False, Label::True, Label::Unknown] {
            assert_eq!(label_from_tag(label_tag(l)), Some(l));
        }
        assert_eq!(label_from_tag(3), None);
    }

    /// An empty fusion output compiles to an empty-but-valid KB.
    #[test]
    fn empty_output_compiles_and_roundtrips() {
        let corpus = Corpus::generate(&SynthConfig::tiny(), 5);
        let output = FusionOutput {
            scored: Vec::new(),
            ..Fuser::new(Preset::Vote.config()).run(&corpus.batch, None)
        };
        let attribution = ProvenanceAttribution::default();
        let runner = AblationRunner::default();
        let method = runner.evaluate(Preset::Vote, &output, &corpus.gold, 0.0);
        let kb = FusedKb::compile_from_parts(
            runner.corpus_summary(&corpus),
            &method,
            &output,
            &attribution,
            &corpus.gold,
            Vec::new(),
        );
        assert_eq!(kb.n_triples(), 0);
        assert_eq!(kb.n_items(), 0);
        assert_eq!(kb.n_predicates(), 0);
        let decoded = reencode_decodes(&kb).expect("empty KB roundtrips");
        assert_eq!(decoded, kb);
    }
}
