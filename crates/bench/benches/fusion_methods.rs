//! Baseline timings for the five fusion presets over a fixed corpus — the
//! perf trajectory anchor for future optimisation PRs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kf_core::Fuser;
use kf_eval::Preset;
use kf_synth::{Corpus, SynthConfig};

fn fusion_presets(c: &mut Criterion) {
    let corpus = Corpus::generate(&SynthConfig::small(), 42);
    for preset in Preset::ALL {
        let fuser = Fuser::new(preset.config());
        let gold = preset.needs_gold().then_some(&corpus.gold);
        c.bench_function(&format!("fuse/small/{}", preset.name()), |b| {
            b.iter(|| black_box(fuser.run(black_box(&corpus.batch), gold)))
        });
    }
}

criterion_group!(benches, fusion_presets);
criterion_main!(benches);
