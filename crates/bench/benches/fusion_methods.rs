fn main() {}
