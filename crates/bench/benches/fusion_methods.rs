//! Baseline timings for the five fusion presets over a fixed corpus — the
//! perf trajectory anchor for future optimisation PRs — plus grouping
//! throughput, old (two-pass) vs new (single-pass), so the ROADMAP's
//! single-pass-grouping win stays measured.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kf_core::{Fuser, Grouped};
use kf_eval::Preset;
use kf_mapreduce::MrConfig;
use kf_synth::{Corpus, SynthConfig};
use kf_types::Granularity;

fn fusion_presets(c: &mut Criterion) {
    let corpus = Corpus::generate(&SynthConfig::small(), 42);
    for preset in Preset::ALL {
        let fuser = Fuser::new(preset.config());
        let gold = preset.needs_gold().then_some(&corpus.gold);
        c.bench_function(&format!("fuse/small/{}", preset.name()), |b| {
            b.iter(|| black_box(fuser.run(black_box(&corpus.batch), gold)))
        });
    }
}

/// Old-vs-new grouping: the single-pass build (provenance keys renumbered
/// post-reduce) against the historical two-pass build (registry pre-pass).
/// The single-pass variant projects and hashes each extraction's
/// provenance key once instead of twice.
fn grouping(c: &mut Criterion) {
    let corpus = Corpus::generate(&SynthConfig::small(), 42);
    let records = &corpus.batch.records;
    for granularity in [
        Granularity::ExtractorPage,
        Granularity::ExtractorSitePredicatePattern,
    ] {
        let tag = match granularity {
            Granularity::ExtractorPage => "page",
            _ => "espp",
        };
        let mr = MrConfig::with_workers(4);
        c.bench_function(&format!("group/small/{tag}/single_pass"), |b| {
            b.iter(|| black_box(Grouped::build(black_box(records), granularity, &mr)))
        });
        c.bench_function(&format!("group/small/{tag}/two_pass_baseline"), |b| {
            b.iter(|| {
                black_box(Grouped::build_two_pass(
                    black_box(records),
                    granularity,
                    &mr,
                ))
            })
        });
    }
}

criterion_group!(benches, fusion_presets, grouping);
criterion_main!(benches);
