//! Timings for the MapReduce substrate itself: shuffle-and-sum over skewed
//! keys at several worker counts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kf_mapreduce::{map_reduce, Emitter, MrConfig};

fn shuffle_sum(c: &mut Criterion) {
    // Zipf-ish skew: key 0 receives ~90% of the records, like the paper's
    // hottest data items.
    let inputs: Vec<u64> = (0..200_000).collect();
    for workers in [1usize, 4] {
        let cfg = MrConfig::with_workers(workers);
        c.bench_function(&format!("mapreduce/sum200k/workers={workers}"), |b| {
            b.iter(|| {
                let out: Vec<(u64, u64)> = map_reduce(
                    &cfg,
                    black_box(&inputs),
                    |&x, emit: &mut Emitter<u64, u64>| {
                        let key = if x % 10 == 0 { x % 512 } else { 0 };
                        emit.emit(key, x);
                    },
                    |k, vs| vec![(*k, vs.iter().sum())],
                );
                black_box(out)
            })
        });
    }
}

criterion_group!(benches, shuffle_sum);
criterion_main!(benches);
