//! Timings for the MapReduce substrate itself: shuffle-and-sum over skewed
//! keys at several worker counts, unchunked vs chunked vs spilled
//! shuffles, and the memory-envelope proof on the large corpus —
//! `JobStats` must show the chunked peak resident (raw) records strictly
//! below the unchunked baseline, and the spilled peak *grouped* records
//! at or under the configured spill threshold with byte-identical output.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kf_core::Grouped;
use kf_mapreduce::{map_reduce, Emitter, MrConfig};
use kf_synth::{Corpus, SynthConfig};
use kf_types::Granularity;

fn shuffle_sum(c: &mut Criterion) {
    // Zipf-ish skew: key 0 receives ~90% of the records, like the paper's
    // hottest data items.
    let inputs: Vec<u64> = (0..200_000).collect();
    for workers in [1usize, 4] {
        let cfg = MrConfig::with_workers(workers);
        c.bench_function(&format!("mapreduce/sum200k/workers={workers}"), |b| {
            b.iter(|| {
                let out: Vec<(u64, u64)> = map_reduce(
                    &cfg,
                    black_box(&inputs),
                    |&x, emit: &mut Emitter<u64, u64>| {
                        let key = if x % 10 == 0 { x % 512 } else { 0 };
                        emit.emit(key, x);
                    },
                    |k, vs| vec![(*k, vs.iter().sum())],
                );
                black_box(out)
            })
        });
    }
}

/// The same shuffle with the raw-record residency bounded: time the cost of
/// chunking at several quotas against the unchunked baseline (quota 0).
fn chunked_shuffle(c: &mut Criterion) {
    let inputs: Vec<u64> = (0..200_000).collect();
    for chunk in [0usize, 16_384, 65_536] {
        let cfg = MrConfig::with_workers(4).with_chunk_records(chunk);
        let tag = if chunk == 0 {
            "unchunked".to_string()
        } else {
            format!("chunk={chunk}")
        };
        c.bench_function(&format!("mapreduce/sum200k/{tag}"), |b| {
            b.iter(|| {
                let out: Vec<(u64, u64)> = map_reduce(
                    &cfg,
                    black_box(&inputs),
                    |&x, emit: &mut Emitter<u64, u64>| {
                        let key = if x % 10 == 0 { x % 512 } else { 0 };
                        emit.emit(key, x);
                    },
                    |k, vs| vec![(*k, vs.iter().sum())],
                );
                black_box(out)
            })
        });
    }
}

/// The same shuffle with the external path forced: spill grouped state to
/// disk at a threshold well under the shuffle volume, to time the cost of
/// run-file I/O and k-way merging against the in-memory paths.
fn spilled_shuffle(c: &mut Criterion) {
    let inputs: Vec<u64> = (0..200_000).collect();
    let cfg = MrConfig::with_workers(4)
        .with_chunk_records(16_384)
        .with_spill_threshold(65_536);
    c.bench_function("mapreduce/sum200k/spill=65536", |b| {
        b.iter(|| {
            let out: Vec<(u64, u64)> = map_reduce(
                &cfg,
                black_box(&inputs),
                |&x, emit: &mut Emitter<u64, u64>| {
                    let key = if x % 10 == 0 { x % 512 } else { 0 };
                    emit.emit(key, x);
                },
                |k, vs| vec![(*k, vs.iter().sum())],
            );
            black_box(out)
        })
    });
}

/// Memory-envelope gate on the large corpus: group it unchunked, chunked
/// and spilled once each and report the `JobStats` residency peaks. The
/// chunked peak (raw records) must come in below the unchunked baseline,
/// and the spilled peak (grouped records) must hold at or under the
/// configured spill threshold with byte-identical output — this is the
/// bound that lets `SynthConfig::large()`-×100 corpora fit.
fn large_corpus_peak_records(c: &mut Criterion) {
    let corpus = Corpus::generate(&SynthConfig::large(), 42);
    let records = &corpus.batch.records;
    let granularity = Granularity::ExtractorSitePredicatePattern;

    let (baseline, unchunked) =
        Grouped::build_with_stats(records, granularity, &MrConfig::default());
    let quota = 1 << 16;
    let chunked_cfg = MrConfig::default().with_chunk_records(quota);
    let (_, chunked) = Grouped::build_with_stats(records, granularity, &chunked_cfg);
    assert_eq!(
        unchunked.peak_resident_records, unchunked.map_output,
        "unchunked shuffle must materialise the whole map output"
    );
    assert_eq!(
        unchunked.peak_grouped_records, unchunked.map_output,
        "without spilling, every grouped record is resident at reduce time"
    );
    assert!(
        chunked.peak_resident_records < unchunked.peak_resident_records,
        "chunked peak {} is not below the unchunked baseline {}",
        chunked.peak_resident_records,
        unchunked.peak_resident_records
    );

    // External shuffle: grouped residency capped at 4× the wave quota.
    // Every wave (≤ ~64K records) fits under the threshold, so the
    // pre-merge spill keeps the grouped peak at or under it — the
    // acceptance bound for this PR.
    let spill_threshold = (quota * 4) as u64;
    let spilled_cfg = chunked_cfg.with_spill_threshold(spill_threshold as usize);
    let (spilled_build, spilled) = Grouped::build_with_stats(records, granularity, &spilled_cfg);
    assert_eq!(
        baseline, spilled_build,
        "spilled grouping must be byte-identical to the in-memory build"
    );
    assert!(
        spilled.spilled_bytes > 0,
        "the spill threshold {} did not trigger on {} grouped records",
        spill_threshold,
        unchunked.map_output
    );
    assert!(
        spilled.peak_grouped_records <= spill_threshold,
        "spilled grouped peak {} above the configured threshold {}",
        spilled.peak_grouped_records,
        spill_threshold
    );
    eprintln!(
        "large corpus ({} records): peak resident records unchunked={} chunked(quota={})={} \
         ({:.1}x reduction); peak grouped records unspilled={} spilled(threshold={})={} \
         ({:.1}x reduction, {:.1} MiB written)",
        records.len(),
        unchunked.peak_resident_records,
        quota,
        chunked.peak_resident_records,
        unchunked.peak_resident_records as f64 / chunked.peak_resident_records.max(1) as f64,
        unchunked.peak_grouped_records,
        spill_threshold,
        spilled.peak_grouped_records,
        unchunked.peak_grouped_records as f64 / spilled.peak_grouped_records.max(1) as f64,
        spilled.spilled_bytes as f64 / (1024.0 * 1024.0),
    );

    c.bench_function("group/large/espp/unchunked", |b| {
        b.iter(|| {
            black_box(Grouped::build(
                black_box(records),
                granularity,
                &MrConfig::default(),
            ))
        })
    });
    c.bench_function("group/large/espp/chunked64k", |b| {
        b.iter(|| {
            black_box(Grouped::build(
                black_box(records),
                granularity,
                &chunked_cfg,
            ))
        })
    });
    c.bench_function("group/large/espp/spilled256k", |b| {
        b.iter(|| {
            black_box(Grouped::build(
                black_box(records),
                granularity,
                &spilled_cfg,
            ))
        })
    });
}

/// Memory-envelope gate for the diagnosis pass: the `kf-diagnose`
/// support-profile job (the per-extractor attribution behind the Fig. 17
/// taxonomy) maps the whole batch, so it must honour the same external
/// shuffle bounds as the fusion pipeline — spilled output identical to
/// the in-memory build with the grouped peak at or under the threshold.
fn diagnose_support_envelope(c: &mut Criterion) {
    use kf_diagnose::SupportIndex;

    let corpus = Corpus::generate(&SynthConfig::large(), 42);
    let records = &corpus.batch.records;

    let (in_memory, base) = SupportIndex::build(records, &MrConfig::default());
    let quota = 1 << 16;
    let spill_threshold = (quota * 4) as u64;
    let spilled_cfg = MrConfig::default()
        .with_chunk_records(quota)
        .with_spill_threshold(spill_threshold as usize);
    let (spilled_index, spilled) = SupportIndex::build(records, &spilled_cfg);
    let sample = corpus.batch.records[0].triple;
    assert_eq!(
        in_memory.get(&sample),
        spilled_index.get(&sample),
        "spilled support profiles must match the in-memory build"
    );
    assert_eq!(in_memory.len(), spilled_index.len());
    assert!(
        spilled.spilled_bytes > 0,
        "the {spill_threshold}-record threshold did not trigger on {} records",
        records.len()
    );
    assert!(
        spilled.peak_grouped_records <= spill_threshold,
        "diagnose support job grouped peak {} above the {} threshold",
        spilled.peak_grouped_records,
        spill_threshold
    );
    eprintln!(
        "diagnose support job (large corpus, {} records): peak grouped records \
         in-memory={} spilled(threshold={})={} ({:.1}x reduction, {:.1} MiB written)",
        records.len(),
        base.peak_grouped_records,
        spill_threshold,
        spilled.peak_grouped_records,
        base.peak_grouped_records as f64 / spilled.peak_grouped_records.max(1) as f64,
        spilled.spilled_bytes as f64 / (1024.0 * 1024.0),
    );

    c.bench_function("diagnose/support/large/in_memory", |b| {
        b.iter(|| {
            black_box(SupportIndex::build(
                black_box(records),
                &MrConfig::default(),
            ))
        })
    });
    c.bench_function("diagnose/support/large/spilled256k", |b| {
        b.iter(|| black_box(SupportIndex::build(black_box(records), &spilled_cfg)))
    });
}

criterion_group!(
    benches,
    shuffle_sum,
    chunked_shuffle,
    spilled_shuffle,
    large_corpus_peak_records,
    diagnose_support_envelope
);
criterion_main!(benches);
