//! Sustained serving throughput and tail latency for [`kf_serve::KbReader`]
//! under concurrent clients, at paper scale and 10× paper scale.
//!
//! This bench does not use the criterion shim: it needs *throughput* and
//! *p99 latency* rows, not mean-iteration time. It prints rows in the
//! same table shape the shim uses so `scripts/bench_json.py` can fold
//! them (plus a `thrpt:` variant the script also understands):
//!
//! ```text
//! serve/p99/paper/t4      time: [1.2 µs 1.4 µs 1.9 µs]  (5 windows)
//! serve/qps/paper/t4      thrpt: [812345.0 q/s 823456.0 q/s 834567.0 q/s]  (5 windows)
//! ```
//!
//! Methodology: per (scale, client-count) cell, `WINDOWS` measurement
//! windows each issue a fixed total query budget split evenly across the
//! clients, which hammer one shared `KbReader`. Every query's wall time
//! is recorded into a per-client [`HistogramSnapshot`] preallocated
//! before the timed region (recording is a binary search over ≤1920
//! sparse buckets — no allocation once every bucket the workload
//! touches exists, and the warm-up window populates them); client
//! histograms merge bucket-wise into the window's pooled distribution,
//! whose p99 reads from the bucket upper bound (within `2^-5` relative
//! error of the exact pooled-sort p99 — asserted by a test in
//! `tests/trace.rs`). The row is min / mean / max across windows. One
//! query = one read API call; clients cycle a lookup / belief / top-k /
//! drill-down mix over strided rows. On a single-core machine the
//! multi-client cells measure contention and scheduler fairness, not
//! parallel speedup — the interesting signal is that p99 degrades
//! gracefully and qps stays near the single-client number.
//!
//! A first non-flag CLI argument is a substring filter over row ids,
//! mirroring the criterion shim; `paper/` skips the 10× cells.

use kf_serve::{FusedKb, KbBuildOptions, KbReader};
use kf_synth::{Corpus, SynthConfig};
use kf_telemetry::{HistKind, HistogramSnapshot};
use kf_types::{DataItem, Triple};
use std::time::Instant;

const WINDOWS: usize = 5;
/// Total queries per window, split across the window's clients.
const WINDOW_QUERIES: u64 = 80_000;
const CLIENTS: [usize; 3] = [1, 4, 16];

/// One query = one read API call. Returns a value to fold into a sink
/// so the optimiser cannot elide the read.
fn query(reader: &KbReader, q: u64, n_rows: u32) -> u64 {
    // Stride the row space so consecutive queries touch distant rows
    // (defeats trivially perfect locality without being adversarial).
    let row = ((q.wrapping_mul(0x9e37_79b9)) % n_rows as u64) as u32;
    let v = reader.view(row);
    let Triple {
        subject, predicate, ..
    } = v.triple;
    match q % 4 {
        0 => reader
            .lookup(&v.triple)
            .map_or(0, |t| t.calibrated.to_bits()),
        1 => reader
            .belief(DataItem { subject, predicate })
            .map_or(0, |b| b.best().raw.to_bits()),
        2 => reader.top_k(predicate, 8).map_or(0, |t| t.len() as u64),
        _ => reader.drilldown(&v.triple).map_or(0, |d| d.len() as u64),
    }
}

struct Window {
    p99_ns: f64,
    qps: f64,
}

/// Run one measurement window: `clients` threads share the reader and
/// the query budget; per-client latency histograms merge into the
/// window's pooled distribution (the same bucket-wise algebra shard
/// traces use), whose p99 reads straight from a bucket bound — no
/// pooled sample buffer, no sort.
fn run_window(reader: &KbReader, clients: usize, queries: u64) -> Window {
    let n_rows = reader.kb().n_triples() as u32;
    let per_client = queries / clients as u64;
    let start = Instant::now();
    let client_hists: Vec<HistogramSnapshot> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let reader = reader.clone();
                scope.spawn(move || {
                    let mut hist = HistogramSnapshot::empty("serve.latency_ns", HistKind::Time);
                    let mut sink = 0u64;
                    let base = c as u64 * per_client;
                    for i in 0..per_client {
                        let t = Instant::now();
                        sink ^= query(&reader, base + i, n_rows);
                        hist.record(t.elapsed().as_nanos() as u64);
                    }
                    std::hint::black_box(sink);
                    hist
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client joins"))
            .collect()
    });
    let elapsed = start.elapsed();
    let mut pooled = HistogramSnapshot::empty("serve.latency_ns", HistKind::Time);
    for h in &client_hists {
        pooled.merge(h);
    }
    Window {
        p99_ns: pooled.quantile(0.99) as f64,
        qps: pooled.count as f64 / elapsed.as_secs_f64(),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn stats(values: impl Iterator<Item = f64>) -> (f64, f64, f64) {
    let v: Vec<f64> = values.collect();
    let min = v.iter().copied().fold(f64::INFINITY, f64::min);
    let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    (min, mean, max)
}

fn bench_scale(label: &str, config: &SynthConfig, filter: Option<&str>) {
    let ids: Vec<(usize, String, String)> = CLIENTS
        .iter()
        .map(|&c| {
            (
                c,
                format!("serve/p99/{label}/t{c}"),
                format!("serve/qps/{label}/t{c}"),
            )
        })
        .collect();
    if let Some(f) = filter {
        if !ids.iter().any(|(_, p, q)| p.contains(f) || q.contains(f)) {
            return;
        }
    }

    eprintln!("[serve bench] building {label} corpus + KB …");
    let start = Instant::now();
    let corpus = Corpus::generate(config, 42);
    let kb = FusedKb::build_from_corpus(&corpus, &KbBuildOptions::default(), label)
        .expect("KB builds from a generated corpus");
    eprintln!(
        "[serve bench] {label}: {} triples, {} items, {} provenances ({:.1}s build)",
        kb.n_triples(),
        kb.n_items(),
        kb.n_provenances(),
        start.elapsed().as_secs_f64(),
    );
    let reader = KbReader::new(kb);

    for (clients, p99_id, qps_id) in ids {
        if let Some(f) = filter {
            if !p99_id.contains(f) && !qps_id.contains(f) {
                continue;
            }
        }
        // Warm-up window (faults pages in, primes the branch predictors).
        run_window(&reader, clients, WINDOW_QUERIES / 4);
        let windows: Vec<Window> = (0..WINDOWS)
            .map(|_| run_window(&reader, clients, WINDOW_QUERIES))
            .collect();
        let (p_min, p_mean, p_max) = stats(windows.iter().map(|w| w.p99_ns));
        let (q_min, q_mean, q_max) = stats(windows.iter().map(|w| w.qps));
        println!(
            "{p99_id:<40} time: [{} {} {}]  ({WINDOWS} windows)",
            fmt_ns(p_min),
            fmt_ns(p_mean),
            fmt_ns(p_max),
        );
        println!(
            "{qps_id:<40} thrpt: [{q_min:.1} q/s {q_mean:.1} q/s {q_max:.1} q/s]  ({WINDOWS} windows)",
        );
    }
}

fn main() {
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    let filter = filter.as_deref();

    bench_scale("paper", &SynthConfig::paper(), filter);

    // 10× paper: ten times the pages over ten times the sites, same
    // per-site and per-page shape — the corpus the paper's Fig. 4 scale
    // claims would meet after one more order of magnitude of crawl.
    let mut paper10 = SynthConfig::paper();
    paper10.web.n_pages *= 10;
    paper10.web.n_sites *= 10;
    bench_scale("paper10x", &paper10, filter);
}
