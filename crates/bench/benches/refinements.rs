//! Cost of the §4.3 refinement stack: POPACCU with each refinement layered
//! on, so regressions in a single refinement show up in isolation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kf_core::{Fuser, FusionConfig};
use kf_synth::{Corpus, SynthConfig};
use kf_types::Granularity;

fn refinement_stack(c: &mut Criterion) {
    let corpus = Corpus::generate(&SynthConfig::tiny(), 42);
    let cases: Vec<(&str, FusionConfig, bool)> = vec![
        ("base", FusionConfig::popaccu(), false),
        (
            "fine-granularity",
            FusionConfig::popaccu().with_granularity(Granularity::ExtractorSitePredicatePattern),
            false,
        ),
        (
            "coverage-filter",
            FusionConfig {
                filter_by_coverage: true,
                ..FusionConfig::popaccu()
            },
            false,
        ),
        ("plus-unsup", FusionConfig::popaccu_plus_unsup(), false),
        ("plus-gold", FusionConfig::popaccu_plus(), true),
    ];
    for (name, config, with_gold) in cases {
        let fuser = Fuser::new(config);
        let gold = with_gold.then_some(&corpus.gold);
        c.bench_function(&format!("refinement/tiny/{name}"), |b| {
            b.iter(|| black_box(fuser.run(black_box(&corpus.batch), gold)))
        });
    }
}

criterion_group!(benches, refinement_stack);
criterion_main!(benches);
