//! Corpus-generation throughput: the fixture cost every other bench and
//! test pays before fusing anything.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kf_synth::{Corpus, SynthConfig};

fn generate(c: &mut Criterion) {
    for (name, cfg) in [
        ("tiny", SynthConfig::tiny()),
        ("small", SynthConfig::small()),
    ] {
        c.bench_function(&format!("synth/generate/{name}"), |b| {
            b.iter(|| black_box(Corpus::generate(black_box(&cfg), 42)))
        });
    }
}

criterion_group!(benches, generate);
criterion_main!(benches);
