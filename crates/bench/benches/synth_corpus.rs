//! Corpus-generation throughput — the fixture cost every other bench and
//! test pays before fusing anything — and checkpoint I/O: `corpus/save`
//! and `corpus/load` timing rows, plus the load-vs-regenerate speedup
//! assertion the checkpoint-and-fan-out pipeline depends on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kf_synth::{Corpus, SynthConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("kf-bench-synth-{}-{name}", std::process::id()))
}

fn generate(c: &mut Criterion) {
    for (name, cfg) in [
        ("tiny", SynthConfig::tiny()),
        ("small", SynthConfig::small()),
    ] {
        c.bench_function(&format!("synth/generate/{name}"), |b| {
            b.iter(|| black_box(Corpus::generate(black_box(&cfg), 42)))
        });
    }
}

fn persist(c: &mut Criterion) {
    for (name, cfg) in [
        ("small", SynthConfig::small()),
        ("paper", SynthConfig::paper()),
    ] {
        let corpus = Corpus::generate(&cfg, 42);
        let path = tmp_path(&format!("bench-{name}.kfc"));
        c.bench_function(&format!("corpus/save/{name}"), |b| {
            b.iter(|| corpus.save(black_box(&path)).unwrap())
        });
        c.bench_function(&format!("corpus/load/{name}"), |b| {
            b.iter(|| black_box(Corpus::load(black_box(&path)).unwrap()))
        });
        let _ = std::fs::remove_file(&path);
    }
}

/// The pipeline-shaping claim: loading the default (paper-scale) corpus
/// checkpoint must beat regenerating it by at least 5× — otherwise
/// snapshot-then-fan-out would not pay for itself and the CI corpus
/// reuse would be pointless.
///
/// The 5× bound assumes ≥ 2 cores (the corpus decoder fans its segments
/// out over threads; CI runners and dev machines are multicore). On a
/// single-core host parallel decode cannot engage, so the gate degrades
/// to the sequential decoder's 2.5× bound rather than flaking.
fn load_beats_regeneration(_c: &mut Criterion) {
    let cfg = SynthConfig::paper();
    let mut generate_time = Duration::MAX;
    let mut corpus = None;
    for seed in [42, 42] {
        let t0 = Instant::now();
        corpus = Some(Corpus::generate(&cfg, seed));
        generate_time = generate_time.min(t0.elapsed());
    }
    let corpus = corpus.expect("generated");

    let path = tmp_path("speedup-paper.kfc");
    corpus.save(&path).unwrap();
    let mut load_time = Duration::MAX;
    for _ in 0..5 {
        let t0 = Instant::now();
        let loaded = Corpus::load(&path).unwrap();
        load_time = load_time.min(t0.elapsed());
        assert_eq!(loaded.batch.len(), corpus.batch.len());
    }
    std::fs::remove_file(&path).unwrap();

    let multicore = std::thread::available_parallelism().map_or(1, |n| n.get()) > 1;
    let required = if multicore { 5.0 } else { 2.5 };
    let speedup = generate_time.as_secs_f64() / load_time.as_secs_f64();
    println!(
        "corpus/speedup/paper: generate {:.0} ms, load {:.0} ms => {speedup:.1}x \
         (required {required:.1}x, {} decode)",
        generate_time.as_secs_f64() * 1e3,
        load_time.as_secs_f64() * 1e3,
        if multicore { "parallel" } else { "sequential" },
    );
    assert!(
        speedup >= required,
        "loading the default corpus checkpoint must be at least {required}x faster \
         than regenerating it (measured {speedup:.1}x)"
    );
}

criterion_group!(benches, generate, persist, load_beats_regeneration);
criterion_main!(benches);
