//! # kf-bench — the experiment harness
//!
//! Shared machinery behind the `repro` binary and the criterion benches:
//! option parsing for the reproduction CLI, corpus-scale presets, and the
//! end-to-end generate → fuse → evaluate driver whose output is the
//! diffable `report.json`.
//!
//! ```
//! use kf_bench::{ReproOptions, run};
//!
//! let opts = ReproOptions::parse(["--scale", "tiny", "--seed", "7"]).unwrap();
//! let report = run(&opts).unwrap();
//! assert_eq!(report.methods.len(), 5);
//! ```

pub mod scenarios;

pub use scenarios::{
    band_accuracy, scenario_config, scenario_corpus, separation, ScenarioCell, ScenarioMatrix,
    ScenarioRow, SCENARIO_NAMES,
};

use kf_diagnose::{DiagnoseConfig, Diagnoser, SupportIndex};
use kf_eval::{AblationRunner, EvalReport, MethodEval, Preset};
use kf_mapreduce::MrConfig;
use kf_synth::{Corpus, SynthConfig};
use kf_types::TaskSpec;
use std::time::Instant;

/// Why [`ReproOptions::parse`] did not produce options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// `--help` was requested; print [`USAGE`] and exit successfully.
    Help,
    /// The arguments were invalid.
    Invalid(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Help => f.write_str(USAGE),
            ParseError::Invalid(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ParseError {}

/// Options of the `repro` binary.
#[derive(Debug, Clone)]
pub struct ReproOptions {
    /// Corpus scale preset: `tiny`, `small`, `paper` (default) or `large`.
    pub scale: String,
    /// Hostile-corpus scenario applied on top of the scale preset
    /// (`honest` default; see [`SCENARIO_NAMES`]).
    pub scenario: String,
    /// Corpus generator seed.
    pub seed: u64,
    /// Where to write the JSON report (`None` = don't write). In `--shard`
    /// mode this is the *binary* shard-report path instead.
    pub out: Option<String>,
    /// Whether `out` was set explicitly (`--out` / `--no-out`) rather
    /// than defaulted — shard mode substitutes its own default file name
    /// only when it was not.
    pub out_explicit: bool,
    /// Fusion worker threads (`None` = library default).
    pub workers: Option<usize>,
    /// Calibration bins per curve.
    pub bins: usize,
    /// Presets to run (default: all five).
    pub presets: Vec<Preset>,
    /// Run the Fig. 17 error-taxonomy diagnosis per preset and embed the
    /// `taxonomy` section in the report (default: true).
    pub diagnose: bool,
    /// Generate the corpus, save it as a checkpoint at this path, and
    /// exit without fusing (the snapshot subflow).
    pub save_corpus: Option<String>,
    /// Load the corpus from this checkpoint instead of regenerating.
    pub corpus: Option<String>,
    /// Run only shard `i` of `n` (`--shard i/n`): the presets at indices
    /// `j` with `j % n == i`, persisted as a binary shard report.
    pub shard: Option<(usize, usize)>,
    /// Merge mode: treat the positional arguments as binary shard-report
    /// paths, reassemble the full report, and write it to `out` as JSON.
    pub merge: bool,
    /// Positional shard-report paths (merge mode only).
    pub merge_inputs: Vec<String>,
    /// Zero every wall-clock field (`fuse_ms` and all span timings in the
    /// embedded traces) so reports from different runs (single vs.
    /// sharded) are byte-comparable.
    pub deterministic: bool,
    /// Write the whole-run trace (span tree, counters, series) to this
    /// path as JSON (`--trace PATH`).
    pub trace: Option<String>,
    /// Also compile the finished report into a servable `FusedKb`
    /// checkpoint at this path (`--build-kb PATH`). Works for single
    /// runs and for `--merge` (which then needs `--corpus`, since shard
    /// reports carry no extractions).
    pub build_kb: Option<String>,
    /// Which preset's scores the KB serves (`--kb-method`, default
    /// `popaccu_plus`). Must be among the presets the report contains.
    pub kb_method: String,
    /// Run as a distributed coordinator: bind this address, ship the
    /// corpus to registering workers, dispatch one task per preset, and
    /// merge the shard reports (`--serve-coordinator ADDR`).
    pub serve_coordinator: Option<String>,
    /// Run as a distributed worker: connect to this coordinator address
    /// and answer tasks until told to shut down (`--worker ADDR`).
    pub worker: Option<String>,
    /// Name this worker announces in its handshake (`--worker-name`,
    /// default `worker`); fault injection (`KF_DIST_FAIL`) matches on it.
    pub worker_name: String,
    /// Coordinator only: write the actually bound address (useful with
    /// port 0) to this file once listening (`--dist-addr-file PATH`), so
    /// scripts can start workers without guessing ports.
    pub dist_addr_file: Option<String>,
}

impl Default for ReproOptions {
    fn default() -> Self {
        ReproOptions {
            scale: "paper".to_string(),
            scenario: "honest".to_string(),
            seed: 42,
            out: Some("report.json".to_string()),
            out_explicit: false,
            workers: None,
            bins: 10,
            presets: Preset::ALL.to_vec(),
            diagnose: true,
            save_corpus: None,
            corpus: None,
            shard: None,
            merge: false,
            merge_inputs: Vec::new(),
            deterministic: false,
            trace: None,
            build_kb: None,
            kb_method: "popaccu_plus".to_string(),
            serve_coordinator: None,
            worker: None,
            worker_name: "worker".to_string(),
            dist_addr_file: None,
        }
    }
}

impl ReproOptions {
    /// Parse CLI arguments (without the program name).
    pub fn parse<I, S>(args: I) -> Result<ReproOptions, ParseError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let invalid = |msg: String| ParseError::Invalid(msg);
        let mut opts = ReproOptions::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let arg = arg.as_ref();
            let mut value = |name: &str| {
                it.next()
                    .map(|v| v.as_ref().to_string())
                    .ok_or_else(|| ParseError::Invalid(format!("{name} requires a value")))
            };
            match arg {
                "--scale" => {
                    let v = value("--scale")?;
                    if scale_config(&v).is_none() {
                        return Err(invalid(format!(
                            "unknown scale {v:?} (expected tiny|small|paper|large)"
                        )));
                    }
                    opts.scale = v;
                }
                "--scenario" => {
                    let v = value("--scenario")?;
                    if !SCENARIO_NAMES.contains(&v.as_str()) {
                        return Err(invalid(format!(
                            "unknown scenario {v:?} (expected one of {SCENARIO_NAMES:?})"
                        )));
                    }
                    opts.scenario = v;
                }
                "--seed" => {
                    let v = value("--seed")?;
                    opts.seed = v.parse().map_err(|_| invalid(format!("bad seed {v:?}")))?;
                }
                "--out" => {
                    opts.out = Some(value("--out")?);
                    opts.out_explicit = true;
                }
                "--no-out" => {
                    opts.out = None;
                    opts.out_explicit = true;
                }
                "--workers" => {
                    let v = value("--workers")?;
                    opts.workers = Some(
                        v.parse()
                            .map_err(|_| invalid(format!("bad worker count {v:?}")))?,
                    );
                }
                "--bins" => {
                    let v = value("--bins")?;
                    opts.bins = v
                        .parse()
                        .map_err(|_| invalid(format!("bad bin count {v:?}")))?;
                }
                "--presets" => {
                    let v = value("--presets")?;
                    let mut presets = Vec::new();
                    for name in v.split(',') {
                        presets.push(
                            Preset::by_name(name.trim())
                                .ok_or_else(|| invalid(format!("unknown preset {name:?}")))?,
                        );
                    }
                    if presets.is_empty() {
                        return Err(invalid("--presets needs at least one name".to_string()));
                    }
                    opts.presets = presets;
                }
                "--no-diagnose" => opts.diagnose = false,
                "--save-corpus" => opts.save_corpus = Some(value("--save-corpus")?),
                "--corpus" => opts.corpus = Some(value("--corpus")?),
                "--shard" => {
                    let v = value("--shard")?;
                    let parsed = v.split_once('/').and_then(|(i, n)| {
                        let i: usize = i.parse().ok()?;
                        let n: usize = n.parse().ok()?;
                        (n >= 1 && i < n).then_some((i, n))
                    });
                    opts.shard = Some(parsed.ok_or_else(|| {
                        invalid(format!("bad shard spec {v:?} (expected i/n with i < n)"))
                    })?);
                }
                "--merge" => opts.merge = true,
                "--deterministic" => opts.deterministic = true,
                "--trace" => opts.trace = Some(value("--trace")?),
                "--build-kb" => opts.build_kb = Some(value("--build-kb")?),
                "--kb-method" => {
                    let v = value("--kb-method")?;
                    if Preset::by_name(&v).is_none() {
                        return Err(invalid(format!("unknown --kb-method {v:?}")));
                    }
                    opts.kb_method = v;
                }
                "--serve-coordinator" => {
                    opts.serve_coordinator = Some(value("--serve-coordinator")?)
                }
                "--worker" => opts.worker = Some(value("--worker")?),
                "--worker-name" => opts.worker_name = value("--worker-name")?,
                "--dist-addr-file" => opts.dist_addr_file = Some(value("--dist-addr-file")?),
                "--help" | "-h" => return Err(ParseError::Help),
                other if !other.starts_with('-') => {
                    opts.merge_inputs.push(other.to_string());
                }
                other => return Err(invalid(format!("unknown argument {other:?}\n{USAGE}"))),
            }
        }
        if opts.serve_coordinator.is_some() && opts.worker.is_some() {
            return Err(invalid(
                "--serve-coordinator and --worker are different processes; pick one".to_string(),
            ));
        }
        if opts.serve_coordinator.is_some()
            && (opts.shard.is_some() || opts.merge || opts.save_corpus.is_some())
        {
            return Err(invalid(
                "--serve-coordinator is its own fan-out: it cannot be combined with \
                 --shard/--merge/--save-corpus"
                    .to_string(),
            ));
        }
        if opts.worker.is_some() {
            let conflict = opts.shard.is_some()
                || opts.merge
                || opts.save_corpus.is_some()
                || opts.corpus.is_some()
                || opts.build_kb.is_some()
                || opts.out_explicit;
            if conflict {
                return Err(invalid(
                    "--worker receives its corpus and task parameters from the \
                     coordinator and writes no report; it cannot be combined with \
                     --shard/--merge/--save-corpus/--corpus/--build-kb/--out/--no-out"
                        .to_string(),
                ));
            }
            if opts.scenario != "honest" {
                return Err(invalid(
                    "--scenario applies at corpus-generation time; a --worker fuses \
                     whatever corpus the coordinator ships"
                        .to_string(),
                ));
            }
        }
        if opts.dist_addr_file.is_some() && opts.serve_coordinator.is_none() {
            return Err(invalid(
                "--dist-addr-file only makes sense with --serve-coordinator (workers \
                 take the address as the --worker argument)"
                    .to_string(),
            ));
        }
        if opts.merge {
            if opts.merge_inputs.is_empty() {
                return Err(invalid(
                    "--merge needs at least one shard-report path".to_string(),
                ));
            }
            if opts.shard.is_some() || opts.save_corpus.is_some() {
                return Err(invalid(
                    "--merge cannot be combined with --shard/--save-corpus".to_string(),
                ));
            }
            // Shard reports carry no extractions, so compiling a KB out
            // of a merge needs the corpus snapshot the shards ran on;
            // without --build-kb a corpus would be silently unused.
            match (&opts.build_kb, &opts.corpus) {
                (Some(_), None) => {
                    return Err(invalid(
                        "--merge --build-kb needs --corpus (the snapshot the shards \
                         fused, to compile the KB from)"
                            .to_string(),
                    ))
                }
                (None, Some(_)) => {
                    return Err(invalid(
                        "--merge only accepts --corpus together with --build-kb".to_string(),
                    ))
                }
                _ => {}
            }
        } else if !opts.merge_inputs.is_empty() {
            return Err(invalid(format!(
                "positional argument {:?} only allowed with --merge\n{USAGE}",
                opts.merge_inputs[0]
            )));
        }
        if opts.scenario != "honest" && (opts.corpus.is_some() || opts.merge) {
            return Err(invalid(
                "--scenario applies at corpus-generation time; a checkpoint loaded \
                 with --corpus (or shard reports under --merge) already embeds its \
                 scenario"
                    .to_string(),
            ));
        }
        if opts.save_corpus.is_some() && opts.shard.is_some() {
            return Err(invalid(
                "--save-corpus cannot be combined with --shard (the snapshot subflow \
                 exits before fusing)"
                    .to_string(),
            ));
        }
        if opts.build_kb.is_some() {
            if opts.shard.is_some() {
                return Err(invalid(
                    "--build-kb cannot be combined with --shard (a shard report is \
                     partial; build the KB from the merged report instead)"
                        .to_string(),
                ));
            }
            if opts.save_corpus.is_some() {
                return Err(invalid(
                    "--build-kb cannot be combined with --save-corpus (the snapshot \
                     subflow exits before fusing)"
                        .to_string(),
                ));
            }
            let method = Preset::by_name(&opts.kb_method)
                .ok_or_else(|| invalid(format!("unknown --kb-method {:?}", opts.kb_method)))?;
            // In merge mode the preset list describes this process, not
            // the shard runs; membership is checked against the merged
            // report at runtime instead.
            if !opts.merge && !opts.presets.contains(&method) {
                return Err(invalid(format!(
                    "--kb-method {} is not among the presets this run fuses",
                    opts.kb_method
                )));
            }
        }
        Ok(opts)
    }
}

/// CLI usage text.
pub const USAGE: &str = "\
repro — generate a synthetic corpus, fuse it under the paper's five presets,
evaluate calibration and PR quality, and write a diffable report.json.

options:
  --scale tiny|small|paper|large   corpus size (default: paper)
  --scenario NAME                  hostile-corpus scenario applied at
                                   generation time (honest|copying|spam|
                                   drift|linkage; default: honest);
                                   incompatible with --corpus/--merge
  --seed N                         corpus seed (default: 42)
  --out PATH                       report path (default: report.json;
                                   binary shard report in --shard mode)
  --no-out                         skip writing the report file
  --workers N                      fusion worker threads
  --bins N                         calibration bins (default: 10)
  --presets a,b,c                  subset of: vote,accu,popaccu,
                                   popaccu_plus_unsup,popaccu_plus
  --no-diagnose                    skip the Fig. 17 error-taxonomy pass
                                   (per-preset \"taxonomy\" report section)
  --trace PATH                     write the whole-run trace (phase span
                                   tree, counters, series) as JSON

checkpointing & sharding:
  --save-corpus PATH               generate the corpus, save it as a
                                   checkpoint, and exit without fusing
  --corpus PATH                    load the corpus from a checkpoint
                                   instead of regenerating
  --shard I/N                      fuse only shard I of N (presets at
                                   indices j with j % N == I); writes a
                                   binary shard report to --out (default:
                                   report-shardIofN.bin)
  --merge SHARD.bin ...            merge binary shard reports back into
                                   one report.json (positional paths);
                                   methods reassemble in ablation order
  --deterministic                  zero every wall-clock field (fuse_ms
                                   and all trace timings) so single-
                                   process and merged sharded reports are
                                   byte-identical

distributed execution:
  --serve-coordinator ADDR         bind ADDR (port 0 picks a free port),
                                   ship the corpus to registering workers,
                                   dispatch one task per preset, and merge
                                   the shard reports exactly as --merge
  --worker ADDR                    connect to a coordinator at ADDR and
                                   answer tasks until shut down; corpus
                                   and fusion parameters arrive over the
                                   wire, so most other flags are rejected
  --worker-name NAME               handshake name (default: worker); the
                                   KF_DIST_FAIL fault injection matches it
  --dist-addr-file PATH            coordinator: write the bound address to
                                   PATH once listening, so scripts can
                                   start workers without guessing ports

serving:
  --build-kb PATH                  also compile the finished report into
                                   a servable FusedKb checkpoint (query
                                   it with kf-serve); with --merge this
                                   needs --corpus, so sharded runs emit
                                   a servable artifact in one pass
  --kb-method NAME                 preset the KB serves (default:
                                   popaccu_plus)
";

/// The corpus configuration for a scale name.
pub fn scale_config(scale: &str) -> Option<SynthConfig> {
    match scale {
        "tiny" => Some(SynthConfig::tiny()),
        "small" => Some(SynthConfig::small()),
        "paper" => Some(SynthConfig::paper()),
        "large" => Some(SynthConfig::large()),
        _ => None,
    }
}

/// Generate the corpus described by `opts`. Errors on an unknown scale
/// (possible when options are built directly rather than parsed).
pub fn generate_corpus(opts: &ReproOptions) -> Result<Corpus, String> {
    let mut config = scale_config(&opts.scale).ok_or_else(|| {
        format!(
            "unknown scale {:?} (expected tiny|small|paper|large)",
            opts.scale
        )
    })?;
    config.scenarios = scenario_config(&opts.scenario, &config).ok_or_else(|| {
        format!(
            "unknown scenario {:?} (expected one of {SCENARIO_NAMES:?})",
            opts.scenario
        )
    })?;
    Ok(Corpus::generate(&config, opts.seed))
}

/// Obtain the corpus for a run: load the checkpoint named by `--corpus`,
/// or generate from `--scale`/`--seed`. Returns the corpus and whether it
/// was loaded (for log lines).
///
/// A loaded corpus carries its own seed; the report's `corpus.seed` comes
/// from the corpus itself, so `--seed` is ignored in that case. The
/// `--scale` label is still recorded in the report header — pass the same
/// `--scale` the checkpoint was generated with to keep reports diffable.
pub fn obtain_corpus(opts: &ReproOptions) -> Result<(Corpus, bool), String> {
    match &opts.corpus {
        Some(path) => {
            let corpus =
                Corpus::load(path).map_err(|e| format!("cannot load corpus {path:?}: {e}"))?;
            Ok((corpus, true))
        }
        None => Ok((generate_corpus(opts)?, false)),
    }
}

/// The presets shard `index` of `of` is responsible for: round-robin over
/// `presets` (index `j` goes to shard `j % of`), so every shard gets a
/// near-equal mix of cheap and expensive presets and the union over all
/// shards is exactly `presets`, each exactly once. The split itself
/// lives in [`kf_mapreduce::round_robin`], shared with the `kf-dist`
/// coordinator's task table.
pub fn shard_presets(presets: &[Preset], index: usize, of: usize) -> Vec<Preset> {
    kf_mapreduce::round_robin(presets, index, of)
}

/// The task table a `--serve-coordinator` run dispatches: one
/// [`TaskSpec`] per preset, in ablation order, each carrying the fusion
/// parameters of this run. One preset per task keeps every shard report
/// deterministic for its `(corpus, task)` pair — the property that makes
/// re-dispatched replicas interchangeable in the merge — and gives the
/// scheduler the finest work units the merge semantics allow.
pub fn dist_task_specs(opts: &ReproOptions) -> Vec<TaskSpec> {
    opts.presets
        .iter()
        .enumerate()
        .map(|(i, preset)| TaskSpec {
            task_id: i as u32,
            shard_index: i as u32,
            shard_count: opts.presets.len() as u32,
            presets: vec![preset.name().to_string()],
            scale: opts.scale.clone(),
            bins: opts.bins as u64,
            workers: opts.workers.unwrap_or(0) as u64,
            diagnose: opts.diagnose,
            deterministic: opts.deterministic,
        })
        .collect()
}

/// The [`ReproOptions`] a worker reconstructs from a dispatched
/// [`TaskSpec`]: the inverse of [`dist_task_specs`] for every field a
/// task carries (`workers == 0` encodes "library default"). Errors on an
/// unknown preset name — the coordinator speaking a preset this build
/// does not know is a deployment skew the worker must surface, not fuse
/// around.
pub fn options_for_task(spec: &TaskSpec) -> Result<ReproOptions, String> {
    let presets = spec
        .presets
        .iter()
        .map(|name| {
            Preset::by_name(name)
                .ok_or_else(|| format!("task {}: unknown preset {name:?}", spec.task_id))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(ReproOptions {
        scale: spec.scale.clone(),
        bins: spec.bins as usize,
        workers: (spec.workers > 0).then_some(spec.workers as usize),
        presets,
        diagnose: spec.diagnose,
        deterministic: spec.deterministic,
        ..ReproOptions::default()
    })
}

/// Load binary shard reports and merge them into the full report (the
/// `--merge` subflow).
pub fn merge_shards(paths: &[String]) -> Result<EvalReport, String> {
    let mut shards = Vec::with_capacity(paths.len());
    for path in paths {
        shards
            .push(EvalReport::load(path).map_err(|e| format!("cannot load shard {path:?}: {e}"))?);
    }
    kf_eval::merge_reports(shards).map_err(|e| e.to_string())
}

/// Compile the `--build-kb` artifact from a finished report and the
/// corpus it measured, and save it at `opts.build_kb`. Returns the
/// serving KB for log lines.
///
/// Shared by the single-run and `--merge` subflows of `repro`, so a
/// sharded reproduction emits a servable artifact directly from the
/// in-memory merged report — no second load/decode pass over the
/// artifacts it just wrote.
pub fn compile_kb(
    opts: &ReproOptions,
    report: &EvalReport,
    corpus: &Corpus,
) -> Result<kf_serve::FusedKb, String> {
    let path = opts
        .build_kb
        .as_ref()
        .ok_or_else(|| "compile_kb called without --build-kb".to_string())?;
    let kb_opts = kf_serve::KbBuildOptions {
        method: opts.kb_method.clone(),
        workers: opts.workers,
    };
    let kb = kf_serve::FusedKb::compile(report, corpus, &kb_opts)
        .map_err(|e| format!("cannot compile KB: {e}"))?;
    kb.save(path)
        .map_err(|e| format!("cannot write KB {path:?}: {e}"))?;
    Ok(kb)
}

/// End-to-end: generate, fuse each preset, evaluate, assemble the report.
pub fn run(opts: &ReproOptions) -> Result<EvalReport, String> {
    let corpus = generate_corpus(opts)?;
    Ok(run_on_corpus(opts, &corpus))
}

/// The per-corpus inputs the error-taxonomy diagnosis pass shares across
/// every preset: the batch-level support index, the generator-truth and
/// scenario-truth joins, the extractor labels, and the MapReduce
/// configuration the diagnoser partitions under.
///
/// Building this is the expensive prefix of a diagnosing run (a full
/// MapReduce over the extraction batch), so callers that fuse the same
/// corpus repeatedly — the `kf-dist` worker running one task per preset
/// shard — build it once with [`build_diagnosis_context`] and hand it to
/// [`run_on_corpus_with_context`] for every task.
pub struct DiagnosisContext {
    support: SupportIndex,
    truth: kf_types::FxHashMap<kf_types::Triple, kf_types::ErrorCategory>,
    scenario: kf_types::FxHashMap<kf_types::Triple, kf_types::ScenarioPhenomenon>,
    labels: Vec<String>,
    mr: MrConfig,
}

/// Build the shared diagnosis inputs for `corpus`, or `None` when
/// `opts.diagnose` is off. The support index is shared by all presets,
/// so its cost is recorded on the *process-level* trace (under a
/// `support_index` span), not any method's.
pub fn build_diagnosis_context(opts: &ReproOptions, corpus: &Corpus) -> Option<DiagnosisContext> {
    let mr = opts.workers.map_or_else(MrConfig::default, |w| MrConfig {
        workers: w.max(1),
        partitions: w.max(1) * 4,
        ..MrConfig::default()
    });
    opts.diagnose.then(|| {
        let _span = kf_telemetry::span("support_index");
        let (support, _) = SupportIndex::build(&corpus.batch.records, &mr);
        let truth = corpus.taxonomy_truth();
        // Empty for honest corpora; hostile checkpoints carry their
        // injected phenomena into every method's taxonomy section.
        let scenario = corpus.scenario_truth();
        let labels: Vec<String> = corpus.extractors.iter().map(|e| e.name.clone()).collect();
        DiagnosisContext {
            support,
            truth,
            scenario,
            labels,
            mr,
        }
    })
}

/// [`run`] over an existing corpus.
///
/// Per preset: fuse (with provenance attribution when diagnosing),
/// evaluate calibration/PR, and — unless `opts.diagnose` is off — run the
/// `kf-diagnose` error-taxonomy pass so every method's report section
/// carries the Fig. 17 breakdown plus the heuristic-vs-injected confusion
/// matrix. The batch-level support index and generator-truth join are
/// computed once ([`build_diagnosis_context`]) and shared by all presets.
///
/// Every preset runs under a fresh `kf-telemetry` trace; the resulting
/// span tree and counters are attached as [`MethodEval::trace`], so
/// traces ride through shard reports and reassemble under `--merge`.
/// With `opts.deterministic` the finished report is passed through
/// [`EvalReport::quarantine_timings`], zeroing `fuse_ms` and every span
/// duration.
pub fn run_on_corpus(opts: &ReproOptions, corpus: &Corpus) -> EvalReport {
    let diagnosis = build_diagnosis_context(opts, corpus);
    run_on_corpus_with_context(opts, corpus, diagnosis.as_ref())
}

/// [`run_on_corpus`] with the diagnosis inputs prebuilt (`None` disables
/// the taxonomy pass, exactly like `opts.diagnose == false`). The
/// context must have been built from the same corpus and equivalent
/// options; reusing it changes nothing about the produced bytes, only
/// skips recomputing the support index.
pub fn run_on_corpus_with_context(
    opts: &ReproOptions,
    corpus: &Corpus,
    diagnosis: Option<&DiagnosisContext>,
) -> EvalReport {
    let runner = AblationRunner {
        n_bins: opts.bins,
        workers: opts.workers,
        scale: opts.scale.clone(),
        ..Default::default()
    };
    let methods: Vec<MethodEval> = opts
        .presets
        .iter()
        .map(|&preset| {
            let run_one = || -> MethodEval {
                // Without diagnosis the ablation runner's plain path
                // applies — no provenance attribution is built.
                let Some(ctx) = diagnosis else {
                    return runner.run_preset(corpus, preset);
                };
                let mut config = preset.config();
                if let Some(w) = opts.workers {
                    config = config.with_workers(w);
                }
                let gold = preset.needs_gold().then_some(&corpus.gold);
                let start = Instant::now();
                let (output, attribution) =
                    kf_core::Fuser::new(config).run_with_attribution(&corpus.batch, gold);
                let fuse_ms = start.elapsed().as_secs_f64() * 1e3;
                let mut method: MethodEval =
                    runner.evaluate(preset, &output, &corpus.gold, fuse_ms);
                let taxonomy = {
                    let _span = kf_telemetry::span("diagnose");
                    let (taxonomy, _) = Diagnoser::new(&corpus.gold, &corpus.world, &ctx.support)
                        .with_truth(&ctx.truth)
                        .with_scenario(&ctx.scenario)
                        .with_attribution(&attribution)
                        .with_extractor_labels(&ctx.labels)
                        .with_config(DiagnoseConfig {
                            mr: ctx.mr,
                            ..Default::default()
                        })
                        .run(&output);
                    taxonomy
                };
                method.taxonomy = Some(taxonomy);
                method
            };
            // Each preset runs under its own trace (shadowing any
            // process-level one), so the shard a preset happens to run in
            // never changes what its trace records.
            let trace = kf_telemetry::Trace::with_root("method");
            let mut method = {
                let _installed = kf_telemetry::install(&trace);
                run_one()
            };
            method.trace = Some(trace.snapshot());
            method
        })
        .collect();
    let mut report = EvalReport {
        corpus: runner.corpus_summary(corpus),
        methods,
    };
    if opts.deterministic {
        // Wall-clock is the report's only nondeterministic content; one
        // quarantine pass zeroes every timing field (fuse_ms and all span
        // durations) so single-process and merged sharded runs are
        // byte-identical.
        report.quarantine_timings();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults() {
        let opts = ReproOptions::parse(Vec::<String>::new()).unwrap();
        assert_eq!(opts.scale, "paper");
        assert_eq!(opts.seed, 42);
        assert_eq!(opts.out.as_deref(), Some("report.json"));
        assert_eq!(opts.presets.len(), 5);
    }

    #[test]
    fn parse_all_options() {
        let opts = ReproOptions::parse([
            "--scale",
            "tiny",
            "--seed",
            "9",
            "--out",
            "x.json",
            "--workers",
            "3",
            "--bins",
            "20",
            "--presets",
            "vote,popaccu",
            "--trace",
            "t.json",
        ])
        .unwrap();
        assert_eq!(opts.scale, "tiny");
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.out.as_deref(), Some("x.json"));
        assert_eq!(opts.workers, Some(3));
        assert_eq!(opts.bins, 20);
        assert_eq!(opts.presets, vec![Preset::Vote, Preset::PopAccu]);
        assert_eq!(opts.trace.as_deref(), Some("t.json"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ReproOptions::parse(["--scale", "huge"]).is_err());
        assert!(ReproOptions::parse(["--seed", "abc"]).is_err());
        assert!(ReproOptions::parse(["--presets", "nope"]).is_err());
        assert!(ReproOptions::parse(["--frobnicate"]).is_err());
        assert!(ReproOptions::parse(["--seed"]).is_err());
    }

    #[test]
    fn parse_scenario_flag() {
        assert_eq!(
            ReproOptions::parse(Vec::<String>::new()).unwrap().scenario,
            "honest"
        );
        for name in SCENARIO_NAMES {
            let opts = ReproOptions::parse(["--scenario", name]).unwrap();
            assert_eq!(opts.scenario, *name);
        }
        assert!(ReproOptions::parse(["--scenario", "zombie"]).is_err());
        assert!(ReproOptions::parse(["--scenario"]).is_err());
        // A scenario rewrites the generator config, so it cannot combine
        // with a pre-generated checkpoint or a shard merge.
        assert!(ReproOptions::parse(["--scenario", "spam", "--corpus", "c.kfc"]).is_err());
        let err =
            ReproOptions::parse(["--scenario", "spam", "--merge", "a.bin", "--out", "r.json"])
                .unwrap_err();
        assert!(err.to_string().contains("--scenario"), "{err}");
    }

    #[test]
    fn parse_checkpoint_and_shard_flags() {
        let opts = ReproOptions::parse([
            "--corpus",
            "c.kfc",
            "--shard",
            "1/3",
            "--deterministic",
            "--out",
            "s1.bin",
        ])
        .unwrap();
        assert_eq!(opts.corpus.as_deref(), Some("c.kfc"));
        assert_eq!(opts.shard, Some((1, 3)));
        assert!(opts.deterministic);
        assert_eq!(opts.out.as_deref(), Some("s1.bin"));

        let opts = ReproOptions::parse(["--save-corpus", "snap.kfc", "--scale", "tiny"]).unwrap();
        assert_eq!(opts.save_corpus.as_deref(), Some("snap.kfc"));

        // Explicitness of --out / --no-out is tracked so shard mode can
        // tell a defaulted report.json from a requested one.
        assert!(
            !ReproOptions::parse(Vec::<String>::new())
                .unwrap()
                .out_explicit
        );
        assert!(
            ReproOptions::parse(["--out", "report.json"])
                .unwrap()
                .out_explicit
        );
        let no_out = ReproOptions::parse(["--no-out"]).unwrap();
        assert!(no_out.out_explicit && no_out.out.is_none());

        let opts = ReproOptions::parse(["--merge", "a.bin", "b.bin", "--out", "m.json"]).unwrap();
        assert!(opts.merge);
        assert_eq!(opts.merge_inputs, vec!["a.bin", "b.bin"]);
    }

    #[test]
    fn parse_rejects_invalid_shard_and_merge_combos() {
        // Malformed shard specs.
        for bad in ["2/2", "3/2", "x/2", "1", "1/0", "/2", "1/"] {
            assert!(ReproOptions::parse(["--shard", bad]).is_err(), "{bad}");
        }
        // Positionals without --merge.
        assert!(ReproOptions::parse(["stray.bin"]).is_err());
        // Merge without inputs, or combined with generation/shard flags.
        assert!(ReproOptions::parse(["--merge"]).is_err());
        assert!(ReproOptions::parse(["--merge", "a.bin", "--shard", "0/2"]).is_err());
        assert!(ReproOptions::parse(["--merge", "a.bin", "--corpus", "c.kfc"]).is_err());
        assert!(ReproOptions::parse(["--merge", "a.bin", "--save-corpus", "c.kfc"]).is_err());
        // Snapshot mode exits before fusing, so a shard request with it
        // is a contradiction, not a silent no-op.
        assert!(ReproOptions::parse(["--save-corpus", "c.kfc", "--shard", "0/2"]).is_err());
    }

    #[test]
    fn parse_build_kb_flags() {
        let opts = ReproOptions::parse(["--build-kb", "out.kb"]).unwrap();
        assert_eq!(opts.build_kb.as_deref(), Some("out.kb"));
        assert_eq!(opts.kb_method, "popaccu_plus");

        let opts = ReproOptions::parse(["--build-kb", "out.kb", "--kb-method", "vote"]).unwrap();
        assert_eq!(opts.kb_method, "vote");

        // Merge mode emits the KB straight from the merged report, but
        // needs the corpus snapshot the shards fused.
        let opts = ReproOptions::parse([
            "--merge",
            "a.bin",
            "b.bin",
            "--build-kb",
            "out.kb",
            "--corpus",
            "c.kfc",
        ])
        .unwrap();
        assert!(opts.merge);
        assert_eq!(opts.build_kb.as_deref(), Some("out.kb"));
        assert_eq!(opts.corpus.as_deref(), Some("c.kfc"));
    }

    #[test]
    fn parse_rejects_invalid_build_kb_combos() {
        // Unknown or un-run serving method.
        assert!(ReproOptions::parse(["--build-kb", "o.kb", "--kb-method", "nope"]).is_err());
        assert!(ReproOptions::parse([
            "--build-kb",
            "o.kb",
            "--presets",
            "vote",
            "--kb-method",
            "accu"
        ])
        .is_err());
        // A shard report is partial; the snapshot subflow never fuses.
        assert!(ReproOptions::parse(["--build-kb", "o.kb", "--shard", "0/2"]).is_err());
        assert!(ReproOptions::parse(["--build-kb", "o.kb", "--save-corpus", "c.kfc"]).is_err());
        // Merge + KB without the corpus, and merge + corpus without a KB.
        assert!(ReproOptions::parse(["--merge", "a.bin", "--build-kb", "o.kb"]).is_err());
        assert!(ReproOptions::parse(["--merge", "a.bin", "--corpus", "c.kfc"]).is_err());
    }

    #[test]
    fn parse_dist_flags() {
        let opts = ReproOptions::parse([
            "--serve-coordinator",
            "127.0.0.1:0",
            "--dist-addr-file",
            "addr.txt",
            "--deterministic",
        ])
        .unwrap();
        assert_eq!(opts.serve_coordinator.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(opts.dist_addr_file.as_deref(), Some("addr.txt"));

        let opts =
            ReproOptions::parse(["--worker", "127.0.0.1:7000", "--worker-name", "w3"]).unwrap();
        assert_eq!(opts.worker.as_deref(), Some("127.0.0.1:7000"));
        assert_eq!(opts.worker_name, "w3");
        assert_eq!(
            ReproOptions::parse(Vec::<String>::new())
                .unwrap()
                .worker_name,
            "worker"
        );
    }

    #[test]
    fn parse_rejects_invalid_dist_combos() {
        // One process is one role.
        assert!(
            ReproOptions::parse(["--serve-coordinator", "127.0.0.1:0", "--worker", "a:1"]).is_err()
        );
        // The coordinator replaces the process-level fan-out flags.
        for extra in [
            ["--shard", "0/2"],
            ["--merge", "a.bin"],
            ["--save-corpus", "c.kfc"],
        ] {
            let args = ["--serve-coordinator", "127.0.0.1:0", extra[0], extra[1]];
            assert!(ReproOptions::parse(args).is_err(), "{extra:?}");
        }
        // A worker's corpus and parameters come over the wire.
        for extra in [
            ["--shard", "0/2"],
            ["--merge", "a.bin"],
            ["--save-corpus", "c.kfc"],
            ["--corpus", "c.kfc"],
            ["--build-kb", "o.kb"],
            ["--out", "r.json"],
            ["--scenario", "spam"],
        ] {
            let args = ["--worker", "127.0.0.1:7000", extra[0], extra[1]];
            assert!(ReproOptions::parse(args).is_err(), "{extra:?}");
        }
        // The address file is the coordinator's rendezvous output.
        assert!(ReproOptions::parse(["--dist-addr-file", "addr.txt"]).is_err());
        assert!(ReproOptions::parse(["--worker", "a:1", "--dist-addr-file", "addr.txt"]).is_err());
    }

    #[test]
    fn task_specs_roundtrip_through_worker_options() {
        let opts = ReproOptions {
            scale: "tiny".into(),
            bins: 7,
            workers: Some(3),
            deterministic: true,
            ..Default::default()
        };
        let specs = dist_task_specs(&opts);
        assert_eq!(specs.len(), Preset::ALL.len());
        for (i, spec) in specs.iter().enumerate() {
            assert_eq!(spec.task_id, i as u32);
            assert_eq!(spec.shard_count, Preset::ALL.len() as u32);
            assert_eq!(spec.presets, vec![Preset::ALL[i].name().to_string()]);
            let back = options_for_task(spec).unwrap();
            assert_eq!(back.scale, "tiny");
            assert_eq!(back.bins, 7);
            assert_eq!(back.workers, Some(3));
            assert!(back.deterministic && back.diagnose);
            assert_eq!(back.presets, vec![Preset::ALL[i]]);
        }
        // The union over tasks is the preset list, each exactly once —
        // the invariant the merge's duplicate check enforces later.
        let union: Vec<String> = specs.iter().flat_map(|s| s.presets.clone()).collect();
        let names: Vec<String> = Preset::ALL.iter().map(|p| p.name().to_string()).collect();
        assert_eq!(union, names);
        // workers == 0 encodes the library default.
        let spec = &dist_task_specs(&ReproOptions {
            workers: None,
            ..Default::default()
        })[0];
        assert_eq!(spec.workers, 0);
        assert_eq!(options_for_task(spec).unwrap().workers, None);
        // Unknown preset names surface as deployment skew, not a panic.
        let mut bad = specs[0].clone();
        bad.presets = vec!["warp-drive".into()];
        assert!(options_for_task(&bad).unwrap_err().contains("warp-drive"));
    }

    #[test]
    fn shard_presets_partition_round_robin() {
        let all = Preset::ALL.to_vec();
        let s0 = shard_presets(&all, 0, 2);
        let s1 = shard_presets(&all, 1, 2);
        assert_eq!(s0, vec![Preset::Vote, Preset::PopAccu, Preset::PopAccuPlus]);
        assert_eq!(s1, vec![Preset::Accu, Preset::PopAccuPlusUnsup]);
        // The union over shards is exactly the preset list, each once.
        let mut union: Vec<Preset> = s0.into_iter().chain(s1).collect();
        union.sort_by_key(|p| Preset::ALL.iter().position(|q| q == p).unwrap());
        assert_eq!(union, all);
        // One shard = the whole list.
        assert_eq!(shard_presets(&all, 0, 1), all);
    }

    #[test]
    fn tiny_end_to_end_produces_all_presets() {
        let opts = ReproOptions {
            scale: "tiny".into(),
            seed: 5,
            out: None,
            workers: Some(2),
            ..Default::default()
        };
        let report = run(&opts).unwrap();
        assert_eq!(report.methods.len(), 5);
        assert!(report.corpus.n_records > 0);
        for m in &report.methods {
            assert!(m.wdev().is_finite());
            // Every preset carries a taxonomy section by default, and its
            // categories partition the diagnosed false positives.
            let taxonomy = m.taxonomy.as_ref().expect("taxonomy attached");
            for band in &taxonomy.bands {
                assert_eq!(band.counts.total(), band.n_labelled - band.n_true);
            }
            assert!(taxonomy.systematic_attribution.is_some());
        }
        // The JSON report names the section for every preset.
        let json = report.to_json_string();
        assert_eq!(json.matches("\"taxonomy\"").count(), 5);
    }

    #[test]
    fn methods_carry_traces_and_deterministic_quarantines_them() {
        let opts = ReproOptions {
            scale: "tiny".into(),
            seed: 5,
            out: None,
            workers: Some(2),
            deterministic: true,
            ..Default::default()
        };
        let report = run(&opts).unwrap();
        for m in &report.methods {
            assert_eq!(m.fuse_ms, 0.0, "{}: fuse_ms quarantined", m.name);
            let trace = m.trace.as_ref().expect("trace attached");
            // The method-level phases are all present...
            for phase in ["fuse", "eval", "diagnose"] {
                assert!(trace.root.child(phase).is_some(), "{}: {phase}", m.name);
            }
            // ...every span duration is quarantined to zero...
            assert!(trace.flat_timings().iter().all(|(_, ns)| *ns == 0));
            // ...and the fusion counters made it across the crate seam.
            assert!(trace.counters.iter().any(|c| c.name == "fuse.rounds"));
            assert!(trace.counters.iter().any(|c| c.name == "mr.jobs"));
        }
    }

    #[test]
    fn no_diagnose_flag_omits_the_taxonomy() {
        let opts = ReproOptions {
            scale: "tiny".into(),
            seed: 5,
            out: None,
            workers: Some(2),
            ..ReproOptions::parse(["--no-diagnose"]).unwrap()
        };
        assert!(!opts.diagnose);
        let report = run(&opts).unwrap();
        assert!(report.methods.iter().all(|m| m.taxonomy.is_none()));
        assert!(!report.to_json_string().contains("\"taxonomy\""));
    }
}
