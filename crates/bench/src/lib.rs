//! placeholder — experiment harness lands here next.
