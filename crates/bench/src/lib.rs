//! # kf-bench — the experiment harness
//!
//! Shared machinery behind the `repro` binary and the criterion benches:
//! option parsing for the reproduction CLI, corpus-scale presets, and the
//! end-to-end generate → fuse → evaluate driver whose output is the
//! diffable `report.json`.
//!
//! ```
//! use kf_bench::{ReproOptions, run};
//!
//! let opts = ReproOptions::parse(["--scale", "tiny", "--seed", "7"]).unwrap();
//! let report = run(&opts).unwrap();
//! assert_eq!(report.methods.len(), 5);
//! ```

use kf_diagnose::{DiagnoseConfig, Diagnoser, SupportIndex};
use kf_eval::{AblationRunner, EvalReport, MethodEval, Preset};
use kf_mapreduce::MrConfig;
use kf_synth::{Corpus, SynthConfig};
use std::time::Instant;

/// Why [`ReproOptions::parse`] did not produce options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// `--help` was requested; print [`USAGE`] and exit successfully.
    Help,
    /// The arguments were invalid.
    Invalid(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Help => f.write_str(USAGE),
            ParseError::Invalid(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ParseError {}

/// Options of the `repro` binary.
#[derive(Debug, Clone)]
pub struct ReproOptions {
    /// Corpus scale preset: `tiny`, `small`, `paper` (default) or `large`.
    pub scale: String,
    /// Corpus generator seed.
    pub seed: u64,
    /// Where to write the JSON report (`None` = don't write).
    pub out: Option<String>,
    /// Fusion worker threads (`None` = library default).
    pub workers: Option<usize>,
    /// Calibration bins per curve.
    pub bins: usize,
    /// Presets to run (default: all five).
    pub presets: Vec<Preset>,
    /// Run the Fig. 17 error-taxonomy diagnosis per preset and embed the
    /// `taxonomy` section in the report (default: true).
    pub diagnose: bool,
}

impl Default for ReproOptions {
    fn default() -> Self {
        ReproOptions {
            scale: "paper".to_string(),
            seed: 42,
            out: Some("report.json".to_string()),
            workers: None,
            bins: 10,
            presets: Preset::ALL.to_vec(),
            diagnose: true,
        }
    }
}

impl ReproOptions {
    /// Parse CLI arguments (without the program name).
    pub fn parse<I, S>(args: I) -> Result<ReproOptions, ParseError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let invalid = |msg: String| ParseError::Invalid(msg);
        let mut opts = ReproOptions::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let arg = arg.as_ref();
            let mut value = |name: &str| {
                it.next()
                    .map(|v| v.as_ref().to_string())
                    .ok_or_else(|| ParseError::Invalid(format!("{name} requires a value")))
            };
            match arg {
                "--scale" => {
                    let v = value("--scale")?;
                    if scale_config(&v).is_none() {
                        return Err(invalid(format!(
                            "unknown scale {v:?} (expected tiny|small|paper|large)"
                        )));
                    }
                    opts.scale = v;
                }
                "--seed" => {
                    let v = value("--seed")?;
                    opts.seed = v.parse().map_err(|_| invalid(format!("bad seed {v:?}")))?;
                }
                "--out" => opts.out = Some(value("--out")?),
                "--no-out" => opts.out = None,
                "--workers" => {
                    let v = value("--workers")?;
                    opts.workers = Some(
                        v.parse()
                            .map_err(|_| invalid(format!("bad worker count {v:?}")))?,
                    );
                }
                "--bins" => {
                    let v = value("--bins")?;
                    opts.bins = v
                        .parse()
                        .map_err(|_| invalid(format!("bad bin count {v:?}")))?;
                }
                "--presets" => {
                    let v = value("--presets")?;
                    let mut presets = Vec::new();
                    for name in v.split(',') {
                        presets.push(
                            Preset::by_name(name.trim())
                                .ok_or_else(|| invalid(format!("unknown preset {name:?}")))?,
                        );
                    }
                    if presets.is_empty() {
                        return Err(invalid("--presets needs at least one name".to_string()));
                    }
                    opts.presets = presets;
                }
                "--no-diagnose" => opts.diagnose = false,
                "--help" | "-h" => return Err(ParseError::Help),
                other => return Err(invalid(format!("unknown argument {other:?}\n{USAGE}"))),
            }
        }
        Ok(opts)
    }
}

/// CLI usage text.
pub const USAGE: &str = "\
repro — generate a synthetic corpus, fuse it under the paper's five presets,
evaluate calibration and PR quality, and write a diffable report.json.

options:
  --scale tiny|small|paper|large   corpus size (default: paper)
  --seed N                         corpus seed (default: 42)
  --out PATH                       report path (default: report.json)
  --no-out                         skip writing the report file
  --workers N                      fusion worker threads
  --bins N                         calibration bins (default: 10)
  --presets a,b,c                  subset of: vote,accu,popaccu,
                                   popaccu_plus_unsup,popaccu_plus
  --no-diagnose                    skip the Fig. 17 error-taxonomy pass
                                   (per-preset \"taxonomy\" report section)
";

/// The corpus configuration for a scale name.
pub fn scale_config(scale: &str) -> Option<SynthConfig> {
    match scale {
        "tiny" => Some(SynthConfig::tiny()),
        "small" => Some(SynthConfig::small()),
        "paper" => Some(SynthConfig::paper()),
        "large" => Some(SynthConfig::large()),
        _ => None,
    }
}

/// Generate the corpus described by `opts`. Errors on an unknown scale
/// (possible when options are built directly rather than parsed).
pub fn generate_corpus(opts: &ReproOptions) -> Result<Corpus, String> {
    let config = scale_config(&opts.scale).ok_or_else(|| {
        format!(
            "unknown scale {:?} (expected tiny|small|paper|large)",
            opts.scale
        )
    })?;
    Ok(Corpus::generate(&config, opts.seed))
}

/// End-to-end: generate, fuse each preset, evaluate, assemble the report.
pub fn run(opts: &ReproOptions) -> Result<EvalReport, String> {
    let corpus = generate_corpus(opts)?;
    Ok(run_on_corpus(opts, &corpus))
}

/// [`run`] over an existing corpus.
///
/// Per preset: fuse (with provenance attribution when diagnosing),
/// evaluate calibration/PR, and — unless `opts.diagnose` is off — run the
/// `kf-diagnose` error-taxonomy pass so every method's report section
/// carries the Fig. 17 breakdown plus the heuristic-vs-injected confusion
/// matrix. The batch-level support index and generator-truth join are
/// computed once and shared by all presets.
pub fn run_on_corpus(opts: &ReproOptions, corpus: &Corpus) -> EvalReport {
    let runner = AblationRunner {
        n_bins: opts.bins,
        workers: opts.workers,
        scale: opts.scale.clone(),
        ..Default::default()
    };
    let mr = opts.workers.map_or_else(MrConfig::default, |w| MrConfig {
        workers: w.max(1),
        partitions: w.max(1) * 4,
        ..MrConfig::default()
    });
    let diagnosis = opts.diagnose.then(|| {
        let (support, _) = SupportIndex::build(&corpus.batch.records, &mr);
        let truth = corpus.taxonomy_truth();
        let labels: Vec<String> = corpus.extractors.iter().map(|e| e.name.clone()).collect();
        (support, truth, labels)
    });

    let methods = opts
        .presets
        .iter()
        .map(|&preset| {
            // Without diagnosis the ablation runner's plain path applies —
            // no provenance attribution is built.
            let Some((support, truth, labels)) = &diagnosis else {
                return runner.run_preset(corpus, preset);
            };
            let mut config = preset.config();
            if let Some(w) = opts.workers {
                config = config.with_workers(w);
            }
            let gold = preset.needs_gold().then_some(&corpus.gold);
            let start = Instant::now();
            let (output, attribution) =
                kf_core::Fuser::new(config).run_with_attribution(&corpus.batch, gold);
            let fuse_ms = start.elapsed().as_secs_f64() * 1e3;
            let mut method: MethodEval = runner.evaluate(preset, &output, &corpus.gold, fuse_ms);
            let (taxonomy, _) = Diagnoser::new(&corpus.gold, &corpus.world, support)
                .with_truth(truth)
                .with_attribution(&attribution)
                .with_extractor_labels(labels)
                .with_config(DiagnoseConfig {
                    mr,
                    ..Default::default()
                })
                .run(&output);
            method.taxonomy = Some(taxonomy);
            method
        })
        .collect();
    EvalReport {
        corpus: runner.corpus_summary(corpus),
        methods,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults() {
        let opts = ReproOptions::parse(Vec::<String>::new()).unwrap();
        assert_eq!(opts.scale, "paper");
        assert_eq!(opts.seed, 42);
        assert_eq!(opts.out.as_deref(), Some("report.json"));
        assert_eq!(opts.presets.len(), 5);
    }

    #[test]
    fn parse_all_options() {
        let opts = ReproOptions::parse([
            "--scale",
            "tiny",
            "--seed",
            "9",
            "--out",
            "x.json",
            "--workers",
            "3",
            "--bins",
            "20",
            "--presets",
            "vote,popaccu",
        ])
        .unwrap();
        assert_eq!(opts.scale, "tiny");
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.out.as_deref(), Some("x.json"));
        assert_eq!(opts.workers, Some(3));
        assert_eq!(opts.bins, 20);
        assert_eq!(opts.presets, vec![Preset::Vote, Preset::PopAccu]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ReproOptions::parse(["--scale", "huge"]).is_err());
        assert!(ReproOptions::parse(["--seed", "abc"]).is_err());
        assert!(ReproOptions::parse(["--presets", "nope"]).is_err());
        assert!(ReproOptions::parse(["--frobnicate"]).is_err());
        assert!(ReproOptions::parse(["--seed"]).is_err());
    }

    #[test]
    fn tiny_end_to_end_produces_all_presets() {
        let opts = ReproOptions {
            scale: "tiny".into(),
            seed: 5,
            out: None,
            workers: Some(2),
            ..Default::default()
        };
        let report = run(&opts).unwrap();
        assert_eq!(report.methods.len(), 5);
        assert!(report.corpus.n_records > 0);
        for m in &report.methods {
            assert!(m.wdev().is_finite());
            // Every preset carries a taxonomy section by default, and its
            // categories partition the diagnosed false positives.
            let taxonomy = m.taxonomy.as_ref().expect("taxonomy attached");
            for band in &taxonomy.bands {
                assert_eq!(band.counts.total(), band.n_labelled - band.n_true);
            }
            assert!(taxonomy.systematic_attribution.is_some());
        }
        // The JSON report names the section for every preset.
        let json = report.to_json_string();
        assert_eq!(json.matches("\"taxonomy\"").count(), 5);
    }

    #[test]
    fn no_diagnose_flag_omits_the_taxonomy() {
        let opts = ReproOptions {
            scale: "tiny".into(),
            seed: 5,
            out: None,
            workers: Some(2),
            ..ReproOptions::parse(["--no-diagnose"]).unwrap()
        };
        assert!(!opts.diagnose);
        let report = run(&opts).unwrap();
        assert!(report.methods.iter().all(|m| m.taxonomy.is_none()));
        assert!(!report.to_json_string().contains("\"taxonomy\""));
    }
}
