//! The hostile-corpus scenario matrix: named adversarial generator
//! configurations (copying, spam, drift, hard linkage) × fusion presets,
//! with every degradation measured against the generator's injected
//! ground truth rather than assumed.
//!
//! Each scenario is a [`ScenarioConfig`] derived *proportionally* from
//! the base corpus shape (spam pages as a fraction of organic pages,
//! drift as a fraction of items), so `tiny` smoke runs and the
//! `paper`-scale CI gate exercise the same relative hostility. The
//! matrix runner fuses every requested preset on every scenario corpus,
//! evaluates calibration/ranking, and joins `kf-diagnose` against
//! [`Corpus::scenario_truth`] so each cell records how much injected
//! mass each method let through — the `scenarios.json` artifact CI
//! uploads on every push.

use kf_diagnose::{DiagnoseConfig, Diagnoser, SupportIndex};
use kf_eval::{AblationRunner, Json, Preset};
use kf_mapreduce::MrConfig;
use kf_synth::{
    CopyingConfig, Corpus, DriftConfig, LinkageConfig, ScenarioConfig, SpamConfig, SynthConfig,
};
use kf_types::{GroupBreakdown, Label, ScenarioPhenomenon, Triple};

/// Every scenario the matrix runs, `honest` first as the baseline.
pub const SCENARIO_NAMES: [&str; 5] = ["honest", "copying", "spam", "drift", "linkage"];

/// The scenario knobs for `name`, proportioned to `base`'s corpus shape.
/// `None` for an unknown name.
pub fn scenario_config(name: &str, base: &SynthConfig) -> Option<ScenarioConfig> {
    let mut sc = ScenarioConfig::default();
    match name {
        "honest" => {}
        // Six copier pairs replicating 60% of their source's records —
        // strong violation of the independence assumption every method
        // shares, felt most by VOTE's raw provenance counting.
        "copying" => sc.copying = CopyingConfig { dependence: 0.6 },
        // One spam page per eight organic ones, concentrated on a few
        // fresh sites, each pushing the same wrong voice per target item.
        "spam" => {
            sc.spam = SpamConfig {
                n_pages: (base.web.n_pages / 8).max(8),
                n_items: 50,
                claims_per_page: 4,
                n_sites: 8,
            }
        }
        // A fifth of the items flipped truth halfway through the crawl;
        // every earlier page still claims the stale value.
        "drift" => {
            sc.drift = DriftConfig {
                fraction: 0.2,
                position: 0.5,
            }
        }
        // Confusable entities chained into rings of six and extractor
        // error budgets tilted 3× toward linkage mistakes.
        "linkage" => {
            sc.linkage = LinkageConfig {
                confusable_ring: 6,
                error_boost: 3.0,
            }
        }
        _ => return None,
    }
    Some(sc)
}

/// Build the corpus for a (scale, scenario, seed) cell.
pub fn scenario_corpus(scale: &str, scenario: &str, seed: u64) -> Result<Corpus, String> {
    let mut cfg = crate::scale_config(scale)
        .ok_or_else(|| format!("unknown scale {scale:?} (expected tiny|small|paper|large)"))?;
    cfg.scenarios = scenario_config(scenario, &cfg)
        .ok_or_else(|| format!("unknown scenario {scenario:?} (expected {SCENARIO_NAMES:?})"))?;
    Ok(Corpus::generate(&cfg, seed))
}

/// Mean probability assigned to gold-True triples minus mean probability
/// assigned to gold-False ones: a scale-free view of how well a method
/// separates truth from error (the quantity behind the paper's Fig. 9
/// ordering). Zero when a side is empty.
pub fn separation(corpus: &Corpus, out: &kf_core::FusionOutput) -> f64 {
    let (mut st, mut nt, mut sf, mut nf) = (0.0, 0usize, 0.0, 0usize);
    for s in &out.scored {
        let Some(p) = s.probability else { continue };
        match corpus.gold.label(&s.triple) {
            Label::True => {
                st += p;
                nt += 1;
            }
            Label::False => {
                sf += p;
                nf += 1;
            }
            Label::Unknown => {}
        }
    }
    st / nt.max(1) as f64 - sf / nf.max(1) as f64
}

/// Accuracy of the labelled triples scored into `[lo, hi)` and how many
/// there were. An empty band yields `(NaN, 0)` — callers must branch on
/// the count before trusting the ratio.
pub fn band_accuracy(
    corpus: &Corpus,
    out: &kf_core::FusionOutput,
    lo: f64,
    hi: f64,
) -> (f64, usize) {
    let (mut t, mut n) = (0usize, 0usize);
    for s in &out.scored {
        let Some(p) = s.probability else { continue };
        if p < lo || p >= hi {
            continue;
        }
        match corpus.gold.label(&s.triple) {
            Label::True => {
                t += 1;
                n += 1;
            }
            Label::False => n += 1,
            Label::Unknown => {}
        }
    }
    (if n > 0 { t as f64 / n as f64 } else { f64::NAN }, n)
}

/// One (scenario, preset) cell of the matrix.
#[derive(Debug, Clone)]
pub struct ScenarioCell {
    /// Preset name (`vote`, `popaccu`, …).
    pub method: String,
    /// Weighted calibration deviation (lower = better calibrated).
    pub wdev: f64,
    /// Area under the precision–recall curve.
    pub auc_pr: f64,
    /// Mean-P(true) − mean-P(false) separation.
    pub separation: f64,
    /// Accuracy of the labelled triples scored ≥ 0.9 (NaN when none).
    pub high_band_accuracy: f64,
    /// Number of labelled triples in that band.
    pub high_band_n: usize,
    /// False-positive mass per injected phenomenon (the diagnoser's
    /// scenario breakdown): what this method let through, by mechanism.
    pub phenomenon_mass: Vec<GroupBreakdown>,
}

impl ScenarioCell {
    /// Total false positives attributed to `phenomenon` for this method.
    pub fn phenomenon_fp(&self, phenomenon: ScenarioPhenomenon) -> u64 {
        self.phenomenon_mass
            .iter()
            .filter(|g| g.key == phenomenon.index() as u32)
            .map(|g| g.counts.total())
            .sum()
    }
}

/// One scenario row: the injected ground truth plus a cell per preset.
#[derive(Debug, Clone)]
pub struct ScenarioRow {
    /// Scenario name from [`SCENARIO_NAMES`].
    pub scenario: String,
    /// Number of unique triples the generator injected for this
    /// scenario (0 for `honest`).
    pub n_injected: usize,
    /// One cell per requested preset, in preset order.
    pub cells: Vec<ScenarioCell>,
}

impl ScenarioRow {
    /// The cell for a preset name.
    pub fn cell(&self, method: &str) -> Option<&ScenarioCell> {
        self.cells.iter().find(|c| c.method == method)
    }
}

/// The full scenario × preset matrix for one (scale, seed).
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    /// Corpus scale the matrix ran at.
    pub scale: String,
    /// Corpus seed.
    pub seed: u64,
    /// One row per scenario, in [`SCENARIO_NAMES`] order.
    pub rows: Vec<ScenarioRow>,
}

impl ScenarioMatrix {
    /// Run the matrix: every scenario in [`SCENARIO_NAMES`] × every
    /// requested preset at the given scale and seed.
    pub fn run(
        scale: &str,
        seed: u64,
        presets: &[Preset],
        workers: Option<usize>,
    ) -> Result<ScenarioMatrix, String> {
        let mut rows = Vec::with_capacity(SCENARIO_NAMES.len());
        for name in SCENARIO_NAMES {
            rows.push(run_scenario_row(scale, name, seed, presets, workers)?);
        }
        Ok(ScenarioMatrix {
            scale: scale.to_string(),
            seed,
            rows,
        })
    }

    /// The row for a scenario name.
    pub fn row(&self, scenario: &str) -> Option<&ScenarioRow> {
        self.rows.iter().find(|r| r.scenario == scenario)
    }

    /// Serialize as the machine-readable `scenarios.json` artifact.
    pub fn to_json_string(&self) -> String {
        let finite = |x: f64| {
            if x.is_finite() {
                Json::from(x)
            } else {
                Json::Null
            }
        };
        let cell = |c: &ScenarioCell| {
            Json::obj([
                ("method", Json::from(c.method.clone())),
                ("wdev", finite(c.wdev)),
                ("auc_pr", finite(c.auc_pr)),
                ("separation", finite(c.separation)),
                ("high_band_accuracy", finite(c.high_band_accuracy)),
                ("high_band_n", Json::from(c.high_band_n)),
                (
                    "phenomena",
                    Json::arr(c.phenomenon_mass.iter().map(|g| {
                        Json::obj([
                            ("phenomenon", Json::from(g.label.clone())),
                            ("false_positives", Json::from(g.counts.total())),
                        ])
                    })),
                ),
            ])
        };
        Json::obj([
            ("schema_version", Json::from(1usize)),
            ("scale", Json::from(self.scale.clone())),
            ("seed", Json::from(self.seed)),
            (
                "scenarios",
                Json::arr(self.rows.iter().map(|r| {
                    Json::obj([
                        ("scenario", Json::from(r.scenario.clone())),
                        ("n_injected", Json::from(r.n_injected)),
                        ("methods", Json::arr(r.cells.iter().map(cell))),
                    ])
                })),
            ),
        ])
        .to_string_pretty()
    }
}

/// Fuse, evaluate and diagnose one scenario under every preset.
fn run_scenario_row(
    scale: &str,
    scenario: &str,
    seed: u64,
    presets: &[Preset],
    workers: Option<usize>,
) -> Result<ScenarioRow, String> {
    let corpus = scenario_corpus(scale, scenario, seed)?;
    let mr = workers.map_or_else(MrConfig::default, |w| MrConfig {
        workers: w.max(1),
        partitions: w.max(1) * 4,
        ..MrConfig::default()
    });
    let runner = AblationRunner {
        workers,
        scale: scale.to_string(),
        ..Default::default()
    };
    let (support, _) = SupportIndex::build(&corpus.batch.records, &mr);
    let truth = corpus.taxonomy_truth();
    let scenario_truth = corpus.scenario_truth();
    let injected: std::collections::BTreeSet<Triple> = scenario_truth.keys().copied().collect();

    let mut cells = Vec::with_capacity(presets.len());
    for &preset in presets {
        let mut config = preset.config();
        if let Some(w) = workers {
            config = config.with_workers(w);
        }
        let gold = preset.needs_gold().then_some(&corpus.gold);
        let (output, attribution) =
            kf_core::Fuser::new(config).run_with_attribution(&corpus.batch, gold);
        let eval = runner.evaluate(preset, &output, &corpus.gold, 0.0);
        let (hb, hn) = band_accuracy(&corpus, &output, 0.9, 1.01);
        let (taxonomy, _) = Diagnoser::new(&corpus.gold, &corpus.world, &support)
            .with_truth(&truth)
            .with_scenario(&scenario_truth)
            .with_attribution(&attribution)
            .with_config(DiagnoseConfig {
                mr,
                ..Default::default()
            })
            .run(&output);
        cells.push(ScenarioCell {
            method: preset.name().to_string(),
            wdev: eval.wdev(),
            auc_pr: eval.auc_pr(),
            separation: separation(&corpus, &output),
            high_band_accuracy: hb,
            high_band_n: hn,
            phenomenon_mass: taxonomy.scenarios,
        });
    }
    Ok(ScenarioRow {
        scenario: scenario.to_string(),
        n_injected: injected.len(),
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kf_core::{FusionOutput, ScoredTriple};

    /// Every gold triple (LCWA labels every value of a known item, so
    /// these are all labelled), sorted for determinism.
    fn gold_triples(corpus: &Corpus) -> Vec<Triple> {
        let mut ts: Vec<Triple> = corpus
            .gold
            .iter()
            .flat_map(|(item, values)| {
                values
                    .iter()
                    .map(|&v| Triple::new(item.subject, item.predicate, v))
            })
            .collect();
        ts.sort_unstable();
        ts
    }

    fn output_of(scored: Vec<ScoredTriple>) -> FusionOutput {
        FusionOutput {
            scored,
            outcome: kf_mapreduce::RoundOutcome::Converged {
                rounds: 1,
                delta: 0.0,
            },
            round_deltas: vec![0.0],
            n_provenances: 0,
            stats: Default::default(),
        }
    }

    fn synthetic_output(corpus: &Corpus, p: impl Fn(usize) -> Option<f64>) -> FusionOutput {
        output_of(
            gold_triples(corpus)
                .into_iter()
                .enumerate()
                .map(|(i, triple)| ScoredTriple {
                    triple,
                    probability: p(i),
                    n_provenances: 1,
                    n_extractors: 1,
                    n_pages: 1,
                    fallback: false,
                })
                .collect(),
        )
    }

    #[test]
    fn band_accuracy_is_nan_on_an_empty_band() {
        let corpus = Corpus::generate(&SynthConfig::tiny(), 3);
        // Every probability sits below the band.
        let out = synthetic_output(&corpus, |_| Some(0.1));
        let (acc, n) = band_accuracy(&corpus, &out, 0.9, 1.01);
        assert_eq!(n, 0, "no triple scores into [0.9, 1.01)");
        assert!(acc.is_nan(), "empty band must yield NaN, not a fake 0 or 1");
        // Unscored triples contribute to no band either.
        let out = synthetic_output(&corpus, |_| None);
        let (acc, n) = band_accuracy(&corpus, &out, 0.0, 1.01);
        assert_eq!((n, acc.is_nan()), (0, true));
    }

    #[test]
    fn band_accuracy_counts_only_labelled_triples_in_range() {
        let corpus = Corpus::generate(&SynthConfig::tiny(), 3);
        let out = synthetic_output(&corpus, |_| Some(0.95));
        let (acc, n) = band_accuracy(&corpus, &out, 0.9, 1.01);
        assert!(n > 0);
        // Every scored triple is gold-labelled, so the band accuracy is
        // the gold-True share of the labelled set.
        let truth: Vec<bool> = gold_triples(&corpus)
            .iter()
            .filter_map(|t| corpus.gold.label(t).as_bool())
            .collect();
        assert_eq!(n, truth.len());
        let expect = truth.iter().filter(|&&b| b).count() as f64 / truth.len() as f64;
        assert!((acc - expect).abs() < 1e-12);
    }

    #[test]
    fn separation_is_positive_for_an_oracle_and_zero_for_empty_output() {
        let corpus = Corpus::generate(&SynthConfig::tiny(), 3);
        // An oracle scoring gold-True at 1 and gold-False at 0 separates
        // perfectly.
        let triples = gold_triples(&corpus);
        let oracle = output_of(
            triples
                .iter()
                .map(|&triple| ScoredTriple {
                    triple,
                    probability: corpus.gold.label(&triple).as_bool().map(f64::from),
                    n_provenances: 1,
                    n_extractors: 1,
                    n_pages: 1,
                    fallback: false,
                })
                .collect(),
        );
        assert!((separation(&corpus, &oracle) - 1.0).abs() < 1e-12);
        // No scored triples: both sides empty, separation collapses to 0
        // instead of dividing by zero.
        let empty = output_of(vec![]);
        assert_eq!(separation(&corpus, &empty), 0.0);
    }

    #[test]
    fn scenario_configs_resolve_and_unknown_names_do_not() {
        let base = SynthConfig::tiny();
        for name in SCENARIO_NAMES {
            let sc = scenario_config(name, &base).expect(name);
            assert_eq!(sc.any_active(), name != "honest", "{name}");
        }
        assert!(scenario_config("zombie", &base).is_none());
        assert!(scenario_corpus("tiny", "zombie", 1).is_err());
        assert!(scenario_corpus("galactic", "honest", 1).is_err());
    }
}
