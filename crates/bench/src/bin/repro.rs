//! The reproduction harness: generate (or load) a synthetic corpus, fuse
//! it under the paper's five named systems, evaluate calibration and PR
//! quality against the LCWA gold standard, and write a diffable
//! `report.json`.
//!
//! ```text
//! cargo run --release --bin repro
//! cargo run --release --bin repro -- --scale small --seed 7 --out small.json
//!
//! # Checkpoint once, fan out, merge (byte-identical to a single run):
//! cargo run --release --bin repro -- --save-corpus corpus.kfc
//! cargo run --release --bin repro -- --corpus corpus.kfc --deterministic --shard 0/2 --out s0.bin
//! cargo run --release --bin repro -- --corpus corpus.kfc --deterministic --shard 1/2 --out s1.bin
//! cargo run --release --bin repro -- --merge s0.bin s1.bin --out report.json
//! ```

use kf_bench::{merge_shards, obtain_corpus, shard_presets, ParseError, ReproOptions};
use std::time::Instant;

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

fn main() {
    let mut opts = match ReproOptions::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        // Asking for help is not an error; everything else is.
        Err(ParseError::Help) => {
            println!("{}", kf_bench::USAGE);
            return;
        }
        Err(ParseError::Invalid(msg)) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    // ---- Merge subflow: shard reports in, one report.json out ----------
    if opts.merge {
        let report = merge_shards(&opts.merge_inputs).unwrap_or_else(|e| fail(&e));
        println!(
            "merged {} shard report(s): {} methods on corpus[{} seed={}]",
            opts.merge_inputs.len(),
            report.methods.len(),
            report.corpus.scale,
            report.corpus.seed,
        );
        println!();
        print!("{}", report.summary_table());
        if let Some(path) = &opts.out {
            match std::fs::write(path, report.to_json_string()) {
                Ok(()) => println!("\nwrote {path}"),
                Err(e) => fail(&format!("failed to write {path}: {e}")),
            }
        }
        return;
    }

    // ---- Corpus: load the checkpoint or generate ------------------------
    let start = Instant::now();
    let (corpus, loaded) = obtain_corpus(&opts).unwrap_or_else(|e| fail(&e));
    println!(
        "corpus[{} seed={}, {}]: {} records, {} unique triples, {} items, \
         {} gold items, lcwa accuracy {:.3} ({:.2}s)",
        opts.scale,
        corpus.seed,
        if loaded { "loaded" } else { "generated" },
        corpus.batch.len(),
        corpus.batch.unique_triples(),
        corpus.batch.unique_data_items(),
        corpus.gold.n_items(),
        corpus.lcwa_accuracy(),
        start.elapsed().as_secs_f64(),
    );

    // ---- Snapshot subflow: save the checkpoint and exit -----------------
    if let Some(path) = &opts.save_corpus {
        let start = Instant::now();
        corpus
            .save(path)
            .unwrap_or_else(|e| fail(&format!("failed to save corpus {path:?}: {e}")));
        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        println!(
            "saved corpus checkpoint {path} ({:.1} MiB, {:.2}s)",
            bytes as f64 / (1024.0 * 1024.0),
            start.elapsed().as_secs_f64(),
        );
        return;
    }

    // ---- Shard subflow: fuse this shard's presets, write binary report --
    if let Some((index, of)) = opts.shard {
        opts.presets = shard_presets(&opts.presets, index, of);
        let names: Vec<&str> = opts.presets.iter().map(|p| p.name()).collect();
        println!("shard {index}/{of}: presets [{}]", names.join(", "));
        let report = kf_bench::run_on_corpus(&opts, &corpus);
        // An explicit --out is honoured verbatim (and --no-out skips the
        // write); only a defaulted path is replaced by the shard name.
        let path = match (&opts.out, opts.out_explicit) {
            (Some(path), true) => Some(path.clone()),
            (None, true) => None,
            _ => Some(format!("report-shard{index}of{of}.bin")),
        };
        match path {
            Some(path) => {
                report.save(&path).unwrap_or_else(|e| {
                    fail(&format!("failed to write shard report {path:?}: {e}"))
                });
                println!(
                    "wrote shard report {path} ({} methods)",
                    report.methods.len()
                );
            }
            None => println!("--no-out: shard report not written"),
        }
        return;
    }

    // ---- Single-process run ---------------------------------------------
    let report = kf_bench::run_on_corpus(&opts, &corpus);
    println!();
    print!("{}", report.summary_table());

    if let Some(path) = &opts.out {
        match std::fs::write(path, report.to_json_string()) {
            Ok(()) => println!("\nwrote {path}"),
            Err(e) => fail(&format!("failed to write {path}: {e}")),
        }
    }
}
