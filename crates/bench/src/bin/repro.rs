//! The reproduction harness: generate a synthetic corpus, fuse it under the
//! paper's five named systems, evaluate calibration and PR quality against
//! the LCWA gold standard, and write a diffable `report.json`.
//!
//! ```text
//! cargo run --release --bin repro
//! cargo run --release --bin repro -- --scale small --seed 7 --out small.json
//! ```

use kf_bench::{generate_corpus, run_on_corpus, ParseError, ReproOptions};
use std::time::Instant;

fn main() {
    let opts = match ReproOptions::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        // Asking for help is not an error; everything else is.
        Err(ParseError::Help) => {
            println!("{}", kf_bench::USAGE);
            return;
        }
        Err(ParseError::Invalid(msg)) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let start = Instant::now();
    let corpus = generate_corpus(&opts).expect("scale validated by parse");
    println!(
        "corpus[{} seed={}]: {} records, {} unique triples, {} items, \
         {} gold items, lcwa accuracy {:.3} ({:.2}s)",
        opts.scale,
        opts.seed,
        corpus.batch.len(),
        corpus.batch.unique_triples(),
        corpus.batch.unique_data_items(),
        corpus.gold.n_items(),
        corpus.lcwa_accuracy(),
        start.elapsed().as_secs_f64(),
    );

    let report = run_on_corpus(&opts, &corpus);
    println!();
    print!("{}", report.summary_table());

    if let Some(path) = &opts.out {
        match std::fs::write(path, report.to_json_string()) {
            Ok(()) => println!("\nwrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
