//! The reproduction harness: generate (or load) a synthetic corpus, fuse
//! it under the paper's five named systems, evaluate calibration and PR
//! quality against the LCWA gold standard, and write a diffable
//! `report.json` — plus, with `--trace`, a whole-run `trace.json`
//! (phase span tree, counters, series) and a phase-timing summary on
//! stdout.
//!
//! ```text
//! cargo run --release --bin repro
//! cargo run --release --bin repro -- --scale small --seed 7 --out small.json
//! cargo run --release --bin repro -- --trace trace.json
//!
//! # Checkpoint once, fan out, merge (byte-identical to a single run,
//! # embedded method traces included):
//! cargo run --release --bin repro -- --save-corpus corpus.kfc
//! cargo run --release --bin repro -- --corpus corpus.kfc --deterministic --shard 0/2 --out s0.bin
//! cargo run --release --bin repro -- --corpus corpus.kfc --deterministic --shard 1/2 --out s1.bin
//! cargo run --release --bin repro -- --merge s0.bin s1.bin --out report.json
//!
//! # Same fan-out over TCP (kf-dist): a coordinator dispatches one task
//! # per preset to registered workers and merges the shard reports.
//! cargo run --release --bin repro -- --corpus corpus.kfc --deterministic \
//!     --serve-coordinator 127.0.0.1:0 --dist-addr-file addr.txt --out report.json &
//! cargo run --release --bin repro -- --worker "$(cat addr.txt)" --worker-name w0 &
//! cargo run --release --bin repro -- --worker "$(cat addr.txt)" --worker-name w1
//! ```

use kf_bench::{merge_shards, obtain_corpus, shard_presets, ParseError, ReproOptions};
use kf_dist::{run_worker, Coordinator, CoordinatorConfig, FailSpec, WorkerConfig};
use kf_eval::{trace_to_json, Json, MethodEval};
use kf_telemetry::{Trace, TraceReport};
use kf_types::checkpoint::{self, ArtifactKind};
use std::time::Instant;

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

/// The whole-run trace: the process-level span tree (corpus obtain,
/// support index, persistence) with every method trace grafted in as a
/// phase named after its method, in report (= ablation) order. Under
/// `--deterministic` all wall-clock fields are quarantined to zero so
/// same-seed runs produce byte-identical artifacts.
fn full_run_trace(process: &Trace, methods: &[MethodEval], deterministic: bool) -> TraceReport {
    let mut full = process.snapshot();
    for m in methods {
        if let Some(trace) = &m.trace {
            full.absorb(&m.name, trace);
        }
    }
    if deterministic {
        full.quarantine_timings();
    }
    full
}

/// Write the `trace.json` artifact: the assembled whole-run trace plus
/// each method's own trace (the same sections that ride inside shard
/// reports), so per-method numbers stay inspectable after assembly.
/// Schema 2 added the `histograms`/`gauges` deterministic entries and
/// the per-trace `histograms` value ledger.
fn write_trace(path: &str, full: &TraceReport, methods: &[MethodEval]) {
    let json = Json::obj([
        ("schema_version", Json::Uint(2)),
        ("run", trace_to_json(full)),
        (
            "methods",
            Json::arr(methods.iter().filter_map(|m| {
                m.trace.as_ref().map(|t| {
                    Json::Obj(vec![
                        ("name".to_string(), Json::Str(m.name.clone())),
                        ("trace".to_string(), trace_to_json(t)),
                    ])
                })
            })),
        ),
    ]);
    match std::fs::write(path, json.to_string_pretty()) {
        Ok(()) => println!("wrote trace {path}"),
        Err(e) => fail(&format!("failed to write trace {path}: {e}")),
    }
}

fn main() {
    let mut opts = match ReproOptions::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        // Asking for help is not an error; everything else is.
        Err(ParseError::Help) => {
            println!("{}", kf_bench::USAGE);
            return;
        }
        Err(ParseError::Invalid(msg)) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    // The process-level trace records everything outside a preset run:
    // corpus load/generate/save, the shared support index, report I/O.
    // Preset runs install their own shadowing traces (see kf-bench).
    let process = Trace::with_root("run");
    let _telemetry = kf_telemetry::install(&process);

    // ---- Worker subflow: serve a coordinator until shut down ------------
    // Runs before any corpus work: the corpus and every fusion parameter
    // arrive over the wire. The diagnosis context (support index, truth
    // joins) is built once per connection and reused across tasks — the
    // corpus is shipped once, so it cannot change under the cache.
    if let Some(addr) = &opts.worker {
        let fault = FailSpec::from_env()
            .unwrap_or_else(|e| fail(&format!("bad KF_DIST_FAIL fault spec: {e}")));
        let mut config = WorkerConfig::new(addr.clone(), opts.worker_name.clone());
        config.fail = fault;
        let mut diagnosis = None;
        let result = run_worker(&config, |corpus, spec| {
            let task_opts = kf_bench::options_for_task(spec)?;
            let ctx = if task_opts.diagnose {
                if diagnosis.is_none() {
                    diagnosis = kf_bench::build_diagnosis_context(&task_opts, corpus);
                }
                diagnosis.as_ref()
            } else {
                None
            };
            println!(
                "worker {}: task {} [{}]",
                opts.worker_name,
                spec.task_id,
                spec.presets.join(", "),
            );
            Ok(kf_bench::run_on_corpus_with_context(
                &task_opts, corpus, ctx,
            ))
        });
        if let Err(e) = result {
            fail(&format!("worker {}: {e}", opts.worker_name));
        }
        println!(
            "worker {}: coordinator shut us down cleanly",
            opts.worker_name
        );
        if let Some(path) = &opts.trace {
            let full = full_run_trace(&process, &[], opts.deterministic);
            write_trace(path, &full, &[]);
        }
        return;
    }

    // ---- Merge subflow: shard reports in, one report.json out ----------
    if opts.merge {
        let report = merge_shards(&opts.merge_inputs).unwrap_or_else(|e| fail(&e));
        println!(
            "merged {} shard report(s): {} methods on corpus[{} seed={}]",
            opts.merge_inputs.len(),
            report.methods.len(),
            report.corpus.scale,
            report.corpus.seed,
        );
        println!();
        print!("{}", report.summary_table());
        if let Some(path) = &opts.out {
            match std::fs::write(path, report.to_json_string()) {
                Ok(()) => println!("\nwrote {path}"),
                Err(e) => fail(&format!("failed to write {path}: {e}")),
            }
        }
        // Merged report → fused KB, no second report decode pass: the
        // in-memory report is compiled directly against the corpus
        // snapshot the shards fused (parse guarantees --corpus is set).
        if opts.build_kb.is_some() {
            let path = opts.corpus.as_deref().expect("parse requires --corpus");
            let corpus = kf_synth::Corpus::load(path)
                .unwrap_or_else(|e| fail(&format!("failed to load corpus {path:?}: {e}")));
            let kb = kf_bench::compile_kb(&opts, &report, &corpus).unwrap_or_else(|e| fail(&e));
            println!(
                "\nbuilt fused KB {} [{}]: {} triples, {} items, {} predicates, {} provenances",
                opts.build_kb.as_deref().unwrap_or("?"),
                kb.method,
                kb.n_triples(),
                kb.n_items(),
                kb.n_predicates(),
                kb.n_provenances(),
            );
        }
        let full = full_run_trace(&process, &report.methods, opts.deterministic);
        println!();
        print!("{}", full.summary());
        if let Some(path) = &opts.trace {
            write_trace(path, &full, &report.methods);
        }
        return;
    }

    // ---- Corpus: load the checkpoint or generate ------------------------
    let start = Instant::now();
    let (corpus, loaded) = {
        let _span = kf_telemetry::span("corpus");
        obtain_corpus(&opts).unwrap_or_else(|e| fail(&e))
    };
    println!(
        "corpus[{} seed={}, {}]: {} records, {} unique triples, {} items, \
         {} gold items, lcwa accuracy {:.3} ({:.2}s)",
        opts.scale,
        corpus.seed,
        if loaded { "loaded" } else { "generated" },
        corpus.batch.len(),
        corpus.batch.unique_triples(),
        corpus.batch.unique_data_items(),
        corpus.gold.n_items(),
        corpus.lcwa_accuracy(),
        start.elapsed().as_secs_f64(),
    );

    // ---- Snapshot subflow: save the checkpoint and exit -----------------
    if let Some(path) = &opts.save_corpus {
        let start = Instant::now();
        corpus
            .save(path)
            .unwrap_or_else(|e| fail(&format!("failed to save corpus {path:?}: {e}")));
        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        println!(
            "saved corpus checkpoint {path} ({:.1} MiB, {:.2}s)",
            bytes as f64 / (1024.0 * 1024.0),
            start.elapsed().as_secs_f64(),
        );
        if let Some(tpath) = &opts.trace {
            let full = full_run_trace(&process, &[], opts.deterministic);
            write_trace(tpath, &full, &[]);
        }
        return;
    }

    // ---- Shard subflow: fuse this shard's presets, write binary report --
    if let Some((index, of)) = opts.shard {
        opts.presets = shard_presets(&opts.presets, index, of);
        let names: Vec<&str> = opts.presets.iter().map(|p| p.name()).collect();
        println!("shard {index}/{of}: presets [{}]", names.join(", "));
        let report = kf_bench::run_on_corpus(&opts, &corpus);
        // An explicit --out is honoured verbatim (and --no-out skips the
        // write); only a defaulted path is replaced by the shard name.
        let path = match (&opts.out, opts.out_explicit) {
            (Some(path), true) => Some(path.clone()),
            (None, true) => None,
            _ => Some(format!("report-shard{index}of{of}.bin")),
        };
        match path {
            Some(path) => {
                report.save(&path).unwrap_or_else(|e| {
                    fail(&format!("failed to write shard report {path:?}: {e}"))
                });
                println!(
                    "wrote shard report {path} ({} methods)",
                    report.methods.len()
                );
            }
            None => println!("--no-out: shard report not written"),
        }
        if let Some(tpath) = &opts.trace {
            let full = full_run_trace(&process, &report.methods, opts.deterministic);
            write_trace(tpath, &full, &report.methods);
        }
        return;
    }

    // ---- Coordinator subflow / single-process run -----------------------
    // A coordinator run produces the same report object a single-process
    // run does (the shard reports merge in ablation order), so the whole
    // output tail — summary table, KB compilation, trace — is shared.
    let report = if let Some(bind) = &opts.serve_coordinator {
        let tasks = kf_bench::dist_task_specs(&opts);
        let coordinator = Coordinator::bind(
            bind.as_str(),
            tasks,
            checkpoint::encode(ArtifactKind::Corpus, &corpus),
            CoordinatorConfig {
                verbose: true,
                ..CoordinatorConfig::default()
            },
        )
        .unwrap_or_else(|e| fail(&format!("cannot bind coordinator on {bind}: {e}")));
        let addr = coordinator
            .local_addr()
            .unwrap_or_else(|e| fail(&format!("coordinator has no local address: {e}")));
        println!(
            "coordinator listening on {addr}: {} task(s), one preset each",
            opts.presets.len()
        );
        if let Some(path) = &opts.dist_addr_file {
            std::fs::write(path, addr.to_string())
                .unwrap_or_else(|e| fail(&format!("failed to write address file {path}: {e}")));
            println!("wrote coordinator address to {path}");
        }
        coordinator
            .run_merged()
            .unwrap_or_else(|e| fail(&format!("distributed run failed: {e}")))
    } else {
        kf_bench::run_on_corpus(&opts, &corpus)
    };
    println!();
    print!("{}", report.summary_table());

    // The corpus and report are both still in memory: the KB compiles
    // straight from them, without a load/decode round-trip.
    if opts.build_kb.is_some() {
        let kb = kf_bench::compile_kb(&opts, &report, &corpus).unwrap_or_else(|e| fail(&e));
        println!(
            "\nbuilt fused KB {} [{}]: {} triples, {} items, {} predicates, {} provenances",
            opts.build_kb.as_deref().unwrap_or("?"),
            kb.method,
            kb.n_triples(),
            kb.n_items(),
            kb.n_predicates(),
            kb.n_provenances(),
        );
    }

    let full = full_run_trace(&process, &report.methods, opts.deterministic);
    println!();
    print!("{}", full.summary());
    println!();

    if let Some(path) = &opts.out {
        match std::fs::write(path, report.to_json_string()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => fail(&format!("failed to write {path}: {e}")),
        }
    }
    if let Some(path) = &opts.trace {
        write_trace(path, &full, &report.methods);
    }
}
