//! The distributed acceptance tests: a coordinator/worker run over
//! localhost TCP — including one with a worker killed mid-job by the
//! `KF_DIST_FAIL` injection — must produce a `report.json`
//! **byte-identical** to the single-process `--deterministic` run.
//!
//! Three layers:
//! * library level, wiring `kf_dist` to the same `kf_bench` entry points
//!   the `repro` binary uses (context-cached diagnosis included);
//! * binary level, spawning actual `repro` processes rendezvousing
//!   through `--dist-addr-file`, one worker killed by `KF_DIST_FAIL`;
//! * property level, over (worker count × kill point): re-dispatch must
//!   conserve the deterministic trace section and never duplicate
//!   `mr.*` counter mass in the merge.

use kf_bench::{run_on_corpus, ReproOptions};
use kf_dist::{run_worker, Coordinator, CoordinatorConfig, FailSpec, WorkerConfig};
use kf_eval::{EvalReport, Preset};
use kf_synth::{Corpus, SynthConfig};
use kf_types::checkpoint::{self, ArtifactKind};
use proptest::prelude::*;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("kf-bench-dist-{}-{name}", std::process::id()))
}

fn options() -> ReproOptions {
    ReproOptions {
        scale: "tiny".into(),
        seed: 11,
        out: None,
        workers: Some(2),
        deterministic: true,
        ..Default::default()
    }
}

/// Coordinator timings tightened for tests: fast heartbeats so a killed
/// worker is declared lost in milliseconds, not seconds.
fn test_config() -> CoordinatorConfig {
    CoordinatorConfig {
        heartbeat_interval: Duration::from_millis(25),
        heartbeat_timeout: Duration::from_millis(150),
        redispatch_backoff: Duration::from_millis(5),
        max_redispatch: 10,
        idle_timeout: Duration::from_secs(30),
        max_in_flight: 1,
        verbose: false,
    }
}

/// The worker-side runner the `repro --worker` subflow uses: rebuild the
/// options from the task spec, fuse, with the diagnosis context built
/// once per connection and shared across tasks.
fn spawn_worker(
    addr: String,
    name: &str,
    fail: Option<&str>,
) -> std::thread::JoinHandle<Result<(), kf_dist::DistError>> {
    let mut config = WorkerConfig::new(addr, name);
    config.fail = fail.map(|s| FailSpec::parse(s).expect("valid fail spec"));
    std::thread::spawn(move || {
        let mut diagnosis = None;
        run_worker(&config, |corpus, spec| {
            let task_opts = kf_bench::options_for_task(spec)?;
            let ctx = if task_opts.diagnose {
                if diagnosis.is_none() {
                    diagnosis = kf_bench::build_diagnosis_context(&task_opts, corpus);
                }
                diagnosis.as_ref()
            } else {
                None
            };
            Ok(kf_bench::run_on_corpus_with_context(
                &task_opts, corpus, ctx,
            ))
        })
    })
}

/// Run a full coordinator/worker round over `opts` on localhost.
fn distributed_run(
    opts: &ReproOptions,
    corpus: &Corpus,
    n_workers: usize,
    fail: Option<&str>,
) -> EvalReport {
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        kf_bench::dist_task_specs(opts),
        checkpoint::encode(ArtifactKind::Corpus, corpus),
        test_config(),
    )
    .expect("bind");
    let addr = coordinator.local_addr().expect("local addr").to_string();
    let workers: Vec<_> = (0..n_workers)
        .map(|i| {
            // The injected fault names `victim`; worker 0 carries it.
            let name = if i == 0 {
                "victim".into()
            } else {
                format!("w{i}")
            };
            spawn_worker(addr.clone(), &name, if i == 0 { fail } else { None })
        })
        .collect();
    let merged = coordinator.run_merged().expect("distributed run");
    for w in workers {
        // The victim is allowed to die (that is the point); everyone
        // else must exit cleanly.
        let _ = w.join().unwrap();
    }
    merged
}

#[test]
fn distributed_library_run_matches_single_process() {
    let opts = options();
    let corpus = Corpus::generate(&SynthConfig::tiny(), opts.seed);
    let single = run_on_corpus(&opts, &corpus);
    let merged = distributed_run(&opts, &corpus, 2, None);
    assert_eq!(
        merged.to_json_string(),
        single.to_json_string(),
        "distributed report.json must be byte-identical to the single-process run"
    );
}

/// Spawn the actual `repro` binary: coordinator plus three workers
/// rendezvousing through `--dist-addr-file`, with one worker killed by
/// `KF_DIST_FAIL` the moment its first task arrives — the same flow the
/// CI distributed-shuffle gate runs from the shell.
#[test]
fn repro_binary_distributed_run_survives_killed_worker() {
    use std::process::{Command, Stdio};

    let repro = env!("CARGO_BIN_EXE_repro");
    let corpus = tmp_path("corpus.kfc");
    let single = tmp_path("single.json");
    let dist = tmp_path("dist.json");
    let addr_file = tmp_path("addr.txt");
    std::fs::remove_file(&addr_file).ok();

    let ok = |out: std::process::Output, what: &str| {
        assert!(
            out.status.success(),
            "{what} failed:\n{}\n{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
        out
    };

    // Snapshot once; single-process deterministic reference.
    ok(
        Command::new(repro)
            .args(["--scale", "tiny", "--seed", "11"])
            .arg("--save-corpus")
            .arg(&corpus)
            .output()
            .expect("spawns"),
        "--save-corpus",
    );
    ok(
        Command::new(repro)
            .args(["--scale", "tiny", "--deterministic", "--corpus"])
            .arg(&corpus)
            .arg("--out")
            .arg(&single)
            .output()
            .expect("spawns"),
        "single-process run",
    );

    // Coordinator on an ephemeral port, address published via the file.
    let coordinator = Command::new(repro)
        .args(["--scale", "tiny", "--deterministic", "--corpus"])
        .arg(&corpus)
        .arg("--out")
        .arg(&dist)
        .args(["--serve-coordinator", "127.0.0.1:0", "--dist-addr-file"])
        .arg(&addr_file)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("coordinator spawns");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&addr_file) {
            if !addr.is_empty() {
                break addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "coordinator never published its address"
        );
        std::thread::sleep(Duration::from_millis(20));
    };

    // Three workers; `unlucky` dies on its first task frame (hello=1,
    // welcome=2, corpus=3, task=4 — heartbeats are not counted, so the
    // kill point is reproducible).
    let workers: Vec<_> = ["unlucky", "w1", "w2"]
        .iter()
        .map(|name| {
            let mut cmd = Command::new(repro);
            cmd.args(["--worker", addr.trim(), "--worker-name", name])
                .stdout(Stdio::piped())
                .stderr(Stdio::piped());
            if *name == "unlucky" {
                cmd.env("KF_DIST_FAIL", "unlucky:4:kill");
            }
            (name, cmd.spawn().expect("worker spawns"))
        })
        .collect();

    let out = coordinator.wait_with_output().expect("coordinator exits");
    let coord_log = format!(
        "{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out.status.success(), "coordinator failed:\n{coord_log}");
    for (name, worker) in workers {
        let out = worker.wait_with_output().expect("worker exits");
        if *name == "unlucky" {
            assert!(
                !out.status.success(),
                "the killed worker must exit with the injected fault"
            );
        } else {
            assert!(
                out.status.success(),
                "worker {name} failed:\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
        }
    }
    // The coordinator's verbose narration must show the recovery.
    assert!(coord_log.contains("lost"), "no loss narrated:\n{coord_log}");

    let single_bytes = std::fs::read(&single).expect("single report");
    let dist_bytes = std::fs::read(&dist).expect("distributed report");
    assert_eq!(
        single_bytes, dist_bytes,
        "distributed report.json must be byte-identical to the single-process run\n{coord_log}"
    );

    for f in [&corpus, &single, &dist, &addr_file] {
        std::fs::remove_file(f).ok();
    }
}

/// Cheap three-preset options for the property sweep: no diagnosis, so
/// a case is one fuse+eval per preset.
fn prop_options() -> ReproOptions {
    ReproOptions {
        presets: vec![Preset::Vote, Preset::Accu, Preset::PopAccu],
        diagnose: false,
        ..options()
    }
}

/// Reference single-process report for the property sweep, computed once:
/// its JSON projection and its total `mr.*` counter mass.
fn prop_reference() -> &'static (String, u64) {
    static REF: OnceLock<(String, u64)> = OnceLock::new();
    REF.get_or_init(|| {
        let opts = prop_options();
        let corpus = Corpus::generate(&SynthConfig::tiny(), opts.seed);
        let single = run_on_corpus(&opts, &corpus);
        let mass = mr_counter_mass(&single);
        assert!(mass > 0, "tiny corpus fusion must record mr.* counters");
        (single.to_json_string(), mass)
    })
}

/// Total mass of every `mr.*` counter across all method traces — the
/// quantity a double-merged replica would inflate.
fn mr_counter_mass(report: &EvalReport) -> u64 {
    report
        .methods
        .iter()
        .filter_map(|m| m.trace.as_ref())
        .flat_map(|t| &t.counters)
        .filter(|c| c.name.starts_with("mr."))
        .map(|c| c.value)
        .sum()
}

/// The strategy space is small while the vendored `proptest!` always
/// draws 100 cases; skipping repeats keeps each (workers, kill point)
/// cell fused exactly once.
fn first_visit(n_workers: usize, kill_at: u64) -> bool {
    static SEEN: OnceLock<Mutex<HashSet<(usize, u64)>>> = OnceLock::new();
    SEEN.get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .unwrap()
        .insert((n_workers, kill_at))
}

proptest! {
    /// Whatever the worker count and whenever the victim dies (frame 4
    /// is its first task; later points fall mid-stream or after its
    /// work), re-dispatch reassembles the exact single-process report:
    /// the deterministic trace section is conserved and `mr.*` counter
    /// mass is never duplicated by a replica completion.
    #[test]
    fn redispatch_conserves_trace_and_never_duplicates_mr_mass(
        n_workers in 2usize..=3,
        kill_at in 4u64..=7,
    ) {
        if first_visit(n_workers, kill_at) {
            let opts = prop_options();
            let corpus = Corpus::generate(&SynthConfig::tiny(), opts.seed);
            let (reference_json, reference_mass) = prop_reference();
            let fail = format!("victim:{kill_at}:kill");
            let merged = distributed_run(&opts, &corpus, n_workers, Some(&fail));
            prop_assert_eq!(
                mr_counter_mass(&merged),
                *reference_mass,
                "a replica completion leaked into the merge"
            );
            prop_assert_eq!(
                &merged.to_json_string(),
                reference_json,
                "re-dispatch changed the merged bytes"
            );
        }
    }
}
