//! The telemetry conservation law, property-tested: the deterministic
//! section of a run trace — span call counts, counters, series — must be
//! conserved *exactly* under sharding. Whatever shard split the presets
//! are fused in, merging the shard reports reassembles a combined trace
//! identical to the single-process run's, because every method's trace
//! derives only from the corpus and its own configuration (the
//! determinism ledger), never from which process happened to host it.

use kf_bench::{run_on_corpus, shard_presets, ReproOptions};
use kf_eval::{merge_reports, Preset};
use kf_synth::{Corpus, SynthConfig};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

/// The strategy space is small (seed × shard count) while the vendored
/// `proptest!` always draws 100 cases; skipping repeats keeps the test
/// a property test without fusing the same corpus split twice.
fn first_visit(seed: u64, n_shards: usize) -> bool {
    static SEEN: OnceLock<Mutex<HashSet<(u64, usize)>>> = OnceLock::new();
    SEEN.get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .unwrap()
        .insert((seed, n_shards))
}

fn options(seed: u64) -> ReproOptions {
    ReproOptions {
        scale: "tiny".into(),
        seed,
        out: None,
        workers: Some(2),
        deterministic: true,
        ..Default::default()
    }
}

proptest! {
    #[test]
    fn deterministic_trace_conserves_across_shard_merge(
        seed in 0u64..6,
        n_shards in 1usize..=3,
    ) {
        if first_visit(seed, n_shards) {
            let corpus = Corpus::generate(&SynthConfig::tiny(), seed);

            // Single-process reference.
            let single = run_on_corpus(&options(seed), &corpus);

            // The same presets fused shard by shard, then merged.
            let shards: Vec<_> = (0..n_shards)
                .map(|index| {
                    let mut opts = options(seed);
                    opts.presets = shard_presets(&Preset::ALL, index, n_shards);
                    run_on_corpus(&opts, &corpus)
                })
                .collect();
            let merged = merge_reports(shards).unwrap();

            // Per-method traces are conserved verbatim...
            prop_assert_eq!(single.methods.len(), merged.methods.len());
            for (a, b) in single.methods.iter().zip(&merged.methods) {
                prop_assert_eq!(&a.name, &b.name);
                prop_assert!(a.trace.is_some(), "{} lost its trace", a.name);
                prop_assert_eq!(&a.trace, &b.trace, "{} trace drifted", a.name);
            }

            // ...and so is the combined whole-run trace (counters added,
            // series concatenated in ablation order, span calls unified).
            let single_trace = single.combined_trace().expect("combined trace");
            let merged_trace = merged.combined_trace().expect("combined trace");
            prop_assert_eq!(single_trace, merged_trace);
        }
    }
}
