//! The telemetry conservation law, property-tested: the deterministic
//! section of a run trace — span call counts, counters, series — must be
//! conserved *exactly* under sharding. Whatever shard split the presets
//! are fused in, merging the shard reports reassembles a combined trace
//! identical to the single-process run's, because every method's trace
//! derives only from the corpus and its own configuration (the
//! determinism ledger), never from which process happened to host it.

use kf_bench::{run_on_corpus, shard_presets, ReproOptions};
use kf_eval::{merge_reports, Preset};
use kf_synth::{Corpus, SynthConfig};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

/// The strategy space is small (seed × shard count) while the vendored
/// `proptest!` always draws 100 cases; skipping repeats keeps the test
/// a property test without fusing the same corpus split twice.
fn first_visit(seed: u64, n_shards: usize) -> bool {
    static SEEN: OnceLock<Mutex<HashSet<(u64, usize)>>> = OnceLock::new();
    SEEN.get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .unwrap()
        .insert((seed, n_shards))
}

fn options(seed: u64) -> ReproOptions {
    ReproOptions {
        scale: "tiny".into(),
        seed,
        out: None,
        workers: Some(2),
        deterministic: true,
        ..Default::default()
    }
}

proptest! {
    #[test]
    fn deterministic_trace_conserves_across_shard_merge(
        seed in 0u64..6,
        n_shards in 1usize..=3,
    ) {
        if first_visit(seed, n_shards) {
            let corpus = Corpus::generate(&SynthConfig::tiny(), seed);

            // Single-process reference.
            let single = run_on_corpus(&options(seed), &corpus);

            // The same presets fused shard by shard, then merged.
            let shards: Vec<_> = (0..n_shards)
                .map(|index| {
                    let mut opts = options(seed);
                    opts.presets = shard_presets(&Preset::ALL, index, n_shards);
                    run_on_corpus(&opts, &corpus)
                })
                .collect();
            let merged = merge_reports(shards).unwrap();

            // Per-method traces are conserved verbatim...
            prop_assert_eq!(single.methods.len(), merged.methods.len());
            for (a, b) in single.methods.iter().zip(&merged.methods) {
                prop_assert_eq!(&a.name, &b.name);
                prop_assert!(a.trace.is_some(), "{} lost its trace", a.name);
                prop_assert_eq!(&a.trace, &b.trace, "{} trace drifted", a.name);
            }

            // ...and so is the combined whole-run trace (counters added,
            // series concatenated in ablation order, span calls unified).
            let single_trace = single.combined_trace().expect("combined trace");
            let merged_trace = merged.combined_trace().expect("combined trace");
            prop_assert_eq!(single_trace, merged_trace);
        }
    }

    /// The serve bench's rebased quantile math: per-client latency
    /// histograms merged bucket-wise must report every quantile within
    /// one bucket's relative error (`2^-SUB_BUCKET_BITS`) of the exact
    /// pooled-sort answer the bench used to compute — over lumpy,
    /// multi-octave latency shapes and uneven client splits.
    #[test]
    fn merged_client_histograms_agree_with_pooled_sort(
        seed in 0u64..1_000,
        clients in 1usize..=8,
    ) {
        use kf_telemetry::{HistKind, HistogramSnapshot, SUB_BUCKET_BITS};

        // Deterministic lumpy latencies: a fast mode, a slow mode and a
        // heavy tail, like a serving profile.
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let samples: Vec<u64> = (0..4_000)
            .map(|_| {
                let r = next();
                match r % 10 {
                    0..=6 => 200 + r % 800,
                    7..=8 => 20_000 + r % 30_000,
                    _ => 1_000_000 + r % 9_000_000,
                }
            })
            .collect();

        // Split across clients the way the bench does (equal budgets,
        // remainder dropped), record per-client, merge.
        let per_client = samples.len() / clients;
        let mut pooled = HistogramSnapshot::empty("lat", HistKind::Time);
        for c in 0..clients {
            let mut h = HistogramSnapshot::empty("lat", HistKind::Time);
            for &v in &samples[c * per_client..(c + 1) * per_client] {
                h.record(v);
            }
            pooled.merge(&h);
        }

        let mut exact: Vec<u64> = samples[..clients * per_client].to_vec();
        exact.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
            let rank = ((exact.len() as f64 * q) as usize).min(exact.len() - 1);
            let want = exact[rank];
            let got = pooled.quantile(q);
            prop_assert!(got >= want, "q{q}: histogram {got} under exact {want}");
            prop_assert!(
                got - want <= want >> SUB_BUCKET_BITS,
                "q{q}: histogram {got} beyond one bucket above exact {want}"
            );
        }
    }
}
