//! Corpus-shape diagnostics (ignored by default; run with
//! `cargo test -p kf-bench --test sweep -- --ignored --nocapture`).
//!
//! Prints, for a grid of corpus shapes, the metrics the paper's Fig. 9
//! ordering depends on: WDEV per method, separation (mean P of true minus
//! mean P of false triples), and high-band accuracy lift. Used to choose
//! the default `SynthConfig` parameters; kept because the next corpus
//! change will need it again.

use kf_diagnose::{Diagnoser, SupportIndex};
use kf_eval::{AblationRunner, Preset};
use kf_mapreduce::MrConfig;
use kf_synth::{Corpus, SynthConfig};
use kf_types::{ErrorCategory, Label};

fn separation(corpus: &Corpus, out: &kf_core::FusionOutput) -> f64 {
    let (mut st, mut nt, mut sf, mut nf) = (0.0, 0usize, 0.0, 0usize);
    for s in &out.scored {
        let Some(p) = s.probability else { continue };
        match corpus.gold.label(&s.triple) {
            Label::True => {
                st += p;
                nt += 1;
            }
            Label::False => {
                sf += p;
                nf += 1;
            }
            Label::Unknown => {}
        }
    }
    st / nt.max(1) as f64 - sf / nf.max(1) as f64
}

fn band_accuracy(corpus: &Corpus, out: &kf_core::FusionOutput, lo: f64, hi: f64) -> (f64, usize) {
    let (mut t, mut n) = (0usize, 0usize);
    for s in &out.scored {
        let Some(p) = s.probability else { continue };
        if p < lo || p >= hi {
            continue;
        }
        match corpus.gold.label(&s.triple) {
            Label::True => {
                t += 1;
                n += 1;
            }
            Label::False => n += 1,
            Label::Unknown => {}
        }
    }
    (if n > 0 { t as f64 / n as f64 } else { f64::NAN }, n)
}

fn profile(name: &str, cfg: &SynthConfig, seed: u64) {
    let corpus = Corpus::generate(cfg, seed);
    let runner = AblationRunner::default();
    let base = corpus.lcwa_accuracy();
    let mut line = format!(
        "{name:26} seed={seed} rec={:7} uniq={:6} items={:6} vals/item={:.2} lcwa={base:.3} | ",
        corpus.batch.len(),
        corpus.batch.unique_triples(),
        corpus.batch.unique_data_items(),
        corpus.batch.unique_triples() as f64 / corpus.batch.unique_data_items() as f64,
    );
    let (support, _) = SupportIndex::build(&corpus.batch.records, &MrConfig::default());
    let truth = corpus.taxonomy_truth();
    let mut wdevs = Vec::new();
    let mut taxonomy_line = format!("{name:26} seed={seed} taxonomy mass | ");
    for preset in [Preset::Vote, Preset::PopAccu, Preset::PopAccuPlus] {
        let gold = preset.needs_gold().then_some(&corpus.gold);
        let (out, attribution) =
            kf_core::Fuser::new(preset.config()).run_with_attribution(&corpus.batch, gold);
        let eval = runner.evaluate(preset, &out, &corpus.gold, 0.0);
        let sep = separation(&corpus, &out);
        let (hb, hn) = band_accuracy(&corpus, &out, 0.9, 1.01);
        line.push_str(&format!(
            "{}: wdev={:.4} auc={:.3} sep={sep:+.3} hi={hb:.2}({hn}) | ",
            preset.label(),
            eval.wdev(),
            eval.auc_pr(),
        ));
        wdevs.push(eval.wdev());

        // Fig. 17 mass per corpus shape: how the diagnosed false
        // positives split across the taxonomy, and how well the
        // heuristics recover the injected systematic/generalized errors.
        let (taxonomy, _) = Diagnoser::new(&corpus.gold, &corpus.world, &support)
            .with_truth(&truth)
            .with_attribution(&attribution)
            .run(&out);
        let share = |c: ErrorCategory| {
            if taxonomy.n_false_positives == 0 {
                0.0
            } else {
                100.0 * taxonomy.category_share(c)
            }
        };
        let sys_gate = taxonomy.systematic_attribution.unwrap_or_default();
        taxonomy_line.push_str(&format!(
            "{}: fp={} gen={:.0}% lcwa={:.0}% sys={:.0}% link={:.0}% sysacc={}/{} | ",
            preset.label(),
            taxonomy.n_false_positives,
            share(ErrorCategory::WrongButGeneral),
            share(ErrorCategory::LcwaArtifact),
            share(ErrorCategory::SystematicExtraction),
            share(ErrorCategory::LinkageError),
            sys_gate.correct,
            sys_gate.total,
        ));
    }
    line.push_str(if wdevs[2] <= wdevs[0] {
        "ORDER-OK"
    } else {
        "order-BAD"
    });
    println!("{line}");
    println!("{taxonomy_line}");
}

/// The acceptance gate for the default reproduction: on the `paper`-scale
/// corpus the Fig. 9 / Figs. 10–15 orderings must hold — POPACCU+ at least
/// as well-calibrated as VOTE, and the best ranker of the three.
///
/// Ignored by default because it fuses the quarter-million-record corpus
/// five times; run with `cargo test --release -p kf-bench -- --ignored`
/// (CI does).
#[test]
#[ignore]
fn fig9_ordering_on_default_corpus() {
    // CI snapshots the default corpus once (`repro --save-corpus`) and
    // points every gate at the checkpoint; without the env var the gate
    // regenerates, so it still runs standalone.
    let opts = kf_bench::ReproOptions {
        out: None,
        corpus: std::env::var("KF_CORPUS").ok(),
        ..Default::default()
    };
    let (corpus, _) = kf_bench::obtain_corpus(&opts).expect("default options are valid");
    let report = kf_bench::run_on_corpus(&opts, &corpus);
    let vote = report.method("vote").expect("vote in report");
    let popaccu = report.method("popaccu").expect("popaccu in report");
    let plus = report
        .method("popaccu_plus")
        .expect("popaccu_plus in report");
    assert!(
        plus.wdev() <= vote.wdev(),
        "POPACCU+ WDEV {} must not exceed VOTE WDEV {}",
        plus.wdev(),
        vote.wdev()
    );
    assert!(
        plus.auc_pr() > popaccu.auc_pr() && popaccu.auc_pr() > vote.auc_pr(),
        "AUC-PR ordering violated: POPACCU+ {} vs POPACCU {} vs VOTE {}",
        plus.auc_pr(),
        popaccu.auc_pr(),
        vote.auc_pr()
    );
}

#[test]
#[ignore]
fn sweep_corpus_shapes() {
    for seed in [42, 7, 13] {
        profile("small (current)", &SynthConfig::small(), seed);
        {
            let mut cfg = SynthConfig::paper();
            cfg.world.n_entities = 24_000;
            profile("paper ent=24k", &cfg, seed);
        }
        {
            let mut cfg = SynthConfig::paper();
            cfg.world.n_entities = 30_000;
            profile("paper ent=30k", &cfg, seed);
        }
        {
            let mut cfg = SynthConfig::paper();
            cfg.world.n_entities = 24_000;
            cfg.world.entity_zipf_exponent = 1.2;
            profile("paper ent=24k zipf=1.2", &cfg, seed);
        }
        {
            let mut cfg = SynthConfig::paper();
            cfg.world.n_entities = 30_000;
            cfg.web.mean_claims_per_page = 5.0;
            profile("paper ent=30k cl=5", &cfg, seed);
        }
        println!();
    }
}
