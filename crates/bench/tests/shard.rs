//! The checkpoint-and-fan-out acceptance test: a sharded reproduction run
//! (shard 0/2 + shard 1/2 + merge), fanning out from one corpus
//! checkpoint, must produce a `report.json` **byte-identical** to the
//! single-process run. CI exercises the same flow through the actual
//! `repro` binary on the default corpus; this test pins it at library
//! level on a tiny corpus so regressions fail fast everywhere.

use kf_bench::{merge_shards, obtain_corpus, run_on_corpus, shard_presets, ReproOptions};
use kf_eval::{EvalReport, Preset};
use kf_synth::{Corpus, SynthConfig};
use std::path::PathBuf;

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("kf-bench-shard-{}-{name}", std::process::id()))
}

fn options() -> ReproOptions {
    ReproOptions {
        scale: "tiny".into(),
        seed: 11,
        out: None,
        workers: Some(2),
        deterministic: true,
        ..Default::default()
    }
}

#[test]
fn sharded_run_is_byte_identical_to_single_process() {
    // Snapshot once (the `--save-corpus` subflow).
    let corpus_path = tmp_path("corpus.kfc");
    Corpus::generate(&SynthConfig::tiny(), 11)
        .save(&corpus_path)
        .unwrap();

    // Single-process reference, fanning out from the checkpoint (the
    // `--corpus` subflow) with zeroed fuse times (`--deterministic`).
    let mut opts = options();
    opts.corpus = Some(corpus_path.to_string_lossy().into_owned());
    let (corpus, loaded) = obtain_corpus(&opts).unwrap();
    assert!(loaded);
    let single = run_on_corpus(&opts, &corpus);
    assert_eq!(single.methods.len(), Preset::ALL.len());

    // Sharded runs (`--shard 0/2`, `--shard 1/2`): each fuses its preset
    // slice from a freshly *loaded* corpus, persists a binary shard
    // report, as separate processes would.
    let mut shard_files = Vec::new();
    for index in 0..2 {
        let mut shard_opts = options();
        shard_opts.presets = shard_presets(&Preset::ALL, index, 2);
        let shard_corpus = Corpus::load(&corpus_path).unwrap();
        let report = run_on_corpus(&shard_opts, &shard_corpus);
        assert_eq!(report.methods.len(), shard_opts.presets.len());
        let path = tmp_path(&format!("shard{index}.bin"));
        report.save(&path).unwrap();
        shard_files.push(path.to_string_lossy().into_owned());
    }

    // Merge (the `--merge` subflow) and compare the *serialized* reports
    // byte for byte — the artifact future PRs diff.
    let merged = merge_shards(&shard_files).unwrap();
    assert_eq!(
        merged.to_json_string(),
        single.to_json_string(),
        "merged sharded report.json must be byte-identical to the single-process run"
    );

    std::fs::remove_file(&corpus_path).unwrap();
    for f in &shard_files {
        std::fs::remove_file(f).unwrap();
    }
}

#[test]
fn shard_reports_roundtrip_and_refuse_foreign_corpora() {
    let corpus = Corpus::generate(&SynthConfig::tiny(), 3);
    let mut opts = options();
    opts.seed = 3;
    opts.presets = shard_presets(&Preset::ALL, 0, 2);
    let report = run_on_corpus(&opts, &corpus);

    // Binary shard reports survive the disk roundtrip with their JSON
    // projection intact.
    let path = tmp_path("solo-shard.bin");
    report.save(&path).unwrap();
    let back = EvalReport::load(&path).unwrap();
    assert_eq!(back.to_json_string(), report.to_json_string());

    // A shard evaluated on a different corpus cannot be merged in.
    let other_corpus = Corpus::generate(&SynthConfig::tiny(), 4);
    let mut other_opts = options();
    other_opts.seed = 4;
    other_opts.presets = shard_presets(&Preset::ALL, 1, 2);
    let other = run_on_corpus(&other_opts, &other_corpus);
    let other_path = tmp_path("foreign-shard.bin");
    other.save(&other_path).unwrap();
    let err = merge_shards(&[
        path.to_string_lossy().into_owned(),
        other_path.to_string_lossy().into_owned(),
    ])
    .unwrap_err();
    assert!(err.contains("different corpus"), "{err}");

    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&other_path).unwrap();
}
