//! The hostile-corpus scenario matrix as a CI gate.
//!
//! Every adversarial generator scenario (copying, spam, drift, hard
//! linkage) is fused under the presets the paper compares, and each
//! degradation claim is asserted against the generator's *injected*
//! ground truth ([`Corpus::scenario_truth`]) — never against hand-waved
//! expectations. The non-ignored tests run on every push (they share
//! one small-scale matrix, so the cost is a single 5 × 3 run); the
//! ignored gates run in release CI, check the paper orderings on the
//! default corpus, and write the `scenarios.json` artifact.
//!
//! Threshold provenance: every numeric margin below was measured with
//! `explore_matrix_across_seeds` on seeds {42, 7, 13} and set with at
//! least 2× headroom against the weakest seed, so a legitimate
//! generator or fusion change has room to move metrics without
//! tripping the gate, while a regression that *inverts* a claim fails.

use std::sync::OnceLock;

use kf_bench::{ScenarioMatrix, SCENARIO_NAMES};
use kf_eval::Preset;
use kf_types::{ErrorCategory, ScenarioPhenomenon};

/// Presets the degradation assertions compare: raw provenance counting
/// (VOTE), accuracy learning (POPACCU) and the paper's headline
/// semi-supervised configuration (POPACCU+).
const PRESETS: [Preset; 3] = [Preset::Vote, Preset::PopAccu, Preset::PopAccuPlus];

/// One shared small-scale matrix for all non-ignored assertions: the
/// matrix is the expensive part (15 fusion + diagnosis runs), the
/// assertions are cheap reads against it.
fn matrix() -> &'static ScenarioMatrix {
    static MATRIX: OnceLock<ScenarioMatrix> = OnceLock::new();
    MATRIX.get_or_init(|| ScenarioMatrix::run("small", 42, &PRESETS, None).expect("matrix runs"))
}

/// Metric shorthand for one (scenario, method) cell; panics on a
/// missing cell so a renamed preset fails loudly.
fn cell<'a>(scenario: &str, method: &str) -> &'a kf_bench::ScenarioCell {
    matrix()
        .row(scenario)
        .unwrap_or_else(|| panic!("scenario {scenario} in matrix"))
        .cell(method)
        .unwrap_or_else(|| panic!("method {method} in {scenario} row"))
}

/// The matrix covers every declared scenario, in order, and the honest
/// baseline row is genuinely honest: nothing injected, and no cell
/// attributes any false positive to any phenomenon.
#[test]
fn matrix_covers_every_scenario_and_honest_is_clean() {
    let m = matrix();
    let names: Vec<&str> = m.rows.iter().map(|r| r.scenario.as_str()).collect();
    assert_eq!(names, SCENARIO_NAMES);
    let honest = m.row("honest").expect("honest row");
    assert_eq!(honest.n_injected, 0);
    for c in &honest.cells {
        assert!(
            c.phenomenon_mass.is_empty(),
            "honest {} attributes phenomenon mass: {:?}",
            c.method,
            c.phenomenon_mass
        );
        assert!(c.wdev.is_finite() && c.auc_pr.is_finite());
    }
    // Every hostile scenario injected real mass, and the phenomenon a
    // method leaks is exactly the one that scenario injects — the
    // scenario-truth join never cross-attributes.
    for (scenario, phenomenon) in [
        ("copying", ScenarioPhenomenon::Copied),
        ("spam", ScenarioPhenomenon::Spam),
        ("drift", ScenarioPhenomenon::Drift),
        ("linkage", ScenarioPhenomenon::Linkage),
    ] {
        let row = m.row(scenario).expect("row");
        assert!(row.n_injected > 0, "{scenario} injected nothing");
        for c in &row.cells {
            for other in ScenarioPhenomenon::ALL {
                if other != phenomenon {
                    assert_eq!(
                        c.phenomenon_fp(other),
                        0,
                        "{scenario}/{} leaks {} mass",
                        c.method,
                        other.name()
                    );
                }
            }
        }
    }
}

/// Copying violates the source-independence assumption VOTE's raw
/// provenance counting leans on hardest: the copied mistakes degrade
/// VOTE's calibration more than POPACCU+'s (widening the WDEV gap in
/// VOTE's disfavor), and the accuracy-learning preset admits well under
/// half of the copied false-positive mass VOTE admits.
#[test]
fn copying_degrades_vote_calibration_more_than_popaccu_plus() {
    let vote_delta = cell("copying", "vote").wdev - cell("honest", "vote").wdev;
    let plus_delta = cell("copying", "popaccu_plus").wdev - cell("honest", "popaccu_plus").wdev;
    assert!(
        vote_delta > 0.0,
        "copying must worsen VOTE WDEV (delta {vote_delta:+.4})"
    );
    assert!(
        vote_delta > plus_delta,
        "copying must widen the VOTE-POPACCU+ WDEV gap \
         (VOTE {vote_delta:+.4} vs POPACCU+ {plus_delta:+.4})"
    );
    let vote_leak = cell("copying", "vote").phenomenon_fp(ScenarioPhenomenon::Copied);
    let plus_leak = cell("copying", "popaccu_plus").phenomenon_fp(ScenarioPhenomenon::Copied);
    assert!(vote_leak > 0, "VOTE must leak some copied mistakes");
    assert!(
        2 * plus_leak < vote_leak,
        "POPACCU+ must admit <half of VOTE's copied mass ({plus_leak} vs {vote_leak})"
    );
}

/// Spam pages push one wrong voice per targeted item from fresh sites:
/// VOTE counts those provenances at face value (admitting spam voices
/// and losing ranking quality), while the semi-supervised POPACCU+
/// learns the spam sources are bad and admits strictly fewer of the
/// injected voices.
#[test]
fn spam_leaks_through_vote_and_accuracy_learning_recovers() {
    let vote = cell("spam", "vote");
    let plus = cell("spam", "popaccu_plus");
    let vote_leak = vote.phenomenon_fp(ScenarioPhenomenon::Spam);
    let plus_leak = plus.phenomenon_fp(ScenarioPhenomenon::Spam);
    assert!(vote_leak > 0, "VOTE must admit some injected spam voices");
    assert!(
        plus_leak < vote_leak,
        "POPACCU+ must admit fewer spam voices than VOTE ({plus_leak} vs {vote_leak})"
    );
    assert!(
        vote.auc_pr < cell("honest", "vote").auc_pr,
        "spam must degrade VOTE's ranking (AUC-PR {} vs honest {})",
        vote.auc_pr,
        cell("honest", "vote").auc_pr
    );
    // Spam is a *voice* phenomenon — fabricated values on correctly
    // linked items — so none of its mass may classify as linkage error.
    for c in &matrix().row("spam").expect("spam row").cells {
        for g in &c.phenomenon_mass {
            assert_eq!(
                g.counts.get(ErrorCategory::LinkageError),
                0,
                "spam mass misclassified as linkage error under {}",
                c.method
            );
        }
    }
}

/// Temporal drift flips a slice of items mid-crawl, leaving the early
/// pages claiming the stale (previously true) value: VOTE admits a
/// chunk of that stale mass, POPACCU+ recovers most of it, and the
/// taxonomy never calls a stale value a hierarchy generalization — the
/// diagnosable share lands in the LCWA-artifact category the paper
/// predicts for out-of-date truths.
#[test]
fn drift_mass_is_stale_truth_not_generalization() {
    let vote = cell("drift", "vote");
    let plus = cell("drift", "popaccu_plus");
    let vote_leak = vote.phenomenon_fp(ScenarioPhenomenon::Drift);
    let plus_leak = plus.phenomenon_fp(ScenarioPhenomenon::Drift);
    assert!(vote_leak > 0, "VOTE must admit some stale drift values");
    assert!(
        plus_leak < vote_leak,
        "POPACCU+ must admit fewer stale values than VOTE ({plus_leak} vs {vote_leak})"
    );
    for c in &matrix().row("drift").expect("drift row").cells {
        for g in &c.phenomenon_mass {
            assert_eq!(
                g.counts.get(ErrorCategory::WrongButGeneral),
                0,
                "stale drift value misclassified as generalization under {}",
                c.method
            );
        }
    }
    let lcwa = vote
        .phenomenon_mass
        .iter()
        .map(|g| g.counts.get(ErrorCategory::LcwaArtifact))
        .sum::<u64>();
    assert!(
        lcwa > 0,
        "some of VOTE's drift mass must classify as LCWA artifact (stale truth)"
    );
}

/// Hard linkage (confusable rings + boosted linkage error budgets) is
/// the scenario that hits VOTE's calibration hardest: its WDEV blows
/// out versus honest while POPACCU+ stays at or under its honest
/// baseline, and the heuristic taxonomy correctly makes linkage error
/// the single largest category of VOTE's leaked linkage mass.
#[test]
fn linkage_blows_out_vote_wdev_and_classifies_as_linkage_error() {
    let vote = cell("linkage", "vote");
    let honest_vote = cell("honest", "vote");
    assert!(
        vote.wdev > 1.25 * honest_vote.wdev,
        "hard linkage must materially worsen VOTE WDEV ({} vs honest {})",
        vote.wdev,
        honest_vote.wdev
    );
    assert!(
        cell("linkage", "popaccu_plus").wdev <= cell("honest", "popaccu_plus").wdev,
        "POPACCU+ must hold its honest calibration under hard linkage"
    );
    let vote_leak = vote.phenomenon_fp(ScenarioPhenomenon::Linkage);
    let plus_leak = cell("linkage", "popaccu_plus").phenomenon_fp(ScenarioPhenomenon::Linkage);
    assert!(vote_leak > 0, "VOTE must leak some linkage mistakes");
    assert!(
        2 * plus_leak < vote_leak,
        "POPACCU+ must admit <half of VOTE's linkage mass ({plus_leak} vs {vote_leak})"
    );
    let by_category: Vec<u64> = ErrorCategory::ALL
        .iter()
        .map(|&c| {
            vote.phenomenon_mass
                .iter()
                .map(|g| g.counts.get(c))
                .sum::<u64>()
        })
        .collect();
    let linkage_mass = by_category[ErrorCategory::LinkageError.index()];
    assert!(
        by_category.iter().all(|&m| m <= linkage_mass),
        "linkage error must be the largest category of VOTE's leaked \
         linkage mass (got {by_category:?})"
    );
}

/// The machine-readable artifact CI uploads is well-formed: one entry
/// per scenario, one method object per preset, and no bare NaN/Inf
/// tokens (non-finite metrics serialize as null).
#[test]
fn scenarios_json_artifact_is_well_formed() {
    let json = matrix().to_json_string();
    assert!(json.contains("\"schema_version\": 1"));
    for name in SCENARIO_NAMES {
        assert!(
            json.contains(&format!("\"scenario\": \"{name}\"")),
            "{name}"
        );
    }
    for preset in PRESETS {
        assert!(json.contains(&format!("\"method\": \"{}\"", preset.name())));
    }
    assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
}

/// The acceptance gate for the default reproduction: on the `paper`-scale
/// corpus the Fig. 9 / Figs. 10–15 orderings must hold — POPACCU+ at least
/// as well-calibrated as VOTE, and the best ranker of the three.
///
/// Ignored by default because it fuses the quarter-million-record corpus
/// five times; run with `cargo test --release -p kf-bench -- --ignored`
/// (CI does).
#[test]
#[ignore]
fn fig9_ordering_on_default_corpus() {
    // CI snapshots the default corpus once (`repro --save-corpus`) and
    // points every gate at the checkpoint; without the env var the gate
    // regenerates, so it still runs standalone.
    let opts = kf_bench::ReproOptions {
        out: None,
        corpus: std::env::var("KF_CORPUS").ok(),
        ..Default::default()
    };
    let (corpus, _) = kf_bench::obtain_corpus(&opts).expect("default options are valid");
    let report = kf_bench::run_on_corpus(&opts, &corpus);
    let vote = report.method("vote").expect("vote in report");
    let popaccu = report.method("popaccu").expect("popaccu in report");
    let plus = report
        .method("popaccu_plus")
        .expect("popaccu_plus in report");
    assert!(
        plus.wdev() <= vote.wdev(),
        "POPACCU+ WDEV {} must not exceed VOTE WDEV {}",
        plus.wdev(),
        vote.wdev()
    );
    assert!(
        plus.auc_pr() > popaccu.auc_pr() && popaccu.auc_pr() > vote.auc_pr(),
        "AUC-PR ordering violated: POPACCU+ {} vs POPACCU {} vs VOTE {}",
        plus.auc_pr(),
        popaccu.auc_pr(),
        vote.auc_pr()
    );
}

/// Release gate that also produces the `scenarios.json` artifact CI
/// uploads: reruns the shared matrix (scale overridable via
/// `KF_MATRIX_SCALE`) and writes it to `KF_SCENARIOS_OUT` (default
/// `scenarios.json` in the test working directory).
#[test]
#[ignore]
fn scenario_matrix_gate_writes_artifact() {
    let scale = std::env::var("KF_MATRIX_SCALE").unwrap_or_else(|_| "small".to_string());
    let m = ScenarioMatrix::run(&scale, 42, &PRESETS, None).expect("matrix runs");
    let out = std::env::var("KF_SCENARIOS_OUT").unwrap_or_else(|_| "scenarios.json".to_string());
    std::fs::write(&out, m.to_json_string()).expect("write scenarios.json");
    // The same integrity conditions the small-scale tests pin, so the
    // artifact CI publishes is never an artifact of a broken run.
    assert_eq!(
        m.rows
            .iter()
            .map(|r| r.scenario.as_str())
            .collect::<Vec<_>>(),
        SCENARIO_NAMES
    );
    assert!(m.row("honest").expect("honest").n_injected == 0);
    for row in &m.rows {
        assert_eq!(row.cells.len(), PRESETS.len(), "{}", row.scenario);
    }
}

/// Prints the full matrix across seeds — the tool that measured every
/// threshold above; rerun it (release, `--ignored --nocapture`) before
/// touching the generator defaults or the margins.
#[test]
#[ignore]
fn explore_matrix_across_seeds() {
    for seed in [42u64, 7, 13] {
        let m = ScenarioMatrix::run("small", seed, &PRESETS, None).expect("runs");
        for row in &m.rows {
            println!(
                "seed={seed} scenario={} injected={}",
                row.scenario, row.n_injected
            );
            for c in &row.cells {
                println!(
                    "  {:16} wdev={:.4} auc={:.3} sep={:+.3} hi={:.3}({}) \
                     copied={} spam={} drift={} link={}",
                    c.method,
                    c.wdev,
                    c.auc_pr,
                    c.separation,
                    c.high_band_accuracy,
                    c.high_band_n,
                    c.phenomenon_fp(ScenarioPhenomenon::Copied),
                    c.phenomenon_fp(ScenarioPhenomenon::Spam),
                    c.phenomenon_fp(ScenarioPhenomenon::Drift),
                    c.phenomenon_fp(ScenarioPhenomenon::Linkage),
                );
                for g in &c.phenomenon_mass {
                    println!("      {:10} {:?}", g.label, g.counts.0);
                }
            }
        }
        println!();
    }
}
