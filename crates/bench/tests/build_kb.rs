//! End-to-end acceptance for `repro --build-kb`: the same fused KB comes
//! out of the single-process subflow and the merge subflow (shards +
//! merged report + corpus snapshot), byte-identical, and it answers
//! queries through [`kf_serve::KbReader`]. CI exercises the same flow
//! through the actual binary on the default corpus; this pins it at
//! library level on a tiny corpus.

use kf_bench::{compile_kb, merge_shards, run_on_corpus, shard_presets, ReproOptions};
use kf_eval::Preset;
use kf_serve::{FusedKb, KbReader};
use kf_synth::{Corpus, SynthConfig};
use std::path::PathBuf;

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("kf-bench-kb-{}-{name}", std::process::id()))
}

fn options() -> ReproOptions {
    ReproOptions {
        scale: "tiny".into(),
        seed: 13,
        out: None,
        deterministic: true,
        ..Default::default()
    }
}

#[test]
fn single_run_and_merge_run_build_identical_kbs() {
    let corpus = Corpus::generate(&SynthConfig::tiny(), 13);

    // --- Single-process subflow: in-memory report + corpus → KB. --------
    let mut opts = options();
    opts.build_kb = Some(tmp_path("single.kb").to_string_lossy().into_owned());
    let report = run_on_corpus(&opts, &corpus);
    let single = compile_kb(&opts, &report, &corpus).expect("single-run KB compiles");
    assert!(single.n_triples() > 0);

    // --- Merge subflow: shards → merged report → the same KB. -----------
    let mut shard_files = Vec::new();
    for index in 0..2 {
        let mut shard_opts = options();
        shard_opts.presets = shard_presets(&Preset::ALL, index, 2);
        let shard_report = run_on_corpus(&shard_opts, &corpus);
        let path = tmp_path(&format!("shard{index}.bin"));
        shard_report.save(&path).unwrap();
        shard_files.push(path.to_string_lossy().into_owned());
    }
    let merged = merge_shards(&shard_files).expect("shards merge");
    let mut merge_opts = options();
    merge_opts.build_kb = Some(tmp_path("merged.kb").to_string_lossy().into_owned());
    let from_merge = compile_kb(&merge_opts, &merged, &corpus).expect("merge-run KB compiles");

    assert_eq!(single, from_merge, "merge path must rebuild the same KB");
    let single_bytes = std::fs::read(opts.build_kb.as_deref().unwrap()).unwrap();
    let merged_bytes = std::fs::read(merge_opts.build_kb.as_deref().unwrap()).unwrap();
    assert_eq!(single_bytes, merged_bytes, "saved artifacts byte-identical");

    // --- And the saved artifact serves. ---------------------------------
    let reader = KbReader::open(opts.build_kb.as_deref().unwrap()).expect("KB opens");
    assert_eq!(reader.kb().n_triples(), single.n_triples());
    let v = reader.view(0);
    assert_eq!(reader.lookup(&v.triple), Some(v));

    for path in shard_files.iter().map(PathBuf::from).chain([
        opts.build_kb.unwrap().into(),
        merge_opts.build_kb.unwrap().into(),
    ]) {
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn compile_kb_respects_kb_method() {
    let corpus = Corpus::generate(&SynthConfig::tiny(), 13);
    let mut opts = options();
    opts.kb_method = "vote".into();
    opts.build_kb = Some(tmp_path("vote.kb").to_string_lossy().into_owned());
    let report = run_on_corpus(&opts, &corpus);
    let kb = compile_kb(&opts, &report, &corpus).expect("vote KB compiles");
    assert_eq!(kb.method, "vote");
    let loaded = FusedKb::load(opts.build_kb.as_deref().unwrap()).unwrap();
    assert_eq!(loaded, kb);
    std::fs::remove_file(opts.build_kb.unwrap()).ok();
}
