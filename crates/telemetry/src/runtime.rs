//! The recording side: [`Trace`], span guards, counters, and the
//! thread-local installation that lets library code emit telemetry
//! without threading a handle through every signature.
//!
//! # Threading model
//!
//! A [`Trace`] is a cheap clone-able handle (`Arc` inside). Counters and
//! series are thread-safe: any thread holding a handle (or a
//! [`CounterHandle`]) may add to them concurrently. The *span stack* is
//! structural state — it assumes one coordinating thread opens and
//! closes spans in LIFO order, which is exactly how the fusion pipeline
//! runs (worker threads do the flat work; the coordinator owns phase
//! structure). A span guard dropped out of order records its timing but
//! only unwinds the stack down to its own frame.

use crate::histogram::{bucket_index, GaugeSnapshot, HistKind, HistogramSnapshot, BUCKET_COUNT};
use crate::report::{CounterSnapshot, MergeRule, SeriesSnapshot, SpanNode, TraceReport};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Lock a mutex, recovering the inner data if a previous holder
/// panicked. Telemetry must stay usable during unwinding — a poisoned
/// span arena is still structurally sound because every mutation is a
/// single field update.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One node of the live span arena. Same-name children aggregate: a
/// thousand waves produce one `wave` node with `calls == 1000`, keeping
/// traces compact and the deterministic section stable.
struct ArenaNode {
    name: &'static str,
    calls: u64,
    total_ns: u64,
    children: Vec<usize>,
}

struct SpanArena {
    /// Node 0 is the root; it is closed only by [`Trace::snapshot`].
    nodes: Vec<ArenaNode>,
    /// Indices of currently-open spans, root first. Indices are unique
    /// (a child is never its own ancestor), so closing by position is
    /// unambiguous.
    stack: Vec<usize>,
}

struct CounterCell {
    value: AtomicU64,
    rule: MergeRule,
}

/// The live, thread-safe side of a log-bucketed histogram: a dense
/// preallocated bucket array of atomics over the fixed layout, so
/// recording is three relaxed `fetch_add`s and **zero allocations** —
/// safe on hot paths that pin an allocation-free guarantee.
pub struct LiveHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for LiveHistogram {
    fn default() -> Self {
        LiveHistogram::new()
    }
}

impl LiveHistogram {
    /// A fresh histogram with every bucket of the fixed layout
    /// preallocated (one upfront allocation, none at record time).
    pub fn new() -> LiveHistogram {
        LiveHistogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation. Lock-free, allocation-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Freeze into a sparse snapshot under the given name and kind.
    pub fn snapshot(&self, name: &str, kind: HistKind) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::empty(name, kind);
        snap.count = self.count.load(Ordering::Relaxed);
        snap.sum = self.sum.load(Ordering::Relaxed);
        for (index, bucket) in self.buckets.iter().enumerate() {
            let count = bucket.load(Ordering::Relaxed);
            if count > 0 {
                snap.buckets.push(crate::histogram::HistBucket {
                    index: index as u32,
                    count,
                });
            }
        }
        snap
    }
}

struct HistogramCell {
    kind: HistKind,
    live: LiveHistogram,
}

struct Inner {
    started: Instant,
    root_name: &'static str,
    spans: Mutex<SpanArena>,
    counters: Mutex<BTreeMap<&'static str, Arc<CounterCell>>>,
    series: Mutex<BTreeMap<&'static str, Vec<f64>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<HistogramCell>>>,
    gauges: Mutex<BTreeMap<&'static str, f64>>,
}

/// A run-scoped telemetry registry: a tree of timed spans, a set of
/// merge-ruled counters, and named numeric series.
///
/// Clone freely — all clones share one registry. Snapshot at any time
/// with [`Trace::snapshot`]; recording may continue afterwards.
#[derive(Clone)]
pub struct Trace {
    inner: Arc<Inner>,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new()
    }
}

impl Trace {
    /// A fresh trace whose root span is named `run`.
    pub fn new() -> Trace {
        Trace::with_root("run")
    }

    /// A fresh trace with an explicit root-span name.
    pub fn with_root(root_name: &'static str) -> Trace {
        Trace {
            inner: Arc::new(Inner {
                started: Instant::now(),
                root_name,
                spans: Mutex::new(SpanArena {
                    nodes: vec![ArenaNode {
                        name: root_name,
                        calls: 0,
                        total_ns: 0,
                        children: Vec::new(),
                    }],
                    stack: vec![0],
                }),
                counters: Mutex::new(BTreeMap::new()),
                series: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Open a span as a child of the innermost open span. The returned
    /// guard closes it (recording elapsed time and one call) on drop —
    /// including during a panic, so a panicking scope never leaves the
    /// stack dangling.
    #[must_use = "a span measures the lifetime of this guard; bind it with `let _span = ...`"]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let node = {
            let mut arena = lock_unpoisoned(&self.inner.spans);
            let parent = *arena.stack.last().expect("root frame is never popped");
            let existing = arena.nodes[parent]
                .children
                .iter()
                .copied()
                .find(|&c| arena.nodes[c].name == name);
            let node = existing.unwrap_or_else(|| {
                let idx = arena.nodes.len();
                arena.nodes.push(ArenaNode {
                    name,
                    calls: 0,
                    total_ns: 0,
                    children: Vec::new(),
                });
                arena.nodes[parent].children.push(idx);
                idx
            });
            arena.stack.push(node);
            node
        };
        SpanGuard {
            trace: self.clone(),
            node,
            started: Instant::now(),
        }
    }

    /// A thread-safe handle to the named counter, registering it with
    /// `rule` on first use. A counter's merge rule is fixed by its first
    /// registration; later calls reuse the existing cell regardless of
    /// the rule they pass.
    pub fn counter(&self, name: &'static str, rule: MergeRule) -> CounterHandle {
        let cell = lock_unpoisoned(&self.inner.counters)
            .entry(name)
            .or_insert_with(|| {
                Arc::new(CounterCell {
                    value: AtomicU64::new(0),
                    rule,
                })
            })
            .clone();
        CounterHandle { cell }
    }

    /// Add `delta` to the named [`MergeRule::Add`] counter.
    pub fn add(&self, name: &'static str, delta: u64) {
        self.counter(name, MergeRule::Add).add(delta);
    }

    /// Raise the named [`MergeRule::Max`] counter to at least `value`.
    pub fn record_max(&self, name: &'static str, value: u64) {
        self.counter(name, MergeRule::Max).record_max(value);
    }

    /// Append `value` to the named series (e.g. per-round convergence
    /// deltas). Series values are data, not timings: they survive
    /// [`TraceReport::quarantine_timings`].
    pub fn push_series(&self, name: &'static str, value: f64) {
        lock_unpoisoned(&self.inner.series)
            .entry(name)
            .or_default()
            .push(value);
    }

    /// A lock-free handle to the named histogram, registering it with
    /// `kind` on first use. Like counters, a histogram's kind is fixed
    /// by its first registration.
    pub fn histogram(&self, name: &'static str, kind: HistKind) -> HistogramHandle {
        let cell = lock_unpoisoned(&self.inner.histograms)
            .entry(name)
            .or_insert_with(|| {
                Arc::new(HistogramCell {
                    kind,
                    live: LiveHistogram::new(),
                })
            })
            .clone();
        HistogramHandle { cell }
    }

    /// Record a wall-clock duration (nanoseconds) into the named
    /// [`HistKind::Time`] histogram.
    pub fn record_time(&self, name: &'static str, ns: u64) {
        self.histogram(name, HistKind::Time).record(ns);
    }

    /// Record a data quantity into the named [`HistKind::Value`]
    /// histogram.
    pub fn record_value(&self, name: &'static str, value: u64) {
        self.histogram(name, HistKind::Value).record(value);
    }

    /// Record a wire-frame size (bytes) into the named
    /// [`HistKind::Traffic`] histogram.
    pub fn record_traffic(&self, name: &'static str, bytes: u64) {
        self.histogram(name, HistKind::Traffic).record(bytes);
    }

    /// Set the named gauge to `value` (last write wins).
    pub fn set_gauge(&self, name: &'static str, value: f64) {
        lock_unpoisoned(&self.inner.gauges).insert(name, value);
    }

    /// Freeze the current state into a [`TraceReport`]. Open spans
    /// contribute the calls and time of their already-closed invocations;
    /// the root reports one call spanning the trace's lifetime so far.
    pub fn snapshot(&self) -> TraceReport {
        let root = {
            let arena = lock_unpoisoned(&self.inner.spans);
            let mut root = build_node(&arena.nodes, 0);
            root.calls = 1;
            root.total_ns = self.inner.started.elapsed().as_nanos() as u64;
            root
        };
        let counters = lock_unpoisoned(&self.inner.counters)
            .iter()
            .map(|(&name, cell)| CounterSnapshot {
                name: name.to_owned(),
                value: cell.value.load(Ordering::Relaxed),
                rule: cell.rule,
            })
            .collect();
        let series = lock_unpoisoned(&self.inner.series)
            .iter()
            .map(|(&name, values)| SeriesSnapshot {
                name: name.to_owned(),
                values: values.clone(),
            })
            .collect();
        let histograms = lock_unpoisoned(&self.inner.histograms)
            .iter()
            .map(|(&name, cell)| cell.live.snapshot(name, cell.kind))
            .collect();
        let gauges = lock_unpoisoned(&self.inner.gauges)
            .iter()
            .map(|(&name, &value)| GaugeSnapshot {
                name: name.to_owned(),
                value,
            })
            .collect();
        TraceReport {
            root,
            counters,
            series,
            histograms,
            gauges,
        }
    }

    /// The root-span name this trace was created with.
    pub fn root_name(&self) -> &'static str {
        self.inner.root_name
    }
}

fn build_node(nodes: &[ArenaNode], idx: usize) -> SpanNode {
    let n = &nodes[idx];
    SpanNode {
        name: n.name.to_owned(),
        calls: n.calls,
        total_ns: n.total_ns,
        children: n.children.iter().map(|&c| build_node(nodes, c)).collect(),
    }
}

/// Closes its span on drop, crediting elapsed wall-clock time and one
/// call to the span's node. Drop order is the close order; a panic
/// unwinding through the guard still closes the span.
pub struct SpanGuard {
    trace: Trace,
    node: usize,
    started: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed().as_nanos() as u64;
        let mut arena = lock_unpoisoned(&self.trace.inner.spans);
        let node = &mut arena.nodes[self.node];
        node.calls += 1;
        node.total_ns += elapsed;
        if let Some(pos) = arena.stack.iter().rposition(|&i| i == self.node) {
            arena.stack.truncate(pos);
        }
    }
}

/// A lock-free handle to one histogram cell; clone and hand to worker
/// threads for hot-loop recording (three relaxed atomics, no locks, no
/// allocation).
#[derive(Clone)]
pub struct HistogramHandle {
    cell: Arc<HistogramCell>,
}

impl HistogramHandle {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.cell.live.record(v);
    }

    /// The kind this histogram was registered with.
    pub fn kind(&self) -> HistKind {
        self.cell.kind
    }
}

/// A lock-free handle to one counter cell; clone and hand to worker
/// threads for hot-loop increments.
#[derive(Clone)]
pub struct CounterHandle {
    cell: Arc<CounterCell>,
}

impl CounterHandle {
    /// Add `delta` (saturating at `u64::MAX` only in theory; counters
    /// count records and bytes, which fit comfortably).
    pub fn add(&self, delta: u64) {
        self.cell.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raise the counter to at least `value`.
    pub fn record_max(&self, value: u64) {
        self.cell.value.fetch_max(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.value.load(Ordering::Relaxed)
    }
}

thread_local! {
    /// Installed traces, innermost last. A stack (not a slot) so a
    /// method-scoped trace can shadow a run-scoped one and restore it on
    /// drop.
    static INSTALLED: RefCell<Vec<Trace>> = const { RefCell::new(Vec::new()) };
}

/// Make `trace` the calling thread's current trace until the returned
/// guard drops. Installs nest: the innermost install wins, and dropping
/// it restores the previous trace.
#[must_use = "the trace is uninstalled when this guard drops; bind it with `let _t = ...`"]
pub fn install(trace: &Trace) -> InstallGuard {
    let depth = INSTALLED.with(|slot| {
        let mut stack = slot.borrow_mut();
        stack.push(trace.clone());
        stack.len()
    });
    InstallGuard {
        depth,
        _not_send: PhantomData,
    }
}

/// Uninstalls its trace on drop, restoring whatever was installed
/// before. Guards are thread-local and expected to drop in LIFO order;
/// an out-of-order drop truncates down to its own frame.
pub struct InstallGuard {
    depth: usize,
    _not_send: PhantomData<*const ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let depth = self.depth;
        INSTALLED.with(|slot| {
            let mut stack = slot.borrow_mut();
            if stack.len() >= depth {
                stack.truncate(depth - 1);
            }
        });
    }
}

/// The calling thread's innermost installed trace, if any.
pub fn current() -> Option<Trace> {
    INSTALLED.with(|slot| slot.borrow().last().cloned())
}

/// Open a span on the current thread's installed trace. A no-op (still
/// returning a guard to bind) when no trace is installed, so library
/// code can instrument unconditionally.
#[must_use = "a span measures the lifetime of this guard; bind it with `let _span = ...`"]
pub fn span(name: &'static str) -> ActiveSpan {
    ActiveSpan {
        guard: current().map(|t| t.span(name)),
    }
}

/// The guard returned by the free [`span`] function: a real span guard
/// when a trace is installed, a no-op otherwise.
pub struct ActiveSpan {
    guard: Option<SpanGuard>,
}

impl ActiveSpan {
    /// Whether this span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.guard.is_some()
    }
}

/// Add `delta` to a [`MergeRule::Add`] counter on the installed trace;
/// no-op without one.
pub fn add(name: &'static str, delta: u64) {
    if let Some(t) = current() {
        t.add(name, delta);
    }
}

/// Raise a [`MergeRule::Max`] counter on the installed trace; no-op
/// without one.
pub fn record_max(name: &'static str, value: u64) {
    if let Some(t) = current() {
        t.record_max(name, value);
    }
}

/// Append to a series on the installed trace; no-op without one.
pub fn push_series(name: &'static str, value: f64) {
    if let Some(t) = current() {
        t.push_series(name, value);
    }
}

/// Record a wall-clock duration (nanoseconds) into a
/// [`HistKind::Time`] histogram on the installed trace; no-op without
/// one.
pub fn record_time(name: &'static str, ns: u64) {
    if let Some(t) = current() {
        t.record_time(name, ns);
    }
}

/// Record a data quantity into a [`HistKind::Value`] histogram on the
/// installed trace; no-op without one.
pub fn record_value(name: &'static str, value: u64) {
    if let Some(t) = current() {
        t.record_value(name, value);
    }
}

/// Record a wire-frame size (bytes) into a [`HistKind::Traffic`]
/// histogram on the installed trace; no-op without one.
pub fn record_traffic(name: &'static str, bytes: u64) {
    if let Some(t) = current() {
        t.record_traffic(name, bytes);
    }
}

/// Set a gauge on the installed trace; no-op without one.
pub fn set_gauge(name: &'static str, value: f64) {
    if let Some(t) = current() {
        t.set_gauge(name, value);
    }
}
