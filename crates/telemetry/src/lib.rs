//! # `kf-telemetry` — spans, counters & run traces for the fusion pipeline
//!
//! Dong et al. justify every scaling decision in §6 by knowing where the
//! time and bytes go per MapReduce stage. This crate is the
//! reproduction's measurement substrate: a hand-rolled (zero external
//! dependencies) tracing/metrics layer that the engine, the fuser, the
//! evaluator, and the persistence layer all emit into.
//!
//! Four pieces:
//!
//! * [`Trace`] — a run-scoped registry: a tree of timed spans (opened
//!   via RAII [`SpanGuard`]s, aggregated by name so a thousand waves
//!   make one compact `wave` node), thread-safe atomic counters with
//!   explicit [`MergeRule`]s, named numeric series, log-bucketed
//!   histograms, and gauges.
//! * [`LiveHistogram`] / [`HistogramSnapshot`] — HDR-style power-of-two
//!   sub-bucketed latency/size distributions over a fixed layout
//!   (quantile relative error ≤ `2^-SUB_BUCKET_BITS`): lock-free
//!   allocation-free recording, bucket-wise-add merging, and a
//!   deterministic-count / quarantined-value split keyed by
//!   [`HistKind`].
//! * a thread-local installation ([`install`]) with free functions
//!   ([`span`], [`add`], [`record_max`], [`push_series`],
//!   [`record_time`], [`record_value`], [`record_traffic`],
//!   [`set_gauge`]) that are
//!   no-ops when no trace is installed — so library code instruments
//!   unconditionally and pays nothing in untraced runs.
//! * [`TraceReport`] — the frozen snapshot: mergeable across shard runs
//!   under documented rules, splittable into a *deterministic* section
//!   (calls, counters, series, gauges, histogram counts —
//!   byte-identical across same-seed runs) and a quarantined *timing*
//!   section ([`TraceReport::quarantine_timings`]), and
//!   `KvCodec`-encodable so traces ride inside shard reports.
//!
//! ```
//! use kf_telemetry::{install, span, add, Trace};
//!
//! let trace = Trace::new();
//! {
//!     let _t = install(&trace);
//!     let _fuse = span("fuse");
//!     {
//!         let _round = span("round");
//!         add("fuse.rounds", 1);
//!     }
//! }
//! let report = trace.snapshot();
//! let fuse = report.root.child("fuse").unwrap();
//! assert_eq!(fuse.calls, 1);
//! assert_eq!(fuse.child("round").unwrap().calls, 1);
//! assert_eq!(report.counters[0].value, 1);
//! ```

mod histogram;
mod report;
mod runtime;

pub use histogram::{
    bucket_bounds, bucket_index, GaugeSnapshot, HistBucket, HistKind, HistogramSnapshot,
    BUCKET_COUNT, SUB_BUCKET_BITS, SUB_BUCKET_COUNT,
};
pub use report::{
    fmt_ns, CounterSnapshot, MergeRule, SeriesSnapshot, SpanNode, TraceReport, MAX_SPAN_DEPTH,
};
pub use runtime::{
    add, current, install, push_series, record_max, record_time, record_traffic, record_value,
    set_gauge, span, ActiveSpan, CounterHandle, HistogramHandle, InstallGuard, LiveHistogram,
    SpanGuard, Trace,
};

#[cfg(test)]
mod tests {
    use super::*;
    use kf_types::KvCodec;

    #[test]
    fn spans_nest_and_aggregate_by_name() {
        let t = Trace::new();
        for _ in 0..3 {
            let _wave = t.span("wave");
            let _map = t.span("map");
        }
        {
            let _wave = t.span("wave");
        }
        let report = t.snapshot();
        assert_eq!(report.root.children.len(), 1, "same-name spans aggregate");
        let wave = report.root.child("wave").unwrap();
        assert_eq!(wave.calls, 4);
        let map = wave.child("map").unwrap();
        assert_eq!(map.calls, 3, "map nested under wave, not under root");
        assert!(report.root.child("map").is_none());
    }

    #[test]
    fn sibling_spans_stay_siblings() {
        let t = Trace::new();
        {
            let _a = t.span("stage1");
        }
        {
            let _b = t.span("stage2");
        }
        let report = t.snapshot();
        let names: Vec<&str> = report
            .root
            .children
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, ["stage1", "stage2"]);
    }

    #[test]
    fn panicking_scope_still_closes_its_span() {
        let t = Trace::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _outer = t.span("outer");
            let _inner = t.span("inner");
            panic!("boom");
        }));
        assert!(result.is_err());
        // Both spans closed during unwinding: a new span opens under the
        // root again, not under a dangling `inner`.
        {
            let _after = t.span("after");
        }
        let report = t.snapshot();
        let outer = report.root.child("outer").unwrap();
        assert_eq!(outer.calls, 1);
        assert_eq!(outer.child("inner").unwrap().calls, 1);
        assert_eq!(report.root.child("after").unwrap().calls, 1);
        assert!(outer.child("after").is_none());
    }

    #[test]
    fn install_shadows_and_restores() {
        let outer = Trace::new();
        let inner = Trace::new();
        assert!(current().is_none());
        {
            let _o = install(&outer);
            add("hits", 1);
            {
                let _i = install(&inner);
                add("hits", 10);
            }
            add("hits", 1);
        }
        assert!(current().is_none());
        add("hits", 100); // no-op: nothing installed
        assert_eq!(outer.snapshot().counters[0].value, 2);
        assert_eq!(inner.snapshot().counters[0].value, 10);
    }

    #[test]
    fn counters_are_thread_safe_and_rules_stick() {
        let t = Trace::new();
        let adder = t.counter("n", MergeRule::Add);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = adder.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.add(1);
                    }
                });
            }
        });
        t.record_max("peak", 7);
        t.record_max("peak", 3);
        let report = t.snapshot();
        let n = report.counters.iter().find(|c| c.name == "n").unwrap();
        assert_eq!((n.value, n.rule), (4000, MergeRule::Add));
        let peak = report.counters.iter().find(|c| c.name == "peak").unwrap();
        assert_eq!((peak.value, peak.rule), (7, MergeRule::Max));
    }

    #[test]
    fn merge_follows_documented_rules() {
        let t1 = Trace::new();
        {
            let _s = t1.span("fuse");
        }
        t1.add("mr.map_output", 10);
        t1.record_max("mr.peak", 5);
        t1.push_series("delta", 0.5);
        let t2 = Trace::new();
        {
            let _s = t2.span("fuse");
            let _r = t2.span("round");
        }
        t2.add("mr.map_output", 7);
        t2.record_max("mr.peak", 9);
        t2.push_series("delta", 0.25);

        let mut merged = t1.snapshot();
        merged.merge(&t2.snapshot());
        assert_eq!(merged.root.calls, 2);
        let fuse = merged.root.child("fuse").unwrap();
        assert_eq!(fuse.calls, 2);
        assert_eq!(fuse.child("round").unwrap().calls, 1);
        let get = |name: &str| {
            merged
                .counters
                .iter()
                .find(|c| c.name == name)
                .unwrap()
                .value
        };
        assert_eq!(get("mr.map_output"), 17, "Add counters sum");
        assert_eq!(get("mr.peak"), 9, "Max counters take the maximum");
        assert_eq!(
            merged.series[0].values,
            [0.5, 0.25],
            "series concatenate in merge order"
        );
    }

    #[test]
    fn absorb_grafts_method_trace_under_named_child() {
        let method = Trace::new();
        {
            let _f = method.span("fuse");
        }
        method.add("fuse.rounds", 3);
        let mut run = TraceReport::empty("run");
        run.absorb("vote", &method.snapshot());
        run.absorb("vote", &method.snapshot());
        let vote = run.root.child("vote").unwrap();
        assert_eq!(vote.calls, 2);
        assert_eq!(vote.child("fuse").unwrap().calls, 2);
        assert_eq!(run.counters[0].value, 6);
    }

    #[test]
    fn quarantine_zeroes_timings_only() {
        let t = Trace::new();
        {
            let _s = t.span("work");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        t.add("bytes", 42);
        t.push_series("delta", 0.125);
        let mut report = t.snapshot();
        assert!(report.root.total_ns > 0);
        let before = report.clone();
        report.quarantine_timings();
        assert_eq!(report.root.total_ns, 0);
        assert_eq!(report.root.child("work").unwrap().total_ns, 0);
        assert_eq!(
            report.root.child("work").unwrap().calls,
            before.root.child("work").unwrap().calls
        );
        assert_eq!(report.counters, before.counters);
        assert_eq!(report.series, before.series);
    }

    #[test]
    fn codec_roundtrips_exactly() {
        let t = Trace::new();
        {
            let _a = t.span("fuse");
            let _b = t.span("round");
        }
        t.add("mr.map_output", 123);
        t.record_max("mr.peak", 99);
        t.push_series("fuse.round_delta", 0.0625);
        let report = t.snapshot();
        let mut buf = Vec::new();
        report.encode(&mut buf);
        let mut input = &buf[..];
        let back = TraceReport::decode(&mut input).unwrap();
        assert!(
            input.is_empty(),
            "decode consumed exactly what encode wrote"
        );
        assert_eq!(back, report);
    }

    #[test]
    fn codec_rejects_overdeep_and_oversized_trees() {
        // A chain deeper than MAX_SPAN_DEPTH must be rejected, not
        // recursed into.
        let mut node = SpanNode::leaf("deep");
        for _ in 0..(MAX_SPAN_DEPTH + 2) {
            let mut parent = SpanNode::leaf("deep");
            parent.children.push(node);
            node = parent;
        }
        let mut buf = Vec::new();
        node.encode(&mut buf);
        assert!(SpanNode::decode(&mut &buf[..]).is_none());

        // A huge child-count prefix with no bytes behind it must fail
        // fast instead of allocating.
        let mut buf = Vec::new();
        String::from("x").encode(&mut buf);
        0u64.encode(&mut buf);
        0u64.encode(&mut buf);
        u64::MAX.encode(&mut buf);
        assert!(SpanNode::decode(&mut &buf[..]).is_none());
    }

    #[test]
    fn bucket_layout_is_monotone_and_self_inverse() {
        // Exact buckets below the sub-bucket count, then log buckets.
        for v in 0..SUB_BUCKET_COUNT {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
        // Every bucket's bounds contain exactly the values that map to
        // it, edges included, and consecutive buckets tile the range.
        let mut prev_hi = None;
        for i in 0..BUCKET_COUNT {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi of bucket {i}");
            if let Some(p) = prev_hi {
                assert_eq!(lo, p + 1u64, "bucket {i} tiles after its predecessor");
            }
            prev_hi = Some(hi);
        }
        assert_eq!(prev_hi, Some(u64::MAX), "layout covers all of u64");
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    /// The satellite contract: histogram quantiles agree with exact
    /// pooled quantiles within one bucket's relative error
    /// (`≤ 2^-SUB_BUCKET_BITS`).
    #[test]
    fn quantiles_agree_with_pooled_sort_within_bucket_error() {
        // A deliberately lumpy latency-shaped sample: a tight body, a
        // heavy tail, and some exact small values.
        let mut values: Vec<u64> = Vec::new();
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for i in 0..10_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            values.push(match i % 10 {
                0 => x % 16,                    // exact buckets
                1..=7 => 800 + x % 2_000,       // body ~ 1 µs
                8 => 20_000 + x % 40_000,       // slow tail
                _ => 1_000_000 + x % 9_000_000, // rare outliers
            });
        }
        let mut h = HistogramSnapshot::empty("lat", HistKind::Time);
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let exact = sorted[((sorted.len() as f64 * q) as usize).min(sorted.len() - 1)];
            let approx = h.quantile(q);
            assert!(approx >= exact, "q={q}: {approx} < exact {exact}");
            assert!(
                approx - exact <= exact >> SUB_BUCKET_BITS,
                "q={q}: {approx} overshoots exact {exact} by more than 2^-{SUB_BUCKET_BITS}"
            );
        }
    }

    #[test]
    fn histogram_merge_is_bucketwise_add_and_quarantine_splits_kinds() {
        let t = Trace::new();
        t.record_time("mr.wave.map_ns", 1_500);
        t.record_time("mr.wave.map_ns", 90_000);
        t.record_value("mr.wave.records", 64);
        t.set_gauge("mr.quota", 4096.0);
        let mut a = t.snapshot();
        let b = a.clone();
        a.merge(&b);
        let get = |r: &TraceReport, name: &str| {
            r.histograms
                .iter()
                .find(|h| h.name == name)
                .unwrap()
                .clone()
        };
        assert_eq!(get(&a, "mr.wave.map_ns").count, 4);
        assert_eq!(get(&a, "mr.wave.map_ns").sum, 2 * 91_500);
        assert_eq!(get(&a, "mr.wave.records").buckets.len(), 1);
        assert_eq!(get(&a, "mr.wave.records").buckets[0].count, 2);
        assert_eq!(a.gauges[0].value, 4096.0, "gauge keeps last-set value");

        // Quarantine: Time histograms keep their count but lose their
        // distribution; Value histograms keep everything.
        a.quarantine_timings();
        let time = get(&a, "mr.wave.map_ns");
        assert_eq!((time.count, time.sum), (4, 0));
        assert!(time.buckets.is_empty());
        let value = get(&a, "mr.wave.records");
        assert_eq!((value.count, value.sum), (2, 128));
        assert_eq!(value.buckets.len(), 1);
        assert_eq!(a.gauges.len(), 1, "gauges survive the quarantine");
    }

    #[test]
    fn traffic_histograms_are_fully_quarantined() {
        let t = Trace::new();
        t.record_traffic("dist.rpc.sent_bytes", 1_024);
        t.record_traffic("dist.rpc.sent_bytes", 96);
        t.record_value("dist.tasks", 5);
        let mut report = t.snapshot();

        // Traffic histograms roundtrip through the codec like any other.
        let mut buf = Vec::new();
        report.histograms[0].encode(&mut buf);
        assert_eq!(
            HistogramSnapshot::decode(&mut &buf[..]).unwrap(),
            report.histograms[0]
        );
        assert_eq!(report.histograms[0].kind, HistKind::Traffic);
        assert_eq!(report.histograms[0].kind.name(), "traffic");

        // The quarantine clears count, sum and buckets — frame counts
        // depend on heartbeat scheduling, so nothing about a Traffic
        // histogram beyond its presence is deterministic.
        report.quarantine_timings();
        let traffic = &report.histograms[0];
        assert_eq!((traffic.count, traffic.sum), (0, 0));
        assert!(traffic.buckets.is_empty());
        let value = &report.histograms[1];
        assert_eq!((value.count, value.sum), (1, 5), "Value kind untouched");
    }

    #[test]
    fn live_histogram_matches_sequential_recording_across_threads() {
        let live = LiveHistogram::new();
        let mut reference = HistogramSnapshot::empty("h", HistKind::Value);
        for v in 0..4_000u64 {
            reference.record(v * 37 % 100_000);
        }
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let live = &live;
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        live.record((t * 1_000 + i) * 37 % 100_000);
                    }
                });
            }
        });
        assert_eq!(live.snapshot("h", HistKind::Value), reference);
    }

    #[test]
    fn histogram_codec_rejects_noncanonical_buckets() {
        let mut h = HistogramSnapshot::empty("lat", HistKind::Time);
        for v in [3u64, 3, 77, 12_345] {
            h.record(v);
        }
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let back = HistogramSnapshot::decode(&mut &buf[..]).unwrap();
        assert_eq!(back, h);

        // Out-of-layout index, zero count, and non-ascending order are
        // all rejected.
        for bad in [
            vec![HistBucket {
                index: BUCKET_COUNT as u32,
                count: 1,
            }],
            vec![HistBucket { index: 3, count: 0 }],
            vec![
                HistBucket { index: 7, count: 1 },
                HistBucket { index: 7, count: 1 },
            ],
        ] {
            let mut h = h.clone();
            h.buckets = bad;
            let mut buf = Vec::new();
            h.encode(&mut buf);
            assert!(HistogramSnapshot::decode(&mut &buf[..]).is_none());
        }
    }

    #[test]
    fn flat_timings_walk_preorder_paths() {
        let t = Trace::with_root("run");
        {
            let _f = t.span("fuse");
            let _r = t.span("round");
        }
        let paths: Vec<String> = t
            .snapshot()
            .flat_timings()
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        assert_eq!(paths, ["run", "run/fuse", "run/fuse/round"]);
    }
}
