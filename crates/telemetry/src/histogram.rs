//! Log-bucketed histograms and gauges: the distribution-shaped members
//! of the trace merge algebra.
//!
//! # Bucket layout
//!
//! The layout is HDR-style: values below [`SUB_BUCKET_COUNT`] get one
//! exact bucket each; above that, each power-of-two octave splits into
//! [`SUB_BUCKET_COUNT`] equal sub-buckets. A value `v ≥ 32` with most
//! significant bit `m` lands in octave group `m - SUB_BUCKET_BITS + 1`
//! at sub-bucket `(v >> (m - SUB_BUCKET_BITS)) - 32`. Bucket width is
//! `2^(m - SUB_BUCKET_BITS)` against a lower bound of at least
//! `2^m`, so quantiles read from bucket upper bounds overestimate by a
//! relative error of at most `2^-SUB_BUCKET_BITS` (1/32 ≈ 3.1%).
//!
//! The layout is *fixed* — [`BUCKET_COUNT`] buckets cover all of `u64`
//! regardless of what was recorded — so two histograms always merge
//! bucket-wise and the encoded form never depends on runtime
//! configuration.
//!
//! # Deterministic counts vs quarantined values
//!
//! A histogram's *observation count* is input-determined (one recording
//! per query, per wave, per round) and rides in the deterministic trace
//! section. What the recorded *values* were is another matter:
//! [`HistKind::Time`] histograms record wall-clock durations, so their
//! bucket occupancy and sum are quarantined (cleared) alongside span
//! timings by `TraceReport::quarantine_timings`; [`HistKind::Value`]
//! histograms record data quantities (result sizes, wave record counts)
//! and keep their full distribution in the deterministic ledger.
//! [`HistKind::Traffic`] histograms record wire frames, where even the
//! observation count is scheduling-dependent (heartbeats, re-dispatch),
//! so the quarantine clears count, sum and buckets alike.

use kf_types::KvCodec;

/// Sub-bucket resolution: each power-of-two octave splits into
/// `2^SUB_BUCKET_BITS` buckets, bounding quantile relative error at
/// `2^-SUB_BUCKET_BITS`.
pub const SUB_BUCKET_BITS: u32 = 5;

/// Buckets per octave (and the exact-bucket range `0..SUB_BUCKET_COUNT`).
pub const SUB_BUCKET_COUNT: u64 = 1 << SUB_BUCKET_BITS;

/// Total buckets in the fixed layout: the exact group plus one group per
/// remaining octave of `u64`, covering every value up to `u64::MAX`.
pub const BUCKET_COUNT: usize = (64 - SUB_BUCKET_BITS as usize + 1) * SUB_BUCKET_COUNT as usize;

/// The bucket index recording `v` increments. Monotone in `v`, exact
/// below [`SUB_BUCKET_COUNT`], within `2^-SUB_BUCKET_BITS` relative
/// width above.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKET_COUNT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BUCKET_BITS;
    let top = (v >> shift) as usize; // in [SUB_BUCKET_COUNT, 2*SUB_BUCKET_COUNT)
    (shift as usize + 1) * SUB_BUCKET_COUNT as usize + (top - SUB_BUCKET_COUNT as usize)
}

/// Inclusive `(lo, hi)` value range of a bucket (inverse of
/// [`bucket_index`]: every `v` with `bucket_index(v) == i` satisfies
/// `lo <= v <= hi`).
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKET_COUNT, "bucket index out of layout");
    let sub = SUB_BUCKET_COUNT as usize;
    if index < sub {
        return (index as u64, index as u64);
    }
    let shift = (index / sub - 1) as u32;
    let lo = (SUB_BUCKET_COUNT + (index % sub) as u64) << shift;
    (lo, lo + ((1u64 << shift) - 1))
}

/// What a histogram's recorded values *are*, deciding their place in
/// the deterministic/timing split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistKind {
    /// Wall-clock durations (nanoseconds). The distribution is
    /// quarantined with span timings; only the observation count stays
    /// in the deterministic section.
    Time,
    /// Data quantities (record counts, result sizes). Fully
    /// deterministic: buckets and sum survive the quarantine.
    Value,
    /// Wire traffic (frame sizes in bytes). Fully *non*-deterministic:
    /// how many frames flow depends on heartbeat scheduling and
    /// re-dispatch timing, so under `--deterministic` the observation
    /// *count* is quarantined along with the distribution — the ledger
    /// keeps only that the histogram exists.
    Traffic,
}

impl HistKind {
    /// Stable lowercase name, used in JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            HistKind::Time => "time",
            HistKind::Value => "value",
            HistKind::Traffic => "traffic",
        }
    }
}

/// One non-empty bucket of a frozen histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistBucket {
    /// Position in the fixed layout (`< BUCKET_COUNT`).
    pub index: u32,
    /// Observations recorded into this bucket.
    pub count: u64,
}

/// A frozen log-bucketed histogram: sparse non-empty buckets over the
/// fixed layout, plus observation count and value sum.
///
/// Merging is bucket-wise addition — associative and commutative, with
/// the empty histogram as identity — so shard histograms reassemble
/// exactly like counters do.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Dotted metric name (e.g. `mr.wave.map_ns`).
    pub name: String,
    /// Whether recorded values are wall-clock or data.
    pub kind: HistKind,
    /// Number of recorded observations. Deterministic for both kinds.
    pub count: u64,
    /// Sum of recorded values (wrapping on overflow, like the atomic
    /// accumulation in [`crate::LiveHistogram`]). Quarantined for
    /// [`HistKind::Time`].
    pub sum: u64,
    /// Non-empty buckets, strictly ascending by index. Quarantined
    /// (emptied) for [`HistKind::Time`].
    pub buckets: Vec<HistBucket>,
}

impl HistogramSnapshot {
    /// An empty histogram — the merge identity.
    pub fn empty(name: &str, kind: HistKind) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_owned(),
            kind,
            count: 0,
            sum: 0,
            buckets: Vec::new(),
        }
    }

    /// Record one observation (single-threaded building; the live,
    /// thread-safe counterpart is [`crate::LiveHistogram`]).
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        let index = bucket_index(v) as u32;
        match self.buckets.binary_search_by_key(&index, |b| b.index) {
            Ok(i) => self.buckets[i].count += 1,
            Err(i) => self.buckets.insert(i, HistBucket { index, count: 1 }),
        }
    }

    /// Merge `other` into `self`: counts and sums add, buckets add
    /// index-wise. Kinds must agree (`self`'s is kept; a mismatch is a
    /// programming error and debug-asserts).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        debug_assert_eq!(self.kind, other.kind, "merging {} across kinds", self.name);
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        for ob in &other.buckets {
            match self.buckets.binary_search_by_key(&ob.index, |b| b.index) {
                Ok(i) => self.buckets[i].count += ob.count,
                Err(i) => self.buckets.insert(i, *ob),
            }
        }
    }

    /// The difference `self - prev` for two cumulative snapshots of the
    /// same live histogram (`prev` taken earlier): the distribution of
    /// what was recorded in between. Saturating per bucket, so a
    /// mismatched pair degrades instead of panicking.
    pub fn delta(&self, prev: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot {
            name: self.name.clone(),
            kind: self.kind,
            count: self.count.saturating_sub(prev.count),
            sum: self.sum.wrapping_sub(prev.sum),
            buckets: Vec::new(),
        };
        for b in &self.buckets {
            let before = prev
                .buckets
                .binary_search_by_key(&b.index, |p| p.index)
                .map(|i| prev.buckets[i].count)
                .unwrap_or(0);
            let count = b.count.saturating_sub(before);
            if count > 0 {
                out.buckets.push(HistBucket {
                    index: b.index,
                    count,
                });
            }
        }
        out
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding the rank-`⌊count·q⌋` observation — matching the pooled
    /// `sorted[(len as f64 * q) as usize]` convention, overestimating by
    /// at most a relative `2^-SUB_BUCKET_BITS`. Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q) as u64).min(self.count - 1);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen > rank {
                return bucket_bounds(b.index as usize).1;
            }
        }
        // Quarantined Time histograms keep their count but drop their
        // buckets; there is no distribution left to read.
        0
    }

    /// Drop the value distribution (buckets and sum), keeping the
    /// observation count — the quarantine operation applied to
    /// [`HistKind::Time`] histograms under `--deterministic`.
    pub fn clear_values(&mut self) {
        self.sum = 0;
        self.buckets.clear();
    }
}

/// A point-in-time level (resident bytes, loaded triples, live
/// readers). Unlike counters, a gauge is *set*, not accumulated; the
/// merged trace keeps the most recent observation in merge order (the
/// right operand overwrites), matching how a single process would end
/// up with its last-set value.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Dotted gauge name (e.g. `serve.kb_triples`).
    pub name: String,
    /// The last value set.
    pub value: f64,
}

impl KvCodec for HistKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            HistKind::Time => 0,
            HistKind::Value => 1,
            HistKind::Traffic => 2,
        });
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(HistKind::Time),
            1 => Some(HistKind::Value),
            2 => Some(HistKind::Traffic),
            _ => None,
        }
    }
}

impl KvCodec for HistogramSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.kind.encode(out);
        self.count.encode(out);
        self.sum.encode(out);
        self.buckets.len().encode(out);
        for b in &self.buckets {
            b.index.encode(out);
            b.count.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let name = String::decode(input)?;
        let kind = HistKind::decode(input)?;
        let count = u64::decode(input)?;
        let sum = u64::decode(input)?;
        let n = usize::decode(input)?;
        // Each bucket takes 12 bytes; reject counts the remaining input
        // cannot possibly hold before allocating.
        if n > input.len() / 12 {
            return None;
        }
        let mut buckets = Vec::with_capacity(n);
        let mut last: Option<u32> = None;
        for _ in 0..n {
            let index = u32::decode(input)?;
            let bucket_count = u64::decode(input)?;
            // Canonical form: strictly ascending indexes inside the
            // fixed layout, no empty buckets. Anything else is a
            // malformed or truncation-shifted stream.
            if index as usize >= BUCKET_COUNT
                || bucket_count == 0
                || last.is_some_and(|l| index <= l)
            {
                return None;
            }
            last = Some(index);
            buckets.push(HistBucket {
                index,
                count: bucket_count,
            });
        }
        Some(HistogramSnapshot {
            name,
            kind,
            count,
            sum,
            buckets,
        })
    }
}

impl KvCodec for GaugeSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.value.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(GaugeSnapshot {
            name: String::decode(input)?,
            value: f64::decode(input)?,
        })
    }
}
