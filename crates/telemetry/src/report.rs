//! The frozen side: [`TraceReport`] snapshots, their merge algebra, the
//! deterministic/timing split, and the `KvCodec` encoding that lets
//! traces ride inside shard reports.
//!
//! # Merge algebra
//!
//! Shard runs each produce a report; `--merge` must reassemble the trace
//! a single process would have produced. Every field therefore carries a
//! documented merge rule:
//!
//! * **Spans** merge structurally by name: same-name children unify,
//!   `calls` and `total_ns` add. Child order is the left operand's, with
//!   unseen names appended in the right operand's order.
//! * **Counters** merge by name under their [`MergeRule`]: `Add` sums
//!   (records, bytes, waves, spill runs), `Max` takes the maximum
//!   (residency peaks). The counter list stays sorted by name.
//! * **Series** merge by name via concatenation — the right operand's
//!   values append after the left's. Merge order is therefore part of
//!   the contract: callers merge in ablation order, which is also the
//!   order a single process runs the methods in.
//! * **Histograms** merge by name via bucket-wise addition (see
//!   [`HistogramSnapshot::merge`]) — associative and commutative with
//!   the empty histogram as identity, exactly like `Add` counters.
//! * **Gauges** are levels, not accumulations: the right operand
//!   overwrites, so the merged trace reports the most recent
//!   observation in merge order.
//!
//! # Deterministic vs timing
//!
//! Span `calls`, counters, series, gauges, and histogram *observation
//! counts* depend only on the input and the configuration — they are
//! byte-identical across same-seed runs and are CI-gated as such. Span
//! `total_ns` is wall clock, and so is the bucket occupancy of a
//! [`HistKind::Time`] histogram; both are quarantined (zeroed/emptied)
//! by [`TraceReport::quarantine_timings`] under `--deterministic`,
//! generalizing the old ad-hoc `fuse_ms = 0.0` rule.
//! [`HistKind::Value`] histograms record data quantities and keep their
//! full distribution through the quarantine.

use crate::histogram::{GaugeSnapshot, HistKind, HistogramSnapshot};
use kf_types::KvCodec;
use std::fmt::Write as _;

/// How a counter combines across shard runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeRule {
    /// Sum across runs (record counts, bytes, invocation counts).
    Add,
    /// Maximum across runs (residency peaks).
    Max,
}

impl MergeRule {
    /// Stable lowercase name, used in JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            MergeRule::Add => "add",
            MergeRule::Max => "max",
        }
    }
}

/// One aggregated span: every invocation of this phase name under the
/// same parent, with call count and total wall-clock time.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Phase name (e.g. `fuse`, `round`, `map`).
    pub name: String,
    /// Closed invocations aggregated into this node. Deterministic.
    pub calls: u64,
    /// Total wall-clock nanoseconds across those invocations. Timing —
    /// zeroed by [`TraceReport::quarantine_timings`].
    pub total_ns: u64,
    /// Child phases, in first-opened order.
    pub children: Vec<SpanNode>,
}

/// Decoding rejects span trees deeper than this: real phase trees are a
/// handful of levels, and the cap keeps malformed checkpoint input from
/// recursing unboundedly.
pub const MAX_SPAN_DEPTH: usize = 64;

impl SpanNode {
    /// A leaf with zero calls and time.
    pub fn leaf(name: &str) -> SpanNode {
        SpanNode {
            name: name.to_owned(),
            calls: 0,
            total_ns: 0,
            children: Vec::new(),
        }
    }

    /// Merge `other` into `self`: add calls and time, unify same-name
    /// children recursively.
    pub fn merge(&mut self, other: &SpanNode) {
        self.calls += other.calls;
        self.total_ns += other.total_ns;
        for oc in &other.children {
            match self.children.iter_mut().find(|c| c.name == oc.name) {
                Some(c) => c.merge(oc),
                None => self.children.push(oc.clone()),
            }
        }
    }

    /// The child with the given name, if present.
    pub fn child(&self, name: &str) -> Option<&SpanNode> {
        self.children.iter().find(|c| c.name == name)
    }

    fn zero_timings(&mut self) {
        self.total_ns = 0;
        for c in &mut self.children {
            c.zero_timings();
        }
    }

    fn decode_at(input: &mut &[u8], depth: usize) -> Option<SpanNode> {
        if depth > MAX_SPAN_DEPTH {
            return None;
        }
        let name = String::decode(input)?;
        let calls = u64::decode(input)?;
        let total_ns = u64::decode(input)?;
        let n = usize::decode(input)?;
        // Each child encodes to at least its length prefixes; reject
        // counts the remaining input cannot possibly hold.
        if n > input.len() {
            return None;
        }
        let mut children = Vec::with_capacity(n);
        for _ in 0..n {
            children.push(SpanNode::decode_at(input, depth + 1)?);
        }
        Some(SpanNode {
            name,
            calls,
            total_ns,
            children,
        })
    }
}

/// One counter with its merge rule. Deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Dotted counter name (e.g. `mr.map_output`).
    pub name: String,
    /// Accumulated value.
    pub value: u64,
    /// How the value combines across shard runs.
    pub rule: MergeRule,
}

/// One named numeric series (e.g. per-round convergence deltas).
/// Deterministic data, not timing.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Dotted series name (e.g. `fuse.round_delta`).
    pub name: String,
    /// Values in push order; merge appends in merge order.
    pub values: Vec<f64>,
}

/// A frozen trace: the span tree plus counters, series, histograms, and
/// gauges (each list sorted by name).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// The phase tree, rooted at the trace's root span.
    pub root: SpanNode,
    /// Counters sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Series sorted by name.
    pub series: Vec<SeriesSnapshot>,
    /// Histograms sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Gauges sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
}

impl TraceReport {
    /// An empty report with the given root-span name (one call, no time).
    pub fn empty(root_name: &str) -> TraceReport {
        TraceReport {
            root: SpanNode {
                calls: 1,
                ..SpanNode::leaf(root_name)
            },
            counters: Vec::new(),
            series: Vec::new(),
            histograms: Vec::new(),
            gauges: Vec::new(),
        }
    }

    /// Merge `other` into `self` under the documented merge algebra
    /// (spans unify, counters add/max, series concatenate). Root names
    /// must already agree — merging keeps `self`'s.
    pub fn merge(&mut self, other: &TraceReport) {
        self.root.merge(&other.root);
        self.merge_flat(other);
    }

    /// Graft `other` under `self.root` as (or into) a child named
    /// `child_name`, merging counters and series at top level. This is
    /// how per-method traces assemble into a whole-run trace: the
    /// method's root becomes a phase named after the method.
    pub fn absorb(&mut self, child_name: &str, other: &TraceReport) {
        match self.root.children.iter_mut().find(|c| c.name == child_name) {
            Some(c) => c.merge(&other.root),
            None => {
                let mut child = other.root.clone();
                child.name = child_name.to_owned();
                self.root.children.push(child);
            }
        }
        self.merge_flat(other);
    }

    fn merge_flat(&mut self, other: &TraceReport) {
        for oc in &other.counters {
            match self.counters.iter_mut().find(|c| c.name == oc.name) {
                Some(c) => match c.rule {
                    MergeRule::Add => c.value += oc.value,
                    MergeRule::Max => c.value = c.value.max(oc.value),
                },
                None => self.counters.push(oc.clone()),
            }
        }
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        for os in &other.series {
            match self.series.iter_mut().find(|s| s.name == os.name) {
                Some(s) => s.values.extend_from_slice(&os.values),
                None => self.series.push(os.clone()),
            }
        }
        self.series.sort_by(|a, b| a.name.cmp(&b.name));
        for oh in &other.histograms {
            match self.histograms.iter_mut().find(|h| h.name == oh.name) {
                Some(h) => h.merge(oh),
                None => self.histograms.push(oh.clone()),
            }
        }
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        for og in &other.gauges {
            match self.gauges.iter_mut().find(|g| g.name == og.name) {
                Some(g) => g.value = og.value,
                None => self.gauges.push(og.clone()),
            }
        }
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Zero every wall-clock field: span `total_ns` throughout the tree,
    /// the value distribution (buckets, sum) of every
    /// [`HistKind::Time`] histogram, and *all* of every
    /// [`HistKind::Traffic`] histogram — wire frame counts depend on
    /// heartbeat scheduling, so even their observation count is
    /// scheduling noise. Calls, counters, series, gauges, `Time`
    /// observation counts, and [`HistKind::Value`] histograms — the
    /// deterministic section — stay untouched. The `--deterministic`
    /// quarantine.
    pub fn quarantine_timings(&mut self) {
        self.root.zero_timings();
        for h in &mut self.histograms {
            match h.kind {
                HistKind::Time => h.clear_values(),
                HistKind::Traffic => {
                    h.count = 0;
                    h.clear_values();
                }
                HistKind::Value => {}
            }
        }
    }

    /// Preorder list of `(slash-joined path, total_ns)` for every span —
    /// the flat timing section of `trace.json`, and what
    /// `scripts/bench_json.py --trace` folds into BENCH rows.
    pub fn flat_timings(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        fn walk(node: &SpanNode, prefix: &str, out: &mut Vec<(String, u64)>) {
            let path = if prefix.is_empty() {
                node.name.clone()
            } else {
                format!("{prefix}/{}", node.name)
            };
            out.push((path.clone(), node.total_ns));
            for c in &node.children {
                walk(c, &path, out);
            }
        }
        walk(&self.root, "", &mut out);
        out
    }

    /// Human-readable phase table: the span tree with call counts and
    /// durations, then counters and series.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{:<44} {:>8} {:>12}", "phase", "calls", "total");
        fn walk(node: &SpanNode, depth: usize, s: &mut String) {
            let label = format!("{}{}", "  ".repeat(depth), node.name);
            let _ = writeln!(
                s,
                "{label:<44} {:>8} {:>12}",
                node.calls,
                fmt_ns(node.total_ns)
            );
            for c in &node.children {
                walk(c, depth + 1, s);
            }
        }
        walk(&self.root, 0, &mut s);
        if !self.counters.is_empty() {
            let _ = writeln!(s, "{:<44} {:>8} {:>12}", "counter", "rule", "value");
            for c in &self.counters {
                let _ = writeln!(s, "{:<44} {:>8} {:>12}", c.name, c.rule.name(), c.value);
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                s,
                "{:<34} {:>8} {:>10} {:>10} {:>10}",
                "histogram", "count", "p50", "p95", "p99"
            );
            for h in &self.histograms {
                let q = |q: f64| match h.kind {
                    HistKind::Time => fmt_ns(h.quantile(q)),
                    HistKind::Value | HistKind::Traffic => h.quantile(q).to_string(),
                };
                let _ = writeln!(
                    s,
                    "{:<34} {:>8} {:>10} {:>10} {:>10}",
                    h.name,
                    h.count,
                    q(0.5),
                    q(0.95),
                    q(0.99)
                );
            }
        }
        for g in &self.gauges {
            let _ = writeln!(s, "{:<44} {:>21.4}", g.name, g.value);
        }
        for series in &self.series {
            let values: Vec<String> = series.values.iter().map(|v| format!("{v:.4}")).collect();
            let _ = writeln!(s, "{:<44} [{}]", series.name, values.join(", "));
        }
        s
    }
}

/// Render nanoseconds at a human scale (`ns`, `µs`, `ms`, `s`).
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns} ns"),
        1_000..=999_999 => format!("{:.1} µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

impl KvCodec for MergeRule {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            MergeRule::Add => 0,
            MergeRule::Max => 1,
        });
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(MergeRule::Add),
            1 => Some(MergeRule::Max),
            _ => None,
        }
    }
}

impl KvCodec for SpanNode {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.calls.encode(out);
        self.total_ns.encode(out);
        // Children encode exactly like `Vec<SpanNode>` (length prefix,
        // then items) but decode with an explicit depth guard.
        self.children.len().encode(out);
        for c in &self.children {
            c.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        SpanNode::decode_at(input, 0)
    }
}

impl KvCodec for CounterSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.value.encode(out);
        self.rule.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(CounterSnapshot {
            name: String::decode(input)?,
            value: u64::decode(input)?,
            rule: MergeRule::decode(input)?,
        })
    }
}

impl KvCodec for SeriesSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.values.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(SeriesSnapshot {
            name: String::decode(input)?,
            values: Vec::<f64>::decode(input)?,
        })
    }
}

impl KvCodec for TraceReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.root.encode(out);
        self.counters.encode(out);
        self.series.encode(out);
        self.histograms.encode(out);
        self.gauges.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(TraceReport {
            root: SpanNode::decode(input)?,
            counters: Vec::<CounterSnapshot>::decode(input)?,
            series: Vec::<SeriesSnapshot>::decode(input)?,
            histograms: Vec::<HistogramSnapshot>::decode(input)?,
            gauges: Vec::<GaugeSnapshot>::decode(input)?,
        })
    }
}
