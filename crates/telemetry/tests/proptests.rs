//! Property tests for the histogram merge algebra and its codec.
//!
//! The merge contract is what lets shard-run histograms reassemble into
//! the single-process distribution: bucket-wise addition must be
//! associative and commutative with the empty histogram as identity —
//! the same algebra `Add` counters obey, lifted to distributions. The
//! codec contract is the checkpoint-robustness one every `KvCodec`
//! domain type carries: exact roundtrip of canonical bytes, rejection
//! of every truncation.

use kf_telemetry::{HistKind, HistogramSnapshot};
use kf_types::KvCodec;
use proptest::collection::vec;
use proptest::prelude::*;

/// Build a histogram by recording a drawn value set. Values span the
/// exact range, the log range, and the extreme octaves.
fn hist(values: &[u64]) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::empty("h", HistKind::Value);
    for &v in values {
        h.record(v);
    }
    h
}

fn value() -> BoxedStrategy<u64> {
    prop_oneof![
        0u64..64,
        64u64..100_000,
        (0u64..u64::MAX).prop_map(|v| v | 1 << 60),
    ]
    .boxed()
}

proptest! {
    #[test]
    fn merge_is_commutative(
        a in vec(value(), 0..40),
        b in vec(value(), 0..40),
    ) {
        let (ha, hb) = (hist(&a), hist(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        // And merging equals recording the union stream directly.
        let mut union: Vec<u64> = a.clone();
        union.extend_from_slice(&b);
        prop_assert_eq!(&ab, &hist(&union));
    }

    #[test]
    fn merge_is_associative(
        a in vec(value(), 0..30),
        b in vec(value(), 0..30),
        c in vec(value(), 0..30),
    ) {
        let (ha, hb, hc) = (hist(&a), hist(&b), hist(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn empty_histogram_is_the_merge_identity(a in vec(value(), 0..40)) {
        let ha = hist(&a);
        let mut left = HistogramSnapshot::empty("h", HistKind::Value);
        left.merge(&ha);
        prop_assert_eq!(&left, &ha);
        let mut right = ha.clone();
        right.merge(&HistogramSnapshot::empty("h", HistKind::Value));
        prop_assert_eq!(&right, &ha);
    }

    #[test]
    fn codec_roundtrips_and_rejects_every_truncation(a in vec(value(), 0..24)) {
        let h = hist(&a);
        let mut buf = Vec::new();
        h.encode(&mut buf);

        let mut input = &buf[..];
        let back = HistogramSnapshot::decode(&mut input);
        prop_assert_eq!(back.as_ref(), Some(&h));
        prop_assert!(input.is_empty(), "decode consumed exactly what encode wrote");

        // Every strict prefix must fail to decode — a truncated stream
        // is never silently accepted as a shorter histogram.
        for cut in 0..buf.len() {
            prop_assert!(
                HistogramSnapshot::decode(&mut &buf[..cut]).is_none(),
                "decode accepted a {cut}-byte truncation of {} bytes",
                buf.len()
            );
        }
    }
}
