//! # kf-core — knowledge fusion algorithms
//!
//! The primary contribution of *From Data Fusion to Knowledge Fusion*
//! (Dong et al., VLDB 2014), rebuilt as a library: given a bag of
//! `(triple, provenance, confidence)` extraction records, estimate a
//! **calibrated truthfulness probability** for every unique triple.
//!
//! Three data-fusion methods are adapted to the task (§4.1):
//!
//! * [`Method::Vote`] — provenance-count fractions (baseline),
//! * [`Method::Accu`] — Bayesian single-truth analysis with uniformly
//!   distributed false values (Dong et al. 2009),
//! * [`Method::PopAccu`] — ACCU with the false-value distribution
//!   estimated from the data (Dong, Saha, Srivastava 2013).
//!
//! Plus the refinement stack of §4.3 that turns POPACCU into **POPACCU+**:
//! provenance granularity ([`kf_types::Granularity`]), coverage and
//! accuracy filtering, and semi-supervised accuracy initialisation from a
//! gold standard. [`FusionConfig`] exposes each knob independently so every
//! ablation in the paper's Figs. 9–15 is reproducible; ready-made presets
//! ([`FusionConfig::vote`], [`FusionConfig::accu`],
//! [`FusionConfig::popaccu`], [`FusionConfig::popaccu_plus_unsup`],
//! [`FusionConfig::popaccu_plus`]) match the named systems in the paper.
//!
//! Execution follows the paper's three-stage MapReduce architecture
//! (Fig. 8) on the [`kf_mapreduce`] substrate, with reducer-side reservoir
//! sampling (`L`) and forced termination (`R`). The grouping stage
//! ([`Grouped::build`]) is a single MapReduce pass — provenance keys ship
//! packed through the shuffle and dense sorted ids are assigned in a
//! post-reduce renumbering — and honours the engine's chunked-shuffle
//! memory envelope (`MrConfig::chunk_records`); see the repository's
//! `ARCHITECTURE.md` for the data flow.
//!
//! ```
//! use kf_core::{Fuser, FusionConfig};
//! use kf_types::{ExtractionBatch, Extraction, Triple, Provenance, Value,
//!                EntityId, PredicateId, ExtractorId, PageId, SiteId, PatternId};
//!
//! let mut batch = ExtractionBatch::new();
//! for page in 0..3 {
//!     batch.push(Extraction::new(
//!         Triple::new(EntityId(1), PredicateId(0), Value::Entity(EntityId(42))),
//!         Provenance::new(ExtractorId(0), PageId(page), SiteId(0), PatternId::NONE),
//!     ));
//! }
//! let out = Fuser::new(FusionConfig::popaccu()).run(&batch, None);
//! assert_eq!(out.scored.len(), 1);
//! assert!(out.scored[0].probability.unwrap() > 0.9);
//! ```

pub mod config;
pub mod ext;
pub mod methods;
pub mod observation;
pub mod pipeline;
pub mod result;

pub use config::{FusionConfig, InitAccuracy, Method};
pub use observation::{Grouped, ItemGroup, ProvRegistry, ValueGroup};
pub use pipeline::Fuser;
pub use result::{FusionOutput, ProvenanceAttribution, ScoredTriple};
