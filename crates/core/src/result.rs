//! Fusion output types.

use kf_mapreduce::{JobStats, RoundOutcome};
use kf_types::{FxHashMap, Triple};
use serde::{Deserialize, Serialize};

/// One unique triple with its estimated truthfulness probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoredTriple {
    /// The triple.
    pub triple: Triple,
    /// Truthfulness probability in `[0, 1]`; `None` when every provenance
    /// was filtered away and no fallback applied (§4.3.2: "for 8.2% of the
    /// triples, we cannot predict a probability").
    pub probability: Option<f64>,
    /// Provenances supporting the triple at the configured granularity.
    pub n_provenances: u32,
    /// Distinct extractors supporting it.
    pub n_extractors: u16,
    /// Distinct pages supporting it.
    pub n_pages: u32,
    /// True when the probability came from the mean-provenance-accuracy
    /// fallback rather than the Bayesian analysis (accuracy-threshold
    /// compensation, §4.3.2).
    pub fallback: bool,
}

/// The result of one fusion run.
#[derive(Debug, Clone)]
pub struct FusionOutput {
    /// Scored unique triples, sorted by data item.
    pub scored: Vec<ScoredTriple>,
    /// How the iteration terminated.
    pub outcome: RoundOutcome,
    /// Mean absolute provenance-accuracy change after each round.
    pub round_deltas: Vec<f64>,
    /// Number of provenances at the configured granularity.
    pub n_provenances: usize,
    /// Merged MapReduce counters across all stages and rounds.
    pub stats: JobStats,
}

impl FusionOutput {
    /// Fraction of triples with a predicted probability (the paper reports
    /// 91.8% → 99.4% across refinement settings).
    pub fn predicted_fraction(&self) -> f64 {
        if self.scored.is_empty() {
            return 0.0;
        }
        let predicted = self
            .scored
            .iter()
            .filter(|s| s.probability.is_some())
            .count();
        predicted as f64 / self.scored.len() as f64
    }

    /// Look-up table from triple to probability.
    pub fn probability_map(&self) -> FxHashMap<Triple, f64> {
        self.scored
            .iter()
            .filter_map(|s| s.probability.map(|p| (s.triple, p)))
            .collect()
    }

    /// Triples with probability ≥ `threshold` ("trust them and use them
    /// directly", §3.2.2).
    pub fn accepted(&self, threshold: f64) -> impl Iterator<Item = &ScoredTriple> {
        self.scored
            .iter()
            .filter(move |s| s.probability.is_some_and(|p| p >= threshold))
    }

    /// Triples with probability < `threshold` (candidate negative training
    /// examples, §3.2.2).
    pub fn rejected(&self, threshold: f64) -> impl Iterator<Item = &ScoredTriple> {
        self.scored
            .iter()
            .filter(move |s| s.probability.is_some_and(|p| p < threshold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kf_types::{EntityId, PredicateId, Value};

    fn st(s: u32, p: f64) -> ScoredTriple {
        ScoredTriple {
            triple: Triple::new(EntityId(s), PredicateId(0), Value::Entity(EntityId(0))),
            probability: Some(p),
            n_provenances: 1,
            n_extractors: 1,
            n_pages: 1,
            fallback: false,
        }
    }

    fn output(scored: Vec<ScoredTriple>) -> FusionOutput {
        FusionOutput {
            scored,
            outcome: RoundOutcome::Converged {
                rounds: 1,
                delta: 0.0,
            },
            round_deltas: vec![0.0],
            n_provenances: 0,
            stats: JobStats::default(),
        }
    }

    #[test]
    fn predicted_fraction_counts_nones() {
        let mut missing = st(3, 0.0);
        missing.probability = None;
        let out = output(vec![st(1, 0.9), st(2, 0.2), missing]);
        assert!((out.predicted_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(out.probability_map().len(), 2);
    }

    #[test]
    fn accept_reject_partition() {
        let out = output(vec![st(1, 0.95), st(2, 0.5), st(3, 0.05)]);
        let accepted: Vec<u32> = out.accepted(0.9).map(|s| s.triple.subject.0).collect();
        let rejected: Vec<u32> = out.rejected(0.1).map(|s| s.triple.subject.0).collect();
        assert_eq!(accepted, vec![1]);
        assert_eq!(rejected, vec![3]);
    }

    #[test]
    fn empty_output() {
        let out = output(vec![]);
        assert_eq!(out.predicted_fraction(), 0.0);
        assert!(out.probability_map().is_empty());
    }
}
