//! Fusion output types.

use kf_mapreduce::{JobStats, RoundOutcome};
use kf_types::{ExtractorId, FxHashMap, ProvenanceKey, Triple};
use serde::{Deserialize, Serialize};

/// One unique triple with its estimated truthfulness probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoredTriple {
    /// The triple.
    pub triple: Triple,
    /// Truthfulness probability in `[0, 1]`; `None` when every provenance
    /// was filtered away and no fallback applied (§4.3.2: "for 8.2% of the
    /// triples, we cannot predict a probability").
    pub probability: Option<f64>,
    /// Provenances supporting the triple at the configured granularity.
    pub n_provenances: u32,
    /// Distinct extractors supporting it.
    pub n_extractors: u16,
    /// Distinct pages supporting it.
    pub n_pages: u32,
    /// True when the probability came from the mean-provenance-accuracy
    /// fallback rather than the Bayesian analysis (accuracy-threshold
    /// compensation, §4.3.2).
    pub fallback: bool,
}

/// The result of one fusion run.
#[derive(Debug, Clone)]
pub struct FusionOutput {
    /// Scored unique triples, sorted by data item.
    pub scored: Vec<ScoredTriple>,
    /// How the iteration terminated.
    pub outcome: RoundOutcome,
    /// Mean absolute provenance-accuracy change after each round.
    pub round_deltas: Vec<f64>,
    /// Number of provenances at the configured granularity.
    pub n_provenances: usize,
    /// Merged MapReduce counters across all stages and rounds.
    pub stats: JobStats,
}

impl FusionOutput {
    /// Fraction of triples with a predicted probability (the paper reports
    /// 91.8% → 99.4% across refinement settings).
    pub fn predicted_fraction(&self) -> f64 {
        if self.scored.is_empty() {
            return 0.0;
        }
        let predicted = self
            .scored
            .iter()
            .filter(|s| s.probability.is_some())
            .count();
        predicted as f64 / self.scored.len() as f64
    }

    /// Look-up table from triple to probability.
    pub fn probability_map(&self) -> FxHashMap<Triple, f64> {
        self.scored
            .iter()
            .filter_map(|s| s.probability.map(|p| (s.triple, p)))
            .collect()
    }

    /// Triples with probability ≥ `threshold` ("trust them and use them
    /// directly", §3.2.2).
    pub fn accepted(&self, threshold: f64) -> impl Iterator<Item = &ScoredTriple> {
        self.scored
            .iter()
            .filter(move |s| s.probability.is_some_and(|p| p >= threshold))
    }

    /// Triples with probability < `threshold` (candidate negative training
    /// examples, §3.2.2).
    pub fn rejected(&self, threshold: f64) -> impl Iterator<Item = &ScoredTriple> {
        self.scored
            .iter()
            .filter(move |s| s.probability.is_some_and(|p| p < threshold))
    }
}

/// Per-value provenance attribution: which provenances (at the run's
/// granularity) support each scored triple, with their *final* learned
/// accuracies.
///
/// [`FusionOutput`] deliberately keeps only support counts per triple; the
/// error-taxonomy classifiers of `kf-diagnose` additionally need to know
/// *who* supports a high-confidence false positive (one extractor on many
/// pages is the systematic-error signature) and how much the fusion ended
/// up trusting that support. Obtain one from
/// [`Fuser::run_with_attribution`](crate::Fuser::run_with_attribution) —
/// the table is built from the same grouped view the run used, so index
/// `i` lines up with `FusionOutput::scored[i]`.
#[derive(Debug, Clone, Default)]
pub struct ProvenanceAttribution {
    /// Provenance keys, indexed by dense provenance id.
    pub keys: Vec<ProvenanceKey>,
    /// Final (post-iteration) accuracy per provenance id.
    pub accuracy: Vec<f64>,
    /// Whether the accuracy was ever re-estimated from data.
    pub evaluated: Vec<bool>,
    /// `offsets[i]..offsets[i + 1]` indexes `prov_ids` for scored triple
    /// `i`.
    offsets: Vec<usize>,
    /// Flattened per-triple provenance id lists (sorted, deduplicated).
    prov_ids: Vec<u32>,
}

impl ProvenanceAttribution {
    /// Assemble from per-triple provenance id lists (in scored order) and
    /// the registry columns.
    pub(crate) fn new(
        keys: Vec<ProvenanceKey>,
        accuracy: Vec<f64>,
        evaluated: Vec<bool>,
        per_triple: impl Iterator<Item = Vec<u32>>,
    ) -> Self {
        let mut offsets = vec![0usize];
        let mut prov_ids = Vec::new();
        for provs in per_triple {
            prov_ids.extend(provs);
            offsets.push(prov_ids.len());
        }
        ProvenanceAttribution {
            keys,
            accuracy,
            evaluated,
            offsets,
            prov_ids,
        }
    }

    /// Number of attributed triples.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when no triples are attributed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dense provenance ids supporting scored triple `i` (sorted).
    pub fn provs(&self, i: usize) -> &[u32] {
        &self.prov_ids[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Distinct extractors supporting scored triple `i`, in id order.
    /// Empty when the run's granularity excludes the extractor dimension
    /// (e.g. [`Granularity::PageOnly`](kf_types::Granularity::PageOnly)).
    pub fn extractors(&self, i: usize) -> Vec<ExtractorId> {
        let mut out: Vec<ExtractorId> = self
            .provs(i)
            .iter()
            .filter_map(|&pid| self.keys[pid as usize].extractor)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Mean final accuracy of the provenances supporting scored triple
    /// `i` (`None` for an unsupported triple, which cannot occur for
    /// triples produced by a fusion run).
    pub fn mean_accuracy(&self, i: usize) -> Option<f64> {
        let provs = self.provs(i);
        if provs.is_empty() {
            return None;
        }
        let sum: f64 = provs.iter().map(|&p| self.accuracy[p as usize]).sum();
        Some(sum / provs.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kf_types::{EntityId, PredicateId, Value};

    fn st(s: u32, p: f64) -> ScoredTriple {
        ScoredTriple {
            triple: Triple::new(EntityId(s), PredicateId(0), Value::Entity(EntityId(0))),
            probability: Some(p),
            n_provenances: 1,
            n_extractors: 1,
            n_pages: 1,
            fallback: false,
        }
    }

    fn output(scored: Vec<ScoredTriple>) -> FusionOutput {
        FusionOutput {
            scored,
            outcome: RoundOutcome::Converged {
                rounds: 1,
                delta: 0.0,
            },
            round_deltas: vec![0.0],
            n_provenances: 0,
            stats: JobStats::default(),
        }
    }

    #[test]
    fn predicted_fraction_counts_nones() {
        let mut missing = st(3, 0.0);
        missing.probability = None;
        let out = output(vec![st(1, 0.9), st(2, 0.2), missing]);
        assert!((out.predicted_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(out.probability_map().len(), 2);
    }

    #[test]
    fn accept_reject_partition() {
        let out = output(vec![st(1, 0.95), st(2, 0.5), st(3, 0.05)]);
        let accepted: Vec<u32> = out.accepted(0.9).map(|s| s.triple.subject.0).collect();
        let rejected: Vec<u32> = out.rejected(0.1).map(|s| s.triple.subject.0).collect();
        assert_eq!(accepted, vec![1]);
        assert_eq!(rejected, vec![3]);
    }

    #[test]
    fn empty_output() {
        let out = output(vec![]);
        assert_eq!(out.predicted_fraction(), 0.0);
        assert!(out.probability_map().is_empty());
    }

    #[test]
    fn attribution_indexing_and_extractor_dedup() {
        use kf_types::{ExtractorId, Granularity, PageId, PatternId, Provenance, SiteId};
        // Three provenances: extractor 0 on two pages, extractor 2 on one.
        let keys: Vec<ProvenanceKey> = [(0u16, 10u32), (0, 11), (2, 12)]
            .iter()
            .map(|&(e, pg)| {
                ProvenanceKey::at(
                    Granularity::ExtractorPage,
                    &Provenance::new(ExtractorId(e), PageId(pg), SiteId(0), PatternId::NONE),
                    PredicateId(0),
                )
            })
            .collect();
        let attribution = ProvenanceAttribution::new(
            keys,
            vec![0.9, 0.5, 0.2],
            vec![true, true, false],
            vec![vec![0, 1, 2], vec![2], vec![]].into_iter(),
        );
        assert_eq!(attribution.len(), 3);
        assert_eq!(attribution.provs(0), &[0, 1, 2]);
        assert_eq!(attribution.provs(1), &[2]);
        assert!(attribution.provs(2).is_empty());
        // Extractor 0 appears via two provenances but is reported once.
        assert_eq!(
            attribution.extractors(0),
            vec![ExtractorId(0), ExtractorId(2)]
        );
        let mean = attribution.mean_accuracy(0).unwrap();
        assert!((mean - (0.9 + 0.5 + 0.2) / 3.0).abs() < 1e-12);
        assert_eq!(attribution.mean_accuracy(2), None);
    }
}
