//! The three-stage iterative fusion pipeline (Fig. 8).
//!
//! * **Stage I** — partition by data item, compute triple probabilities
//!   from the current provenance accuracies (VOTE / ACCU / POPACCU).
//! * **Stage II** — partition by provenance, re-estimate each provenance's
//!   accuracy as the mean probability of (a sample of) its triples.
//! * Iterate I ↔ II until convergence or `R` rounds (the paper forces
//!   termination at `R = 5`), then
//! * **Stage III** — output deduplicated scored triples.
//!
//! The refinements of §4.3 hook in here: granularity is applied when the
//! provenance registry is built; the coverage filter restricts round 1 to
//! multiply-supported items and drops never-evaluated provenances
//! afterwards; the accuracy threshold deactivates low-quality provenances
//! with a mean-accuracy fallback; and the gold standard can seed the
//! initial accuracies (semi-supervised POPACCU+).

use crate::config::{FusionConfig, InitAccuracy, Method};
use crate::methods;
use crate::observation::{Grouped, ItemGroup};
use crate::result::{FusionOutput, ProvenanceAttribution, ScoredTriple};
use kf_mapreduce::{map_reduce_with_stats, Emitter, IterativeDriver, JobStats, Reservoir};
use kf_types::{hash, Extraction, ExtractionBatch, GoldStandard, Label};

/// One Stage-I result: `(slot index, probability, fallback flag)`.
type SlotScore = (usize, Option<f64>, bool);

/// The fusion engine. Construct with a [`FusionConfig`], then call
/// [`Fuser::run`] on a batch of extractions (optionally with a gold
/// standard for the semi-supervised initialisation).
#[derive(Debug, Clone, Default)]
pub struct Fuser {
    config: FusionConfig,
}

impl Fuser {
    /// A fuser with the given configuration.
    pub fn new(config: FusionConfig) -> Self {
        Fuser { config }
    }

    /// Access the configuration.
    pub fn config(&self) -> &FusionConfig {
        &self.config
    }

    /// Run fusion over `batch`. `gold` is only consulted when the
    /// configuration asks for gold-standard accuracy initialisation; pass
    /// `None` for fully unsupervised runs.
    pub fn run(&self, batch: &ExtractionBatch, gold: Option<&GoldStandard>) -> FusionOutput {
        self.run_records(&batch.records, gold)
    }

    /// [`Fuser::run`] that also returns the per-value
    /// [`ProvenanceAttribution`] — which provenances support each scored
    /// triple, with their final learned accuracies. Row `i` of the
    /// attribution lines up with `scored[i]`. The error-taxonomy
    /// classifiers (`kf-diagnose`) consume this; plain [`Fuser::run`]
    /// skips building it.
    pub fn run_with_attribution(
        &self,
        batch: &ExtractionBatch,
        gold: Option<&GoldStandard>,
    ) -> (FusionOutput, ProvenanceAttribution) {
        let (output, grouped) = self.run_grouped(&batch.records, gold);
        let per_triple = grouped
            .items
            .iter()
            .flat_map(|g| g.values.iter().map(|vg| vg.provs.clone()))
            .collect::<Vec<_>>();
        let attribution = ProvenanceAttribution::new(
            grouped.provs.keys,
            grouped.provs.accuracy,
            grouped.provs.evaluated,
            per_triple.into_iter(),
        );
        debug_assert_eq!(attribution.len(), output.scored.len());
        (output, attribution)
    }

    /// [`Fuser::run`] over a raw record slice.
    pub fn run_records(&self, records: &[Extraction], gold: Option<&GoldStandard>) -> FusionOutput {
        self.run_grouped(records, gold).0
    }

    /// The engine behind [`Fuser::run_records`]: fuse and also hand back
    /// the grouped view (with final accuracies) the run operated on.
    fn run_grouped(
        &self,
        records: &[Extraction],
        gold: Option<&GoldStandard>,
    ) -> (FusionOutput, Grouped) {
        let cfg = &self.config;
        let _fuse = kf_telemetry::span("fuse");
        // The grouping job's counters (including the single grouping pass's
        // shuffle volume and residency peak) seed the pipeline totals.
        let (mut grouped, mut stats) = {
            let _group = kf_telemetry::span("group");
            Grouped::build_with_stats(records, cfg.granularity, &cfg.mr)
        };

        // ---- Accuracy initialisation (§4.3.3) -----------------------------
        grouped.provs.reset_accuracy(cfg.default_accuracy);
        if let InitAccuracy::FromGold { sample_rate } = cfg.init {
            if let Some(gold) = gold {
                init_accuracy_from_gold(
                    &mut grouped,
                    gold,
                    sample_rate,
                    cfg.default_accuracy,
                    cfg.seed,
                );
            }
        }

        // Per-(item, value) probability slots, flattened.
        let mut offsets = Vec::with_capacity(grouped.items.len() + 1);
        offsets.push(0usize);
        for g in &grouped.items {
            offsets.push(offsets.last().unwrap() + g.values.len());
        }
        let n_slots = *offsets.last().unwrap();
        let mut probs: Vec<Option<f64>> = vec![None; n_slots];
        let mut fallback_flags: Vec<bool> = vec![false; n_slots];

        // ---- Iterate Stage I ↔ Stage II ------------------------------------
        let driver = IterativeDriver {
            max_rounds: cfg.rounds.max(1),
            tolerance: cfg.tolerance,
        };
        let mut round_deltas = Vec::with_capacity(cfg.rounds);
        let outcome = driver.run(|round| {
            let _round = kf_telemetry::span("round");
            let round_start = std::time::Instant::now();
            kf_telemetry::add("fuse.rounds", 1);
            // Stage I: probabilities from current accuracies.
            let (stage1, s1_stats) = {
                let _s1 = kf_telemetry::span("stage1");
                self.stage_one(&grouped, &offsets, round)
            };
            stats.merge(&s1_stats);
            for (slot, p, fb) in stage1 {
                probs[slot] = p;
                fallback_flags[slot] = fb;
            }

            // VOTE runs a single stage-I pass; no accuracy iteration.
            if !cfg.method.iterative() {
                round_deltas.push(0.0);
                kf_telemetry::push_series("fuse.round_delta", 0.0);
                kf_telemetry::record_time("fuse.round_ns", round_start.elapsed().as_nanos() as u64);
                return 0.0;
            }

            // Stage II: accuracies from probabilities.
            let (delta, s2_stats) = {
                let _s2 = kf_telemetry::span("stage2");
                self.stage_two(&mut grouped, &offsets, &probs, round)
            };
            stats.merge(&s2_stats);
            round_deltas.push(delta);
            kf_telemetry::push_series("fuse.round_delta", delta);
            kf_telemetry::record_time("fuse.round_ns", round_start.elapsed().as_nanos() as u64);
            delta
        });

        // ---- Stage III: deduplicated output --------------------------------
        let mut scored = Vec::with_capacity(n_slots);
        for (gi, group) in grouped.items.iter().enumerate() {
            for (vi, vg) in group.values.iter().enumerate() {
                let slot = offsets[gi] + vi;
                scored.push(ScoredTriple {
                    triple: group.triple(vi),
                    probability: probs[slot],
                    n_provenances: vg.provs.len() as u32,
                    n_extractors: vg.n_extractors,
                    n_pages: vg.n_pages,
                    fallback: fallback_flags[slot],
                });
            }
        }

        kf_telemetry::add("fuse.provenances", grouped.provs.len() as u64);
        kf_telemetry::add("fuse.scored_triples", scored.len() as u64);
        let output = FusionOutput {
            scored,
            outcome,
            round_deltas,
            n_provenances: grouped.provs.len(),
            stats,
        };
        (output, grouped)
    }

    /// Stage I: compute per-slot probabilities. Returns
    /// `(slot, probability, fallback_flag)` tuples.
    fn stage_one(
        &self,
        grouped: &Grouped,
        offsets: &[usize],
        round: usize,
    ) -> (Vec<SlotScore>, JobStats) {
        let cfg = &self.config;
        let provs = &grouped.provs;
        let coverage_filtering = cfg.filter_by_coverage;
        let threshold = cfg.accuracy_threshold;

        // A provenance is *active* when it survives the refinements.
        let active = |pid: u32| -> bool {
            let i = pid as usize;
            if coverage_filtering && round > 0 && !provs.evaluated[i] {
                return false;
            }
            if let Some(theta) = threshold {
                // The threshold applies to evaluated accuracies; an
                // unevaluated provenance still carries the default.
                if provs.accuracy[i] < theta {
                    return false;
                }
            }
            true
        };

        let indices: Vec<usize> = (0..grouped.items.len()).collect();
        let (out, stats) = map_reduce_with_stats(
            &cfg.mr,
            &indices,
            |&gi, emit: &mut Emitter<usize, Vec<SlotScore>>| {
                let group = &grouped.items[gi];
                let slot0 = offsets[gi];
                let results = self.score_item(group, grouped, round, slot0, &active);
                emit.emit(gi, results);
            },
            |_gi, mut vs| vs.pop().into_iter().collect(),
        );
        (out.into_iter().flatten().collect(), stats)
    }

    /// Score one data item under the configured method and filters.
    fn score_item(
        &self,
        group: &ItemGroup,
        grouped: &Grouped,
        round: usize,
        slot0: usize,
        active: &dyn Fn(u32) -> bool,
    ) -> Vec<SlotScore> {
        let cfg = &self.config;
        let provs = &grouped.provs;

        // Coverage filter, round 1 (§4.3.2): only score items where at
        // least one triple has more than one provenance, so that the
        // subsequent accuracy evaluation rests on non-trivial evidence.
        // Items whose provenances already carry informative (gold-seeded)
        // accuracies are exempt — those are exactly the provenances the
        // filter exists to protect against.
        if cfg.filter_by_coverage
            && round == 0
            && cfg.method.iterative()
            && !group.values.iter().any(|v| v.provs.len() > 1)
            && !group
                .values
                .iter()
                .any(|v| v.provs.iter().any(|&p| provs.evaluated[p as usize]))
        {
            return (0..group.values.len())
                .map(|vi| (slot0 + vi, None, false))
                .collect();
        }

        // Active provenance lists per value (sampled at L).
        let mut cands: Vec<Vec<f64>> = Vec::with_capacity(group.values.len());
        let mut counts: Vec<usize> = Vec::with_capacity(group.values.len());
        for vg in &group.values {
            let active_pids: Vec<u32> = vg.provs.iter().copied().filter(|&p| active(p)).collect();
            let sampled = Reservoir::sample_vec(
                active_pids,
                cfg.sample_limit,
                hash::hash_u64(group.item.encode() ^ (round as u64) ^ cfg.seed),
            );
            counts.push(sampled.len());
            cands.push(
                sampled
                    .iter()
                    .map(|&p| provs.accuracy[p as usize])
                    .collect(),
            );
        }

        let any_active = counts.iter().any(|&c| c > 0);
        if !any_active {
            // Every provenance was filtered. With an accuracy threshold the
            // paper compensates with the mean accuracy of the triple's own
            // provenances; with pure coverage filtering there is no
            // prediction.
            return group
                .values
                .iter()
                .enumerate()
                .map(|(vi, vg)| {
                    let has_evaluated = vg.provs.iter().any(|&p| provs.evaluated[p as usize]);
                    if cfg.accuracy_threshold.is_some() && has_evaluated {
                        let mean = vg
                            .provs
                            .iter()
                            .map(|&p| provs.accuracy[p as usize])
                            .sum::<f64>()
                            / vg.provs.len() as f64;
                        (slot0 + vi, Some(mean), true)
                    } else {
                        (slot0 + vi, None, false)
                    }
                })
                .collect();
        }

        let probabilities = match cfg.method {
            Method::Vote => methods::vote(&counts),
            Method::Accu => methods::accu(&cands, cfg.n_false_values),
            Method::PopAccu => methods::popaccu(&cands, &counts, cfg.popaccu_inner_iters),
        };

        group
            .values
            .iter()
            .enumerate()
            .map(|(vi, vg)| {
                if counts[vi] == 0 {
                    // This value's provenances were all filtered even though
                    // siblings survived: same fallback policy.
                    let has_evaluated = vg.provs.iter().any(|&p| provs.evaluated[p as usize]);
                    if cfg.accuracy_threshold.is_some() && has_evaluated {
                        let mean = vg
                            .provs
                            .iter()
                            .map(|&p| provs.accuracy[p as usize])
                            .sum::<f64>()
                            / vg.provs.len() as f64;
                        (slot0 + vi, Some(mean), true)
                    } else {
                        (slot0 + vi, None, false)
                    }
                } else {
                    (slot0 + vi, Some(probabilities[vi]), false)
                }
            })
            .collect()
    }

    /// Stage II: re-estimate provenance accuracies as the mean probability
    /// of (a sample of) their triples. Returns the mean absolute accuracy
    /// change.
    ///
    /// Deliberately runs **without** a combiner: the reducer reservoir-
    /// samples its values and accumulates `f64`s, both of which are
    /// order-sensitive, so partial pre-reduction would change the bytes
    /// of the output (see the determinism ledger in `ARCHITECTURE.md`).
    /// The external shuffle (`MrConfig::spill_threshold_records`) still
    /// bounds this stage's grouped residency by spilling the full value
    /// lists and replaying them in input order.
    fn stage_two(
        &self,
        grouped: &mut Grouped,
        offsets: &[usize],
        probs: &[Option<f64>],
        round: usize,
    ) -> (f64, JobStats) {
        let cfg = &self.config;
        let items = &grouped.items;
        let skip_unevaluated = cfg.filter_by_coverage && round > 0;
        let evaluated_snapshot = grouped.provs.evaluated.clone();

        let indices: Vec<usize> = (0..items.len()).collect();
        let (updates, stats) = map_reduce_with_stats(
            &cfg.mr,
            &indices,
            |&gi, emit: &mut Emitter<u32, f64>| {
                let group = &items[gi];
                for (vi, vg) in group.values.iter().enumerate() {
                    let Some(p) = probs[offsets[gi] + vi] else {
                        continue;
                    };
                    for &pid in &vg.provs {
                        if skip_unevaluated && !evaluated_snapshot[pid as usize] {
                            continue;
                        }
                        emit.emit(pid, p);
                    }
                }
            },
            |pid, values| {
                let sampled = Reservoir::sample_vec(
                    values,
                    cfg.sample_limit,
                    hash::hash_u64((*pid as u64) ^ ((round as u64) << 32) ^ cfg.seed),
                );
                if sampled.is_empty() {
                    return Vec::new();
                }
                let mean = sampled.iter().sum::<f64>() / sampled.len() as f64;
                vec![(*pid, mean)]
            },
        );

        let mut delta_sum = 0.0;
        let mut updated = 0usize;
        for (pid, accuracy) in updates {
            let i = pid as usize;
            delta_sum += (grouped.provs.accuracy[i] - accuracy).abs();
            grouped.provs.accuracy[i] = accuracy.clamp(0.0, 1.0);
            grouped.provs.evaluated[i] = true;
            updated += 1;
        }
        let delta = if updated == 0 {
            0.0
        } else {
            delta_sum / updated as f64
        };
        (delta, stats)
    }
}

/// Initialise provenance accuracies from the LCWA gold standard (§4.3.3):
/// accuracy = fraction of the provenance's gold-labelled triples that are
/// labelled true, over a `sample_rate` subset of gold items; provenances
/// with no labelled triples keep the default.
fn init_accuracy_from_gold(
    grouped: &mut Grouped,
    gold: &GoldStandard,
    sample_rate: f64,
    default_accuracy: f64,
    seed: u64,
) {
    let n = grouped.provs.len();
    let mut true_counts = vec![0u32; n];
    let mut labelled_counts = vec![0u32; n];

    for group in &grouped.items {
        // Item-level subsampling of the gold standard, deterministic.
        if sample_rate < 1.0 {
            let h = hash::hash_u64(group.item.encode() ^ seed ^ 0x00c0_ffee);
            if (h % 1_000_000) as f64 / 1_000_000.0 >= sample_rate {
                continue;
            }
        }
        for (vi, vg) in group.values.iter().enumerate() {
            let label = gold.label(&group.triple(vi));
            let is_true = match label {
                Label::True => true,
                Label::False => false,
                Label::Unknown => continue,
            };
            for &pid in &vg.provs {
                labelled_counts[pid as usize] += 1;
                true_counts[pid as usize] += is_true as u32;
            }
        }
    }

    for i in 0..n {
        if labelled_counts[i] > 0 {
            grouped.provs.accuracy[i] = true_counts[i] as f64 / labelled_counts[i] as f64;
            grouped.provs.evaluated[i] = true;
        } else {
            grouped.provs.accuracy[i] = default_accuracy;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FusionConfig, InitAccuracy, Method};
    use kf_mapreduce::MrConfig;
    use kf_types::{
        DataItem, EntityId, ExtractorId, PageId, PatternId, PredicateId, Provenance, SiteId,
        Triple, Value,
    };

    /// Build an extraction with distinct provenance per (extractor, page).
    fn ext(s: u32, p: u32, o: u32, extractor: u16, page: u32) -> Extraction {
        Extraction::new(
            Triple::new(EntityId(s), PredicateId(p), Value::Entity(EntityId(o))),
            Provenance::new(
                ExtractorId(extractor),
                PageId(page),
                SiteId(page / 10),
                PatternId::NONE,
            ),
        )
    }

    fn seq(cfg: FusionConfig) -> Fuser {
        Fuser::new(FusionConfig {
            mr: MrConfig::sequential(),
            ..cfg
        })
    }

    /// The paper's VOTE example: 7-vs-1-vs-1-vs-1 provenances.
    #[test]
    fn vote_probabilities_are_count_fractions() {
        let mut batch = ExtractionBatch::new();
        for page in 0..7 {
            batch.push(ext(1, 1, 10, 0, page));
        }
        batch.push(ext(1, 1, 11, 0, 100));
        batch.push(ext(1, 1, 12, 0, 200));
        batch.push(ext(1, 1, 13, 0, 300));
        let out = seq(FusionConfig::vote()).run(&batch, None);
        let map = out.probability_map();
        let p10 = map[&Triple::new(EntityId(1), PredicateId(1), Value::Entity(EntityId(10)))];
        assert!((p10 - 0.7).abs() < 1e-12);
        assert_eq!(out.scored.len(), 4);
        assert_eq!(out.predicted_fraction(), 1.0);
    }

    #[test]
    fn accu_converges_and_separates_good_from_bad() {
        // Ten items; provenance "good" (pages 0..10) always agrees with the
        // majority; provenance "bad" (page 1000) always provides a lone
        // conflicting value.
        let mut batch = ExtractionBatch::new();
        for item in 0..10u32 {
            for page in 0..5u32 {
                batch.push(ext(item, 1, 100 + item, 0, page * 10)); // site-spread
            }
            batch.push(ext(item, 1, 999, 0, 1000));
        }
        let out = seq(FusionConfig::accu()).run(&batch, None);
        let map = out.probability_map();
        for item in 0..10u32 {
            let good = map[&Triple::new(
                EntityId(item),
                PredicateId(1),
                Value::Entity(EntityId(100 + item)),
            )];
            let bad =
                map[&Triple::new(EntityId(item), PredicateId(1), Value::Entity(EntityId(999)))];
            assert!(good > 0.95, "good triple {good}");
            assert!(bad < 0.05, "bad triple {bad}");
        }
        assert!(out.outcome.rounds() <= 5);
    }

    #[test]
    fn popaccu_singleton_valley_is_exactly_default_accuracy() {
        // One item with a single provenance contributing a single triple:
        // Fig. 9's valley at exactly 0.8.
        let batch = ExtractionBatch::from_records(vec![ext(1, 1, 10, 0, 0)]);
        let out = seq(FusionConfig::popaccu()).run(&batch, None);
        let p = out.scored[0].probability.unwrap();
        assert!((p - 0.8).abs() < 1e-6, "got {p}");
    }

    #[test]
    fn methods_run_in_parallel_identically() {
        let batch: ExtractionBatch = (0..2000)
            .map(|i| ext(i % 50, i % 3, i % 7, (i % 5) as u16, i % 400))
            .collect();
        for cfg in [
            FusionConfig::vote(),
            FusionConfig::accu(),
            FusionConfig::popaccu(),
        ] {
            let a = seq(cfg).run(&batch, None);
            let b = Fuser::new(FusionConfig {
                mr: MrConfig::with_workers(8),
                ..cfg
            })
            .run(&batch, None);
            assert_eq!(a.scored.len(), b.scored.len());
            for (x, y) in a.scored.iter().zip(&b.scored) {
                assert_eq!(x.triple, y.triple);
                match (x.probability, y.probability) {
                    (Some(px), Some(py)) => assert!((px - py).abs() < 1e-12),
                    (None, None) => {}
                    other => panic!("prediction mismatch: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn coverage_filter_leaves_singleton_items_unpredicted() {
        // Item A: two provenances for the same value (evaluable).
        // Item B: a single lone extraction (not evaluable).
        let batch = ExtractionBatch::from_records(vec![
            ext(1, 1, 10, 0, 0),
            ext(1, 1, 10, 1, 50),
            ext(2, 1, 11, 2, 60),
        ]);
        let cfg = FusionConfig {
            filter_by_coverage: true,
            ..FusionConfig::popaccu()
        };
        let out = seq(cfg).run(&batch, None);
        let b = out
            .scored
            .iter()
            .find(|s| s.triple.subject == EntityId(2))
            .unwrap();
        assert_eq!(b.probability, None, "singleton item must be unpredicted");
        let a = out
            .scored
            .iter()
            .find(|s| s.triple.subject == EntityId(1))
            .unwrap();
        assert!(a.probability.is_some());
        assert!(out.predicted_fraction() < 1.0);
    }

    #[test]
    fn accuracy_threshold_triggers_fallback() {
        // A provenance that is always wrong drops below θ; its lone-item
        // triple then gets the mean-accuracy fallback instead of None.
        let mut batch = ExtractionBatch::new();
        // 20 items where provenance (0, page 0) conflicts with 4 agreeing
        // provenances → its accuracy crashes.
        for item in 0..20u32 {
            for page in 1..5u32 {
                batch.push(ext(item, 1, 100, 0, page * 10));
            }
            batch.push(ext(item, 1, 999, 0, 0));
        }
        // One extra item supported *only* by the bad provenance.
        batch.push(ext(77, 1, 5, 0, 0));
        let cfg = FusionConfig {
            accuracy_threshold: Some(0.5),
            ..FusionConfig::popaccu()
        };
        let out = seq(cfg).run(&batch, None);
        let lonely = out
            .scored
            .iter()
            .find(|s| s.triple.subject == EntityId(77))
            .unwrap();
        assert!(lonely.probability.is_some(), "fallback expected");
        assert!(lonely.fallback);
        // Fallback value equals the (low) accuracy of its only provenance.
        assert!(lonely.probability.unwrap() < 0.5);
    }

    #[test]
    fn gold_init_steers_accuracies() {
        // Two provenances, both singleton-per-item; gold says one is right
        // and the other wrong. With default init both triples score 0.8;
        // with gold init they separate immediately.
        let mut batch = ExtractionBatch::new();
        for item in 0..10u32 {
            batch.push(ext(item, 1, 100, 0, 0)); // provenance A claims 100
            batch.push(ext(item, 1, 200, 1, 50)); // provenance B claims 200
        }
        let mut gold = GoldStandard::new();
        for item in 0..10u32 {
            gold.insert(
                DataItem::new(EntityId(item), PredicateId(1)),
                Value::Entity(EntityId(100)),
            );
        }
        let unsup = seq(FusionConfig::popaccu()).run(&batch, None);
        let sup = seq(FusionConfig {
            init: InitAccuracy::FromGold { sample_rate: 1.0 },
            ..FusionConfig::popaccu()
        })
        .run(&batch, Some(&gold));

        let t_right = Triple::new(EntityId(0), PredicateId(1), Value::Entity(EntityId(100)));
        let t_wrong = Triple::new(EntityId(0), PredicateId(1), Value::Entity(EntityId(200)));
        let unsup_map = unsup.probability_map();
        let sup_map = sup.probability_map();
        // Unsupervised: symmetric conflict, both around 0.45.
        assert!((unsup_map[&t_right] - unsup_map[&t_wrong]).abs() < 0.05);
        // Supervised: gold breaks the tie decisively.
        assert!(sup_map[&t_right] > 0.9, "got {}", sup_map[&t_right]);
        assert!(sup_map[&t_wrong] < 0.1, "got {}", sup_map[&t_wrong]);
    }

    #[test]
    fn gold_sample_rate_zero_is_equivalent_to_default_init() {
        let batch: ExtractionBatch = (0..100)
            .map(|i| ext(i % 10, 1, i % 4, (i % 3) as u16, i))
            .collect();
        let mut gold = GoldStandard::new();
        gold.insert(
            DataItem::new(EntityId(0), PredicateId(1)),
            Value::Entity(EntityId(0)),
        );
        let a = seq(FusionConfig {
            init: InitAccuracy::FromGold { sample_rate: 0.0 },
            ..FusionConfig::popaccu()
        })
        .run(&batch, Some(&gold));
        let b = seq(FusionConfig::popaccu()).run(&batch, None);
        for (x, y) in a.scored.iter().zip(&b.scored) {
            assert_eq!(x.probability, y.probability);
        }
    }

    #[test]
    fn sample_limit_one_thousand_changes_little() {
        // Fig. 14: L = 1K behaves like L = 1M at (much larger) scale; here
        // groups are small so the outputs are identical.
        let batch: ExtractionBatch = (0..3000)
            .map(|i| ext(i % 100, i % 2, i % 5, (i % 6) as u16, i % 500))
            .collect();
        let big = seq(FusionConfig::popaccu()).run(&batch, None);
        let small = seq(FusionConfig::popaccu().with_sample_limit(1_000)).run(&batch, None);
        let map_big = big.probability_map();
        let map_small = small.probability_map();
        for (t, p) in &map_big {
            assert!((p - map_small[t]).abs() < 1e-9);
        }
    }

    #[test]
    fn spilled_pipeline_is_byte_identical_with_bounded_grouped_peak() {
        // The whole 5-round pipeline (grouping + Stages I/II per round)
        // with the external shuffle on must reproduce the in-memory run
        // exactly — including per-slot probabilities, which depend on
        // value order through reservoir sampling and f64 accumulation —
        // while `JobStats` proves the grouped envelope held.
        let batch: ExtractionBatch = (0..3000)
            .map(|i| ext(i % 120, i % 3, i % 6, (i % 7) as u16, i % 400))
            .collect();
        for cfg in [
            FusionConfig::vote(),
            FusionConfig::popaccu(),
            FusionConfig::popaccu_plus_unsup(),
        ] {
            let base = seq(cfg).run(&batch, None);
            assert_eq!(base.stats.spilled_bytes, 0);
            let threshold = 512usize;
            let spilled = Fuser::new(FusionConfig {
                mr: MrConfig::sequential()
                    .with_chunk_records(128)
                    .with_spill_threshold(threshold),
                ..cfg
            })
            .run(&batch, None);
            assert_eq!(base.scored.len(), spilled.scored.len());
            for (a, b) in base.scored.iter().zip(&spilled.scored) {
                assert_eq!(a.triple, b.triple);
                assert_eq!(a.probability, b.probability, "for {:?}", a.triple);
                assert_eq!(a.fallback, b.fallback);
            }
            assert_eq!(base.round_deltas, spilled.round_deltas);
            assert!(
                spilled.stats.spilled_bytes > 0,
                "{:?}: disk path not exercised",
                cfg.method
            );
            // Every wave (≤ ~2×128 records) fits under the threshold, so
            // no round's grouped residency may cross it.
            assert!(
                spilled.stats.peak_grouped_records <= threshold as u64,
                "{:?}: grouped peak {} above the {} threshold",
                cfg.method,
                spilled.stats.peak_grouped_records,
                threshold
            );
        }
    }

    #[test]
    fn attribution_lines_up_with_scored_output() {
        let batch: ExtractionBatch = (0..1500)
            .map(|i| ext(i % 60, i % 3, i % 5, (i % 6) as u16, i % 200))
            .collect();
        let fuser = seq(FusionConfig::popaccu());
        let (out, attribution) = fuser.run_with_attribution(&batch, None);
        // Identical output to the plain run.
        let plain = fuser.run(&batch, None);
        assert_eq!(out.scored.len(), plain.scored.len());
        for (a, b) in out.scored.iter().zip(&plain.scored) {
            assert_eq!(a.triple, b.triple);
            assert_eq!(a.probability, b.probability);
        }
        // Row i attributes scored[i]: provenance count matches, extractor
        // sets match the recorded n_extractors (ExtractorPage granularity
        // keeps the extractor in the key), accuracies are final values.
        assert_eq!(attribution.len(), out.scored.len());
        assert_eq!(attribution.keys.len(), out.n_provenances);
        for (i, s) in out.scored.iter().enumerate() {
            assert_eq!(attribution.provs(i).len(), s.n_provenances as usize);
            assert_eq!(attribution.extractors(i).len(), s.n_extractors as usize);
            let mean = attribution.mean_accuracy(i).unwrap();
            assert!((0.0..=1.0).contains(&mean));
        }
        // The iterative run must have evaluated at least one provenance.
        assert!(attribution.evaluated.iter().any(|&e| e));
    }

    #[test]
    fn round_deltas_shrink() {
        let batch: ExtractionBatch = (0..5000)
            .map(|i| ext(i % 200, i % 3, i % 6, (i % 8) as u16, i % 700))
            .collect();
        let out = seq(FusionConfig::popaccu().with_rounds(5)).run(&batch, None);
        assert!(!out.round_deltas.is_empty());
        // Fig. 14: probabilities change a lot in round 1, then stabilise.
        let first = out.round_deltas[0];
        let last = *out.round_deltas.last().unwrap();
        assert!(
            last <= first,
            "deltas did not shrink: {:?}",
            out.round_deltas
        );
    }

    #[test]
    fn empty_batch_yields_empty_output() {
        let out = seq(FusionConfig::popaccu()).run(&ExtractionBatch::new(), None);
        assert!(out.scored.is_empty());
        assert_eq!(out.n_provenances, 0);
    }

    #[test]
    fn single_method_all_configs_smoke() {
        let batch: ExtractionBatch = (0..500)
            .map(|i| ext(i % 40, i % 4, i % 3, (i % 12) as u16, i % 100))
            .collect();
        for cfg in [
            FusionConfig::vote(),
            FusionConfig::accu(),
            FusionConfig::popaccu(),
            FusionConfig::popaccu_plus_unsup(),
        ] {
            let out = seq(cfg).run(&batch, None);
            assert_eq!(out.scored.len(), batch.unique_triples());
            for s in &out.scored {
                if let Some(p) = s.probability {
                    assert!((0.0..=1.0).contains(&p), "{} out of range", p);
                }
            }
        }
    }

    #[test]
    fn probabilities_per_item_sum_to_at_most_one() {
        let batch: ExtractionBatch = (0..2000)
            .map(|i| ext(i % 30, 0, i % 9, (i % 7) as u16, i % 300))
            .collect();
        for m in [Method::Vote, Method::Accu, Method::PopAccu] {
            let out = seq(FusionConfig::popaccu().with_method(m)).run(&batch, None);
            let mut by_item: std::collections::HashMap<DataItem, f64> =
                std::collections::HashMap::new();
            for s in &out.scored {
                if !s.fallback {
                    if let Some(p) = s.probability {
                        *by_item.entry(s.triple.data_item()).or_default() += p;
                    }
                }
            }
            for (item, sum) in by_item {
                assert!(sum <= 1.0 + 1e-6, "{m:?} {item:?} sums to {sum}");
            }
        }
    }
}
