//! Fusion configuration: method, granularity, refinements (§4.1, §4.3).

use kf_mapreduce::MrConfig;
use kf_types::Granularity;
use serde::{Deserialize, Serialize};

/// The fusion method (§4.1 selects these three from the DF literature).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Method {
    /// Baseline: probability = provenance-count fraction `m/n`.
    Vote,
    /// Bayesian analysis of Dong et al. 2009 \[11\]: single truth, `N`
    /// uniformly-distributed false values, independent sources.
    Accu,
    /// POPACCU of Dong, Saha, Srivastava 2013 \[14\]: false-value
    /// distribution estimated from the data (robust to copied false
    /// values).
    PopAccu,
}

impl Method {
    /// Display name as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Method::Vote => "VOTE",
            Method::Accu => "ACCU",
            Method::PopAccu => "POPACCU",
        }
    }

    /// Whether the method iterates accuracy evaluation (VOTE does not,
    /// §4.1: "VOTE does not need the iterations and has only Stage I and
    /// Stage III").
    pub fn iterative(self) -> bool {
        !matches!(self, Method::Vote)
    }
}

/// How provenance accuracies are initialised (§4.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InitAccuracy {
    /// Flat default accuracy (the basic models; default 0.8).
    Default,
    /// Semi-supervised: initialise from the LCWA gold standard, using a
    /// `sample_rate` fraction of its items (Fig. 12 sweeps 10%–100%).
    /// Provenances with no labelled triples fall back to the default.
    FromGold {
        /// Fraction of gold items used.
        sample_rate: f64,
    },
}

/// Full fusion configuration.
#[derive(Debug, Clone, Copy)]
pub struct FusionConfig {
    /// Fusion method.
    pub method: Method,
    /// Provenance granularity (§4.3.1).
    pub granularity: Granularity,
    /// Default provenance accuracy `A` (paper default 0.8).
    pub default_accuracy: f64,
    /// ACCU's number of uniformly-distributed false values `N` (default
    /// 100).
    pub n_false_values: f64,
    /// Forced-termination round budget `R` (default 5, Fig. 14).
    pub rounds: usize,
    /// Reducer-side sample cap `L` (default 1M, Fig. 14 shows 1K is fine).
    pub sample_limit: usize,
    /// Convergence tolerance on the mean absolute accuracy delta.
    pub tolerance: f64,
    /// Refinement I (§4.3.2): filter provenances that cannot be evaluated
    /// beyond the default accuracy.
    pub filter_by_coverage: bool,
    /// Refinement III (§4.3.2): ignore provenances with accuracy below θ;
    /// items losing all provenances fall back to mean provenance accuracy.
    pub accuracy_threshold: Option<f64>,
    /// Refinement IV (§4.3.3): gold-standard accuracy initialisation.
    pub init: InitAccuracy,
    /// POPACCU's inner fixpoint iterations for the false-value popularity
    /// distribution.
    pub popaccu_inner_iters: usize,
    /// Execution parallelism.
    pub mr: MrConfig,
    /// Seed for the deterministic reducer-side sampling.
    pub seed: u64,
}

impl Default for FusionConfig {
    fn default() -> Self {
        FusionConfig {
            method: Method::PopAccu,
            granularity: Granularity::ExtractorPage,
            default_accuracy: 0.8,
            n_false_values: 100.0,
            rounds: 5,
            sample_limit: 1_000_000,
            tolerance: 1e-4,
            filter_by_coverage: false,
            accuracy_threshold: None,
            init: InitAccuracy::Default,
            popaccu_inner_iters: 8,
            mr: MrConfig::default(),
            seed: 0,
        }
    }
}

impl FusionConfig {
    /// Basic VOTE (Fig. 9 baseline).
    pub fn vote() -> Self {
        FusionConfig {
            method: Method::Vote,
            rounds: 1,
            ..Default::default()
        }
    }

    /// Basic ACCU (§4.1 defaults: N = 100, A = 0.8).
    pub fn accu() -> Self {
        FusionConfig {
            method: Method::Accu,
            ..Default::default()
        }
    }

    /// Basic POPACCU.
    pub fn popaccu() -> Self {
        FusionConfig {
            method: Method::PopAccu,
            ..Default::default()
        }
    }

    /// POPACCU+unsup (§4.3.4): coverage filter + fine granularity +
    /// accuracy filter (θ = 0.5), still unsupervised.
    pub fn popaccu_plus_unsup() -> Self {
        FusionConfig {
            method: Method::PopAccu,
            granularity: Granularity::ExtractorSitePredicatePattern,
            filter_by_coverage: true,
            accuracy_threshold: Some(0.5),
            ..Default::default()
        }
    }

    /// POPACCU+ (§4.3.4): all refinements, semi-supervised via the gold
    /// standard.
    pub fn popaccu_plus() -> Self {
        FusionConfig {
            init: InitAccuracy::FromGold { sample_rate: 1.0 },
            ..Self::popaccu_plus_unsup()
        }
    }

    /// Builder-style: set the method.
    pub fn with_method(mut self, method: Method) -> Self {
        self.method = method;
        if method == Method::Vote {
            self.rounds = 1;
        }
        self
    }

    /// Builder-style: set the granularity.
    pub fn with_granularity(mut self, g: Granularity) -> Self {
        self.granularity = g;
        self
    }

    /// Builder-style: set the round budget.
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds.max(1);
        self
    }

    /// Builder-style: set the sample cap.
    pub fn with_sample_limit(mut self, limit: usize) -> Self {
        self.sample_limit = limit.max(1);
        self
    }

    /// Builder-style: set worker parallelism. Adjusts workers and the
    /// partition ratio in place, preserving other engine knobs
    /// (`chunk_records`, `spill_threshold_records`, `spill_dir`).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.mr.workers = workers.max(1);
        self.mr.partitions = workers.max(1) * 4;
        self
    }

    /// Builder-style: bound every pipeline round's grouped shuffle
    /// residency to roughly `records`, spilling partition accumulators to
    /// sorted run files beyond it (`0` disables spilling). Applies to the
    /// grouping pass and both fusion stages — output is byte-identical
    /// with spilling on or off; `FusionOutput::stats` reports
    /// `peak_grouped_records` / `spilled_bytes` across all rounds.
    pub fn with_spill_threshold(mut self, records: usize) -> Self {
        self.mr.spill_threshold_records = records;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = FusionConfig::accu();
        assert_eq!(c.method, Method::Accu);
        assert_eq!(c.n_false_values, 100.0);
        assert_eq!(c.default_accuracy, 0.8);
        assert_eq!(c.rounds, 5);
        assert_eq!(c.sample_limit, 1_000_000);
    }

    #[test]
    fn vote_is_single_round() {
        assert_eq!(FusionConfig::vote().rounds, 1);
        assert!(!Method::Vote.iterative());
        assert!(Method::Accu.iterative());
        assert!(Method::PopAccu.iterative());
    }

    #[test]
    fn popaccu_plus_stacks_all_refinements() {
        let c = FusionConfig::popaccu_plus();
        assert_eq!(c.method, Method::PopAccu);
        assert_eq!(c.granularity, Granularity::ExtractorSitePredicatePattern);
        assert!(c.filter_by_coverage);
        assert_eq!(c.accuracy_threshold, Some(0.5));
        assert!(matches!(c.init, InitAccuracy::FromGold { sample_rate } if sample_rate == 1.0));
        // The unsupervised variant differs only in the init.
        let u = FusionConfig::popaccu_plus_unsup();
        assert_eq!(u.init, InitAccuracy::Default);
        assert!(u.filter_by_coverage);
    }

    #[test]
    fn builders_compose() {
        let c = FusionConfig::popaccu()
            .with_granularity(Granularity::ExtractorSite)
            .with_rounds(3)
            .with_sample_limit(1_000)
            .with_workers(2);
        assert_eq!(c.granularity, Granularity::ExtractorSite);
        assert_eq!(c.rounds, 3);
        assert_eq!(c.sample_limit, 1_000);
        assert_eq!(c.mr.workers, 2);
    }

    #[test]
    fn with_workers_preserves_chunk_records() {
        // Regression: with_workers used to rebuild MrConfig wholesale,
        // silently zeroing a configured shuffle-residency cap.
        let c = FusionConfig {
            mr: MrConfig::default().with_chunk_records(1 << 16),
            ..FusionConfig::popaccu()
        }
        .with_workers(4)
        .with_spill_threshold(1 << 18);
        assert_eq!(c.mr.workers, 4);
        assert_eq!(c.mr.partitions, 16);
        assert_eq!(c.mr.chunk_records, 1 << 16);
        assert_eq!(c.mr.spill_threshold_records, 1 << 18);
        // And the other direction: re-tuning workers afterwards must not
        // zero the spill threshold either.
        let c = c.with_workers(2);
        assert_eq!(c.mr.workers, 2);
        assert_eq!(c.mr.spill_threshold_records, 1 << 18);
    }

    #[test]
    fn method_labels_match_paper() {
        assert_eq!(Method::Vote.label(), "VOTE");
        assert_eq!(Method::Accu.label(), "ACCU");
        assert_eq!(Method::PopAccu.label(), "POPACCU");
    }
}
