//! Grouping raw extractions into the structures the fusion rounds operate
//! on: per-data-item value groups and the provenance registry.
//!
//! This is Stage I's shuffle (map by data item) plus the provenance
//! dimension-reduction of §4.1 — an *(Extractor, URL)* pair (or a coarser /
//! finer key, §4.3.1) becomes a dense integer id with an accuracy slot.
//! The grouping is built once per fusion run with a MapReduce pass and then
//! shared (read-only) by all rounds; only the accuracy array mutates
//! between rounds.

use kf_mapreduce::{map_reduce, Emitter, MrConfig};
use kf_types::{
    DataItem, Extraction, FxHashMap, FxHashSet, Granularity, ProvenanceKey, Triple, Value,
};

/// One candidate value of a data item with its supporting provenances.
#[derive(Debug, Clone)]
pub struct ValueGroup {
    /// The candidate value.
    pub value: Value,
    /// Dense provenance ids supporting it (deduplicated, sorted).
    pub provs: Vec<u32>,
    /// Distinct extractors supporting it (Fig. 18's second axis).
    pub n_extractors: u16,
    /// Distinct pages supporting it (Fig. 7's axis).
    pub n_pages: u32,
}

/// All candidate values observed for one data item.
#[derive(Debug, Clone)]
pub struct ItemGroup {
    /// The data item.
    pub item: DataItem,
    /// Candidate values, sorted by value for determinism.
    pub values: Vec<ValueGroup>,
}

impl ItemGroup {
    /// Total provenance count over all values (VOTE's denominator `n`).
    pub fn total_provenances(&self) -> usize {
        self.values.iter().map(|v| v.provs.len()).sum()
    }

    /// The triple for value index `vi`.
    pub fn triple(&self, vi: usize) -> Triple {
        Triple::new(
            self.item.subject,
            self.item.predicate,
            self.values[vi].value,
        )
    }
}

/// Registry of provenances at the configured granularity.
#[derive(Debug, Clone)]
pub struct ProvRegistry {
    /// The keys, indexed by dense id.
    pub keys: Vec<ProvenanceKey>,
    /// Number of unique triples each provenance supports (its *coverage*
    /// in §4.3.2 terms).
    pub support: Vec<u32>,
    /// Current accuracy estimate.
    pub accuracy: Vec<f64>,
    /// Whether the accuracy has ever been re-evaluated from data (true) or
    /// still carries its initial value (false). Drives refinement I.
    pub evaluated: Vec<bool>,
}

impl ProvRegistry {
    /// Number of provenances.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Reset all accuracies to `a` and clear evaluation flags.
    pub fn reset_accuracy(&mut self, a: f64) {
        for slot in &mut self.accuracy {
            *slot = a;
        }
        for e in &mut self.evaluated {
            *e = false;
        }
    }
}

/// The full grouped view of a batch.
#[derive(Debug, Clone)]
pub struct Grouped {
    /// Item groups, sorted by data item.
    pub items: Vec<ItemGroup>,
    /// Provenance registry.
    pub provs: ProvRegistry,
}

impl Grouped {
    /// Build the grouped view of `batch` at `granularity` using the
    /// MapReduce engine.
    pub fn build(batch: &[Extraction], granularity: Granularity, mr: &MrConfig) -> Grouped {
        // ---- Pass A: the provenance registry ------------------------------
        // Distinct provenance keys, sorted for dense-id determinism.
        let mut keys: Vec<ProvenanceKey> = map_reduce(
            mr,
            batch,
            |e: &Extraction, emit: &mut Emitter<ProvenanceKey, ()>| {
                emit.emit(
                    ProvenanceKey::at(granularity, &e.provenance, e.triple.predicate),
                    (),
                );
            },
            |k, _vs| vec![*k],
        );
        keys.sort_unstable();
        let key_index: FxHashMap<ProvenanceKey, u32> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (*k, i as u32))
            .collect();

        // ---- Pass B: group by data item ------------------------------------
        // Emit (item, (value, prov_id, extractor, page)); reduce into
        // deduplicated value groups.
        type Obs = (Value, u32, u16, u32);
        let mut items: Vec<ItemGroup> = map_reduce(
            mr,
            batch,
            |e: &Extraction, emit: &mut Emitter<DataItem, Obs>| {
                let pid =
                    key_index[&ProvenanceKey::at(granularity, &e.provenance, e.triple.predicate)];
                emit.emit(
                    e.triple.data_item(),
                    (
                        e.triple.object,
                        pid,
                        e.provenance.extractor.raw(),
                        e.provenance.page.raw(),
                    ),
                );
            },
            |item, observations| {
                // Per-value (provenance ids, extractors, pages).
                type Support = (FxHashSet<u32>, FxHashSet<u16>, FxHashSet<u32>);
                let mut by_value: FxHashMap<Value, Support> = FxHashMap::default();
                for (value, pid, ext, page) in observations {
                    let slot = by_value.entry(value).or_default();
                    slot.0.insert(pid);
                    slot.1.insert(ext);
                    slot.2.insert(page);
                }
                let mut values: Vec<ValueGroup> = by_value
                    .into_iter()
                    .map(|(value, (pids, exts, pages))| {
                        let mut provs: Vec<u32> = pids.into_iter().collect();
                        provs.sort_unstable();
                        ValueGroup {
                            value,
                            provs,
                            n_extractors: exts.len() as u16,
                            n_pages: pages.len() as u32,
                        }
                    })
                    .collect();
                values.sort_unstable_by_key(|v| v.value);
                vec![ItemGroup {
                    item: *item,
                    values,
                }]
            },
        );
        // The engine only orders keys within a shuffle partition; sort
        // globally so output order is independent of the partition count.
        items.sort_unstable_by_key(|g| g.item);

        // ---- Support counts -------------------------------------------------
        // A provenance's support is the number of unique triples it
        // contributes (the (value, prov) pairs are already deduplicated).
        let mut support = vec![0u32; keys.len()];
        for group in &items {
            for vg in &group.values {
                for &pid in &vg.provs {
                    support[pid as usize] += 1;
                }
            }
        }

        let n = keys.len();
        Grouped {
            items,
            provs: ProvRegistry {
                keys,
                support,
                accuracy: vec![0.0; n],
                evaluated: vec![false; n],
            },
        }
    }

    /// Total number of unique triples.
    pub fn n_triples(&self) -> usize {
        self.items.iter().map(|g| g.values.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kf_types::{EntityId, ExtractorId, PageId, PatternId, PredicateId, Provenance, SiteId};

    fn ext(s: u32, p: u32, o: u32, extractor: u16, page: u32) -> Extraction {
        Extraction::new(
            Triple::new(EntityId(s), PredicateId(p), Value::Entity(EntityId(o))),
            Provenance::new(
                ExtractorId(extractor),
                PageId(page),
                SiteId(page / 10),
                PatternId::NONE,
            ),
        )
    }

    fn build(batch: &[Extraction]) -> Grouped {
        Grouped::build(batch, Granularity::ExtractorPage, &MrConfig::sequential())
    }

    #[test]
    fn groups_by_item_and_value() {
        let batch = vec![
            ext(1, 1, 10, 0, 100),
            ext(1, 1, 10, 1, 101), // same triple, second provenance
            ext(1, 1, 11, 0, 100), // conflicting value
            ext(2, 1, 10, 0, 100), // different item
        ];
        let g = build(&batch);
        assert_eq!(g.items.len(), 2);
        assert_eq!(g.n_triples(), 3);
        let first = &g.items[0];
        assert_eq!(first.item, DataItem::new(EntityId(1), PredicateId(1)));
        assert_eq!(first.values.len(), 2);
        let v10 = first
            .values
            .iter()
            .find(|v| v.value == Value::Entity(EntityId(10)))
            .unwrap();
        assert_eq!(v10.provs.len(), 2);
        assert_eq!(v10.n_extractors, 2);
        assert_eq!(v10.n_pages, 2);
        assert_eq!(first.total_provenances(), 3);
    }

    #[test]
    fn duplicate_extractions_are_deduplicated() {
        // The same (triple, provenance) seen twice counts once.
        let batch = vec![ext(1, 1, 10, 0, 100), ext(1, 1, 10, 0, 100)];
        let g = build(&batch);
        assert_eq!(g.items[0].values[0].provs.len(), 1);
        assert_eq!(g.provs.support, vec![1]);
    }

    #[test]
    fn support_counts_unique_triples() {
        // Provenance (0, page 100) supports two different triples.
        let batch = vec![ext(1, 1, 10, 0, 100), ext(2, 1, 10, 0, 100)];
        let g = build(&batch);
        assert_eq!(g.provs.len(), 1);
        assert_eq!(g.provs.support[0], 2);
    }

    #[test]
    fn granularity_merges_provenances() {
        // Two pages on the same site merge at site granularity.
        let batch = vec![ext(1, 1, 10, 0, 100), ext(1, 1, 10, 0, 101)];
        let page_g = Grouped::build(&batch, Granularity::ExtractorPage, &MrConfig::sequential());
        let site_g = Grouped::build(&batch, Granularity::ExtractorSite, &MrConfig::sequential());
        assert_eq!(page_g.provs.len(), 2);
        assert_eq!(site_g.provs.len(), 1);
        assert_eq!(page_g.items[0].values[0].provs.len(), 2);
        assert_eq!(site_g.items[0].values[0].provs.len(), 1);
        // Page-level detail (n_pages) survives the merge.
        assert_eq!(site_g.items[0].values[0].n_pages, 2);
    }

    #[test]
    fn groups_are_sorted_and_deterministic() {
        let batch: Vec<Extraction> = (0..200)
            .map(|i| ext(i % 13, i % 3, i % 7, (i % 4) as u16, i))
            .collect();
        let a = build(&batch);
        let b = Grouped::build(
            &batch,
            Granularity::ExtractorPage,
            &MrConfig::with_workers(7),
        );
        assert_eq!(a.items.len(), b.items.len());
        for (x, y) in a.items.iter().zip(&b.items) {
            assert_eq!(x.item, y.item);
            assert_eq!(x.values.len(), y.values.len());
            for (vx, vy) in x.values.iter().zip(&y.values) {
                assert_eq!(vx.value, vy.value);
                assert_eq!(vx.provs, vy.provs);
            }
        }
        // Sorted by data item.
        assert!(a.items.windows(2).all(|w| w[0].item <= w[1].item));
    }

    #[test]
    fn empty_batch_builds_empty_grouping() {
        let g = build(&[]);
        assert!(g.items.is_empty());
        assert!(g.provs.is_empty());
        assert_eq!(g.n_triples(), 0);
    }

    #[test]
    fn registry_reset() {
        let batch = vec![ext(1, 1, 10, 0, 100)];
        let mut g = build(&batch);
        g.provs.accuracy[0] = 0.3;
        g.provs.evaluated[0] = true;
        g.provs.reset_accuracy(0.8);
        assert_eq!(g.provs.accuracy[0], 0.8);
        assert!(!g.provs.evaluated[0]);
    }
}
