//! Grouping raw extractions into the structures the fusion rounds operate
//! on: per-data-item value groups and the provenance registry.
//!
//! This is Stage I's shuffle (map by data item) plus the provenance
//! dimension-reduction of §4.1 — an *(Extractor, URL)* pair (or a coarser /
//! finer key, §4.3.1) becomes a dense integer id with an accuracy slot.
//! The grouping is built once per fusion run with a **single** MapReduce
//! pass ([`Grouped::build`]): the mapper emits the full [`ProvenanceKey`]
//! alongside each observation, and the dense sorted ids are assigned in a
//! post-reduce renumbering step, so each extraction's provenance key is
//! projected and hashed once instead of twice (the historical two-pass
//! scheme is retained as [`Grouped::build_two_pass`] for differential
//! testing and as the benchmark baseline). The grouping is then shared
//! (read-only) by all rounds; only the accuracy array mutates between
//! rounds.

use kf_mapreduce::{map_reduce, map_reduce_combined_with_stats, Emitter, JobStats, MrConfig};
use kf_types::{
    DataItem, Extraction, FxHashMap, FxHashSet, FxMixHashMap, FxMixHashSet, Granularity,
    ProvenanceKey, Triple, Value,
};

/// One candidate value of a data item with its supporting provenances.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueGroup {
    /// The candidate value.
    pub value: Value,
    /// Dense provenance ids supporting it (deduplicated, sorted).
    pub provs: Vec<u32>,
    /// Distinct extractors supporting it (Fig. 18's second axis).
    pub n_extractors: u16,
    /// Distinct pages supporting it (Fig. 7's axis).
    pub n_pages: u32,
}

/// All candidate values observed for one data item.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemGroup {
    /// The data item.
    pub item: DataItem,
    /// Candidate values, sorted by value for determinism.
    pub values: Vec<ValueGroup>,
}

impl ItemGroup {
    /// Total provenance count over all values (VOTE's denominator `n`).
    pub fn total_provenances(&self) -> usize {
        self.values.iter().map(|v| v.provs.len()).sum()
    }

    /// The triple for value index `vi`.
    pub fn triple(&self, vi: usize) -> Triple {
        Triple::new(
            self.item.subject,
            self.item.predicate,
            self.values[vi].value,
        )
    }
}

/// Registry of provenances at the configured granularity.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvRegistry {
    /// The keys, indexed by dense id.
    pub keys: Vec<ProvenanceKey>,
    /// Number of unique triples each provenance supports (its *coverage*
    /// in §4.3.2 terms).
    pub support: Vec<u32>,
    /// Current accuracy estimate.
    pub accuracy: Vec<f64>,
    /// Whether the accuracy has ever been re-evaluated from data (true) or
    /// still carries its initial value (false). Drives refinement I.
    pub evaluated: Vec<bool>,
}

impl ProvRegistry {
    /// Number of provenances.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Reset all accuracies to `a` and clear evaluation flags.
    pub fn reset_accuracy(&mut self, a: f64) {
        for slot in &mut self.accuracy {
            *slot = a;
        }
        for e in &mut self.evaluated {
            *e = false;
        }
    }
}

/// The full grouped view of a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct Grouped {
    /// Item groups, sorted by data item.
    pub items: Vec<ItemGroup>,
    /// Provenance registry.
    pub provs: ProvRegistry,
}

impl Grouped {
    /// Build the grouped view of `batch` at `granularity` using the
    /// MapReduce engine — a single pass; see [`Grouped::build_with_stats`].
    pub fn build(batch: &[Extraction], granularity: Granularity, mr: &MrConfig) -> Grouped {
        Self::build_with_stats(batch, granularity, mr).0
    }

    /// [`Grouped::build`] variant that also returns the grouping job's
    /// execution counters (shuffle volume, peak resident records).
    ///
    /// The build is a **single** MapReduce pass: the mapper emits
    /// `(item, (value, ProvenanceKey, extractor, page))`, carrying the full
    /// provenance key through the shuffle, and the reducer deduplicates
    /// per-value support keyed by `ProvenanceKey`. Dense ids are assigned
    /// afterwards in a renumbering step over the distinct keys, sorted so
    /// the id space is deterministic — identical to what the historical
    /// registry pre-pass produced ([`Grouped::build_two_pass`]), but each
    /// extraction's key is projected and hashed once instead of twice.
    ///
    /// The pass registers a sort-and-deduplicate
    /// [`Combiner`](kf_mapreduce::Combiner): on the chunked/external
    /// shuffle path (`MrConfig::chunk_records` /
    /// `MrConfig::spill_threshold_records`), per-item observation buffers
    /// are sorted and exact duplicates dropped while waves merge and
    /// before partitions spill. The reducer re-sorts and deduplicates
    /// regardless, so output is byte-identical with or without the
    /// combiner — it only shrinks grouped residency and spilled bytes on
    /// duplicate-heavy corpora (the same `(triple, provenance)` seen from
    /// several pages or re-crawls).
    pub fn build_with_stats(
        batch: &[Extraction],
        granularity: Granularity,
        mr: &MrConfig,
    ) -> (Grouped, JobStats) {
        // ---- The single grouping pass --------------------------------------
        // The provenance key rides along with every observation in its
        // packed `u128` form (16 bytes through the shuffle instead of the
        // full Option-struct), projected and hashed once per extraction.
        type Obs = (Value, u128, u16, u32);
        /// One per-value header: `(value, start, len, n_extractors,
        /// n_pages)`, where `start..start + len` indexes the item's flat
        /// packed-key buffer. Dense ids do not exist yet.
        type RawValues = Vec<(Value, u32, u32, u16, u32)>;
        let (mut raw, stats) = map_reduce_combined_with_stats(
            mr,
            batch,
            |e: &Extraction, emit: &mut Emitter<DataItem, Obs>| {
                emit.emit(
                    e.triple.data_item(),
                    (
                        e.triple.object,
                        ProvenanceKey::at(granularity, &e.provenance, e.triple.predicate).pack(),
                        e.provenance.extractor.raw(),
                        e.provenance.page.raw(),
                    ),
                );
            },
            // Combiner: exact-duplicate observations collapse early. The
            // reducer below sorts and deduplicates anyway, so this is a
            // reducer-invariant rewrite (engine contract) — it only trims
            // the accumulators and the spill files.
            |observations: &mut Vec<Obs>| {
                observations.sort_unstable();
                observations.dedup();
            },
            |item, mut observations| {
                // Sort by (value, packed key, …): values come out sorted,
                // and each value's provenance keys form sorted runs that
                // deduplicate by adjacency — no per-value hash sets, and
                // one flat key buffer per item instead of one Vec per
                // value.
                observations.sort_unstable();
                let mut headers: RawValues = Vec::new();
                let mut flat: Vec<u128> = Vec::new();
                let mut exts: Vec<u16> = Vec::new();
                let mut pages: Vec<u32> = Vec::new();
                let mut i = 0;
                while i < observations.len() {
                    let value = observations[i].0;
                    let start = flat.len() as u32;
                    exts.clear();
                    pages.clear();
                    while i < observations.len() && observations[i].0 == value {
                        let (_, key, ext, page) = observations[i];
                        if flat.len() as u32 == start || *flat.last().unwrap() != key {
                            flat.push(key);
                        }
                        exts.push(ext);
                        pages.push(page);
                        i += 1;
                    }
                    exts.sort_unstable();
                    exts.dedup();
                    pages.sort_unstable();
                    pages.dedup();
                    headers.push((
                        value,
                        start,
                        flat.len() as u32 - start,
                        exts.len() as u16,
                        pages.len() as u32,
                    ));
                }
                vec![(*item, headers, flat)]
            },
        );
        // The engine only orders keys within a shuffle partition; sort
        // globally so output order is independent of the partition count.
        raw.sort_unstable_by_key(|g| g.0);

        // ---- Post-reduce renumbering ---------------------------------------
        // Distinct provenance keys, sorted, become the dense id space —
        // the same ids the registry pre-pass used to assign (packed-word
        // order equals key order within a granularity). Because id
        // assignment is monotone in key order, each group's key list
        // (sorted by packed key) maps directly to a sorted id list. Both
        // steps run parallel over contiguous item chunks (concatenated in
        // order, so the result is deterministic), mirroring the
        // parallelism the reducers had.
        let workers = mr.workers.max(1);
        let chunk_size = raw.len().div_ceil(workers).max(1);

        let mut packed_keys: Vec<u128> = if workers == 1 {
            let mut set: FxMixHashSet<u128> = FxMixHashSet::default();
            for (_, _, flat) in &raw {
                set.extend(flat.iter().copied());
            }
            set.into_iter().collect()
        } else {
            let mut sets: Vec<FxMixHashSet<u128>> = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = raw
                    .chunks(chunk_size)
                    .map(|chunk| {
                        scope.spawn(move || {
                            let mut set: FxMixHashSet<u128> = FxMixHashSet::default();
                            for (_, _, flat) in chunk {
                                set.extend(flat.iter().copied());
                            }
                            set
                        })
                    })
                    .collect();
                for h in handles {
                    sets.push(h.join().expect("key-collection worker panicked"));
                }
            });
            let mut union = sets.pop().unwrap_or_default();
            for set in sets {
                union.extend(set);
            }
            union.into_iter().collect()
        };
        packed_keys.sort_unstable();
        let key_index: FxMixHashMap<u128, u32> = packed_keys
            .iter()
            .enumerate()
            .map(|(i, k)| (*k, i as u32))
            .collect();
        let keys: Vec<ProvenanceKey> = packed_keys
            .iter()
            .map(|&w| ProvenanceKey::unpack(w))
            .collect();
        let n = keys.len();

        // Rebuild the groups with dense ids and count support (the number
        // of unique triples each provenance contributes; the (value, prov)
        // pairs are already deduplicated) in the same sweep. Each value's
        // run in `flat` is sorted by packed key, and id assignment is
        // monotone in that order, so the mapped id lists come out sorted.
        let renumber =
            |chunk: Vec<(DataItem, RawValues, Vec<u128>)>| -> (Vec<ItemGroup>, Vec<u32>) {
                let mut support = vec![0u32; n];
                let items = chunk
                    .into_iter()
                    .map(|(item, headers, flat)| ItemGroup {
                        item,
                        values: headers
                            .into_iter()
                            .map(|(value, start, len, n_extractors, n_pages)| ValueGroup {
                                value,
                                provs: flat[start as usize..(start + len) as usize]
                                    .iter()
                                    .map(|k| {
                                        let pid = key_index[k];
                                        support[pid as usize] += 1;
                                        pid
                                    })
                                    .collect(),
                                n_extractors,
                                n_pages,
                            })
                            .collect(),
                    })
                    .collect();
                (items, support)
            };

        let (items, support) = if workers == 1 {
            renumber(raw)
        } else {
            // Split from the back with split_off (each element moves once;
            // draining the front would shift the whole remainder per chunk).
            let mut chunks: Vec<Vec<_>> = Vec::new();
            while !raw.is_empty() {
                let at = raw.len() - chunk_size.min(raw.len());
                chunks.push(raw.split_off(at));
            }
            chunks.reverse();
            let mut parts: Vec<(Vec<ItemGroup>, Vec<u32>)> = Vec::new();
            std::thread::scope(|scope| {
                let renumber = &renumber;
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|chunk| scope.spawn(move || renumber(chunk)))
                    .collect();
                for h in handles {
                    parts.push(h.join().expect("renumber worker panicked"));
                }
            });
            let mut items = Vec::new();
            let mut support = vec![0u32; n];
            for (part_items, part_support) in parts {
                items.extend(part_items);
                for (total, local) in support.iter_mut().zip(part_support) {
                    *total += local;
                }
            }
            (items, support)
        };
        let grouped = Grouped {
            items,
            provs: ProvRegistry {
                keys,
                support,
                accuracy: vec![0.0; n],
                evaluated: vec![false; n],
            },
        };
        (grouped, stats)
    }

    /// The historical two-pass build: a registry pre-pass assigns dense
    /// provenance ids, then a second pass groups by data item. Retained as
    /// the measured baseline for `benches/fusion_methods.rs` and for
    /// differential tests — its output must stay byte-identical to
    /// [`Grouped::build`].
    pub fn build_two_pass(
        batch: &[Extraction],
        granularity: Granularity,
        mr: &MrConfig,
    ) -> Grouped {
        // ---- Pass A: the provenance registry ------------------------------
        // Distinct provenance keys, sorted for dense-id determinism.
        let mut keys: Vec<ProvenanceKey> = map_reduce(
            mr,
            batch,
            |e: &Extraction, emit: &mut Emitter<ProvenanceKey, ()>| {
                emit.emit(
                    ProvenanceKey::at(granularity, &e.provenance, e.triple.predicate),
                    (),
                );
            },
            |k, _vs| vec![*k],
        );
        keys.sort_unstable();
        let key_index: FxHashMap<ProvenanceKey, u32> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (*k, i as u32))
            .collect();

        // ---- Pass B: group by data item ------------------------------------
        // Emit (item, (value, prov_id, extractor, page)); reduce into
        // deduplicated value groups.
        type Obs = (Value, u32, u16, u32);
        let mut items: Vec<ItemGroup> = map_reduce(
            mr,
            batch,
            |e: &Extraction, emit: &mut Emitter<DataItem, Obs>| {
                let pid =
                    key_index[&ProvenanceKey::at(granularity, &e.provenance, e.triple.predicate)];
                emit.emit(
                    e.triple.data_item(),
                    (
                        e.triple.object,
                        pid,
                        e.provenance.extractor.raw(),
                        e.provenance.page.raw(),
                    ),
                );
            },
            |item, observations| {
                // Per-value (provenance ids, extractors, pages).
                type Support = (FxHashSet<u32>, FxHashSet<u16>, FxHashSet<u32>);
                let mut by_value: FxHashMap<Value, Support> = FxHashMap::default();
                for (value, pid, ext, page) in observations {
                    let slot = by_value.entry(value).or_default();
                    slot.0.insert(pid);
                    slot.1.insert(ext);
                    slot.2.insert(page);
                }
                let mut values: Vec<ValueGroup> = by_value
                    .into_iter()
                    .map(|(value, (pids, exts, pages))| {
                        let mut provs: Vec<u32> = pids.into_iter().collect();
                        provs.sort_unstable();
                        ValueGroup {
                            value,
                            provs,
                            n_extractors: exts.len() as u16,
                            n_pages: pages.len() as u32,
                        }
                    })
                    .collect();
                values.sort_unstable_by_key(|v| v.value);
                vec![ItemGroup {
                    item: *item,
                    values,
                }]
            },
        );
        items.sort_unstable_by_key(|g| g.item);

        let mut support = vec![0u32; keys.len()];
        for group in &items {
            for vg in &group.values {
                for &pid in &vg.provs {
                    support[pid as usize] += 1;
                }
            }
        }

        let n = keys.len();
        Grouped {
            items,
            provs: ProvRegistry {
                keys,
                support,
                accuracy: vec![0.0; n],
                evaluated: vec![false; n],
            },
        }
    }

    /// Total number of unique triples.
    pub fn n_triples(&self) -> usize {
        self.items.iter().map(|g| g.values.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kf_types::{EntityId, ExtractorId, PageId, PatternId, PredicateId, Provenance, SiteId};

    fn ext(s: u32, p: u32, o: u32, extractor: u16, page: u32) -> Extraction {
        Extraction::new(
            Triple::new(EntityId(s), PredicateId(p), Value::Entity(EntityId(o))),
            Provenance::new(
                ExtractorId(extractor),
                PageId(page),
                SiteId(page / 10),
                PatternId::NONE,
            ),
        )
    }

    fn build(batch: &[Extraction]) -> Grouped {
        Grouped::build(batch, Granularity::ExtractorPage, &MrConfig::sequential())
    }

    #[test]
    fn groups_by_item_and_value() {
        let batch = vec![
            ext(1, 1, 10, 0, 100),
            ext(1, 1, 10, 1, 101), // same triple, second provenance
            ext(1, 1, 11, 0, 100), // conflicting value
            ext(2, 1, 10, 0, 100), // different item
        ];
        let g = build(&batch);
        assert_eq!(g.items.len(), 2);
        assert_eq!(g.n_triples(), 3);
        let first = &g.items[0];
        assert_eq!(first.item, DataItem::new(EntityId(1), PredicateId(1)));
        assert_eq!(first.values.len(), 2);
        let v10 = first
            .values
            .iter()
            .find(|v| v.value == Value::Entity(EntityId(10)))
            .unwrap();
        assert_eq!(v10.provs.len(), 2);
        assert_eq!(v10.n_extractors, 2);
        assert_eq!(v10.n_pages, 2);
        assert_eq!(first.total_provenances(), 3);
    }

    #[test]
    fn duplicate_extractions_are_deduplicated() {
        // The same (triple, provenance) seen twice counts once.
        let batch = vec![ext(1, 1, 10, 0, 100), ext(1, 1, 10, 0, 100)];
        let g = build(&batch);
        assert_eq!(g.items[0].values[0].provs.len(), 1);
        assert_eq!(g.provs.support, vec![1]);
    }

    #[test]
    fn support_counts_unique_triples() {
        // Provenance (0, page 100) supports two different triples.
        let batch = vec![ext(1, 1, 10, 0, 100), ext(2, 1, 10, 0, 100)];
        let g = build(&batch);
        assert_eq!(g.provs.len(), 1);
        assert_eq!(g.provs.support[0], 2);
    }

    #[test]
    fn granularity_merges_provenances() {
        // Two pages on the same site merge at site granularity.
        let batch = vec![ext(1, 1, 10, 0, 100), ext(1, 1, 10, 0, 101)];
        let page_g = Grouped::build(&batch, Granularity::ExtractorPage, &MrConfig::sequential());
        let site_g = Grouped::build(&batch, Granularity::ExtractorSite, &MrConfig::sequential());
        assert_eq!(page_g.provs.len(), 2);
        assert_eq!(site_g.provs.len(), 1);
        assert_eq!(page_g.items[0].values[0].provs.len(), 2);
        assert_eq!(site_g.items[0].values[0].provs.len(), 1);
        // Page-level detail (n_pages) survives the merge.
        assert_eq!(site_g.items[0].values[0].n_pages, 2);
    }

    #[test]
    fn groups_are_sorted_and_deterministic() {
        let batch: Vec<Extraction> = (0..200)
            .map(|i| ext(i % 13, i % 3, i % 7, (i % 4) as u16, i))
            .collect();
        let a = build(&batch);
        let b = Grouped::build(
            &batch,
            Granularity::ExtractorPage,
            &MrConfig::with_workers(7),
        );
        assert_eq!(a.items.len(), b.items.len());
        for (x, y) in a.items.iter().zip(&b.items) {
            assert_eq!(x.item, y.item);
            assert_eq!(x.values.len(), y.values.len());
            for (vx, vy) in x.values.iter().zip(&y.values) {
                assert_eq!(vx.value, vy.value);
                assert_eq!(vx.provs, vy.provs);
            }
        }
        // Sorted by data item.
        assert!(a.items.windows(2).all(|w| w[0].item <= w[1].item));
    }

    #[test]
    fn empty_batch_builds_empty_grouping() {
        let g = build(&[]);
        assert!(g.items.is_empty());
        assert!(g.provs.is_empty());
        assert_eq!(g.n_triples(), 0);
    }

    #[test]
    fn single_pass_matches_two_pass_baseline() {
        let batch: Vec<Extraction> = (0..500)
            .map(|i| ext(i % 23, i % 5, i % 9, (i % 6) as u16, i % 70))
            .collect();
        for g in [
            Granularity::ExtractorPage,
            Granularity::ExtractorSitePredicatePattern,
            Granularity::PageOnly,
        ] {
            for mr in [MrConfig::sequential(), MrConfig::with_workers(5)] {
                let single = Grouped::build(&batch, g, &mr);
                let two = Grouped::build_two_pass(&batch, g, &mr);
                assert_eq!(single, two, "granularity {g:?}, mr {mr:?}");
            }
        }
    }

    #[test]
    fn chunked_build_matches_unchunked_with_bounded_peak() {
        let batch: Vec<Extraction> = (0..4_000)
            .map(|i| ext(i % 37, i % 4, i % 11, (i % 8) as u16, i % 250))
            .collect();
        let mr = MrConfig::with_workers(4);
        let (unchunked, base_stats) =
            Grouped::build_with_stats(&batch, Granularity::ExtractorPage, &mr);
        // Unchunked: the whole shuffle (one record per extraction) resident.
        assert_eq!(base_stats.peak_resident_records, batch.len() as u64);

        let chunked_mr = mr.with_chunk_records(512);
        let (chunked, chunk_stats) =
            Grouped::build_with_stats(&batch, Granularity::ExtractorPage, &chunked_mr);
        assert_eq!(unchunked, chunked);
        assert!(
            chunk_stats.peak_resident_records < base_stats.peak_resident_records,
            "peak {} not below unchunked {}",
            chunk_stats.peak_resident_records,
            base_stats.peak_resident_records
        );
        // Grouping emits exactly one record per input, so the bound is
        // tight up to one wave.
        assert!(chunk_stats.peak_resident_records <= 1_024);
    }

    #[test]
    fn spilled_build_matches_in_memory_with_bounded_grouped_peak() {
        let batch: Vec<Extraction> = (0..4_000)
            .map(|i| ext(i % 37, i % 4, i % 11, (i % 8) as u16, i % 250))
            .collect();
        let mr = MrConfig::with_workers(4);
        let (in_memory, base_stats) =
            Grouped::build_with_stats(&batch, Granularity::ExtractorPage, &mr);
        // Without spilling, every grouped observation waits in memory.
        assert_eq!(base_stats.peak_grouped_records, batch.len() as u64);
        assert_eq!(base_stats.spilled_bytes, 0);

        let spill_mr = mr.with_chunk_records(256).with_spill_threshold(1_024);
        let (spilled, spill_stats) =
            Grouped::build_with_stats(&batch, Granularity::ExtractorPage, &spill_mr);
        assert_eq!(in_memory, spilled, "spilled grouping must be identical");
        assert!(spill_stats.spilled_bytes > 0, "disk path not exercised");
        // Grouping emits one record per extraction and every wave (≤ 512)
        // fits under the threshold, so the pre-merge spill holds the line.
        assert!(
            spill_stats.peak_grouped_records <= 1_024,
            "grouped peak {} above the 1024-record threshold",
            spill_stats.peak_grouped_records
        );
    }

    #[test]
    fn combiner_shrinks_duplicate_heavy_shuffles() {
        // The same (triple, provenance) extracted 50×: the dedup combiner
        // collapses the duplicates while waves merge, so grouped residency
        // stays near the number of *distinct* observations.
        let batch: Vec<Extraction> = (0..5_000).map(|i| ext(i % 5, 1, 1, 0, i % 2)).collect();
        let (in_memory, _) =
            Grouped::build_with_stats(&batch, Granularity::ExtractorPage, &MrConfig::sequential());
        let (combined, stats) = Grouped::build_with_stats(
            &batch,
            Granularity::ExtractorPage,
            &MrConfig::sequential().with_chunk_records(200),
        );
        assert_eq!(in_memory, combined);
        // 10 distinct (item, value, prov) observations; without combining
        // the grouped peak would be the full 5,000.
        assert!(
            stats.peak_grouped_records < 500,
            "dedup combiner did not shrink the accumulators (peak {})",
            stats.peak_grouped_records
        );
    }

    #[test]
    fn registry_reset() {
        let batch = vec![ext(1, 1, 10, 0, 100)];
        let mut g = build(&batch);
        g.provs.accuracy[0] = 0.3;
        g.provs.evaluated[0] = true;
        g.provs.reset_accuracy(0.8);
        assert_eq!(g.provs.accuracy[0], 0.8);
        assert!(!g.provs.evaluated[0]);
    }
}
