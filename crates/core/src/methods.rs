//! Per-data-item probability computation for VOTE, ACCU and POPACCU.
//!
//! These are pure functions over the candidate values of a single data item:
//! `cands[i]` holds the (possibly sampled) accuracies of the provenances
//! supporting value *i*. All three methods assume a single truth per item
//! (§4.1 — "theoretically invalid for non-functional predicates, but in
//! practice it performs surprisingly well"), so the returned probabilities
//! sum to at most 1.
//!
//! The numerics are written to reproduce the paper's signature artifacts
//! exactly:
//!
//! * ACCU with one provenance at the default accuracy 0.8 and `N = 100`
//!   yields `P ≈ 0.80` — but not *exactly* 0.8, because the `N − k`
//!   unobserved false candidates keep probabilities from "sticking"
//!   (§4.2).
//! * POPACCU with one single-triple provenance yields exactly `P = A`
//!   (the calibration-curve valleys at 0.8, and at 0.5 for two conflicting
//!   singleton values — Fig. 9).

/// Clamp an accuracy away from 0/1 before taking logs.
#[inline]
fn clamp_acc(a: f64) -> f64 {
    a.clamp(0.01, 0.99)
}

/// VOTE (§4.1): `P(v) = m(v) / n` over provenance counts.
pub fn vote(counts: &[usize]) -> Vec<f64> {
    let n: usize = counts.iter().sum();
    if n == 0 {
        return vec![0.0; counts.len()];
    }
    counts.iter().map(|&m| m as f64 / n as f64).collect()
}

/// ACCU (\[11\], §4.1): Bayesian analysis with `N` uniformly-distributed
/// false values. `cands[i]` is the accuracy list of value *i*'s
/// provenances.
pub fn accu(cands: &[Vec<f64>], n_false: f64) -> Vec<f64> {
    let k = cands.len();
    if k == 0 {
        return Vec::new();
    }
    // Vote score C(v) = Σ ln(N·A/(1−A)).
    let scores: Vec<f64> = cands
        .iter()
        .map(|accs| {
            accs.iter()
                .map(|&a| {
                    let a = clamp_acc(a);
                    (n_false * a / (1.0 - a)).ln()
                })
                .sum()
        })
        .collect();
    // Unobserved false values contribute (N − k) candidates at score 0.
    let unobserved = (n_false - k as f64).max(0.0);
    softmax_with_extra_mass(&scores, unobserved)
}

/// POPACCU (\[14\], §4.1): like ACCU but the false-value distribution ρ is
/// estimated from the data instead of assumed uniform. `counts[i]` is the
/// raw provenance count `n(v)` of value *i* (used for the popularity
/// estimate), `inner_iters` bounds the per-item fixpoint.
pub fn popaccu(cands: &[Vec<f64>], counts: &[usize], inner_iters: usize) -> Vec<f64> {
    let k = cands.len();
    if k == 0 {
        return Vec::new();
    }
    debug_assert_eq!(cands.len(), counts.len());
    let total: usize = counts.iter().sum();
    if total == 0 {
        return vec![0.0; k];
    }

    // Accuracy log-odds are fixed across the fixpoint.
    let base_scores: Vec<f64> = cands
        .iter()
        .map(|accs| {
            accs.iter()
                .map(|&a| {
                    let a = clamp_acc(a);
                    (a / (1.0 - a)).ln()
                })
                .sum()
        })
        .collect();

    // Initialise with the vote shares.
    let mut probs: Vec<f64> = counts.iter().map(|&c| c as f64 / total as f64).collect();

    const RHO_FLOOR: f64 = 1e-6;
    const DELTA: f64 = 1e-3; // popularity smoothing
    for _ in 0..inner_iters.max(1) {
        // ρ(v) ∝ n(v)·(1 − P(v)): the expected share of value v among the
        // *false* observations of this item.
        let masses: Vec<f64> = counts
            .iter()
            .zip(&probs)
            .map(|(&n, &p)| n as f64 * (1.0 - p) + DELTA)
            .collect();
        let mass_total: f64 = masses.iter().sum();
        let scores: Vec<f64> = base_scores
            .iter()
            .zip(&masses)
            .zip(counts)
            .map(|((&s, &m), &n)| {
                let rho = (m / mass_total).max(RHO_FLOOR);
                s - n as f64 * rho.ln()
            })
            .collect();
        // One unit of extra mass models the unobserved-truth event; it is
        // what pins the singleton case to P = A exactly:
        // P = (A/(1−A)) / (A/(1−A) + 1) = A.
        let new_probs = softmax_with_extra_mass(&scores, 1.0);
        let delta: f64 = new_probs
            .iter()
            .zip(&probs)
            .map(|(a, b)| (a - b).abs())
            .sum();
        probs = new_probs;
        if delta < 1e-9 {
            break;
        }
    }
    probs
}

/// `exp(scores) / (Σ exp(scores) + extra_mass·exp(0))`, computed stably in
/// log space.
fn softmax_with_extra_mass(scores: &[f64], extra_mass: f64) -> Vec<f64> {
    let max = scores.iter().copied().fold(0.0f64, f64::max); // includes the 0 of extra mass
    let denom: f64 =
        scores.iter().map(|&s| (s - max).exp()).sum::<f64>() + extra_mass * (-max).exp();
    scores.iter().map(|&s| (s - max).exp() / denom).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    // ---------------- VOTE -------------------------------------------------

    #[test]
    fn vote_is_count_fraction() {
        // The paper's example: 4 values, one with 7 provenances, three with
        // 1 each → P = 0.7 for the first.
        let p = vote(&[7, 1, 1, 1]);
        assert!(approx(p[0], 0.7, 1e-12));
        assert!(approx(p[1], 0.1, 1e-12));
        assert!(approx(p.iter().sum::<f64>(), 1.0, 1e-12));
    }

    #[test]
    fn vote_single_provenance_gives_one() {
        // VOTE's failure mode (§4.2): a single provenance yields P = 1,
        // two conflicting singles yield 0.5 — badly over-confident.
        assert_eq!(vote(&[1]), vec![1.0]);
        assert_eq!(vote(&[1, 1]), vec![0.5, 0.5]);
    }

    #[test]
    fn vote_empty() {
        assert!(vote(&[]).is_empty());
        assert_eq!(vote(&[0, 0]), vec![0.0, 0.0]);
    }

    // ---------------- ACCU -------------------------------------------------

    #[test]
    fn accu_single_default_provenance_is_near_but_not_exactly_08() {
        // One provenance, A = 0.8, N = 100:
        // score = ln(100·0.8/0.2) = ln 400; P = 400/(400+99) ≈ 0.8016.
        let p = accu(&[vec![0.8]], 100.0);
        assert!(approx(p[0], 400.0 / 499.0, 1e-9), "got {}", p[0]);
        assert!(!approx(p[0], 0.8, 1e-4), "ACCU must not stick to exactly A");
    }

    #[test]
    fn accu_two_conflicting_singletons() {
        let p = accu(&[vec![0.8], vec![0.8]], 100.0);
        assert!(approx(p[0], p[1], 1e-12));
        // 400/(400+400+98) ≈ 0.445 — near but below 0.5.
        assert!(p[0] < 0.5 && p[0] > 0.4, "got {}", p[0]);
    }

    #[test]
    fn accu_more_support_wins() {
        let p = accu(&[vec![0.8, 0.8, 0.8], vec![0.8]], 100.0);
        assert!(p[0] > 0.99, "3-vs-1 should be near-certain, got {}", p[0]);
        assert!(p[1] < 0.01);
    }

    #[test]
    fn accu_high_accuracy_sources_count_more() {
        // One high-accuracy source vs two low-accuracy sources.
        let p = accu(&[vec![0.95], vec![0.3, 0.3]], 100.0);
        assert!(
            p[0] > p[1],
            "accurate single {} should beat inaccurate pair {}",
            p[0],
            p[1]
        );
    }

    #[test]
    fn accu_probabilities_sum_below_one() {
        let p = accu(&[vec![0.8], vec![0.7], vec![0.6]], 100.0);
        let sum: f64 = p.iter().sum();
        assert!(sum < 1.0 + 1e-12);
        assert!(sum > 0.5);
    }

    #[test]
    fn accu_handles_extreme_accuracies() {
        // Clamping keeps ln finite even at 0/1.
        let p = accu(&[vec![1.0], vec![0.0]], 100.0);
        assert!(p[0] > p[1]);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn accu_many_candidates_beyond_n() {
        // k > N: unobserved mass floors at zero, still well-defined.
        let cands: Vec<Vec<f64>> = (0..150).map(|_| vec![0.5]).collect();
        let p = accu(&cands, 100.0);
        assert!(p.iter().all(|x| x.is_finite() && *x >= 0.0));
        assert!(approx(p.iter().sum::<f64>(), 1.0, 1e-9));
    }

    // ---------------- POPACCU ----------------------------------------------

    #[test]
    fn popaccu_singleton_sticks_to_default_accuracy() {
        // The paper's Fig. 9 valley at exactly 0.8: a single triple from a
        // single default-accuracy provenance reinforces P = A.
        let p = popaccu(&[vec![0.8]], &[1], 8);
        assert!(approx(p[0], 0.8, 1e-9), "got {}", p[0]);
    }

    #[test]
    fn popaccu_two_conflicting_singletons_near_half() {
        // Fig. 9's second valley (predicted 0.5).
        let p = popaccu(&[vec![0.8], vec![0.8]], &[1, 1], 8);
        assert!(approx(p[0], p[1], 1e-12));
        assert!((0.4..=0.5).contains(&p[0]), "got {}", p[0]);
    }

    #[test]
    fn popaccu_popular_false_values_are_discounted_vs_accu() {
        // A value with many provenances of mediocre accuracy vs a value
        // with a few high-accuracy ones: POPACCU discounts the popular
        // value compared to ACCU because its popularity feeds ρ.
        let popular: Vec<f64> = vec![0.5; 10];
        let niche = vec![0.9, 0.9];
        let p_accu = accu(&[popular.clone(), niche.clone()], 100.0);
        let p_pop = popaccu(&[popular, niche], &[10, 2], 8);
        let ratio_accu = p_accu[0] / p_accu[1].max(1e-12);
        let ratio_pop = p_pop[0] / p_pop[1].max(1e-12);
        assert!(
            ratio_pop < ratio_accu,
            "POPACCU should discount popularity: accu ratio {ratio_accu}, popaccu ratio {ratio_pop}"
        );
    }

    #[test]
    fn popaccu_more_support_wins() {
        let p = popaccu(&[vec![0.8, 0.8, 0.8, 0.8], vec![0.8]], &[4, 1], 8);
        assert!(p[0] > 0.9, "got {}", p[0]);
        assert!(p[1] < 0.1);
    }

    #[test]
    fn popaccu_is_stable_and_bounded() {
        let cands: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![0.2 + (i as f64) * 0.03; (i % 5) + 1])
            .collect();
        let counts: Vec<usize> = (0..20).map(|i| (i % 5) + 1).collect();
        let p = popaccu(&cands, &counts, 16);
        assert!(p.iter().all(|x| x.is_finite() && (0.0..=1.0).contains(x)));
        assert!(p.iter().sum::<f64>() <= 1.0 + 1e-9);
    }

    #[test]
    fn popaccu_empty_and_degenerate() {
        assert!(popaccu(&[], &[], 4).is_empty());
        let p = popaccu(&[vec![]], &[0], 4);
        assert_eq!(p, vec![0.0]);
    }

    #[test]
    fn popaccu_inner_iterations_converge() {
        // Result after 8 inner iterations ≈ result after 64.
        let cands = vec![vec![0.7, 0.6], vec![0.8], vec![0.55; 5]];
        let counts = vec![2, 1, 5];
        let a = popaccu(&cands, &counts, 8);
        let b = popaccu(&cands, &counts, 64);
        for (x, y) in a.iter().zip(&b) {
            assert!(approx(*x, *y, 1e-3), "{x} vs {y}");
        }
    }

    // ---------------- cross-method ------------------------------------------

    #[test]
    fn monotone_in_support_for_all_methods() {
        // Adding a supporting provenance never hurts a value.
        for k in 1..6usize {
            let weak: Vec<Vec<f64>> = vec![vec![0.8; k], vec![0.8]];
            let strong: Vec<Vec<f64>> = vec![vec![0.8; k + 1], vec![0.8]];
            assert!(accu(&strong, 100.0)[0] >= accu(&weak, 100.0)[0]);
            assert!(popaccu(&strong, &[k + 1, 1], 8)[0] >= popaccu(&weak, &[k, 1], 8)[0] - 1e-9);
            assert!(vote(&[k + 1, 1])[0] >= vote(&[k, 1])[0]);
        }
    }

    #[test]
    fn softmax_extra_mass_normalises() {
        let p = softmax_with_extra_mass(&[1.0, 2.0], 3.0);
        let explicit: f64 = p.iter().sum();
        assert!(explicit < 1.0);
        // Reconstruct the implicit mass: scores e^1, e^2, extra 3·e^0.
        let denom = 1f64.exp() + 2f64.exp() + 3.0;
        assert!(approx(p[0], 1f64.exp() / denom, 1e-12));
        assert!(approx(p[1], 2f64.exp() / denom, 1e-12));
    }

    #[test]
    fn softmax_handles_huge_scores() {
        let p = softmax_with_extra_mass(&[800.0, 1.0], 100.0);
        assert!(approx(p[0], 1.0, 1e-9));
        assert!(p[1] >= 0.0 && p[1] < 1e-12);
    }
}
