//! Extensions implementing the paper's "future directions" (§5) as
//! opt-in post-processing passes over a [`FusionOutput`].
//!
//! These are deliberately separate from the core pipeline: the paper
//! *proposes* them without building them, so we keep the faithful
//! reproduction pure and layer the proposals on top where the ablation
//! benches can measure their effect.
//!
//! * [`FunctionalityModel`] — §5.3: learn the expected number of true
//!   values per predicate and renormalise multi-truth items so that
//!   additional likely-true values are not crushed by the single-truth
//!   assumption.
//! * [`hierarchy_adjust`] — §5.4: give partial credit to values that are
//!   generalisations/specialisations of a strongly supported value.
//! * [`confidence_reweight`] — §5.5: incorporate extraction confidences by
//!   shrinking each triple's probability toward its mean extractor
//!   confidence, after per-extractor recalibration.

use crate::result::FusionOutput;
use kf_types::{
    DataItem, ExtractionBatch, FxHashMap, GoldStandard, PredicateId, Triple, Value, ValueHierarchy,
};

/// Learned per-predicate functionality: the expected number of true values
/// for a data item of that predicate (§5.3 — spouse ≈ 1, acted-in ≫ 1).
#[derive(Debug, Clone, Default)]
pub struct FunctionalityModel {
    expected_truths: FxHashMap<PredicateId, f64>,
}

impl FunctionalityModel {
    /// Learn functionality from the gold standard: the mean number of
    /// accepted values over known items of each predicate.
    pub fn learn_from_gold(gold: &GoldStandard) -> Self {
        let mut sums: FxHashMap<PredicateId, (f64, f64)> = FxHashMap::default();
        for (item, values) in gold.iter() {
            let slot = sums.entry(item.predicate).or_insert((0.0, 0.0));
            slot.0 += values.len() as f64;
            slot.1 += 1.0;
        }
        FunctionalityModel {
            expected_truths: sums
                .into_iter()
                .map(|(p, (s, n))| (p, (s / n).max(1.0)))
                .collect(),
        }
    }

    /// Expected number of truths for `p` (1.0 when unknown).
    pub fn expected(&self, p: PredicateId) -> f64 {
        self.expected_truths.get(&p).copied().unwrap_or(1.0)
    }

    /// Number of predicates with learned functionality.
    pub fn len(&self) -> usize {
        self.expected_truths.len()
    }

    /// True when nothing was learned.
    pub fn is_empty(&self) -> bool {
        self.expected_truths.is_empty()
    }

    /// Renormalise probabilities of multi-truth items: for a predicate with
    /// expected `m` truths, per-item probabilities may sum up to `m`
    /// (instead of 1) — values are scaled up proportionally without letting
    /// any single probability exceed the method's own cap of 1.
    ///
    /// This directly targets the paper's top false-negative cause (65% of
    /// FNs were "multiple truths" casualties of the single-truth
    /// assumption).
    pub fn apply(&self, output: &mut FusionOutput) {
        // Group slot indices by item.
        let mut by_item: FxHashMap<DataItem, Vec<usize>> = FxHashMap::default();
        for (i, s) in output.scored.iter().enumerate() {
            by_item.entry(s.triple.data_item()).or_default().push(i);
        }
        for (item, slots) in by_item {
            let m = self.expected(item.predicate);
            if m <= 1.0 + 1e-9 {
                continue;
            }
            let current_sum: f64 = slots
                .iter()
                .filter_map(|&i| output.scored[i].probability)
                .sum();
            if current_sum <= 0.0 {
                continue;
            }
            // Allow the item's probability mass to grow toward min(m, k),
            // bounded so no probability exceeds 1.
            let k = slots.len() as f64;
            let target = m.min(k).max(1.0);
            let scale = (target / current_sum).max(1.0);
            if scale <= 1.0 + 1e-12 {
                continue;
            }
            for &i in &slots {
                if let Some(p) = output.scored[i].probability {
                    output.scored[i].probability = Some((p * scale).min(1.0));
                }
            }
        }
    }
}

/// Hierarchy-aware adjustment (§5.4): a value that is an ancestor of a
/// strongly supported value is itself (at least as) true — e.g. *(Steve
/// Jobs, birth place, USA)* when *California* is strongly supported; a
/// descendant gets partial credit.
///
/// For each item, every value's probability is raised to
/// `max(P(v), max_{d: v ancestor of d} P(d), α · max_{a: v descendant of a} P(a))`
/// where `α` discounts the (weaker) evidence a general value gives a
/// specific one.
pub fn hierarchy_adjust<H: ValueHierarchy>(
    output: &mut FusionOutput,
    hierarchy: &H,
    specialization_discount: f64,
) {
    let alpha = specialization_discount.clamp(0.0, 1.0);
    let mut by_item: FxHashMap<DataItem, Vec<usize>> = FxHashMap::default();
    for (i, s) in output.scored.iter().enumerate() {
        by_item.entry(s.triple.data_item()).or_default().push(i);
    }
    for slots in by_item.values() {
        if slots.len() < 2 {
            continue;
        }
        let values: Vec<(Value, Option<f64>)> = slots
            .iter()
            .map(|&i| (output.scored[i].triple.object, output.scored[i].probability))
            .collect();
        for (si, &slot) in slots.iter().enumerate() {
            let (v, p) = values[si];
            let Some(p) = p else { continue };
            let mut best = p;
            for (sj, &(w, q)) in values.iter().enumerate() {
                if si == sj {
                    continue;
                }
                let Some(q) = q else { continue };
                if hierarchy.is_ancestor(v, w) {
                    // v generalises a supported value w: inherits support.
                    best = best.max(q);
                } else if hierarchy.is_ancestor(w, v) {
                    // v specialises w: partial credit.
                    best = best.max(alpha * q);
                }
            }
            output.scored[slot].probability = Some(best);
        }
    }
}

/// Per-extractor confidence recalibration table: maps raw confidence bands
/// to empirical accuracy, learned against the gold standard (§5.5 — raw
/// confidences are *not* calibrated, Fig. 21).
#[derive(Debug, Clone)]
pub struct ConfidenceRecalibration {
    /// `bands[extractor][band] = (sum_true, count)` over labelled triples.
    bands: Vec<Vec<(f64, f64)>>,
    n_bands: usize,
}

impl ConfidenceRecalibration {
    /// Learn a recalibration table from labelled extractions.
    pub fn learn(batch: &ExtractionBatch, gold: &GoldStandard, n_extractors: usize) -> Self {
        let n_bands = 10;
        let mut bands = vec![vec![(0.0, 0.0); n_bands]; n_extractors];
        for e in batch.iter() {
            let Some(conf) = e.confidence else { continue };
            let Some(truth) = gold.label(&e.triple).as_bool() else {
                continue;
            };
            let b = ((conf as f64 * n_bands as f64) as usize).min(n_bands - 1);
            let slot = &mut bands[e.provenance.extractor.index()][b];
            slot.0 += truth as u8 as f64;
            slot.1 += 1.0;
        }
        ConfidenceRecalibration { bands, n_bands }
    }

    /// Empirical accuracy for (extractor, raw confidence); `None` when the
    /// band has no labelled data.
    pub fn recalibrate(&self, extractor: usize, conf: f32) -> Option<f64> {
        let b = ((conf as f64 * self.n_bands as f64) as usize).min(self.n_bands - 1);
        let (sum, count) = self.bands.get(extractor)?[b];
        if count < 5.0 {
            None
        } else {
            Some(sum / count)
        }
    }
}

/// Confidence-aware reweighting (§5.5): shrink each triple's fused
/// probability toward the mean *recalibrated* confidence of its
/// extractions, weighted by `beta`.
pub fn confidence_reweight(
    output: &mut FusionOutput,
    batch: &ExtractionBatch,
    recal: &ConfidenceRecalibration,
    beta: f64,
) {
    let beta = beta.clamp(0.0, 1.0);
    // Mean recalibrated confidence per triple.
    let mut sums: FxHashMap<Triple, (f64, f64)> = FxHashMap::default();
    for e in batch.iter() {
        let Some(conf) = e.confidence else { continue };
        let Some(cal) = recal.recalibrate(e.provenance.extractor.index(), conf) else {
            continue;
        };
        let slot = sums.entry(e.triple).or_default();
        slot.0 += cal;
        slot.1 += 1.0;
    }
    for s in &mut output.scored {
        let Some(p) = s.probability else { continue };
        if let Some((sum, n)) = sums.get(&s.triple) {
            let mean_conf = sum / n;
            s.probability = Some((1.0 - beta) * p + beta * mean_conf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::ScoredTriple;
    use kf_mapreduce::{JobStats, RoundOutcome};
    use kf_types::{EntityId, Value};

    fn scored(s: u32, o: u32, p: Option<f64>) -> ScoredTriple {
        ScoredTriple {
            triple: Triple::new(EntityId(s), PredicateId(1), Value::Entity(EntityId(o))),
            probability: p,
            n_provenances: 1,
            n_extractors: 1,
            n_pages: 1,
            fallback: false,
        }
    }

    fn output(scored_triples: Vec<ScoredTriple>) -> FusionOutput {
        FusionOutput {
            scored: scored_triples,
            outcome: RoundOutcome::Converged {
                rounds: 1,
                delta: 0.0,
            },
            round_deltas: vec![],
            n_provenances: 0,
            stats: JobStats::default(),
        }
    }

    #[test]
    fn functionality_learned_from_gold() {
        let mut gold = GoldStandard::new();
        // Predicate 1: items with 2 values each (non-functional).
        for s in 0..4u32 {
            gold.insert(
                DataItem::new(EntityId(s), PredicateId(1)),
                Value::Entity(EntityId(10)),
            );
            gold.insert(
                DataItem::new(EntityId(s), PredicateId(1)),
                Value::Entity(EntityId(11)),
            );
        }
        // Predicate 2: single-valued.
        gold.insert(
            DataItem::new(EntityId(0), PredicateId(2)),
            Value::Entity(EntityId(9)),
        );
        let model = FunctionalityModel::learn_from_gold(&gold);
        assert!((model.expected(PredicateId(1)) - 2.0).abs() < 1e-12);
        assert!((model.expected(PredicateId(2)) - 1.0).abs() < 1e-12);
        assert_eq!(model.expected(PredicateId(99)), 1.0);
        assert_eq!(model.len(), 2);
    }

    #[test]
    fn functionality_apply_lifts_multi_truth_items() {
        let mut gold = GoldStandard::new();
        for s in 0..3u32 {
            for o in 0..3u32 {
                gold.insert(
                    DataItem::new(EntityId(s), PredicateId(1)),
                    Value::Entity(EntityId(o)),
                );
            }
        }
        let model = FunctionalityModel::learn_from_gold(&gold);
        // Two values splitting the mass 0.5/0.4 under single-truth.
        let mut out = output(vec![scored(7, 1, Some(0.5)), scored(7, 2, Some(0.4))]);
        model.apply(&mut out);
        let p1 = out.scored[0].probability.unwrap();
        let p2 = out.scored[1].probability.unwrap();
        // Mass may now sum up to min(expected=3, k=2) = 2.
        assert!(p1 > 0.5 && p2 > 0.4, "not lifted: {p1}, {p2}");
        assert!(p1 <= 1.0 && p2 <= 1.0);
        // Relative order preserved.
        assert!(p1 > p2);
    }

    #[test]
    fn functionality_leaves_functional_predicates_alone() {
        let mut gold = GoldStandard::new();
        gold.insert(
            DataItem::new(EntityId(0), PredicateId(1)),
            Value::Entity(EntityId(0)),
        );
        let model = FunctionalityModel::learn_from_gold(&gold);
        let mut out = output(vec![scored(7, 1, Some(0.6)), scored(7, 2, Some(0.3))]);
        model.apply(&mut out);
        assert_eq!(out.scored[0].probability, Some(0.6));
        assert_eq!(out.scored[1].probability, Some(0.3));
    }

    /// Toy hierarchy 1 → 2 → 3 (child → parent) over entity ids.
    struct Chain;
    impl ValueHierarchy for Chain {
        fn parent(&self, v: Value) -> Option<Value> {
            match v {
                Value::Entity(EntityId(1)) => Some(Value::Entity(EntityId(2))),
                Value::Entity(EntityId(2)) => Some(Value::Entity(EntityId(3))),
                _ => None,
            }
        }
    }

    #[test]
    fn hierarchy_lifts_general_values() {
        // Item has leaf (id 1) at 0.9 and its grandparent (id 3) at 0.1:
        // the general value inherits the leaf's support.
        let mut out = output(vec![scored(7, 1, Some(0.9)), scored(7, 3, Some(0.1))]);
        hierarchy_adjust(&mut out, &Chain, 0.5);
        assert_eq!(out.scored[0].probability, Some(0.9));
        assert_eq!(out.scored[1].probability, Some(0.9));
    }

    #[test]
    fn hierarchy_gives_partial_credit_to_specific_values() {
        // General value strong (0.8), leaf weak (0.05) → leaf rises to
        // α·0.8 = 0.4.
        let mut out = output(vec![scored(7, 3, Some(0.8)), scored(7, 1, Some(0.05))]);
        hierarchy_adjust(&mut out, &Chain, 0.5);
        assert_eq!(out.scored[0].probability, Some(0.8));
        assert!((out.scored[1].probability.unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn hierarchy_ignores_unrelated_values() {
        let mut out = output(vec![scored(7, 1, Some(0.7)), scored(7, 99, Some(0.2))]);
        hierarchy_adjust(&mut out, &Chain, 0.5);
        assert_eq!(out.scored[0].probability, Some(0.7));
        assert_eq!(out.scored[1].probability, Some(0.2));
    }

    #[test]
    fn recalibration_learns_band_accuracy() {
        use kf_types::{Extraction, ExtractorId, PageId, PatternId, Provenance, SiteId};
        let mut gold = GoldStandard::new();
        gold.insert(
            DataItem::new(EntityId(0), PredicateId(1)),
            Value::Entity(EntityId(1)),
        );
        let mut batch = ExtractionBatch::new();
        // Extractor 0 at confidence ~0.9: 8 true, 2 false.
        for i in 0..10 {
            let o = if i < 8 { 1 } else { 2 };
            batch.push(Extraction::with_confidence(
                Triple::new(EntityId(0), PredicateId(1), Value::Entity(EntityId(o))),
                Provenance::new(ExtractorId(0), PageId(i), SiteId(0), PatternId::NONE),
                0.9,
            ));
        }
        let recal = ConfidenceRecalibration::learn(&batch, &gold, 1);
        let acc = recal.recalibrate(0, 0.9).unwrap();
        assert!((acc - 0.8).abs() < 1e-12);
        // Unseen band → None.
        assert_eq!(recal.recalibrate(0, 0.1), None);
    }

    #[test]
    fn confidence_reweight_shrinks_toward_recalibrated_confidence() {
        use kf_types::{Extraction, ExtractorId, PageId, PatternId, Provenance, SiteId};
        let mut gold = GoldStandard::new();
        gold.insert(
            DataItem::new(EntityId(0), PredicateId(1)),
            Value::Entity(EntityId(1)),
        );
        let mut batch = ExtractionBatch::new();
        let t = Triple::new(EntityId(0), PredicateId(1), Value::Entity(EntityId(1)));
        for i in 0..10 {
            batch.push(Extraction::with_confidence(
                t,
                Provenance::new(ExtractorId(0), PageId(i), SiteId(0), PatternId::NONE),
                0.95,
            ));
        }
        let recal = ConfidenceRecalibration::learn(&batch, &gold, 1);
        // Band accuracy = 1.0 (all true); triple fused at 0.5 → shifted up.
        let mut out = output(vec![ScoredTriple {
            triple: t,
            probability: Some(0.5),
            n_provenances: 10,
            n_extractors: 1,
            n_pages: 10,
            fallback: false,
        }]);
        confidence_reweight(&mut out, &batch, &recal, 0.4);
        let p = out.scored[0].probability.unwrap();
        assert!((p - (0.6 * 0.5 + 0.4 * 1.0)).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn reweight_beta_zero_is_identity() {
        let batch = ExtractionBatch::new();
        let recal = ConfidenceRecalibration::learn(&batch, &GoldStandard::new(), 1);
        let mut out = output(vec![scored(1, 1, Some(0.42))]);
        confidence_reweight(&mut out, &batch, &recal, 0.0);
        assert_eq!(out.scored[0].probability, Some(0.42));
    }
}
