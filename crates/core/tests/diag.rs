//! Temporary diagnostic (run with --nocapture) — prints band accuracies
//! and predicted fractions per configuration.

use kf_core::{Fuser, FusionConfig};
use kf_synth::{Corpus, SynthConfig};
use kf_types::Label;

#[test]
#[ignore]
fn diag_bands() {
    let c = Corpus::generate(&SynthConfig::small(), 42);
    println!(
        "corpus: {} records, {} unique, lcwa_acc {:.3}, world_acc {:.3}",
        c.batch.len(),
        c.batch.unique_triples(),
        c.lcwa_accuracy(),
        c.world_accuracy()
    );
    let configs: Vec<(&str, FusionConfig, bool)> = vec![
        ("VOTE", FusionConfig::vote(), false),
        ("ACCU", FusionConfig::accu(), false),
        ("POPACCU", FusionConfig::popaccu(), false),
        ("POPACCU+unsup", FusionConfig::popaccu_plus_unsup(), false),
        ("POPACCU+", FusionConfig::popaccu_plus(), true),
        (
            "POPACCU+gran-only",
            FusionConfig::popaccu()
                .with_granularity(kf_types::Granularity::ExtractorSitePredicatePattern),
            false,
        ),
        (
            "POPACCU+cov-only",
            FusionConfig {
                filter_by_coverage: true,
                ..FusionConfig::popaccu()
            },
            false,
        ),
        (
            "POPACCU+gold-only",
            FusionConfig {
                init: kf_core::InitAccuracy::FromGold { sample_rate: 1.0 },
                ..FusionConfig::popaccu()
            },
            true,
        ),
    ];
    for (name, cfg, with_gold) in configs {
        let out = Fuser::new(cfg).run(&c.batch, if with_gold { Some(&c.gold) } else { None });
        let mut bands = [(0usize, 0usize); 10];
        let (mut st, mut nt, mut sf, mut nf) = (0.0, 0usize, 0.0, 0usize);
        for s in &out.scored {
            let Some(p) = s.probability else { continue };
            let b = ((p * 10.0) as usize).min(9);
            match c.gold.label(&s.triple) {
                Label::True => {
                    bands[b].0 += 1;
                    bands[b].1 += 1;
                    st += p;
                    nt += 1;
                }
                Label::False => {
                    bands[b].1 += 1;
                    sf += p;
                    nf += 1;
                }
                Label::Unknown => {}
            }
        }
        let sep = st / nt.max(1) as f64 - sf / nf.max(1) as f64;
        print!(
            "{name:20} pred_frac {:.3} sep {sep:.3} rounds {} | bands ",
            out.predicted_fraction(),
            out.outcome.rounds()
        );
        for (i, (t, n)) in bands.iter().enumerate() {
            if *n >= 20 {
                print!("{}:{:.2}({}) ", i, *t as f64 / *n as f64, n);
            }
        }
        println!();
    }
}
