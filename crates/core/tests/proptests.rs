//! Property-based tests for the fusion methods: probabilistic invariants
//! that must hold for any candidate-set shape — and for the grouping
//! stage: single-pass, two-pass, chunked and unchunked builds must agree
//! exactly for any corpus shape.

use kf_core::methods::{accu, popaccu, vote};
use kf_core::Grouped;
use kf_mapreduce::MrConfig;
use kf_types::{
    EntityId, Extraction, ExtractorId, Granularity, PageId, PatternId, PredicateId, Provenance,
    SiteId, Triple, Value,
};
use proptest::prelude::*;

/// Arbitrary extraction batches spanning the corpus shapes that matter for
/// grouping: few/many items, value conflicts, shared and singleton
/// provenances, multi-site pages.
fn arb_batch() -> impl Strategy<Value = Vec<Extraction>> {
    prop::collection::vec((0u32..20, 0u32..4, 0u32..8, 0u16..5, 0u32..40), 0..250).prop_map(
        |tuples| {
            tuples
                .into_iter()
                .map(|(s, p, o, extractor, page)| {
                    Extraction::new(
                        Triple::new(EntityId(s), PredicateId(p), Value::Entity(EntityId(o))),
                        Provenance::new(
                            ExtractorId(extractor),
                            PageId(page),
                            SiteId(page / 8),
                            PatternId(extractor as u32 % 3),
                        ),
                    )
                })
                .collect()
        },
    )
}

/// Candidate sets: up to 8 values, each with up to 10 provenances whose
/// accuracies lie in (0, 1).
fn arb_cands() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.05f64..0.95, 1..10), 1..8)
}

proptest! {
    /// All methods produce probabilities in [0, 1] summing to ≤ 1.
    #[test]
    fn probabilities_are_valid(cands in arb_cands()) {
        let counts: Vec<usize> = cands.iter().map(Vec::len).collect();
        for probs in [
            vote(&counts),
            accu(&cands, 100.0),
            popaccu(&cands, &counts, 8),
        ] {
            prop_assert_eq!(probs.len(), cands.len());
            let mut sum = 0.0;
            for p in &probs {
                prop_assert!(p.is_finite());
                prop_assert!((0.0..=1.0 + 1e-9).contains(p), "p = {}", p);
                sum += p;
            }
            prop_assert!(sum <= 1.0 + 1e-6, "sum = {}", sum);
        }
    }

    /// Value order does not matter: permuting candidates permutes outputs.
    #[test]
    fn permutation_equivariance(cands in arb_cands()) {
        let counts: Vec<usize> = cands.iter().map(Vec::len).collect();
        let k = cands.len();
        // Rotate by one.
        let rot = |v: &Vec<Vec<f64>>| -> Vec<Vec<f64>> {
            (0..k).map(|i| v[(i + 1) % k].clone()).collect()
        };
        let rot_counts: Vec<usize> = (0..k).map(|i| counts[(i + 1) % k]).collect();

        let a = accu(&cands, 100.0);
        let b = accu(&rot(&cands), 100.0);
        for i in 0..k {
            prop_assert!((a[(i + 1) % k] - b[i]).abs() < 1e-9);
        }
        let pa = popaccu(&cands, &counts, 8);
        let pb = popaccu(&rot(&cands), &rot_counts, 8);
        for i in 0..k {
            prop_assert!((pa[(i + 1) % k] - pb[i]).abs() < 1e-9);
        }
    }

    /// Adding a provenance to a value does not decrease its probability
    /// (the monotonicity POPACCU is proved to have in [14]).
    #[test]
    fn support_monotonicity(cands in arb_cands(), extra in 0.2f64..0.9) {
        let counts: Vec<usize> = cands.iter().map(Vec::len).collect();
        let mut boosted = cands.clone();
        boosted[0].push(extra);
        let mut boosted_counts = counts.clone();
        boosted_counts[0] += 1;

        // Only sources better than chance add support.
        if extra > 0.5 {
            let a0 = accu(&cands, 100.0)[0];
            let a1 = accu(&boosted, 100.0)[0];
            prop_assert!(a1 >= a0 - 1e-9, "ACCU: {} -> {}", a0, a1);

            let p0 = popaccu(&cands, &counts, 8)[0];
            let p1 = popaccu(&boosted, &boosted_counts, 8)[0];
            prop_assert!(p1 >= p0 - 1e-6, "POPACCU: {} -> {}", p0, p1);
        }
    }

    /// Chunked and unchunked shuffles build identical `Grouped` output for
    /// any corpus shape, worker count and chunk quota — and both match the
    /// historical two-pass baseline.
    #[test]
    fn grouping_is_invariant_to_chunking_and_passes(
        batch in arb_batch(),
        workers in 1usize..7,
        chunk_records in 1usize..100,
    ) {
        let reference = Grouped::build(
            &batch,
            Granularity::ExtractorSitePredicatePattern,
            &MrConfig::sequential(),
        );
        let chunked = Grouped::build(
            &batch,
            Granularity::ExtractorSitePredicatePattern,
            &MrConfig::with_workers(workers).with_chunk_records(chunk_records),
        );
        prop_assert_eq!(&reference, &chunked);
        let two_pass = Grouped::build_two_pass(
            &batch,
            Granularity::ExtractorSitePredicatePattern,
            &MrConfig::with_workers(workers),
        );
        prop_assert_eq!(&reference, &two_pass);
    }

    /// The external shuffle — spilled run files, k-way merged, with the
    /// dedup combiner active — builds exactly the same `Grouped` as the
    /// fully in-memory path, for any corpus shape, worker count, chunk
    /// quota and spill threshold (order included: `Grouped` equality
    /// covers item order, value order and dense provenance ids).
    #[test]
    fn grouping_is_invariant_to_spilling(
        batch in arb_batch(),
        workers in 1usize..7,
        chunk_records in 1usize..100,
        spill_threshold in 1usize..200,
    ) {
        for granularity in [
            Granularity::ExtractorPage,
            Granularity::ExtractorSitePredicatePattern,
        ] {
            let reference = Grouped::build(&batch, granularity, &MrConfig::sequential());
            let spilled = Grouped::build(
                &batch,
                granularity,
                &MrConfig::with_workers(workers)
                    .with_chunk_records(chunk_records)
                    .with_spill_threshold(spill_threshold),
            );
            prop_assert_eq!(&reference, &spilled, "granularity {:?}", granularity);
        }
    }

    /// The chunked grouping peak respects the quota (grouping emits one
    /// record per extraction) while the unchunked peak is the whole batch.
    #[test]
    fn grouping_peak_is_bounded_by_quota(
        batch in arb_batch(),
        chunk_records in 1usize..64,
    ) {
        let (_, unchunked) = Grouped::build_with_stats(
            &batch,
            Granularity::ExtractorPage,
            &MrConfig::sequential(),
        );
        prop_assert_eq!(unchunked.peak_resident_records, batch.len() as u64);
        let (_, chunked) = Grouped::build_with_stats(
            &batch,
            Granularity::ExtractorPage,
            &MrConfig::sequential().with_chunk_records(chunk_records),
        );
        prop_assert!(
            chunked.peak_resident_records <= (chunk_records as u64).min(batch.len() as u64)
        );
    }

    /// VOTE probabilities always sum to exactly 1 over non-empty counts.
    #[test]
    fn vote_sums_to_one(counts in prop::collection::vec(1usize..50, 1..10)) {
        let probs = vote(&counts);
        let sum: f64 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    /// Raising a supporting source's accuracy never hurts the value it
    /// supports.
    #[test]
    fn accuracy_monotonicity(
        cands in arb_cands(),
        bump in 0.01f64..0.2,
    ) {
        let mut better = cands.clone();
        better[0][0] = (better[0][0] + bump).min(0.99);
        let counts: Vec<usize> = cands.iter().map(Vec::len).collect();

        let a0 = accu(&cands, 100.0)[0];
        let a1 = accu(&better, 100.0)[0];
        prop_assert!(a1 >= a0 - 1e-9);

        let p0 = popaccu(&cands, &counts, 12)[0];
        let p1 = popaccu(&better, &counts, 12)[0];
        prop_assert!(p1 >= p0 - 1e-6, "POPACCU: {} -> {}", p0, p1);
    }
}
