//! End-to-end fusion over a synthetic corpus: the fused probabilities must
//! carry real signal (high-probability triples much more accurate than the
//! raw extraction stream), and the refinement stack must behave as §4.3
//! describes.

use kf_core::{Fuser, FusionConfig, Method};
use kf_synth::{Corpus, SynthConfig};
use kf_types::Label;

fn corpus() -> Corpus {
    Corpus::generate(&SynthConfig::small(), 42)
}

/// LCWA accuracy of triples in a predicted-probability band.
fn band_accuracy(corpus: &Corpus, out: &kf_core::FusionOutput, lo: f64, hi: f64) -> Option<f64> {
    let mut t = 0usize;
    let mut n = 0usize;
    for s in &out.scored {
        let Some(p) = s.probability else { continue };
        if p < lo || p >= hi {
            continue;
        }
        match corpus.gold.label(&s.triple) {
            Label::True => {
                t += 1;
                n += 1;
            }
            Label::False => n += 1,
            Label::Unknown => {}
        }
    }
    (n >= 30).then(|| t as f64 / n as f64)
}

#[test]
fn fusing_a_loaded_checkpoint_equals_fusing_the_generated_corpus() {
    // The checkpoint-and-fan-out pipeline rests on this: a corpus loaded
    // from disk must drive fusion to *exactly* the probabilities the
    // freshly generated corpus produces — no regeneration required.
    let generated = Corpus::generate(&SynthConfig::tiny(), 42);
    let path = std::env::temp_dir().join(format!(
        "kf-core-fusion-checkpoint-{}.kfc",
        std::process::id()
    ));
    generated.save(&path).unwrap();
    let loaded = Corpus::load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(loaded, generated);

    for cfg in [FusionConfig::popaccu(), FusionConfig::popaccu_plus()] {
        let gold = matches!(cfg.init, kf_core::InitAccuracy::FromGold { .. });
        let out_gen = Fuser::new(cfg).run(&generated.batch, gold.then_some(&generated.gold));
        let out_load = Fuser::new(cfg).run(&loaded.batch, gold.then_some(&loaded.gold));
        assert_eq!(out_gen.scored.len(), out_load.scored.len());
        for (a, b) in out_gen.scored.iter().zip(&out_load.scored) {
            assert_eq!(a.triple, b.triple);
            assert_eq!(a.probability, b.probability, "triple {:?}", a.triple);
        }
        assert_eq!(out_gen.round_deltas, out_load.round_deltas);
        assert_eq!(out_gen.n_provenances, out_load.n_provenances);
    }
}

#[test]
fn all_methods_score_every_unique_triple() {
    let c = corpus();
    for cfg in [
        FusionConfig::vote(),
        FusionConfig::accu(),
        FusionConfig::popaccu(),
    ] {
        let out = Fuser::new(cfg).run(&c.batch, None);
        assert_eq!(out.scored.len(), c.batch.unique_triples());
        assert_eq!(out.predicted_fraction(), 1.0);
    }
}

#[test]
fn high_probability_triples_are_much_more_accurate() {
    // The paper's §3.2.2 use-case: triples the best system (POPACCU+) is
    // confident about can be "trusted and used directly" — their LCWA
    // accuracy must far exceed both the raw extraction stream and the
    // low-probability band.
    let c = corpus();
    let base = c.lcwa_accuracy();
    let out = Fuser::new(FusionConfig::popaccu_plus()).run(&c.batch, Some(&c.gold));
    let high = band_accuracy(&c, &out, 0.9, 1.01).expect("enough high-prob triples");
    let low = band_accuracy(&c, &out, 0.0, 0.1).expect("enough low-prob triples");
    assert!(
        high > base + 0.2,
        "high band {high} should far exceed base rate {base}"
    );
    assert!(high > low + 0.3, "high band {high} vs low band {low}");
}

#[test]
fn accu_and_popaccu_beat_vote_on_monotonicity() {
    // Spearman-style check: mean probability of true triples minus mean
    // probability of false triples — bigger is better separation.
    let c = corpus();
    let separation = |m: Method| {
        let out = Fuser::new(FusionConfig::popaccu().with_method(m)).run(&c.batch, None);
        let (mut st, mut nt, mut sf, mut nf) = (0.0, 0usize, 0.0, 0usize);
        for s in &out.scored {
            let Some(p) = s.probability else { continue };
            match c.gold.label(&s.triple) {
                Label::True => {
                    st += p;
                    nt += 1;
                }
                Label::False => {
                    sf += p;
                    nf += 1;
                }
                Label::Unknown => {}
            }
        }
        st / nt as f64 - sf / nf as f64
    };
    let v = separation(Method::Vote);
    let a = separation(Method::Accu);
    let p = separation(Method::PopAccu);
    assert!(a > v, "ACCU separation {a} should beat VOTE {v}");
    assert!(p > v, "POPACCU separation {p} should beat VOTE {v}");
}

#[test]
fn coverage_filter_costs_some_predictions() {
    let c = corpus();
    let plain = Fuser::new(FusionConfig::popaccu()).run(&c.batch, None);
    let filtered = Fuser::new(FusionConfig {
        filter_by_coverage: true,
        ..FusionConfig::popaccu()
    })
    .run(&c.batch, None);
    assert_eq!(plain.predicted_fraction(), 1.0);
    // Paper: the coverage filter loses ~8.2% of predictions.
    let f = filtered.predicted_fraction();
    assert!(f < 1.0, "filter should drop some predictions");
    assert!(f > 0.5, "filter dropped too much: {f}");
}

#[test]
fn finer_granularity_changes_provenance_count() {
    use kf_types::Granularity;
    let c = corpus();
    let page = Fuser::new(FusionConfig::popaccu()).run(&c.batch, None);
    let site = Fuser::new(FusionConfig::popaccu().with_granularity(Granularity::ExtractorSite))
        .run(&c.batch, None);
    let fine = Fuser::new(
        FusionConfig::popaccu().with_granularity(Granularity::ExtractorSitePredicatePattern),
    )
    .run(&c.batch, None);
    assert!(
        site.n_provenances < page.n_provenances,
        "site-level must merge provenances: {} vs {}",
        site.n_provenances,
        page.n_provenances
    );
    assert!(
        fine.n_provenances > site.n_provenances,
        "predicate+pattern split must refine: {} vs {}",
        fine.n_provenances,
        site.n_provenances
    );
}

#[test]
fn popaccu_plus_improves_over_popaccu() {
    // The refinement stack's value in the paper (Figs. 9–11) is at the
    // trusted end of the curve: among triples predicted with probability
    // ≥ 0.9, POPACCU+ is far more precise than basic POPACCU (whose top
    // band sits barely above 50% — the overconfidence the refinements
    // exist to fix).
    let c = corpus();
    let base = Fuser::new(FusionConfig::popaccu()).run(&c.batch, None);
    let plus = Fuser::new(FusionConfig::popaccu_plus()).run(&c.batch, Some(&c.gold));
    let acc_base = band_accuracy(&c, &base, 0.9, 1.01).expect("enough POPACCU high-prob triples");
    let acc_plus = band_accuracy(&c, &plus, 0.9, 1.01).expect("enough POPACCU+ high-prob triples");
    assert!(
        acc_plus > acc_base + 0.2,
        "POPACCU+ high-band accuracy {acc_plus} should far exceed POPACCU {acc_base}"
    );
}

#[test]
fn fusion_is_deterministic_across_runs_and_workers() {
    let c = Corpus::generate(&SynthConfig::tiny(), 9);
    let run = |workers| {
        Fuser::new(FusionConfig::popaccu_plus_unsup().with_workers(workers)).run(&c.batch, None)
    };
    let a = run(1);
    let b = run(8);
    assert_eq!(a.scored.len(), b.scored.len());
    for (x, y) in a.scored.iter().zip(&b.scored) {
        assert_eq!(x.triple, y.triple);
        match (x.probability, y.probability) {
            (Some(p), Some(q)) => assert!((p - q).abs() < 1e-12),
            (None, None) => {}
            other => panic!("mismatch {other:?}"),
        }
    }
}
