//! Building the Freebase-style gold standard from the world (§3.2.1).
//!
//! The gold KB is *trusted but incomplete*: it knows only a fraction of the
//! data items, may miss additional true values of non-functional items, may
//! store a more general hierarchy value than the (leaf) truth, and very
//! occasionally is outright wrong. All four imperfections are needed to
//! reproduce the paper's error analysis, where **half** of the sampled
//! "false positives" were LCWA artifacts rather than real mistakes.

use crate::config::GoldConfig;
use crate::world::World;
use kf_types::{GoldStandard, ValueHierarchy};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generate the gold standard for `world` under `cfg`, deterministically
/// from `seed`.
pub fn build_gold(world: &World, cfg: &GoldConfig, seed: u64) -> GoldStandard {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6a09_e667_f3bc_c909);
    let mut gold = GoldStandard::new();

    for &item in world.items() {
        if !rng.gen_bool(cfg.item_coverage) {
            continue;
        }
        let truths = world.truths(&item);
        debug_assert!(!truths.is_empty());

        // The occasional outright-wrong gold value (paper: 1/20 sampled FPs).
        if rng.gen_bool(cfg.wrong_value_rate) {
            gold.insert(item, world.noise_value(rng.gen()));
            continue;
        }

        // First truth is always covered; store a generalisation instead of
        // the leaf with probability (1 - leaf_only_rate). When the general
        // value is stored, a correctly extracted *leaf* gets labelled false
        // ("more specific value" artifact); when the leaf is stored, an
        // extracted parent gets labelled false ("more general value").
        let primary = truths[0];
        let recorded = match world.parent(primary) {
            Some(parent) if !rng.gen_bool(cfg.leaf_only_rate) => parent,
            _ => primary,
        };
        gold.insert(item, recorded);

        // Additional truths are covered only partially (the paper's "set of
        // actors in a movie is often incomplete in Freebase").
        for &extra in &truths[1..] {
            if rng.gen_bool(cfg.truth_coverage) {
                gold.insert(item, extra);
            }
        }
    }
    gold
}

/// Subsample a gold standard: keep each known data item with probability
/// `rate`. Used by the §4.3.3 experiment (Fig. 12) where only a portion of
/// the gold standard seeds the initial provenance accuracies.
pub fn sample_gold(gold: &GoldStandard, rate: f64, seed: u64) -> GoldStandard {
    if rate >= 1.0 {
        return gold.clone();
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xbb67_ae85_84ca_a73b);
    let mut out = GoldStandard::new();
    for (item, values) in gold.iter() {
        if rng.gen_bool(rate.max(0.0)) {
            for &v in values {
                out.insert(*item, v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthConfig;
    use kf_types::{Label, Triple};

    fn setup() -> (World, GoldStandard) {
        let cfg = SynthConfig::small();
        let world = World::generate(&cfg.world, 21);
        let gold = build_gold(&world, &cfg.gold, 21);
        (world, gold)
    }

    #[test]
    fn coverage_is_near_config() {
        let (world, gold) = setup();
        let frac = gold.n_items() as f64 / world.n_items() as f64;
        assert!((0.3..0.5).contains(&frac), "item coverage {frac}");
    }

    #[test]
    fn gold_is_deterministic() {
        let cfg = SynthConfig::tiny();
        let world = World::generate(&cfg.world, 3);
        let a = build_gold(&world, &cfg.gold, 3);
        let b = build_gold(&world, &cfg.gold, 3);
        assert_eq!(a.n_items(), b.n_items());
        assert_eq!(a.n_triples(), b.n_triples());
    }

    #[test]
    fn most_gold_values_are_world_true() {
        let (world, gold) = setup();
        let mut correct = 0usize;
        let mut total = 0usize;
        for (item, values) in gold.iter() {
            for &v in values {
                total += 1;
                if world.is_true_up_to_hierarchy(&Triple::new(item.subject, item.predicate, v)) {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.97, "gold accuracy vs world {acc}");
    }

    #[test]
    fn lcwa_can_mislabel_missing_truths() {
        let (world, gold) = setup();
        // Find a known item where the gold KB misses a true value.
        let mut found = false;
        for (item, values) in gold.iter() {
            for &t in world.truths(item) {
                if !values.contains(&t) {
                    let triple = Triple::new(item.subject, item.predicate, t);
                    if gold.label(&triple) == Label::False {
                        found = true;
                    }
                }
            }
            if found {
                break;
            }
        }
        assert!(found, "expected at least one LCWA artifact");
    }

    #[test]
    fn sample_gold_shrinks_items() {
        let (_, gold) = setup();
        let half = sample_gold(&gold, 0.5, 1);
        let frac = half.n_items() as f64 / gold.n_items() as f64;
        assert!((0.4..0.6).contains(&frac), "sample fraction {frac}");
        // Full-rate sampling is the identity.
        let full = sample_gold(&gold, 1.0, 1);
        assert_eq!(full.n_items(), gold.n_items());
        // Zero-rate sampling is empty.
        let none = sample_gold(&gold, 0.0, 1);
        assert_eq!(none.n_items(), 0);
    }

    #[test]
    fn sampled_items_keep_all_their_values() {
        let (_, gold) = setup();
        let half = sample_gold(&gold, 0.5, 2);
        for (item, values) in half.iter() {
            assert_eq!(gold.values(item).unwrap(), values);
        }
    }
}
