//! The ground-truth world model.
//!
//! The world is what the (simulated) web imperfectly describes: a catalog of
//! typed entities and predicates, the set of *true* facts for every data
//! item, a location-style value hierarchy (§5.4), a confusability map
//! between entities (the substrate for entity-linkage errors, §3.1.3), and
//! sibling predicates (the substrate for predicate-linkage errors, e.g.
//! book author vs. book editor).

use crate::config::WorldConfig;
use kf_types::{
    Catalog, DataItem, EntityId, FxHashMap, FxHashSet, KvCodec, Numeric, PredicateId,
    PredicateInfo, Triple, TypeId, Value, ValueHierarchy, ValueKind,
};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Poisson};

/// The ground truth: entities, predicates, true facts, hierarchy,
/// confusables. Everything downstream (web pages, extractors, gold KB,
/// error analysis) derives from this.
#[derive(Debug, Clone, PartialEq)]
pub struct World {
    /// Schema catalog (types, predicates, entities, strings).
    pub catalog: Catalog,
    /// True values for every data item that exists in the world.
    facts: FxHashMap<DataItem, Vec<Value>>,
    /// Data items in insertion order (deterministic iteration).
    items: Vec<DataItem>,
    /// Child → parent edges of the value hierarchy.
    hierarchy: FxHashMap<Value, Value>,
    /// Interior hierarchy nodes (values that are some value's parent) —
    /// the ontology side of the error-taxonomy join: a reported interior
    /// value is the signature of a wrong-but-general extraction.
    hierarchy_interior: FxHashSet<Value>,
    /// Entity → confusable entity (same-name / similar-name pairs).
    confusables: FxHashMap<EntityId, EntityId>,
    /// Predicate → sibling predicate of the same type (author ↔ editor).
    siblings: FxHashMap<PredicateId, PredicateId>,
    /// Entities that belong to the hierarchy (location-like), root-first.
    hierarchy_entities: Vec<EntityId>,
    /// Per-type entity lists.
    entities_by_type: Vec<Vec<EntityId>>,
    /// Pool of junk values used to materialise triple-identification errors
    /// (e.g. "taking part of the album name as the artist").
    noise_values: Vec<Value>,
}

impl World {
    /// Generate a world from `cfg`, deterministically from `seed`.
    pub fn generate(cfg: &WorldConfig, seed: u64) -> Self {
        Self::generate_with_confusable_ring(cfg, 2, seed)
    }

    /// [`World::generate`] with an inflated confusable surface: entities
    /// are grouped into rings of `ring` (≥ 2) within each type, each
    /// mapping to the next ring member. `ring = 2` is the honest world's
    /// symmetric pairing — byte-identical to [`World::generate`]. The
    /// hard-linkage scenario (`LinkageConfig::confusable_ring`) drives
    /// larger rings.
    pub fn generate_with_confusable_ring(cfg: &WorldConfig, ring: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut catalog = Catalog::new();

        // ---- Types -------------------------------------------------------
        let type_names = [
            "location",
            "organization",
            "business",
            "people/person",
            "film/film",
            "music/album",
            "book/book",
            "sports/team",
            "biology/species",
            "education/school",
            "tv/program",
            "geography/river",
            "award/award",
            "computer/software",
            "food/dish",
            "event/event",
        ];
        let n_types = cfg.n_types.max(2);
        let mut type_ids = Vec::with_capacity(n_types);
        for i in 0..n_types {
            let name = type_names
                .get(i)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("domain/type_{i}"));
            type_ids.push(catalog.add_type(name));
        }
        // Type 0 ("location") hosts the value hierarchy.
        let location_ty = type_ids[0];

        // ---- Hierarchy entities -------------------------------------------
        // A tree of locations: level 0 = continents ... level depth-1 = cities.
        let mut hierarchy = FxHashMap::default();
        let mut hierarchy_entities = Vec::new();
        let mut levels: Vec<Vec<EntityId>> = Vec::new();
        {
            let mut prev: Vec<EntityId> = Vec::new();
            for depth in 0..cfg.hierarchy_depth.max(1) {
                let width = if depth == 0 {
                    4
                } else {
                    (prev.len() * cfg.hierarchy_branching).min(2_000)
                };
                let mut level = Vec::with_capacity(width);
                for i in 0..width.max(1) {
                    let e = catalog.add_entity(&format!("loc_d{depth}_{i}"), location_ty);
                    hierarchy_entities.push(e);
                    if let Some(parent) = prev.get(i % prev.len().max(1)) {
                        if !prev.is_empty() {
                            hierarchy.insert(Value::Entity(e), Value::Entity(*parent));
                        }
                    }
                    level.push(e);
                }
                prev = level.clone();
                levels.push(level);
            }
        }

        // ---- Ordinary entities --------------------------------------------
        // Zipf-skewed type sizes: a few huge types (location, organization,
        // business per the paper), a long tail of small ones.
        let n_ordinary = cfg
            .n_entities
            .saturating_sub(hierarchy_entities.len())
            .max(n_types);
        let mut entities_by_type: Vec<Vec<EntityId>> = vec![Vec::new(); n_types];
        entities_by_type[0] = hierarchy_entities.clone();
        {
            // Weight type t by 1/(t+1)^1.1, skipping the location type.
            let weights: Vec<f64> = (0..n_types)
                .map(|t| 1.0 / (t as f64 + 1.0).powf(1.1))
                .collect();
            let total: f64 = weights[1..].iter().sum();
            for t in 1..n_types {
                let share = ((weights[t] / total) * n_ordinary as f64).ceil() as usize;
                for i in 0..share.max(2) {
                    let e = catalog.add_entity(&format!("ent_t{t}_{i}"), type_ids[t]);
                    entities_by_type[t].push(e);
                }
            }
        }

        // ---- Confusables ---------------------------------------------------
        // Pair up entities within a type: linkage errors map an entity to
        // its confusable partner ("Les Misérables the show" vs "the novel").
        // A ring of 2 is exactly the historical symmetric pairing (a → b,
        // b → a, lone trailing entity unpaired); larger rings chain the
        // confusions (a → b → c → a) for the hard-linkage scenario.
        let ring = ring.max(2);
        let mut confusables = FxHashMap::default();
        for ents in &entities_by_type {
            for group in ents.chunks(ring) {
                if group.len() < 2 {
                    continue;
                }
                for (i, &e) in group.iter().enumerate() {
                    confusables.insert(e, group[(i + 1) % group.len()]);
                }
            }
        }

        // ---- Predicates ----------------------------------------------------
        let n_predicates = cfg.n_predicates.max(4);
        let mut pred_ids = Vec::with_capacity(n_predicates);
        for i in 0..n_predicates {
            let domain = type_ids[i % n_types];
            let functional = rng.gen_bool(cfg.functional_fraction);
            // Object kind mix loosely follows the paper's 23M entities /
            // 80M strings / 1M numbers unique-object split, but entity
            // predicates matter most for linkage errors, so keep them common.
            let value_kind = match i % 5 {
                0 | 1 => ValueKind::Entity,
                2 | 3 => ValueKind::Str,
                _ => ValueKind::Num,
            };
            let is_hier = value_kind == ValueKind::Entity
                && rng.gen_bool(cfg.hierarchical_predicate_fraction);
            let name = if is_hier {
                format!("pred_{i}_place")
            } else {
                format!("pred_{i}")
            };
            pred_ids.push(catalog.add_predicate(PredicateInfo {
                name,
                domain,
                functional,
                value_kind,
            }));
        }

        // Sibling predicates: consecutive predicates of the same domain type.
        let mut siblings = FxHashMap::default();
        for window in pred_ids.windows(2) {
            if let [a, b] = window {
                if catalog.predicate(*a).domain == catalog.predicate(*b).domain {
                    siblings.insert(*a, *b);
                    siblings.insert(*b, *a);
                }
            }
        }
        // Fall back to pairing across domains for leftovers so every
        // predicate has a sibling (needed by the error model).
        for pair in pred_ids.chunks(2) {
            if let [a, b] = pair {
                siblings.entry(*a).or_insert(*b);
                siblings.entry(*b).or_insert(*a);
            }
        }

        // ---- Facts ---------------------------------------------------------
        let mut facts: FxHashMap<DataItem, Vec<Value>> = FxHashMap::default();
        let mut items = Vec::new();
        let leaf_level = levels.last().cloned().unwrap_or_default();
        let poisson_extra = Poisson::new((cfg.mean_truths_nonfunctional - 1.0).max(0.05))
            .expect("valid poisson mean");
        let mut str_counter = 0u64;

        // Group predicates by domain type for fast lookup.
        let mut preds_by_type: Vec<Vec<PredicateId>> = vec![Vec::new(); n_types];
        for &p in &pred_ids {
            preds_by_type[catalog.predicate(p).domain.index()].push(p);
        }

        for t in 0..n_types {
            for &e in &entities_by_type[t] {
                for &p in &preds_by_type[t] {
                    if !rng.gen_bool(cfg.item_density) {
                        continue;
                    }
                    let info = catalog.predicate(p);
                    let functional = info.functional;
                    let value_kind = info.value_kind;
                    let is_place = info.name.ends_with("_place");
                    let n_truths = if functional {
                        1
                    } else {
                        (1 + poisson_extra.sample(&mut rng) as usize).min(cfg.max_truths)
                    };
                    let mut values = Vec::with_capacity(n_truths);
                    for _ in 0..n_truths {
                        let v = match value_kind {
                            ValueKind::Entity if is_place && !leaf_level.is_empty() => {
                                Value::Entity(*leaf_level.choose(&mut rng).unwrap())
                            }
                            ValueKind::Entity => {
                                // Object entity from a (deterministic) range type.
                                let range_t = (t + 1 + p.index()) % n_types;
                                let pool = &entities_by_type[range_t];
                                if pool.is_empty() {
                                    Value::Num(Numeric::from_i64(rng.gen_range(0..10_000)))
                                } else {
                                    Value::Entity(*pool.choose(&mut rng).unwrap())
                                }
                            }
                            ValueKind::Str => {
                                str_counter += 1;
                                Value::Str(catalog.strings.intern(&format!("strval_{str_counter}")))
                            }
                            ValueKind::Num => {
                                Value::Num(Numeric::from_i64(rng.gen_range(1800..2_100)))
                            }
                        };
                        if !values.contains(&v) {
                            values.push(v);
                        }
                    }
                    let item = DataItem::new(e, p);
                    items.push(item);
                    facts.insert(item, values);
                }
            }
        }

        // ---- Noise pool ----------------------------------------------------
        // Junk strings and numbers for triple-identification errors.
        let mut noise_values = Vec::with_capacity(2_048);
        for i in 0..1_536 {
            noise_values.push(Value::Str(catalog.strings.intern(&format!("noise_{i}"))));
        }
        for i in 0..512 {
            noise_values.push(Value::Num(Numeric::from_i64(100_000 + i)));
        }

        let hierarchy_interior: FxHashSet<Value> = hierarchy.values().copied().collect();

        World {
            catalog,
            facts,
            items,
            hierarchy,
            hierarchy_interior,
            confusables,
            siblings,
            hierarchy_entities,
            entities_by_type,
            noise_values,
        }
    }

    /// True values for a data item (empty slice for unknown items).
    pub fn truths(&self, item: &DataItem) -> &[Value] {
        self.facts.get(item).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Exact-match truth test.
    pub fn is_true(&self, triple: &Triple) -> bool {
        self.truths(&triple.data_item()).contains(&triple.object)
    }

    /// Truth test *up to hierarchy*: exact truth, or a generalisation /
    /// specialisation of a true value (the cases the paper's error analysis
    /// classifies as "correct but LCWA-false", Fig. 17).
    pub fn is_true_up_to_hierarchy(&self, triple: &Triple) -> bool {
        if self.is_true(triple) {
            return true;
        }
        self.truths(&triple.data_item())
            .iter()
            .any(|&t| self.related(t, triple.object))
    }

    /// All data items, in deterministic order.
    pub fn items(&self) -> &[DataItem] {
        &self.items
    }

    /// Number of data items.
    pub fn n_items(&self) -> usize {
        self.items.len()
    }

    /// The confusable partner of an entity, if any.
    pub fn confusable(&self, e: EntityId) -> Option<EntityId> {
        self.confusables.get(&e).copied()
    }

    /// Number of entities with a confusable partner (the size of the
    /// confusable surface; inflated by the hard-linkage scenario).
    pub fn n_confusables(&self) -> usize {
        self.confusables.len()
    }

    /// The sibling predicate, if any.
    pub fn sibling(&self, p: PredicateId) -> Option<PredicateId> {
        self.siblings.get(&p).copied()
    }

    /// Entities participating in the value hierarchy.
    pub fn hierarchy_entities(&self) -> &[EntityId] {
        &self.hierarchy_entities
    }

    /// Entities of a given type.
    pub fn entities_of_type(&self, t: TypeId) -> &[EntityId] {
        &self.entities_by_type[t.index()]
    }

    /// A deterministic junk value indexed by `salt` (triple-identification
    /// error substrate).
    pub fn noise_value(&self, salt: u64) -> Value {
        self.noise_values[(salt as usize) % self.noise_values.len()]
    }

    /// Whether a value belongs to the junk pool (used by the automated
    /// error taxonomy).
    pub fn is_noise(&self, v: Value) -> bool {
        self.noise_values.contains(&v)
    }

    /// Expected number of truths per item of each predicate, learned from
    /// the world — used by the functionality-learning extension (§5.3).
    pub fn predicate_truth_means(&self) -> FxHashMap<PredicateId, f64> {
        let mut sums: FxHashMap<PredicateId, (f64, f64)> = FxHashMap::default();
        for (item, values) in &self.facts {
            let e = sums.entry(item.predicate).or_insert((0.0, 0.0));
            e.0 += values.len() as f64;
            e.1 += 1.0;
        }
        sums.into_iter().map(|(p, (s, n))| (p, s / n)).collect()
    }
}

/// Everything in a [`World`] except the catalog, as one decodable unit —
/// the second of the two length-prefixed segments the world encodes as,
/// so a decoder can rebuild the catalog (string-interner heavy) and the
/// fact tables on separate threads.
struct WorldBody {
    facts: FxHashMap<DataItem, Vec<Value>>,
    items: Vec<DataItem>,
    hierarchy: FxHashMap<Value, Value>,
    hierarchy_interior: FxHashSet<Value>,
    confusables: FxHashMap<EntityId, EntityId>,
    siblings: FxHashMap<PredicateId, PredicateId>,
    hierarchy_entities: Vec<EntityId>,
    entities_by_type: Vec<Vec<EntityId>>,
    noise_values: Vec<Value>,
}

impl WorldBody {
    /// Decode one body from a whole segment, requiring exact consumption.
    fn decode_all(mut segment: &[u8]) -> Option<Self> {
        let body = Self::decode(&mut segment)?;
        segment.is_empty().then_some(body)
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let groups = kf_types::codec::decode_item_values_columns(input)?;
        let mut items = Vec::with_capacity(groups.len());
        let mut facts = FxHashMap::default();
        facts.reserve(groups.len());
        for (item, values) in groups {
            if facts.insert(item, values).is_some() {
                return None;
            }
            items.push(item);
        }
        let hierarchy: FxHashMap<Value, Value> = kf_types::codec::decode_map(input)?;
        let hierarchy_interior: FxHashSet<Value> = hierarchy.values().copied().collect();
        Some(WorldBody {
            facts,
            items,
            hierarchy,
            hierarchy_interior,
            confusables: kf_types::codec::decode_map(input)?,
            siblings: kf_types::codec::decode_map(input)?,
            hierarchy_entities: Vec::decode(input)?,
            entities_by_type: Vec::decode(input)?,
            noise_values: Vec::decode(input)?,
        })
    }
}

/// Checkpoint encoding: two length-prefixed segments — the catalog, then
/// everything else (`WorldBody`) — decoded on separate threads (corpus
/// loads race corpus regeneration in CI; see `crate::persist`). Facts
/// ride with [`World::items`] in insertion order (preserving
/// deterministic iteration exactly); the hierarchy / confusable / sibling
/// maps encode in sorted key order so the bytes are canonical; the
/// interior-node set is derived state, recomputed from the decoded
/// hierarchy rather than stored.
impl kf_types::KvCodec for World {
    fn encode(&self, out: &mut Vec<u8>) {
        kf_types::codec::encode_segment(&self.catalog, out);
        // Body segment, written in place (the body encoder reads `self`'s
        // fields directly; `WorldBody` exists for the decode side).
        let at = out.len();
        out.extend_from_slice(&[0u8; 8]);
        kf_types::codec::encode_item_values_columns(
            self.items.len(),
            self.items
                .iter()
                .map(|item| (*item, self.facts[item].as_slice())),
            out,
        );
        kf_types::codec::encode_map_sorted(&self.hierarchy, out);
        kf_types::codec::encode_map_sorted(&self.confusables, out);
        kf_types::codec::encode_map_sorted(&self.siblings, out);
        self.hierarchy_entities.encode(out);
        self.entities_by_type.encode(out);
        self.noise_values.encode(out);
        let len = (out.len() - at - 8) as u64;
        out[at..at + 8].copy_from_slice(&len.to_le_bytes());
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let catalog_seg = kf_types::codec::take_segment(input)?;
        let body_seg = kf_types::codec::take_segment(input)?;
        let parallel = std::thread::available_parallelism().map_or(1, |n| n.get()) > 1;
        let (catalog, body) = if parallel {
            std::thread::scope(|s| {
                let catalog =
                    s.spawn(|| kf_types::codec::decode_segment_all::<Catalog>(catalog_seg));
                let body = WorldBody::decode_all(body_seg);
                (catalog.join().expect("catalog decode does not panic"), body)
            })
        } else {
            (
                kf_types::codec::decode_segment_all::<Catalog>(catalog_seg),
                WorldBody::decode_all(body_seg),
            )
        };
        let (catalog, body) = (catalog?, body?);
        Some(World {
            catalog,
            facts: body.facts,
            items: body.items,
            hierarchy: body.hierarchy,
            hierarchy_interior: body.hierarchy_interior,
            confusables: body.confusables,
            siblings: body.siblings,
            hierarchy_entities: body.hierarchy_entities,
            entities_by_type: body.entities_by_type,
            noise_values: body.noise_values,
        })
    }
}

impl World {
    /// Atomically write this world as a headered checkpoint file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), kf_types::CheckpointError> {
        kf_types::checkpoint::save(path.as_ref(), kf_types::ArtifactKind::World, self)
    }

    /// Load a world checkpoint written by [`World::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<World, kf_types::CheckpointError> {
        kf_types::checkpoint::load(path.as_ref(), kf_types::ArtifactKind::World)
    }
}

impl ValueHierarchy for World {
    fn parent(&self, v: Value) -> Option<Value> {
        self.hierarchy.get(&v).copied()
    }

    fn is_interior(&self, v: Value) -> bool {
        self.hierarchy_interior.contains(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    fn world() -> World {
        World::generate(&WorldConfig::default(), 7)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(&WorldConfig::default(), 42);
        let b = World::generate(&WorldConfig::default(), 42);
        assert_eq!(a.n_items(), b.n_items());
        for item in a.items().iter().take(100) {
            assert_eq!(a.truths(item), b.truths(item));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::generate(&WorldConfig::default(), 1);
        let b = World::generate(&WorldConfig::default(), 2);
        // Same structure sizes but different fact values somewhere.
        let differs = a
            .items()
            .iter()
            .take(500)
            .any(|i| a.truths(i) != b.truths(i));
        assert!(differs);
    }

    #[test]
    fn functional_items_have_one_truth() {
        let w = world();
        for item in w.items() {
            if w.catalog.is_functional(item.predicate) {
                assert_eq!(w.truths(item).len(), 1);
            } else {
                assert!(!w.truths(item).is_empty());
            }
        }
    }

    #[test]
    fn functional_fraction_near_config() {
        let w = world();
        let frac = w.catalog.functional_predicate_fraction();
        assert!((0.1..0.5).contains(&frac), "fraction {frac} out of range");
    }

    #[test]
    fn hierarchy_has_roots_and_leaves() {
        let w = world();
        assert!(!w.hierarchy_entities().is_empty());
        let roots = w
            .hierarchy_entities()
            .iter()
            .filter(|&&e| w.parent(Value::Entity(e)).is_none())
            .count();
        let leaves = w
            .hierarchy_entities()
            .iter()
            .filter(|&&e| w.parent(Value::Entity(e)).is_some())
            .count();
        assert!(roots >= 1);
        assert!(leaves > roots);
    }

    #[test]
    fn interior_nodes_are_exactly_the_parents() {
        let w = world();
        let mut interiors = 0;
        for &e in w.hierarchy_entities() {
            let v = Value::Entity(e);
            // A node is interior iff it appears as some child's parent.
            let is_parent_of_something = w
                .hierarchy_entities()
                .iter()
                .any(|&c| w.parent(Value::Entity(c)) == Some(v));
            assert_eq!(w.is_interior(v), is_parent_of_something);
            interiors += w.is_interior(v) as usize;
        }
        assert!(interiors > 0, "no interior hierarchy nodes");
        // Non-hierarchy values are never interior.
        assert!(!w.is_interior(Value::Num(Numeric::from_i64(7))));
    }

    #[test]
    fn hierarchy_chains_terminate_at_roots() {
        let w = world();
        for &e in w.hierarchy_entities() {
            let d = w.depth(Value::Entity(e));
            assert!(d < 64, "cycle suspected at {e:?}");
        }
    }

    #[test]
    fn confusables_are_symmetric_and_distinct() {
        let w = world();
        let mut checked = 0;
        for (item, _) in w.facts.iter().take(1000) {
            if let Some(c) = w.confusable(item.subject) {
                assert_ne!(c, item.subject);
                assert_eq!(w.confusable(c), Some(item.subject));
                checked += 1;
            }
        }
        assert!(checked > 0, "no confusable pairs exercised");
    }

    #[test]
    fn every_predicate_has_a_sibling() {
        let w = world();
        let mut with_sibling = 0;
        for p in w.catalog.predicate_ids() {
            if let Some(s) = w.sibling(p) {
                assert_ne!(s, p);
                with_sibling += 1;
            }
        }
        // chunks(2) pairing can leave at most one predicate unpaired.
        assert!(with_sibling + 1 >= w.catalog.n_predicates());
    }

    #[test]
    fn truth_test_respects_hierarchy() {
        let w = world();
        // Find an item whose truth is a hierarchy leaf with a parent.
        let found = w.items().iter().find_map(|item| {
            w.truths(item)
                .iter()
                .find_map(|&v| w.parent(v).map(|parent| (*item, v, parent)))
        });
        if let Some((item, leaf, parent)) = found {
            let general = Triple::new(item.subject, item.predicate, parent);
            assert!(!w.is_true(&general));
            assert!(w.is_true_up_to_hierarchy(&general));
            let exact = Triple::new(item.subject, item.predicate, leaf);
            assert!(w.is_true(&exact));
        }
    }

    #[test]
    fn kvcodec_roundtrip_preserves_world_and_derived_state() {
        use kf_types::KvCodec;
        let w = World::generate(
            &WorldConfig {
                n_entities: 400,
                ..WorldConfig::default()
            },
            11,
        );
        let mut buf = Vec::new();
        w.encode(&mut buf);
        let mut input = &buf[..];
        let back = World::decode(&mut input).unwrap();
        assert!(input.is_empty());
        assert_eq!(back, w);
        // Derived state (interior set, catalog index) works after decode.
        let interior = w
            .hierarchy_entities()
            .iter()
            .find(|&&e| w.is_interior(Value::Entity(e)))
            .copied()
            .expect("world has interior nodes");
        assert!(back.is_interior(Value::Entity(interior)));
        // Items iterate in the identical deterministic order.
        assert_eq!(back.items(), w.items());
        // Encoding twice from independently generated same-seed worlds is
        // byte-identical (canonical encoding).
        let w2 = World::generate(
            &WorldConfig {
                n_entities: 400,
                ..WorldConfig::default()
            },
            11,
        );
        let mut buf2 = Vec::new();
        w2.encode(&mut buf2);
        assert_eq!(buf, buf2, "same-seed world encodings must be identical");
    }

    #[test]
    fn predicate_truth_means_cover_all_seen_predicates() {
        let w = world();
        let means = w.predicate_truth_means();
        for (&p, &m) in &means {
            assert!(m >= 1.0, "predicate {p} mean {m} below 1");
            if w.catalog.is_functional(p) {
                assert!((m - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn nonfunctional_items_sometimes_have_multiple_truths() {
        let w = world();
        let multi = w.items().iter().filter(|i| w.truths(i).len() > 1).count();
        assert!(multi > 0, "no multi-truth items generated");
        // But most items still have few truths (paper Fig. 20).
        let many = w.items().iter().filter(|i| w.truths(i).len() > 4).count();
        assert!((many as f64) < 0.1 * w.n_items() as f64);
    }
}
