//! Corpus statistics: the data behind Tables 1–3 and Fig. 3.

use crate::corpus::Corpus;
use kf_types::{DataItem, FxHashMap, FxHashSet, Label, SkewSummary, Triple, Value};

/// Table 1: corpus overview counts and skew summaries.
#[derive(Debug, Clone)]
pub struct OverviewStats {
    /// Total extraction records (the paper's 6.4B "extracted triples").
    pub n_records: usize,
    /// Unique triples (the paper's 1.6B).
    pub n_triples: usize,
    /// Unique subjects.
    pub n_subjects: usize,
    /// Unique predicates observed.
    pub n_predicates: usize,
    /// Unique object values.
    pub n_objects: usize,
    /// Unique data items.
    pub n_data_items: usize,
    /// Types observed (via subject entities).
    pub n_types: usize,
    /// Fraction of unique triples absent from the gold KB (paper: 83%).
    pub novel_fraction: f64,
    /// #Triples per type.
    pub triples_per_type: SkewSummary,
    /// #Triples per entity.
    pub triples_per_entity: SkewSummary,
    /// #Triples per predicate.
    pub triples_per_predicate: SkewSummary,
    /// #Triples per data item.
    pub triples_per_item: SkewSummary,
    /// #Predicates per entity.
    pub predicates_per_entity: SkewSummary,
}

/// Table 2 row: one extractor's footprint and quality.
#[derive(Debug, Clone)]
pub struct ExtractorStats {
    /// Extractor name.
    pub name: String,
    /// Unique triples extracted.
    pub n_triples: usize,
    /// Pages the extractor extracted from.
    pub n_pages: usize,
    /// Patterns observed (0 for pattern-free extractors).
    pub n_patterns: usize,
    /// LCWA accuracy over labelled unique triples.
    pub accuracy: f64,
    /// LCWA accuracy restricted to confidence ≥ 0.7 (None when the
    /// extractor provides no confidence).
    pub accuracy_high_conf: Option<f64>,
}

/// Table 3: functional vs non-functional breakdown.
#[derive(Debug, Clone, Copy)]
pub struct FunctionalityStats {
    /// Fraction of observed predicates that are functional.
    pub functional_predicates: f64,
    /// Fraction of data items with functional predicates.
    pub functional_items: f64,
    /// Fraction of unique triples with functional predicates.
    pub functional_triples: f64,
    /// LCWA accuracy of functional-predicate triples.
    pub functional_accuracy: f64,
    /// LCWA accuracy of non-functional-predicate triples.
    pub non_functional_accuracy: f64,
}

/// Fig. 3: unique-triple contribution per content type and pairwise
/// overlaps.
#[derive(Debug, Clone)]
pub struct ContentTypeStats {
    /// Unique triples per content type, indexed by [`ContentType::index`](crate::web::ContentType::index).
    pub per_type: [usize; 4],
    /// Pairwise overlap counts `overlap[i][j]` (i < j).
    pub overlap: [[usize; 4]; 4],
    /// Triples seen in ≥3 content types.
    pub triple_way_or_more: usize,
}

/// Compute Table 1 statistics.
pub fn overview(corpus: &Corpus) -> OverviewStats {
    let mut triples: FxHashSet<Triple> = FxHashSet::default();
    triples.reserve(corpus.batch.len() / 2);
    for e in corpus.batch.iter() {
        triples.insert(e.triple);
    }

    let mut subjects: FxHashSet<_> = FxHashSet::default();
    let mut predicates: FxHashSet<_> = FxHashSet::default();
    let mut objects: FxHashSet<Value> = FxHashSet::default();
    let mut items: FxHashSet<DataItem> = FxHashSet::default();
    let mut types: FxHashSet<_> = FxHashSet::default();

    let mut by_type: FxHashMap<u32, u64> = FxHashMap::default();
    let mut by_entity: FxHashMap<u32, u64> = FxHashMap::default();
    let mut by_predicate: FxHashMap<u32, u64> = FxHashMap::default();
    let mut by_item: FxHashMap<DataItem, u64> = FxHashMap::default();
    let mut preds_of_entity: FxHashMap<u32, FxHashSet<u32>> = FxHashMap::default();

    let mut novel = 0usize;
    for t in &triples {
        subjects.insert(t.subject);
        predicates.insert(t.predicate);
        objects.insert(t.object);
        items.insert(t.data_item());
        let ty = corpus.world.catalog.entity(t.subject).ty;
        types.insert(ty);
        *by_type.entry(ty.raw()).or_default() += 1;
        *by_entity.entry(t.subject.raw()).or_default() += 1;
        *by_predicate.entry(t.predicate.raw()).or_default() += 1;
        *by_item.entry(t.data_item()).or_default() += 1;
        preds_of_entity
            .entry(t.subject.raw())
            .or_default()
            .insert(t.predicate.raw());
        if corpus.gold.label(t) != Label::True {
            novel += 1;
        }
    }

    let counts = |m: &FxHashMap<u32, u64>| -> Vec<u64> { m.values().copied().collect() };
    let item_counts: Vec<u64> = by_item.values().copied().collect();
    let pred_counts: Vec<u64> = preds_of_entity.values().map(|s| s.len() as u64).collect();

    OverviewStats {
        n_records: corpus.batch.len(),
        n_triples: triples.len(),
        n_subjects: subjects.len(),
        n_predicates: predicates.len(),
        n_objects: objects.len(),
        n_data_items: items.len(),
        n_types: types.len(),
        novel_fraction: novel as f64 / triples.len().max(1) as f64,
        triples_per_type: SkewSummary::from_counts(&counts(&by_type)).expect("non-empty"),
        triples_per_entity: SkewSummary::from_counts(&counts(&by_entity)).expect("non-empty"),
        triples_per_predicate: SkewSummary::from_counts(&counts(&by_predicate)).expect("non-empty"),
        triples_per_item: SkewSummary::from_counts(&item_counts).expect("non-empty"),
        predicates_per_entity: SkewSummary::from_counts(&pred_counts).expect("non-empty"),
    }
}

/// Compute Table 2 statistics (one row per extractor).
pub fn extractor_table(corpus: &Corpus) -> Vec<ExtractorStats> {
    let n = corpus.extractors.len();
    let mut triples: Vec<FxHashSet<Triple>> = vec![FxHashSet::default(); n];
    let mut pages: Vec<FxHashSet<u32>> = vec![FxHashSet::default(); n];
    let mut patterns: Vec<FxHashSet<u32>> = vec![FxHashSet::default(); n];
    // Unique-triple high-confidence flag: max confidence over records.
    let mut conf: Vec<FxHashMap<Triple, f32>> = vec![FxHashMap::default(); n];

    for e in corpus.batch.iter() {
        let i = e.provenance.extractor.index();
        triples[i].insert(e.triple);
        pages[i].insert(e.provenance.page.raw());
        if !e.provenance.pattern.is_none() {
            patterns[i].insert(e.provenance.pattern.raw());
        }
        if let Some(c) = e.confidence {
            let slot = conf[i].entry(e.triple).or_insert(0.0);
            if c > *slot {
                *slot = c;
            }
        }
    }

    (0..n)
        .map(|i| {
            let labelled: Vec<(&Triple, bool)> = triples[i]
                .iter()
                .filter_map(|t| corpus.gold.label(t).as_bool().map(|b| (t, b)))
                .collect();
            let accuracy = if labelled.is_empty() {
                0.0
            } else {
                labelled.iter().filter(|(_, b)| *b).count() as f64 / labelled.len() as f64
            };
            let accuracy_high_conf = if conf[i].is_empty() {
                None
            } else {
                let high: Vec<bool> = labelled
                    .iter()
                    .filter(|(t, _)| conf[i].get(t).copied().unwrap_or(0.0) >= 0.7)
                    .map(|(_, b)| *b)
                    .collect();
                if high.is_empty() {
                    None
                } else {
                    Some(high.iter().filter(|b| **b).count() as f64 / high.len() as f64)
                }
            };
            ExtractorStats {
                name: corpus.extractors[i].name.clone(),
                n_triples: triples[i].len(),
                n_pages: pages[i].len(),
                n_patterns: patterns[i].len(),
                accuracy,
                accuracy_high_conf,
            }
        })
        .collect()
}

/// Compute Table 3 statistics.
pub fn functionality(corpus: &Corpus) -> FunctionalityStats {
    let mut triples: FxHashSet<Triple> = FxHashSet::default();
    for e in corpus.batch.iter() {
        triples.insert(e.triple);
    }
    let mut items: FxHashSet<DataItem> = FxHashSet::default();
    let mut predicates: FxHashSet<_> = FxHashSet::default();
    let mut func_triples = 0usize;
    let mut func_hits = (0usize, 0usize); // (correct, labelled)
    let mut nonfunc_hits = (0usize, 0usize);

    for t in &triples {
        let functional = corpus.world.catalog.is_functional(t.predicate);
        items.insert(t.data_item());
        predicates.insert(t.predicate);
        if functional {
            func_triples += 1;
        }
        if let Some(ok) = corpus.gold.label(t).as_bool() {
            let slot = if functional {
                &mut func_hits
            } else {
                &mut nonfunc_hits
            };
            slot.1 += 1;
            slot.0 += ok as usize;
        }
    }
    let func_items = items
        .iter()
        .filter(|i| corpus.world.catalog.is_functional(i.predicate))
        .count();
    let func_preds = predicates
        .iter()
        .filter(|&&p| corpus.world.catalog.is_functional(p))
        .count();

    let ratio = |n: usize, d: usize| if d == 0 { 0.0 } else { n as f64 / d as f64 };
    FunctionalityStats {
        functional_predicates: ratio(func_preds, predicates.len()),
        functional_items: ratio(func_items, items.len()),
        functional_triples: ratio(func_triples, triples.len()),
        functional_accuracy: ratio(func_hits.0, func_hits.1),
        non_functional_accuracy: ratio(nonfunc_hits.0, nonfunc_hits.1),
    }
}

/// Compute Fig. 3 statistics: per-content-type unique triples + overlaps.
pub fn content_type_stats(corpus: &Corpus) -> ContentTypeStats {
    // Bitmask of content types per unique triple.
    let mut masks: FxHashMap<Triple, u8> = FxHashMap::default();
    for (e, section) in corpus.batch.iter().zip(&corpus.sections) {
        *masks.entry(e.triple).or_default() |= 1 << section.index();
    }
    let mut per_type = [0usize; 4];
    let mut overlap = [[0usize; 4]; 4];
    let mut triple_way = 0usize;
    for (_t, mask) in masks {
        let present: Vec<usize> = (0..4).filter(|i| mask & (1 << i) != 0).collect();
        for &i in &present {
            per_type[i] += 1;
        }
        for (a, &i) in present.iter().enumerate() {
            for &j in &present[a + 1..] {
                overlap[i][j] += 1;
            }
        }
        if present.len() >= 3 {
            triple_way += 1;
        }
    }
    ContentTypeStats {
        per_type,
        overlap,
        triple_way_or_more: triple_way,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthConfig;
    use crate::web::ContentType;

    fn corpus() -> Corpus {
        Corpus::generate(&SynthConfig::small(), 23)
    }

    #[test]
    fn overview_counts_are_consistent() {
        let c = corpus();
        let s = overview(&c);
        assert_eq!(s.n_records, c.batch.len());
        assert_eq!(s.n_triples, c.batch.unique_triples());
        assert!(s.n_subjects <= s.n_triples);
        assert!(s.n_data_items <= s.n_triples);
        assert!(s.n_data_items >= s.n_subjects);
        assert!(s.n_types <= c.world.catalog.n_types());
    }

    #[test]
    fn skew_is_right_skewed_like_table1() {
        let c = corpus();
        let s = overview(&c);
        assert!(s.triples_per_entity.is_right_skewed());
        assert!(s.triples_per_item.is_right_skewed());
        // Median per data item is small (paper: 2).
        assert!(s.triples_per_item.median <= 6.0);
    }

    #[test]
    fn most_triples_are_novel() {
        // Paper: 83% of extracted triples are not in Freebase.
        let c = corpus();
        let s = overview(&c);
        assert!(
            s.novel_fraction > 0.6,
            "novel fraction {}",
            s.novel_fraction
        );
    }

    #[test]
    fn extractor_table_has_spread() {
        let c = corpus();
        let rows = extractor_table(&c);
        assert_eq!(rows.len(), 12);
        let accs: Vec<f64> = rows.iter().map(|r| r.accuracy).collect();
        let min = accs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = accs.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 0.25, "accuracy spread too narrow: {accs:?}");
        // Pattern-free extractors report 0 patterns; TXT1 reports many.
        let txt1 = &rows[0];
        assert!(txt1.n_patterns > 10);
        let tbl2 = &rows[10];
        assert_eq!(tbl2.n_patterns, 0);
        assert!(tbl2.accuracy_high_conf.is_none(), "TBL2 has no confidence");
    }

    #[test]
    fn high_confidence_usually_beats_overall_for_calibrated_extractors() {
        let c = corpus();
        let rows = extractor_table(&c);
        // TXT2 (index 1) is bimodal-calibrated: accuracy@conf≥.7 should
        // exceed overall accuracy, as in Table 2 (0.18 → 0.80).
        let txt2 = &rows[1];
        if let Some(hc) = txt2.accuracy_high_conf {
            assert!(
                hc > txt2.accuracy,
                "TXT2 high-conf {hc} <= overall {}",
                txt2.accuracy
            );
        }
    }

    #[test]
    fn functionality_matches_table3_shape() {
        let c = corpus();
        let f = functionality(&c);
        // Non-functional predicates dominate.
        assert!(f.functional_predicates < 0.5);
        assert!(f.functional_items < 0.5);
        assert!(f.functional_triples < 0.6);
        assert!((0.0..=1.0).contains(&f.functional_accuracy));
        assert!((0.0..=1.0).contains(&f.non_functional_accuracy));
    }

    #[test]
    fn content_types_follow_fig3() {
        let c = corpus();
        let s = content_type_stats(&c);
        let dom = s.per_type[ContentType::Dom.index()];
        let txt = s.per_type[ContentType::Txt.index()];
        let tbl = s.per_type[ContentType::Tbl.index()];
        assert!(dom > txt, "DOM {dom} <= TXT {txt}");
        assert!(txt > tbl, "TXT {txt} <= TBL {tbl}");
        // Overlaps are small relative to contributions.
        let dom_txt = s.overlap[ContentType::Txt.index()][ContentType::Dom.index()];
        assert!(dom_txt < dom / 2, "overlap too large: {dom_txt} vs {dom}");
    }
}
