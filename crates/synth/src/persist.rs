//! Corpus checkpointing: save a generated corpus once, fan out many
//! processes that load it.
//!
//! Every experiment in this workspace starts from a [`Corpus`]. Before
//! this module existed each process regenerated it from scratch, so
//! nothing could be sharded across processes and every CI gate paid the
//! full generation cost. [`Corpus::save`] writes the *entire* corpus —
//! world (with ontology), web, gold standard, extraction batch, section
//! and injected-outcome truth vectors, extractor specs and seed — as one
//! [`kf_types::checkpoint`] file (magic + format version +
//! [`ArtifactKind::Corpus`]), and [`Corpus::load`] restores it exactly:
//! `load(save(c)) == c`, including the derived joins the error taxonomy
//! scores against ([`Corpus::taxonomy_truth`],
//! [`Corpus::dominant_outcomes`]) — pinned by the proptests in
//! `tests/persist_proptests.rs`.
//!
//! The encoding is **canonical**: saving the same logical corpus from two
//! different processes yields byte-identical files (hash maps encode in
//! sorted key order). CI's determinism gate byte-diffs two same-seed
//! snapshots to keep it that way. Writes are atomic (temp file + rename),
//! so a killed process never leaves a truncated checkpoint that parses.

use crate::corpus::{Corpus, ScenarioTruth};
use crate::extractor::{ExtractionOutcome, ExtractorSpec};
use crate::web::{ContentType, Web};
use crate::world::World;
use kf_types::checkpoint::{self, ArtifactKind, CheckpointError};
use kf_types::{codec, ExtractionBatch, GoldStandard, KvCodec};
use std::path::Path;

/// The corpus encodes as six length-prefixed segments (world, web, gold,
/// batch, sections, outcomes) followed by the small extractor list, the
/// seed and the hostile-scenario ground truth (format version 4; empty
/// for honest corpora). Segments let [`Corpus::decode`] rebuild the expensive parts
/// on parallel threads — the reason checkpoint loads beat regeneration by
/// the ≥ 5× the `corpus/load` bench asserts — without changing the bytes:
/// encoding stays sequential, deterministic and canonical.
impl KvCodec for Corpus {
    fn encode(&self, out: &mut Vec<u8>) {
        let _enc = kf_telemetry::span("corpus_encode");
        let trace = kf_telemetry::current();
        let mut mark = out.len();
        let mut segment_done = |name: &'static str, out: &Vec<u8>| {
            if let Some(t) = &trace {
                t.add(name, (out.len() - mark) as u64);
            }
            mark = out.len();
        };
        codec::encode_segment(&self.world, out);
        segment_done("persist.enc.world_bytes", out);
        codec::encode_segment(&self.web, out);
        segment_done("persist.enc.web_bytes", out);
        codec::encode_segment(&self.gold, out);
        segment_done("persist.enc.gold_bytes", out);
        codec::encode_segment(&self.batch, out);
        segment_done("persist.enc.batch_bytes", out);
        // The parallel per-record vectors travel as one-byte index
        // columns, not element-wise enums.
        let sections: Vec<u8> = self.sections.iter().map(|s| s.index() as u8).collect();
        let outcomes: Vec<u8> = self.outcomes.iter().map(|o| o.index() as u8).collect();
        codec::encode_segment(&sections, out);
        segment_done("persist.enc.sections_bytes", out);
        codec::encode_segment(&outcomes, out);
        segment_done("persist.enc.outcomes_bytes", out);
        self.extractors.encode(out);
        self.seed.encode(out);
        self.scenario.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let _dec = kf_telemetry::span("corpus_decode");
        let world_seg = codec::take_segment(input)?;
        let web_seg = codec::take_segment(input)?;
        let gold_seg = codec::take_segment(input)?;
        let batch_seg = codec::take_segment(input)?;
        let sections_seg = codec::take_segment(input)?;
        let outcomes_seg = codec::take_segment(input)?;
        if let Some(t) = kf_telemetry::current() {
            t.add("persist.dec.world_bytes", world_seg.len() as u64);
            t.add("persist.dec.web_bytes", web_seg.len() as u64);
            t.add("persist.dec.gold_bytes", gold_seg.len() as u64);
            t.add("persist.dec.batch_bytes", batch_seg.len() as u64);
            t.add("persist.dec.sections_bytes", sections_seg.len() as u64);
            t.add("persist.dec.outcomes_bytes", outcomes_seg.len() as u64);
        }
        let extractors = Vec::<ExtractorSpec>::decode(input)?;
        let seed = u64::decode(input)?;
        let scenario = ScenarioTruth::decode(input)?;

        // A `Vec<u8>` encodes to the same bytes as a `u8` column, so the
        // tag vectors decode as one contiguous block each.
        let decode_sections = || -> Option<Vec<ContentType>> {
            let mut seg = sections_seg;
            let tags = codec::decode_column::<u8>(&mut seg)?;
            if !seg.is_empty() {
                return None;
            }
            tags.into_iter()
                .map(|tag| ContentType::ALL.get(tag as usize).copied())
                .collect()
        };
        let decode_outcomes = || -> Option<Vec<ExtractionOutcome>> {
            let mut seg = outcomes_seg;
            let tags = codec::decode_column::<u8>(&mut seg)?;
            if !seg.is_empty() {
                return None;
            }
            tags.into_iter()
                .map(|tag| ExtractionOutcome::ALL.get(tag as usize).copied())
                .collect()
        };
        // Fan the segment decodes out over threads when the host has the
        // cores for it; single-core hosts decode inline (the thread
        // round-trips would only add overhead). Output is identical.
        let parallel = std::thread::available_parallelism().map_or(1, |n| n.get()) > 1;
        let (world, web, gold, batch, sections, outcomes) = if parallel {
            std::thread::scope(|s| {
                let world = s.spawn(|| codec::decode_segment_all::<World>(world_seg));
                let web = s.spawn(|| codec::decode_segment_all::<Web>(web_seg));
                let gold = s.spawn(|| codec::decode_segment_all::<GoldStandard>(gold_seg));
                let batch = s.spawn(|| codec::decode_segment_all::<ExtractionBatch>(batch_seg));
                let sections = s.spawn(decode_sections);
                // The current thread takes a share too.
                let outcomes = decode_outcomes();
                fn join<T>(h: std::thread::ScopedJoinHandle<'_, T>) -> T {
                    h.join().expect("segment decode does not panic")
                }
                (
                    join(world),
                    join(web),
                    join(gold),
                    join(batch),
                    join(sections),
                    outcomes,
                )
            })
        } else {
            (
                codec::decode_segment_all::<World>(world_seg),
                codec::decode_segment_all::<Web>(web_seg),
                codec::decode_segment_all::<GoldStandard>(gold_seg),
                codec::decode_segment_all::<ExtractionBatch>(batch_seg),
                decode_sections(),
                decode_outcomes(),
            )
        };
        let corpus = Corpus {
            world: world?,
            web: web?,
            gold: gold?,
            batch: batch?,
            sections: sections?,
            outcomes: outcomes?,
            extractors,
            seed,
            scenario,
        };
        // The section/outcome vectors are parallel to the batch; a
        // checkpoint violating that would poison every consumer.
        if corpus.sections.len() != corpus.batch.len()
            || corpus.outcomes.len() != corpus.batch.len()
        {
            return None;
        }
        // Copied-record indices must address the batch, ascending.
        if !corpus
            .scenario
            .copied_records
            .windows(2)
            .all(|w| w[0] < w[1])
            || corpus
                .scenario
                .copied_records
                .last()
                .is_some_and(|&i| i as usize >= corpus.batch.len())
        {
            return None;
        }
        Some(corpus)
    }
}

/// Scenario ground truth travels field-ordered; the spam/drift vectors
/// are sorted at generation time, so the bytes stay canonical.
impl KvCodec for ScenarioTruth {
    fn encode(&self, out: &mut Vec<u8>) {
        self.copied_records.encode(out);
        self.spam.encode(out);
        self.spam_page_start.encode(out);
        self.drift.encode(out);
        self.drift_flip_page.encode(out);
        self.linkage_boosted.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(ScenarioTruth {
            copied_records: Vec::decode(input)?,
            spam: Vec::decode(input)?,
            spam_page_start: u32::decode(input)?,
            drift: Vec::decode(input)?,
            drift_flip_page: u32::decode(input)?,
            linkage_boosted: bool::decode(input)?,
        })
    }
}

impl Corpus {
    /// Atomically write this corpus as a headered checkpoint file.
    ///
    /// ```no_run
    /// use kf_synth::{Corpus, SynthConfig};
    ///
    /// let corpus = Corpus::generate(&SynthConfig::tiny(), 42);
    /// corpus.save("corpus.kfc")?;
    /// let again = Corpus::load("corpus.kfc")?;
    /// assert_eq!(again, corpus);
    /// # Ok::<(), kf_types::CheckpointError>(())
    /// ```
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let _save = kf_telemetry::span("corpus_save");
        checkpoint::save(path.as_ref(), ArtifactKind::Corpus, self)?;
        if let Ok(meta) = std::fs::metadata(path.as_ref()) {
            kf_telemetry::add("persist.bytes_written", meta.len());
        }
        Ok(())
    }

    /// Load a corpus checkpoint written by [`Corpus::save`].
    ///
    /// Fails with a typed [`CheckpointError`] on anything that is not a
    /// complete, current-version corpus checkpoint: wrong magic, format
    /// version skew, a different artifact kind, truncation, or trailing
    /// bytes.
    pub fn load(path: impl AsRef<Path>) -> Result<Corpus, CheckpointError> {
        let _load = kf_telemetry::span("corpus_load");
        let corpus = checkpoint::load(path.as_ref(), ArtifactKind::Corpus)?;
        if let Ok(meta) = std::fs::metadata(path.as_ref()) {
            kf_telemetry::add("persist.bytes_read", meta.len());
        }
        Ok(corpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthConfig;
    use kf_types::checkpoint::FORMAT_VERSION;
    use std::path::PathBuf;

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("kf-synth-persist-{}-{name}", std::process::id()))
    }

    #[test]
    fn save_load_roundtrips_the_whole_corpus() {
        let corpus = Corpus::generate(&SynthConfig::tiny(), 17);
        let path = tmp_path("roundtrip.kfc");
        corpus.save(&path).unwrap();
        let back = Corpus::load(&path).unwrap();
        assert_eq!(back, corpus);
        // The derived truth joins survive the roundtrip exactly.
        assert_eq!(back.dominant_outcomes(), corpus.dominant_outcomes());
        assert_eq!(back.taxonomy_truth(), corpus.taxonomy_truth());
        assert_eq!(back.lcwa_accuracy(), corpus.lcwa_accuracy());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn two_processes_worth_of_saves_are_byte_identical() {
        // Simulates the CI determinism gate in-process: two independent
        // generations from the same seed must encode identically.
        let a = Corpus::generate(&SynthConfig::tiny(), 5);
        let b = Corpus::generate(&SynthConfig::tiny(), 5);
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        a.encode(&mut ea);
        b.encode(&mut eb);
        assert_eq!(ea, eb, "same-seed corpus encodings must be identical");
    }

    #[test]
    fn truncated_checkpoints_never_parse() {
        let corpus = Corpus::generate(&SynthConfig::tiny(), 3);
        let path = tmp_path("truncate.kfc");
        corpus.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Sample truncation points across the file (every byte would be
        // slow at corpus size); always include the header boundary region.
        let cuts: Vec<usize> = (0..16)
            .chain((16..bytes.len()).step_by(bytes.len() / 64 + 1))
            .collect();
        for cut in cuts {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(Corpus::load(&path).is_err(), "cut at {cut} parsed");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_magic_and_version_skew_are_typed_errors() {
        let corpus = Corpus::generate(&SynthConfig::tiny(), 3);
        let path = tmp_path("magic.kfc");
        corpus.save(&path).unwrap();
        let good = std::fs::read(&path).unwrap();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        std::fs::write(&path, &bad_magic).unwrap();
        assert!(matches!(
            Corpus::load(&path),
            Err(CheckpointError::BadMagic)
        ));

        let mut skewed = good.clone();
        skewed[4..6].copy_from_slice(&(FORMAT_VERSION + 7).to_le_bytes());
        std::fs::write(&path, &skewed).unwrap();
        assert!(matches!(
            Corpus::load(&path),
            Err(CheckpointError::VersionSkew { found }) if found == FORMAT_VERSION + 7
        ));

        // A world checkpoint is not a corpus checkpoint.
        let world_path = tmp_path("world.kfc");
        corpus.world.save(&world_path).unwrap();
        assert!(matches!(
            Corpus::load(&world_path),
            Err(CheckpointError::WrongKind { .. })
        ));
        assert!(World::load(&world_path).is_ok());

        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&world_path).unwrap();
    }

    #[test]
    fn parallel_vector_length_mismatch_is_rejected() {
        let mut corpus = Corpus::generate(&SynthConfig::tiny(), 3);
        corpus.sections.pop();
        let mut buf = Vec::new();
        corpus.encode(&mut buf);
        assert_eq!(
            Corpus::decode(&mut &buf[..]),
            None,
            "desynced section vector must not decode"
        );
    }
}
