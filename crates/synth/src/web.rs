//! The simulated web: sites, pages, and the fact claims pages carry.
//!
//! A page is a bag of *claims* — `(data item, value)` statements placed in
//! one of the four content-type sections of §3.1.2 (TXT, DOM, TBL, ANO).
//! Claims are what the sources *say*; extraction noise is layered on top by
//! the extractor models. Source-level errors (a page asserting a wrong
//! value) are injected here, including "popular" wrong values shared across
//! pages to model copying / widespread misinformation (§5.2).

use crate::config::{ScenarioConfig, WebConfig};
use crate::world::World;
use kf_types::{hash, DataItem, EntityId, FxHashMap, PageId, SiteId, Value};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The four kinds of web content the paper extracts from (§3.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContentType {
    /// Free text (sentences, phrases).
    Txt,
    /// DOM trees (infoboxes, web lists, deep-web pages).
    Dom,
    /// Web tables with relational content.
    Tbl,
    /// Webmaster annotations (schema.org, microformats).
    Ano,
}

impl ContentType {
    /// All content types, in the paper's order.
    pub const ALL: [ContentType; 4] = [
        ContentType::Txt,
        ContentType::Dom,
        ContentType::Tbl,
        ContentType::Ano,
    ];

    /// Short label used in tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            ContentType::Txt => "TXT",
            ContentType::Dom => "DOM",
            ContentType::Tbl => "TBL",
            ContentType::Ano => "ANO",
        }
    }

    /// Dense index (0..4).
    pub fn index(self) -> usize {
        match self {
            ContentType::Txt => 0,
            ContentType::Dom => 1,
            ContentType::Tbl => 2,
            ContentType::Ano => 3,
        }
    }
}

/// One fact claim on a page.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Claim {
    /// The data item the claim is about.
    pub item: DataItem,
    /// The claimed value (possibly wrong at the source).
    pub value: Value,
    /// Which section of the page carries it.
    pub section: ContentType,
    /// Whether the source itself is wrong about this (before extraction).
    pub source_error: bool,
}

/// One web page.
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    /// Page id (== index into [`Web::pages`]).
    pub id: PageId,
    /// Site the page belongs to.
    pub site: SiteId,
    /// Claims carried by the page.
    pub claims: Vec<Claim>,
}

/// Site classes used to model extractor targeting (§3.1.3: TXT2–TXT4 run on
/// normal pages / newswire / Wikipedia respectively; DOM5 on Wikipedia).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SiteClass {
    /// The single high-quality encyclopedia site (site 0).
    Wikipedia,
    /// News sites (the next ~4% of site ids).
    Newswire,
    /// Everything else.
    General,
}

/// The simulated web corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct Web {
    /// All pages.
    pub pages: Vec<Page>,
    /// Number of sites.
    pub n_sites: usize,
    /// Per-data-item "popular false value" — the wrong value that copying
    /// sources agree on.
    popular_false: FxHashMap<DataItem, Value>,
}

impl Web {
    /// Site class of `site` under the generator's conventions.
    pub fn site_class(site: SiteId, n_sites: usize) -> SiteClass {
        if site.index() == 0 {
            SiteClass::Wikipedia
        } else if site.index() <= (n_sites / 25).max(1) {
            SiteClass::Newswire
        } else {
            SiteClass::General
        }
    }

    /// The shared popular false value for `item`, if one was minted.
    pub fn popular_false(&self, item: &DataItem) -> Option<Value> {
        self.popular_false.get(item).copied()
    }

    /// Total number of claims across all pages.
    pub fn n_claims(&self) -> usize {
        self.pages.iter().map(|p| p.claims.len()).sum()
    }

    /// Generate the web from the world, deterministically from `seed`.
    pub fn generate(world: &World, cfg: &WebConfig, seed: u64) -> Self {
        Self::generate_with_scenarios(world, cfg, &ScenarioConfig::default(), seed).0
    }

    /// [`Web::generate`] plus the hostile-corpus scenarios that live at
    /// the web layer — source spam and temporal drift — returning the
    /// injected ground truth alongside the web. With a default
    /// [`ScenarioConfig`] this takes exactly the honest generator's code
    /// paths (no extra rng draws) and the injection is empty.
    pub fn generate_with_scenarios(
        world: &World,
        cfg: &WebConfig,
        scenarios: &ScenarioConfig,
        seed: u64,
    ) -> (Self, WebInjection) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x2545_f491_4f6c_dd1d);

        // Temporal drift: a hash-chosen fraction of items flipped truth at
        // `position`; pages before the flip claim a deterministic stale
        // value. Selection and stale-value minting are hash-seeded so the
        // organic rng stream is untouched.
        let drift_active = scenarios.drift.fraction > 0.0;
        let drift_flip = (scenarios.drift.position.clamp(0.0, 1.0) * cfg.n_pages as f64) as u32;
        let mut drift_map: FxHashMap<DataItem, Value> = FxHashMap::default();
        let mut drift_sorted: Vec<(DataItem, Value)> = Vec::new();
        if drift_active {
            let fraction = scenarios.drift.fraction.clamp(0.0, 1.0);
            for &item in world.items() {
                let h = hash::hash_u64(item.encode() ^ seed ^ 0xd81f_7c0a_11ce_55aa);
                if ((h % 1_000_000) as f64) < fraction * 1e6 {
                    let mut irng = SmallRng::seed_from_u64(hash::hash_u64(
                        item.encode() ^ seed ^ 0x5707_a1b2_c3d4_e5f6,
                    ));
                    let stale = wrong_value(world, item, &mut irng);
                    drift_map.insert(item, stale);
                    drift_sorted.push((item, stale));
                }
            }
            drift_sorted.sort_unstable_by_key(|&(item, _)| item);
        }
        let mut drift_stale_claims = 0u64;

        // Per-entity item index for topical page generation.
        let mut items_by_entity: FxHashMap<EntityId, Vec<DataItem>> = FxHashMap::default();
        for &item in world.items() {
            items_by_entity.entry(item.subject).or_default().push(item);
        }
        let entities_with_items: Vec<EntityId> = {
            let mut es: Vec<EntityId> = items_by_entity.keys().copied().collect();
            es.sort_unstable();
            es
        };
        assert!(
            !entities_with_items.is_empty(),
            "world has no data items; check WorldConfig::item_density"
        );

        // Popular-entity sampling: approximate a Zipf law over the entity
        // list by index rank.
        let zipf_entity = |rng: &mut SmallRng| -> EntityId {
            let n = entities_with_items.len() as f64;
            let u: f64 = rng.gen_range(0.0..1.0);
            // Inverse-CDF of a power law on ranks [1, n].
            let rank = (n.powf(u) - 1.0).max(0.0) as usize;
            entities_with_items[rank.min(entities_with_items.len() - 1)]
        };

        // Mint popular false values for a fraction of items up front.
        let mut popular_false: FxHashMap<DataItem, Value> = FxHashMap::default();
        for &item in world.items() {
            if hash::hash_u64(item.encode() ^ seed) % 100 < 30 {
                let wrong = wrong_value(world, item, &mut rng);
                popular_false.insert(item, wrong);
            }
        }

        // Pareto-ish claims-per-page: half the pages carry a single claim,
        // the head carries hundreds (paper §3.1.2 statistics).
        let pareto_claims = |rng: &mut SmallRng| -> usize {
            let alpha = 1.15;
            let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
            // floor of a Pareto(α) variate: P(N = 1) ≈ 0.55, heavy tail.
            let n = u.powf(-1.0 / alpha).floor() as usize;
            n.clamp(1, cfg.max_claims_per_page)
        };

        let mut pages = Vec::with_capacity(cfg.n_pages);
        for pid in 0..cfg.n_pages {
            // Zipf site assignment: low site ids host many pages.
            let site = {
                let n = cfg.n_sites as f64;
                let u: f64 = rng.gen_range(0.0..1.0);
                let rank = (n.powf(u.powf(cfg.site_zipf_exponent)) - 1.0).max(0.0) as usize;
                SiteId::from_index(rank.min(cfg.n_sites - 1))
            };

            // Sections present on this page.
            let mut sections = Vec::with_capacity(4);
            for (ct, &w) in ContentType::ALL.iter().zip(&cfg.section_weights) {
                if rng.gen_bool(w) {
                    sections.push(*ct);
                }
            }
            if sections.is_empty() {
                sections.push(ContentType::Dom);
            }

            // Topic entity plus occasional off-topic claims.
            let topic = zipf_entity(&mut rng);
            let n_claims = pareto_claims(&mut rng);
            // Boost head pages (only) to roughly match mean_claims_per_page
            // while keeping the paper's "half the pages contribute a single
            // triple" tail intact.
            let n_claims = if n_claims > 1
                && rng.gen_bool((cfg.mean_claims_per_page / 14.0).clamp(0.05, 0.95))
            {
                n_claims.saturating_mul(2).clamp(1, cfg.max_claims_per_page)
            } else {
                n_claims
            };

            let mut claims = Vec::with_capacity(n_claims);
            for _ in 0..n_claims {
                let entity = if rng.gen_bool(0.7) {
                    topic
                } else {
                    zipf_entity(&mut rng)
                };
                let Some(items) = items_by_entity.get(&entity) else {
                    continue;
                };
                let item = *items.choose(&mut rng).expect("non-empty item list");
                let truths = world.truths(&item);
                debug_assert!(!truths.is_empty());

                // Temporal drift: before the flip, pages claim the stale
                // pre-flip value — a source error, since the world holds
                // the current truth.
                let stale = (!drift_map.is_empty() && (pid as u32) < drift_flip)
                    .then(|| drift_map.get(&item))
                    .flatten();
                let (value, source_error) = if let Some(&stale) = stale {
                    drift_stale_claims += 1;
                    (stale, true)
                } else {
                    // Source-level error injection.
                    let source_error = rng.gen_bool(cfg.source_error_rate);
                    let value = if source_error {
                        if rng.gen_bool(cfg.copied_error_rate) {
                            popular_false
                                .get(&item)
                                .copied()
                                .unwrap_or_else(|| wrong_value(world, item, &mut rng))
                        } else {
                            wrong_value(world, item, &mut rng)
                        }
                    } else {
                        *truths.choose(&mut rng).expect("non-empty truths")
                    };
                    (value, source_error)
                };

                let section = *sections.choose(&mut rng).expect("non-empty sections");
                claims.push(Claim {
                    item,
                    value,
                    section,
                    source_error,
                });
                // Small chance the same statement appears in a second
                // section (Fig. 3's small cross-type overlaps).
                if sections.len() > 1 && rng.gen_bool(0.04) {
                    let other = *sections.choose(&mut rng).expect("non-empty sections");
                    if other != section {
                        if stale.is_some() {
                            drift_stale_claims += 1;
                        }
                        claims.push(Claim {
                            item,
                            value,
                            section: other,
                            source_error,
                        });
                    }
                }
            }

            pages.push(Page {
                id: PageId::from_index(pid),
                site,
                claims,
            });
        }

        // Source spam: append low-quality pages on fresh (General-class)
        // sites, each pushing the same wrong voice per hash-chosen target
        // item. Target selection and wrong-value minting are deterministic
        // and independent of the organic rng stream.
        let mut n_sites = cfg.n_sites;
        let spam_page_start = pages.len() as u32;
        let mut spam_sorted: Vec<(DataItem, Value)> = Vec::new();
        if scenarios.spam.n_pages > 0 {
            let sp = &scenarios.spam;
            let mut ranked: Vec<(u64, DataItem)> = world
                .items()
                .iter()
                .map(|&item| {
                    (
                        hash::hash_u64(item.encode() ^ seed ^ 0x09a4_42dd_31f0_7b2c),
                        item,
                    )
                })
                .collect();
            ranked.sort_unstable();
            let n_items = sp.n_items.clamp(1, ranked.len());
            ranked.truncate(n_items);
            let mut srng = SmallRng::seed_from_u64(hash::hash_u64(seed ^ 0x6c62_272e_07bb_0142));
            let mut targets: Vec<(DataItem, Value)> = ranked
                .into_iter()
                .map(|(_, item)| {
                    let wrong = popular_false
                        .get(&item)
                        .copied()
                        .unwrap_or_else(|| wrong_value(world, item, &mut srng));
                    (item, wrong)
                })
                .collect();
            let claims_per_page = sp.claims_per_page.max(1);
            let spam_sites = sp.n_sites.max(1);
            for i in 0..sp.n_pages {
                let site = SiteId::from_index(cfg.n_sites + (i % spam_sites));
                let mut claims = Vec::with_capacity(claims_per_page);
                for j in 0..claims_per_page {
                    let (item, value) = targets[(i * claims_per_page + j) % targets.len()];
                    claims.push(Claim {
                        item,
                        value,
                        section: ContentType::Dom,
                        source_error: true,
                    });
                }
                pages.push(Page {
                    id: PageId::from_index(cfg.n_pages + i),
                    site,
                    claims,
                });
            }
            n_sites = cfg.n_sites + spam_sites;
            targets.sort_unstable_by_key(|&(item, _)| item);
            spam_sorted = targets;
            kf_telemetry::add("synth.scenario.spam_pages", sp.n_pages as u64);
            kf_telemetry::add(
                "synth.scenario.spam_claims",
                (sp.n_pages * claims_per_page) as u64,
            );
        }
        if drift_active {
            kf_telemetry::add("synth.scenario.drift_items", drift_sorted.len() as u64);
            kf_telemetry::add("synth.scenario.drift_stale_claims", drift_stale_claims);
        }

        let injection = WebInjection {
            spam: spam_sorted,
            spam_page_start,
            drift: drift_sorted,
            drift_flip_page: if drift_active { drift_flip } else { 0 },
        };
        (
            Web {
                pages,
                n_sites,
                popular_false,
            },
            injection,
        )
    }
}

/// Web-layer scenario ground truth, returned by
/// [`Web::generate_with_scenarios`] and folded into the corpus-level
/// `ScenarioTruth`. Empty (all-default) when no web scenario is active.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WebInjection {
    /// Spam targets: `(item, wrong value)` pushed by the spam pages,
    /// sorted by item.
    pub spam: Vec<(DataItem, Value)>,
    /// First spam page id; pages `spam_page_start..` are spam (only
    /// meaningful when `spam` is non-empty).
    pub spam_page_start: u32,
    /// Drifted items and their stale pre-flip values, sorted by item.
    pub drift: Vec<(DataItem, Value)>,
    /// Pages with id below this claimed the stale value (0 when drift is
    /// inactive).
    pub drift_flip_page: u32,
}

// ---- KvCodec impls (corpus checkpointing; see `crate::persist`) ----------

use kf_types::KvCodec;

/// Travels as the dense index into [`ContentType::ALL`].
impl KvCodec for ContentType {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.index() as u8);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        ContentType::ALL.get(u8::decode(input)? as usize).copied()
    }
}

impl KvCodec for Claim {
    fn encode(&self, out: &mut Vec<u8>) {
        KvCodec::encode(&self.item, out);
        KvCodec::encode(&self.value, out);
        self.section.encode(out);
        self.source_error.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(Claim {
            item: DataItem::decode(input)?,
            value: Value::decode(input)?,
            section: ContentType::decode(input)?,
            source_error: bool::decode(input)?,
        })
    }
}

impl KvCodec for Page {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.site.encode(out);
        self.claims.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(Page {
            id: PageId::decode(input)?,
            site: SiteId::decode(input)?,
            claims: Vec::decode(input)?,
        })
    }
}

/// Checkpoint encoding. Pages flatten into columns — page ids / sites /
/// claim counts, then one column per claim field — so decode is a bulk
/// scan instead of an element-wise walk over hundreds of thousands of
/// claims. The popular-false map encodes in sorted key order so the
/// bytes are canonical (see [`kf_types::codec::encode_map_sorted`]).
impl KvCodec for Web {
    fn encode(&self, out: &mut Vec<u8>) {
        use kf_types::codec::{encode_column, encode_map_sorted, encode_value_columns};
        let ids: Vec<u32> = self.pages.iter().map(|p| p.id.0).collect();
        let sites: Vec<u32> = self.pages.iter().map(|p| p.site.0).collect();
        let counts: Vec<u32> = self.pages.iter().map(|p| p.claims.len() as u32).collect();
        encode_column(&ids, out);
        encode_column(&sites, out);
        encode_column(&counts, out);
        let claims: Vec<&Claim> = self.pages.iter().flat_map(|p| &p.claims).collect();
        encode_column(
            &claims
                .iter()
                .map(|c| c.item.subject.0)
                .collect::<Vec<u32>>(),
            out,
        );
        encode_column(
            &claims
                .iter()
                .map(|c| c.item.predicate.0)
                .collect::<Vec<u32>>(),
            out,
        );
        encode_value_columns(&claims.iter().map(|c| c.value).collect::<Vec<Value>>(), out);
        encode_column(
            &claims
                .iter()
                .map(|c| c.section.index() as u8)
                .collect::<Vec<u8>>(),
            out,
        );
        encode_column(
            &claims
                .iter()
                .map(|c| c.source_error as u8)
                .collect::<Vec<u8>>(),
            out,
        );
        self.n_sites.encode(out);
        encode_map_sorted(&self.popular_false, out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        use kf_types::codec::{decode_column, decode_map, decode_value_columns};
        let ids: Vec<u32> = decode_column(input)?;
        let sites: Vec<u32> = decode_column(input)?;
        let counts: Vec<u32> = decode_column(input)?;
        let n_pages = ids.len();
        if sites.len() != n_pages || counts.len() != n_pages {
            return None;
        }
        let subjects: Vec<u32> = decode_column(input)?;
        let predicates: Vec<u32> = decode_column(input)?;
        let values = decode_value_columns(input)?;
        let sections: Vec<u8> = decode_column(input)?;
        let source_errors: Vec<u8> = decode_column(input)?;
        let n_claims = subjects.len();
        if [
            predicates.len(),
            values.len(),
            sections.len(),
            source_errors.len(),
        ]
        .iter()
        .any(|&l| l != n_claims)
        {
            return None;
        }

        let mut pages = Vec::with_capacity(n_pages);
        let mut at = 0usize;
        for i in 0..n_pages {
            let count = counts[i] as usize;
            let end = at.checked_add(count)?;
            if end > n_claims {
                return None;
            }
            let mut claims = Vec::with_capacity(count);
            for j in at..end {
                claims.push(Claim {
                    item: DataItem::new(
                        kf_types::EntityId(subjects[j]),
                        kf_types::PredicateId(predicates[j]),
                    ),
                    value: values[j],
                    section: *ContentType::ALL.get(sections[j] as usize)?,
                    source_error: match source_errors[j] {
                        0 => false,
                        1 => true,
                        _ => return None,
                    },
                });
            }
            at = end;
            pages.push(Page {
                id: PageId(ids[i]),
                site: SiteId(sites[i]),
                claims,
            });
        }
        if at != n_claims {
            return None;
        }
        Some(Web {
            pages,
            n_sites: usize::decode(input)?,
            popular_false: decode_map(input)?,
        })
    }
}

/// Mint a wrong value for `item`: a confusable entity, a perturbed number,
/// or a junk value, depending on the kind of the true value. Guaranteed not
/// to collide with any of the item's true values (multi-truth items could
/// otherwise be "wrong" onto another truth).
fn wrong_value(world: &World, item: DataItem, rng: &mut SmallRng) -> Value {
    let truths = world.truths(&item);
    for _ in 0..4 {
        let truth = truths[rng.gen_range(0..truths.len())];
        let candidate = match truth {
            Value::Entity(e) => match world.confusable(e) {
                Some(c) if rng.gen_bool(0.6) => Value::Entity(c),
                _ => world.noise_value(rng.gen::<u64>()),
            },
            Value::Num(n) => Value::Num(kf_types::Numeric(
                n.0 + rng.gen_range(1..=5i64) * 1000 * if rng.gen_bool(0.5) { 1 } else { -1 },
            )),
            Value::Str(_) => world.noise_value(rng.gen::<u64>()),
        };
        if !truths.contains(&candidate) {
            return candidate;
        }
    }
    // The junk pool is disjoint from all world facts by construction.
    world.noise_value(rng.gen::<u64>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SynthConfig, WebConfig};

    fn web() -> (World, Web) {
        let cfg = SynthConfig::small();
        let world = World::generate(&cfg.world, 3);
        let web = Web::generate(&world, &cfg.web, 3);
        (world, web)
    }

    #[test]
    fn page_count_matches_config() {
        let cfg = SynthConfig::small();
        let (_, web) = web();
        assert_eq!(web.pages.len(), cfg.web.n_pages);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::tiny();
        let world = World::generate(&cfg.world, 9);
        let a = Web::generate(&world, &cfg.web, 9);
        let b = Web::generate(&world, &cfg.web, 9);
        assert_eq!(a.n_claims(), b.n_claims());
        for (pa, pb) in a.pages.iter().zip(&b.pages) {
            assert_eq!(pa.claims, pb.claims);
            assert_eq!(pa.site, pb.site);
        }
    }

    #[test]
    fn claims_reference_world_items() {
        let (world, web) = web();
        for page in web.pages.iter().take(200) {
            for claim in &page.claims {
                assert!(
                    !world.truths(&claim.item).is_empty(),
                    "claim about unknown item"
                );
            }
        }
    }

    #[test]
    fn correct_claims_hold_true_values() {
        let (world, web) = web();
        for page in web.pages.iter().take(500) {
            for claim in &page.claims {
                let is_true = world.truths(&claim.item).contains(&claim.value);
                if claim.source_error {
                    assert!(!is_true, "source error flagged on a true value");
                } else {
                    assert!(is_true, "unflagged claim must be true");
                }
            }
        }
    }

    #[test]
    fn source_error_rate_is_low() {
        let (_, web) = web();
        let total: usize = web.n_claims();
        let errors: usize = web
            .pages
            .iter()
            .flat_map(|p| &p.claims)
            .filter(|c| c.source_error)
            .count();
        let rate = errors as f64 / total as f64;
        assert!(rate > 0.005 && rate < 0.10, "source error rate {rate}");
    }

    #[test]
    fn dom_dominates_sections() {
        let (_, web) = web();
        let mut counts = [0usize; 4];
        for page in &web.pages {
            for claim in &page.claims {
                counts[claim.section.index()] += 1;
            }
        }
        let dom = counts[ContentType::Dom.index()];
        assert!(dom > counts[ContentType::Txt.index()]);
        assert!(dom > counts[ContentType::Tbl.index()]);
        assert!(dom > counts[ContentType::Ano.index()]);
        // TBL is the smallest contributor, as in Fig. 3.
        assert!(counts[ContentType::Tbl.index()] < counts[ContentType::Txt.index()]);
    }

    #[test]
    fn site_distribution_is_skewed() {
        let (_, web) = web();
        let mut per_site: FxHashMap<SiteId, usize> = FxHashMap::default();
        for page in &web.pages {
            *per_site.entry(page.site).or_default() += 1;
        }
        let max = per_site.values().copied().max().unwrap();
        let mean = web.pages.len() as f64 / per_site.len() as f64;
        assert!(
            max as f64 > 3.0 * mean,
            "no head sites: max={max} mean={mean}"
        );
    }

    #[test]
    fn claims_per_page_is_skewed_with_unit_floor() {
        let (_, web) = web();
        let singles = web.pages.iter().filter(|p| p.claims.len() <= 1).count();
        let frac = singles as f64 / web.pages.len() as f64;
        // Paper: half of the pages contribute a single triple.
        assert!(frac > 0.25 && frac < 0.8, "single-claim fraction {frac}");
        let max = web.pages.iter().map(|p| p.claims.len()).max().unwrap();
        assert!(max > 10, "no head pages, max={max}");
    }

    #[test]
    fn popular_false_values_are_wrong() {
        let (world, web) = web();
        let mut checked = 0;
        for (item, value) in web.popular_false.iter().take(500) {
            assert!(!world.truths(item).contains(value));
            checked += 1;
        }
        assert!(checked > 0);
    }

    #[test]
    fn site_classes_partition_sites() {
        let n = 100;
        assert_eq!(Web::site_class(SiteId(0), n), SiteClass::Wikipedia);
        assert_eq!(Web::site_class(SiteId(2), n), SiteClass::Newswire);
        assert_eq!(Web::site_class(SiteId(50), n), SiteClass::General);
    }

    #[test]
    fn zero_weight_sections_never_appear() {
        let cfg = SynthConfig::tiny();
        let world = World::generate(&cfg.world, 5);
        let web_cfg = WebConfig {
            section_weights: [0.0, 1.0, 0.0, 0.0],
            ..cfg.web
        };
        let web = Web::generate(&world, &web_cfg, 5);
        for page in &web.pages {
            for claim in &page.claims {
                assert_eq!(claim.section, ContentType::Dom);
            }
        }
    }
}
