//! The 12 simulated information extractors (§3.1.3, Table 2).
//!
//! Each extractor reads some content types on some class of sites, misses
//! claims (bounded recall), and corrupts a fraction of what it reads. The
//! corruption mix follows the paper's measured error breakdown (§3.2.1):
//! ~44% triple-identification errors, ~44% entity-linkage errors, ~20%
//! predicate-linkage errors, with only ~4% of false triples coming from the
//! sources themselves (injected upstream in `web.rs`).
//!
//! Two kinds of structure make the errors *realistically correlated* rather
//! than i.i.d. noise:
//!
//! 1. **Systematic pattern errors** — a (pattern, data item) cell can be
//!    deterministically "broken": the extractor then produces the *same*
//!    wrong triple from every page where the claim appears. These are the
//!    "common extraction errors by one or two extractors on a lot of
//!    Webpages" behind 40% of the paper's false positives and the accuracy
//!    cliffs of Figs. 6/7/18.
//! 2. **Shared linkage components** — extractors in the same linkage group
//!    resolve entities with the same (deterministic) confusable map, so
//!    when two of them err on the same entity they agree on the wrong
//!    answer (§3.1.3 "multiple extractors may use the same entity linkage
//!    tool").

use crate::web::{Claim, ContentType, SiteClass};
use crate::world::World;
use kf_types::{hash, ExtractorId, PatternId, SiteId, Triple, Value};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Relative mix of the three extraction error kinds (need not sum to 1;
/// normalised at use).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorProfile {
    /// Triple-identification errors: junk object values.
    pub triple_id: f64,
    /// Entity-linkage errors: confusable subject/object entities.
    pub entity_linkage: f64,
    /// Predicate-linkage errors: sibling predicates.
    pub predicate_linkage: f64,
}

impl ErrorProfile {
    /// The paper's measured mix (§3.2.1): 44 / 44 / 20.
    pub fn paper_mix() -> Self {
        ErrorProfile {
            triple_id: 0.44,
            entity_linkage: 0.44,
            predicate_linkage: 0.20,
        }
    }
}

/// How an extractor assigns confidence scores (Fig. 21 shows four shapes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ConfidenceModel {
    /// Correlated with correctness, centred away from the extremes
    /// (TXT1-style: mass around 0.4–0.7).
    Central,
    /// Correlated with correctness and sharply bimodal (DOM2-style: mass
    /// near 0 and 1).
    BimodalCalibrated,
    /// Bimodal but nearly uncorrelated with correctness (ANO-style: "the
    /// accuracy of the triples stays similar when the confidence
    /// increases").
    BimodalUninformative,
    /// Accuracy peaks at *medium* confidence (TBL1-style: "the peak of the
    /// accuracy occurs when the confidence is medium").
    PeakAtMiddle,
    /// No confidence provided (Table 2 "No conf.": DOM5, TBL2).
    None,
}

/// Which sites an extractor runs on (§3.1.3: TXT2–TXT4 share a framework
/// but run on normal pages / newswire / Wikipedia respectively; DOM5 runs
/// only on Wikipedia).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SiteFilter {
    /// All sites.
    All,
    /// Only the Wikipedia site.
    WikipediaOnly,
    /// Only newswire sites.
    NewswireOnly,
    /// Everything except Wikipedia ("normal Webpages").
    GeneralOnly,
}

impl SiteFilter {
    /// Does the filter admit a page from `class`?
    pub fn admits(self, class: SiteClass) -> bool {
        match self {
            SiteFilter::All => true,
            SiteFilter::WikipediaOnly => class == SiteClass::Wikipedia,
            SiteFilter::NewswireOnly => class == SiteClass::Newswire,
            SiteFilter::GeneralOnly => class == SiteClass::General,
        }
    }
}

/// Full specification of one simulated extractor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtractorSpec {
    /// Display name (TXT1 … ANO).
    pub name: String,
    /// Content types the extractor reads. DOM extractors also read TBL
    /// sections (web tables are DOM trees, §3.1.3).
    pub sections: Vec<ContentType>,
    /// Site targeting.
    pub site_filter: SiteFilter,
    /// Probability of processing an admitted page at all.
    pub page_coverage: f64,
    /// Probability of extracting a given claim from a processed page.
    pub recall: f64,
    /// Number of learned patterns (0 ⇒ no patterns, Table 2 "No pat.").
    pub n_patterns: u32,
    /// Base per-extraction corruption probability (before the per-pattern
    /// quality multiplier).
    pub base_error: f64,
    /// Spread of per-pattern quality: effective error is
    /// `base_error × m` with `m` log-uniform in `[1/spread, spread]`.
    /// §3.2.1: "in most cases the accuracy ranges from nearly 0 to nearly 1
    /// under the same extractor".
    pub pattern_spread: f64,
    /// Error-kind mix.
    pub profile: ErrorProfile,
    /// Probability that a (pattern, data item) cell is systematically
    /// broken.
    pub systematic_rate: f64,
    /// Probability of reporting a *more general* hierarchy value instead of
    /// the leaf (correct but LCWA-false; Fig. 17 "specific/general value").
    pub generalize_rate: f64,
    /// Confidence model.
    pub confidence: ConfidenceModel,
    /// Extractors sharing a linkage group make identical linkage mistakes.
    pub linkage_group: u8,
}

/// What happened to one claim as it passed through an extractor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractionOutcome {
    /// Faithfully extracted (the triple matches the page claim).
    Faithful,
    /// Corrupted by a random triple-identification error.
    TripleIdError,
    /// Corrupted by an entity-linkage error.
    EntityLinkageError,
    /// Corrupted by a predicate-linkage error.
    PredicateLinkageError,
    /// Systematic (pattern, item) breakage — same wrong triple everywhere.
    SystematicError,
    /// Reported a more general hierarchy value (still true in the world).
    Generalized,
}

impl ExtractionOutcome {
    /// All outcomes, in a stable order (used by per-outcome counters).
    pub const ALL: [ExtractionOutcome; 6] = [
        ExtractionOutcome::Faithful,
        ExtractionOutcome::TripleIdError,
        ExtractionOutcome::EntityLinkageError,
        ExtractionOutcome::PredicateLinkageError,
        ExtractionOutcome::SystematicError,
        ExtractionOutcome::Generalized,
    ];

    /// Dense index into [`ExtractionOutcome::ALL`].
    pub fn index(self) -> usize {
        ExtractionOutcome::ALL
            .iter()
            .position(|&o| o == self)
            .expect("outcome listed in ALL")
    }

    /// The Fig. 17 ground-truth category this generator outcome injects —
    /// the join target for scoring the heuristic classifiers of
    /// `kf-diagnose`. A *faithful* extraction that still ends up labelled
    /// false is, by construction, a gold-list (LCWA) artifact or an
    /// upstream source error — the paper folds both into the
    /// "not-a-real-extraction-error" half of Fig. 17.
    pub fn taxonomy_category(self) -> kf_types::ErrorCategory {
        use kf_types::ErrorCategory;
        match self {
            ExtractionOutcome::Faithful => ErrorCategory::LcwaArtifact,
            ExtractionOutcome::Generalized => ErrorCategory::WrongButGeneral,
            ExtractionOutcome::SystematicError => ErrorCategory::SystematicExtraction,
            ExtractionOutcome::TripleIdError
            | ExtractionOutcome::EntityLinkageError
            | ExtractionOutcome::PredicateLinkageError => ErrorCategory::LinkageError,
        }
    }
}

/// One simulated extraction produced by [`ExtractorSpec::extract`].
#[derive(Debug, Clone, Copy)]
pub struct SimulatedExtraction {
    /// The (possibly corrupted) triple.
    pub triple: Triple,
    /// Pattern used.
    pub pattern: PatternId,
    /// Confidence score, if the extractor provides one.
    pub confidence: Option<f32>,
    /// Ground-truth outcome of the extraction step.
    pub outcome: ExtractionOutcome,
}

impl ExtractorSpec {
    /// Deterministic pattern choice for a claim: patterns specialise by
    /// predicate and site, so a pattern's triples share failure modes.
    pub fn pattern_for(&self, id: ExtractorId, claim: &Claim, site: SiteId) -> PatternId {
        if self.n_patterns == 0 {
            return PatternId::NONE;
        }
        let h = hash::hash_u64(
            0x5eed_0000_0000_0000
                ^ ((id.raw() as u64) << 48)
                ^ (claim.item.predicate.raw() as u64) << 20
                ^ (site.raw() as u64),
        );
        PatternId((h % self.n_patterns as u64) as u32)
    }

    /// Per-pattern error multiplier, log-uniform in `[1/spread, spread]`,
    /// deterministic per (extractor, pattern).
    fn pattern_multiplier(&self, id: ExtractorId, pattern: PatternId) -> f64 {
        if self.pattern_spread <= 1.0 || pattern.is_none() {
            return 1.0;
        }
        let h = hash::hash_u64(((id.raw() as u64) << 32) ^ pattern.raw() as u64);
        let u = (h % 1_000_000) as f64 / 1_000_000.0; // [0, 1)
        let ln_s = self.pattern_spread.ln();
        ((2.0 * u - 1.0) * ln_s).exp()
    }

    /// Simulate this extractor reading one claim. Returns `None` when the
    /// claim is skipped (bounded recall). `rng` drives the *random* error
    /// component; systematic behaviour is hash-derived and independent of
    /// the rng.
    pub fn extract(
        &self,
        id: ExtractorId,
        world: &World,
        claim: &Claim,
        site: SiteId,
        rng: &mut SmallRng,
    ) -> Option<SimulatedExtraction> {
        if !self.sections.contains(&claim.section) {
            return None;
        }
        if !rng.gen_bool(self.recall) {
            return None;
        }

        let pattern = self.pattern_for(id, claim, site);
        let base_triple = Triple::new(claim.item.subject, claim.item.predicate, claim.value);

        // --- Systematic (pattern, item) breakage --------------------------
        let cell = hash::hash_u64(
            0xbad0_0000_0000_0000
                ^ ((id.raw() as u64) << 40)
                ^ ((pattern.raw() as u64) << 16).rotate_left(17)
                ^ claim.item.encode(),
        );
        let broken = (cell % 1_000_000) as f64 / 1_000_000.0 < self.systematic_rate;
        if broken {
            let triple = self.systematic_corruption(id, world, claim, cell);
            let correct = world.is_true(&triple);
            return Some(SimulatedExtraction {
                triple,
                pattern,
                confidence: self.confidence_for(correct, rng),
                outcome: ExtractionOutcome::SystematicError,
            });
        }

        // --- Hierarchy generalisation -------------------------------------
        if self.generalize_rate > 0.0 && rng.gen_bool(self.generalize_rate) {
            if let Some(parent) = kf_types::ValueHierarchy::parent(world, claim.value) {
                let triple = Triple::new(claim.item.subject, claim.item.predicate, parent);
                let correct = world.is_true(&triple);
                return Some(SimulatedExtraction {
                    triple,
                    pattern,
                    confidence: self.confidence_for(correct, rng),
                    outcome: ExtractionOutcome::Generalized,
                });
            }
        }

        // --- Random corruption ---------------------------------------------
        let err = (self.base_error * self.pattern_multiplier(id, pattern)).clamp(0.0, 0.95);
        if rng.gen_bool(err) {
            let (triple, outcome) = self.random_corruption(world, &base_triple, rng);
            let correct = world.is_true(&triple);
            return Some(SimulatedExtraction {
                triple,
                pattern,
                confidence: self.confidence_for(correct, rng),
                outcome,
            });
        }

        // --- Faithful extraction -------------------------------------------
        let correct = world.is_true(&base_triple);
        Some(SimulatedExtraction {
            triple: base_triple,
            pattern,
            confidence: self.confidence_for(correct, rng),
            outcome: ExtractionOutcome::Faithful,
        })
    }

    /// Deterministic corruption for a broken (pattern, item) cell: every
    /// page yields the same wrong triple.
    fn systematic_corruption(
        &self,
        _id: ExtractorId,
        world: &World,
        claim: &Claim,
        cell: u64,
    ) -> Triple {
        let p = self.profile;
        let total = p.triple_id + p.entity_linkage + p.predicate_linkage;
        let pick = ((cell >> 32) % 1_000) as f64 / 1_000.0 * total;
        let subject = claim.item.subject;
        let predicate = claim.item.predicate;
        if pick < p.triple_id {
            // Always the same junk value for this cell.
            Triple::new(subject, predicate, world.noise_value(cell))
        } else if pick < p.triple_id + p.entity_linkage {
            // Linkage component is shared: the confusable map is global.
            match claim.value {
                Value::Entity(e) => match world.confusable(e) {
                    Some(c) => Triple::new(subject, predicate, Value::Entity(c)),
                    None => Triple::new(subject, predicate, world.noise_value(cell)),
                },
                _ => match world.confusable(subject) {
                    Some(c) => Triple::new(c, predicate, claim.value),
                    None => Triple::new(subject, predicate, world.noise_value(cell)),
                },
            }
        } else {
            match world.sibling(predicate) {
                Some(s) => Triple::new(subject, s, claim.value),
                None => Triple::new(subject, predicate, world.noise_value(cell)),
            }
        }
    }

    /// Random per-extraction corruption following the error profile.
    fn random_corruption(
        &self,
        world: &World,
        base: &Triple,
        rng: &mut SmallRng,
    ) -> (Triple, ExtractionOutcome) {
        let p = self.profile;
        let total = p.triple_id + p.entity_linkage + p.predicate_linkage;
        let pick: f64 = rng.gen_range(0.0..total.max(1e-9));
        if pick < p.triple_id {
            (
                Triple::new(base.subject, base.predicate, world.noise_value(rng.gen())),
                ExtractionOutcome::TripleIdError,
            )
        } else if pick < p.triple_id + p.entity_linkage {
            // Object-side confusion when the object is an entity, otherwise
            // subject-side confusion (both occur in the paper's examples).
            let corrupted = match base.object {
                Value::Entity(e) => world
                    .confusable(e)
                    .map(|c| Triple::new(base.subject, base.predicate, Value::Entity(c))),
                _ => world
                    .confusable(base.subject)
                    .map(|c| Triple::new(c, base.predicate, base.object)),
            };
            match corrupted {
                Some(t) => (t, ExtractionOutcome::EntityLinkageError),
                None => (
                    Triple::new(base.subject, base.predicate, world.noise_value(rng.gen())),
                    ExtractionOutcome::TripleIdError,
                ),
            }
        } else {
            match world.sibling(base.predicate) {
                Some(s) => (
                    Triple::new(base.subject, s, base.object),
                    ExtractionOutcome::PredicateLinkageError,
                ),
                None => (
                    Triple::new(base.subject, base.predicate, world.noise_value(rng.gen())),
                    ExtractionOutcome::TripleIdError,
                ),
            }
        }
    }

    /// Sample a confidence score given the extraction's correctness.
    fn confidence_for(&self, correct: bool, rng: &mut SmallRng) -> Option<f32> {
        let clamp = |x: f64| x.clamp(0.01, 1.0) as f32;
        match self.confidence {
            ConfidenceModel::None => None,
            ConfidenceModel::Central => {
                let mu = if correct { 0.62 } else { 0.42 };
                Some(clamp(mu + rng.gen_range(-0.25..0.25)))
            }
            ConfidenceModel::BimodalCalibrated => {
                let high = if correct {
                    rng.gen_bool(0.85)
                } else {
                    rng.gen_bool(0.35)
                };
                let mu = if high { 0.93 } else { 0.08 };
                Some(clamp(mu + rng.gen_range(-0.08..0.08)))
            }
            ConfidenceModel::BimodalUninformative => {
                let high = rng.gen_bool(0.55);
                let mu = if high { 0.9 } else { 0.1 };
                Some(clamp(mu + rng.gen_range(-0.1..0.1)))
            }
            ConfidenceModel::PeakAtMiddle => {
                let mu = if correct {
                    0.5
                } else if rng.gen_bool(0.5) {
                    0.9
                } else {
                    0.15
                };
                Some(clamp(mu + rng.gen_range(-0.12..0.12)))
            }
        }
    }
}

// ---- KvCodec impls (corpus checkpointing; see `crate::persist`) ----------

use kf_types::KvCodec;

impl KvCodec for ErrorProfile {
    fn encode(&self, out: &mut Vec<u8>) {
        self.triple_id.encode(out);
        self.entity_linkage.encode(out);
        self.predicate_linkage.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(ErrorProfile {
            triple_id: f64::decode(input)?,
            entity_linkage: f64::decode(input)?,
            predicate_linkage: f64::decode(input)?,
        })
    }
}

impl KvCodec for ConfidenceModel {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            ConfidenceModel::Central => 0,
            ConfidenceModel::BimodalCalibrated => 1,
            ConfidenceModel::BimodalUninformative => 2,
            ConfidenceModel::PeakAtMiddle => 3,
            ConfidenceModel::None => 4,
        });
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(ConfidenceModel::Central),
            1 => Some(ConfidenceModel::BimodalCalibrated),
            2 => Some(ConfidenceModel::BimodalUninformative),
            3 => Some(ConfidenceModel::PeakAtMiddle),
            4 => Some(ConfidenceModel::None),
            _ => None,
        }
    }
}

impl KvCodec for SiteFilter {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            SiteFilter::All => 0,
            SiteFilter::WikipediaOnly => 1,
            SiteFilter::NewswireOnly => 2,
            SiteFilter::GeneralOnly => 3,
        });
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(SiteFilter::All),
            1 => Some(SiteFilter::WikipediaOnly),
            2 => Some(SiteFilter::NewswireOnly),
            3 => Some(SiteFilter::GeneralOnly),
            _ => None,
        }
    }
}

/// Travels as the dense index into [`ExtractionOutcome::ALL`].
impl KvCodec for ExtractionOutcome {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.index() as u8);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        ExtractionOutcome::ALL
            .get(u8::decode(input)? as usize)
            .copied()
    }
}

impl KvCodec for ExtractorSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.sections.encode(out);
        self.site_filter.encode(out);
        self.page_coverage.encode(out);
        self.recall.encode(out);
        self.n_patterns.encode(out);
        self.base_error.encode(out);
        self.pattern_spread.encode(out);
        self.profile.encode(out);
        self.systematic_rate.encode(out);
        self.generalize_rate.encode(out);
        self.confidence.encode(out);
        self.linkage_group.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(ExtractorSpec {
            name: String::decode(input)?,
            sections: Vec::decode(input)?,
            site_filter: SiteFilter::decode(input)?,
            page_coverage: f64::decode(input)?,
            recall: f64::decode(input)?,
            n_patterns: u32::decode(input)?,
            base_error: f64::decode(input)?,
            pattern_spread: f64::decode(input)?,
            profile: ErrorProfile::decode(input)?,
            systematic_rate: f64::decode(input)?,
            generalize_rate: f64::decode(input)?,
            confidence: ConfidenceModel::decode(input)?,
            linkage_group: u8::decode(input)?,
        })
    }
}

/// The 12 default extractors: 4 TXT, 5 DOM, 2 TBL, 1 ANO (Table 2), with
/// quality, coverage, patterns, confidence shapes and correlation structure
/// tuned to reproduce the table's spread (accuracy 0.09–0.78, high variance
/// across patterns, shared linkage components).
pub fn default_extractors() -> Vec<ExtractorSpec> {
    use ContentType::*;
    let mix = ErrorProfile::paper_mix();
    vec![
        // TXT1: own implementation, all pages, huge pattern set, mediocre
        // accuracy (0.36), central confidence.
        ExtractorSpec {
            name: "TXT1".into(),
            sections: vec![Txt],
            site_filter: SiteFilter::All,
            page_coverage: 0.85,
            recall: 0.75,
            n_patterns: 4_000,
            base_error: 0.52,
            pattern_spread: 3.0,
            profile: mix,
            systematic_rate: 0.020,
            generalize_rate: 0.05,
            confidence: ConfidenceModel::Central,
            linkage_group: 0,
        },
        // TXT2: shared framework, normal pages, low accuracy (0.18) but
        // high-confidence subset is good (0.80).
        ExtractorSpec {
            name: "TXT2".into(),
            sections: vec![Txt],
            site_filter: SiteFilter::GeneralOnly,
            page_coverage: 0.55,
            recall: 0.6,
            n_patterns: 3_000,
            base_error: 0.75,
            pattern_spread: 2.5,
            profile: mix,
            systematic_rate: 0.030,
            generalize_rate: 0.04,
            confidence: ConfidenceModel::BimodalCalibrated,
            linkage_group: 0,
        },
        // TXT3: same framework on newswire (0.25 / 0.81).
        ExtractorSpec {
            name: "TXT3".into(),
            sections: vec![Txt],
            site_filter: SiteFilter::NewswireOnly,
            page_coverage: 0.9,
            recall: 0.65,
            n_patterns: 1_200,
            base_error: 0.66,
            pattern_spread: 2.5,
            profile: mix,
            systematic_rate: 0.025,
            generalize_rate: 0.04,
            confidence: ConfidenceModel::BimodalCalibrated,
            linkage_group: 0,
        },
        // TXT4: same framework on Wikipedia — the most accurate extractor
        // (0.78 / 0.91).
        ExtractorSpec {
            name: "TXT4".into(),
            sections: vec![Txt],
            site_filter: SiteFilter::WikipediaOnly,
            page_coverage: 0.95,
            recall: 0.8,
            n_patterns: 120,
            base_error: 0.15,
            pattern_spread: 1.5,
            profile: mix,
            systematic_rate: 0.004,
            generalize_rate: 0.03,
            confidence: ConfidenceModel::BimodalCalibrated,
            linkage_group: 0,
        },
        // DOM1: all pages, biggest contributor, medium accuracy (0.43).
        ExtractorSpec {
            name: "DOM1".into(),
            sections: vec![Dom, Tbl],
            site_filter: SiteFilter::All,
            page_coverage: 0.9,
            recall: 0.85,
            n_patterns: 20_000,
            base_error: 0.44,
            pattern_spread: 3.0,
            profile: mix,
            systematic_rate: 0.018,
            generalize_rate: 0.05,
            confidence: ConfidenceModel::Central,
            linkage_group: 1,
        },
        // DOM2: all pages, different implementation, very low accuracy
        // (0.09) yet decent at high confidence (0.62); bimodal confidence.
        ExtractorSpec {
            name: "DOM2".into(),
            sections: vec![Dom, Tbl],
            site_filter: SiteFilter::All,
            page_coverage: 0.95,
            recall: 0.8,
            n_patterns: 0,
            base_error: 0.87,
            pattern_spread: 1.0,
            profile: mix,
            systematic_rate: 0.040,
            generalize_rate: 0.02,
            confidence: ConfidenceModel::BimodalCalibrated,
            linkage_group: 1,
        },
        // DOM3: entity-type focused, good quality (0.58 / 0.93).
        ExtractorSpec {
            name: "DOM3".into(),
            sections: vec![Dom],
            site_filter: SiteFilter::All,
            page_coverage: 0.35,
            recall: 0.55,
            n_patterns: 0,
            base_error: 0.30,
            pattern_spread: 1.0,
            profile: mix,
            systematic_rate: 0.008,
            generalize_rate: 0.03,
            confidence: ConfidenceModel::BimodalCalibrated,
            linkage_group: 1,
        },
        // DOM4: entity-type focused, poor (0.26 / 0.34).
        ExtractorSpec {
            name: "DOM4".into(),
            sections: vec![Dom],
            site_filter: SiteFilter::All,
            page_coverage: 0.4,
            recall: 0.6,
            n_patterns: 0,
            base_error: 0.68,
            pattern_spread: 1.0,
            profile: mix,
            systematic_rate: 0.035,
            generalize_rate: 0.03,
            confidence: ConfidenceModel::PeakAtMiddle,
            linkage_group: 2,
        },
        // DOM5: Wikipedia only, low accuracy (0.13), no confidence.
        ExtractorSpec {
            name: "DOM5".into(),
            sections: vec![Dom],
            site_filter: SiteFilter::WikipediaOnly,
            page_coverage: 0.85,
            recall: 0.5,
            n_patterns: 0,
            base_error: 0.80,
            pattern_spread: 1.0,
            profile: mix,
            systematic_rate: 0.050,
            generalize_rate: 0.02,
            confidence: ConfidenceModel::None,
            linkage_group: 2,
        },
        // TBL1: web tables, poor schema mapping (0.24), misleading
        // confidence (accuracy peaks at medium confidence).
        ExtractorSpec {
            name: "TBL1".into(),
            sections: vec![Tbl],
            site_filter: SiteFilter::All,
            page_coverage: 0.8,
            recall: 0.75,
            n_patterns: 0,
            base_error: 0.70,
            pattern_spread: 1.0,
            profile: ErrorProfile {
                // Schema-mapping failures are predicate-linkage heavy.
                triple_id: 0.30,
                entity_linkage: 0.25,
                predicate_linkage: 0.45,
            },
            systematic_rate: 0.045,
            generalize_rate: 0.02,
            confidence: ConfidenceModel::PeakAtMiddle,
            linkage_group: 2,
        },
        // TBL2: better schema mapping (0.69), no confidence.
        ExtractorSpec {
            name: "TBL2".into(),
            sections: vec![Tbl],
            site_filter: SiteFilter::All,
            page_coverage: 0.6,
            recall: 0.7,
            n_patterns: 0,
            base_error: 0.22,
            pattern_spread: 1.0,
            profile: ErrorProfile {
                triple_id: 0.30,
                entity_linkage: 0.25,
                predicate_linkage: 0.45,
            },
            systematic_rate: 0.010,
            generalize_rate: 0.02,
            confidence: ConfidenceModel::None,
            linkage_group: 3,
        },
        // ANO: schema.org annotations (0.28), bimodal confidence that is
        // nearly uninformative (Fig. 21).
        ExtractorSpec {
            name: "ANO".into(),
            sections: vec![Ano],
            site_filter: SiteFilter::All,
            page_coverage: 0.9,
            recall: 0.8,
            n_patterns: 0,
            base_error: 0.64,
            pattern_spread: 1.0,
            profile: mix,
            systematic_rate: 0.030,
            generalize_rate: 0.03,
            confidence: ConfidenceModel::BimodalUninformative,
            linkage_group: 0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthConfig;
    use crate::web::Web;
    use kf_types::DataItem;
    use rand::SeedableRng;

    fn setup() -> (World, Web, Vec<ExtractorSpec>) {
        let cfg = SynthConfig::tiny();
        let world = World::generate(&cfg.world, 11);
        let web = Web::generate(&world, &cfg.web, 11);
        (world, web, default_extractors())
    }

    fn first_claim(web: &Web) -> (Claim, SiteId) {
        let page = web
            .pages
            .iter()
            .find(|p| !p.claims.is_empty())
            .expect("a page with claims");
        (page.claims[0], page.site)
    }

    #[test]
    fn twelve_extractors_with_table2_names() {
        let specs = default_extractors();
        assert_eq!(specs.len(), 12);
        let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "TXT1", "TXT2", "TXT3", "TXT4", "DOM1", "DOM2", "DOM3", "DOM4", "DOM5", "TBL1",
                "TBL2", "ANO"
            ]
        );
    }

    #[test]
    fn section_mix_matches_table2() {
        let specs = default_extractors();
        let txt = specs
            .iter()
            .filter(|s| s.sections.contains(&ContentType::Txt))
            .count();
        let tbl_only = specs
            .iter()
            .filter(|s| s.sections == vec![ContentType::Tbl])
            .count();
        let ano = specs
            .iter()
            .filter(|s| s.sections.contains(&ContentType::Ano))
            .count();
        assert_eq!(txt, 4);
        assert_eq!(tbl_only, 2);
        assert_eq!(ano, 1);
    }

    #[test]
    fn extract_skips_unhandled_sections() {
        let (world, web, specs) = setup();
        let (mut claim, site) = first_claim(&web);
        claim.section = ContentType::Ano;
        let txt1 = &specs[0];
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(txt1
            .extract(ExtractorId(0), &world, &claim, site, &mut rng)
            .is_none());
    }

    #[test]
    fn pattern_assignment_is_deterministic_and_in_range() {
        let (_, web, specs) = setup();
        let (claim, site) = first_claim(&web);
        let spec = &specs[0];
        let a = spec.pattern_for(ExtractorId(0), &claim, site);
        let b = spec.pattern_for(ExtractorId(0), &claim, site);
        assert_eq!(a, b);
        assert!(a.raw() < spec.n_patterns);
        // Pattern-free extractor gets the sentinel.
        let tbl2 = &specs[10];
        assert!(tbl2.pattern_for(ExtractorId(10), &claim, site).is_none());
    }

    #[test]
    fn systematic_cells_always_produce_the_same_triple() {
        let (world, web, _) = setup();
        // Force a spec with systematic_rate 1.0 so every cell is broken.
        let spec = ExtractorSpec {
            systematic_rate: 1.0,
            recall: 1.0,
            ..default_extractors()[0].clone()
        };
        let (mut claim, site) = first_claim(&web);
        claim.section = ContentType::Txt;
        let mut outs = Vec::new();
        for seed in 0..10 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let out = spec
                .extract(ExtractorId(0), &world, &claim, site, &mut rng)
                .expect("recall 1.0 must extract");
            assert_eq!(out.outcome, ExtractionOutcome::SystematicError);
            outs.push(out.triple);
        }
        assert!(
            outs.windows(2).all(|w| w[0] == w[1]),
            "cell not deterministic"
        );
    }

    #[test]
    fn faithful_extractions_preserve_the_claim() {
        let (world, web, _) = setup();
        let spec = ExtractorSpec {
            base_error: 0.0,
            systematic_rate: 0.0,
            generalize_rate: 0.0,
            recall: 1.0,
            sections: ContentType::ALL.to_vec(),
            ..default_extractors()[0].clone()
        };
        let mut rng = SmallRng::seed_from_u64(5);
        for page in web.pages.iter().take(50) {
            for claim in &page.claims {
                let out = spec
                    .extract(ExtractorId(0), &world, claim, page.site, &mut rng)
                    .unwrap();
                assert_eq!(out.outcome, ExtractionOutcome::Faithful);
                assert_eq!(out.triple.object, claim.value);
                assert_eq!(out.triple.data_item(), claim.item);
            }
        }
    }

    #[test]
    fn corruption_changes_the_triple() {
        let (world, web, _) = setup();
        let spec = ExtractorSpec {
            base_error: 0.95, // clamped max
            systematic_rate: 0.0,
            generalize_rate: 0.0,
            recall: 1.0,
            sections: ContentType::ALL.to_vec(),
            pattern_spread: 1.0,
            ..default_extractors()[0].clone()
        };
        let mut rng = SmallRng::seed_from_u64(6);
        let mut corrupted = 0;
        let mut total = 0;
        for page in web.pages.iter().take(100) {
            for claim in &page.claims {
                let out = spec
                    .extract(ExtractorId(0), &world, claim, page.site, &mut rng)
                    .unwrap();
                total += 1;
                if out.outcome != ExtractionOutcome::Faithful {
                    corrupted += 1;
                    let base = Triple::new(claim.item.subject, claim.item.predicate, claim.value);
                    assert_ne!(out.triple, base, "corruption produced the original triple");
                }
            }
        }
        assert!(corrupted as f64 > 0.8 * total as f64);
    }

    #[test]
    fn predicate_linkage_errors_move_the_data_item() {
        let (world, web, _) = setup();
        let spec = ExtractorSpec {
            base_error: 0.95,
            systematic_rate: 0.0,
            generalize_rate: 0.0,
            recall: 1.0,
            sections: ContentType::ALL.to_vec(),
            pattern_spread: 1.0,
            profile: ErrorProfile {
                triple_id: 0.0,
                entity_linkage: 0.0,
                predicate_linkage: 1.0,
            },
            ..default_extractors()[0].clone()
        };
        let mut rng = SmallRng::seed_from_u64(7);
        let mut moved = 0;
        for page in web.pages.iter().take(100) {
            for claim in &page.claims {
                let out = spec
                    .extract(ExtractorId(0), &world, claim, page.site, &mut rng)
                    .unwrap();
                if out.outcome == ExtractionOutcome::PredicateLinkageError {
                    assert_eq!(
                        out.triple.predicate,
                        world.sibling(claim.item.predicate).unwrap()
                    );
                    moved += 1;
                }
            }
        }
        assert!(moved > 0);
    }

    #[test]
    fn confidence_models_produce_expected_support() {
        let (world, web, _) = setup();
        let base = default_extractors()[0].clone();
        let mut rng = SmallRng::seed_from_u64(8);
        let (claim, site) = first_claim(&web);
        let mut claim = claim;
        claim.section = ContentType::Txt;

        let with_model = |m, rng: &mut SmallRng| {
            let spec = ExtractorSpec {
                confidence: m,
                recall: 1.0,
                ..base.clone()
            };
            spec.extract(ExtractorId(0), &world, &claim, site, rng)
                .unwrap()
                .confidence
        };
        assert!(with_model(ConfidenceModel::None, &mut rng).is_none());
        for m in [
            ConfidenceModel::Central,
            ConfidenceModel::BimodalCalibrated,
            ConfidenceModel::BimodalUninformative,
            ConfidenceModel::PeakAtMiddle,
        ] {
            let c = with_model(m, &mut rng).expect("confidence expected");
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn site_filters_admit_expected_classes() {
        assert!(SiteFilter::All.admits(SiteClass::Wikipedia));
        assert!(SiteFilter::WikipediaOnly.admits(SiteClass::Wikipedia));
        assert!(!SiteFilter::WikipediaOnly.admits(SiteClass::General));
        assert!(SiteFilter::NewswireOnly.admits(SiteClass::Newswire));
        assert!(!SiteFilter::NewswireOnly.admits(SiteClass::Wikipedia));
        assert!(SiteFilter::GeneralOnly.admits(SiteClass::General));
        assert!(!SiteFilter::GeneralOnly.admits(SiteClass::Wikipedia));
    }

    #[test]
    fn pattern_multiplier_spreads_quality() {
        let spec = default_extractors()[0].clone();
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for p in 0..1000 {
            let m = spec.pattern_multiplier(ExtractorId(0), PatternId(p));
            lo = lo.min(m);
            hi = hi.max(m);
        }
        assert!(lo < 0.6, "low multiplier {lo}");
        assert!(hi > 1.8, "high multiplier {hi}");
    }

    #[test]
    fn generalization_walks_up_the_hierarchy() {
        let (world, _, _) = setup();
        // Build a claim whose value is a hierarchy leaf.
        let Some((item, leaf)) = world.items().iter().find_map(|item| {
            world
                .truths(item)
                .iter()
                .find_map(|&v| kf_types::ValueHierarchy::parent(&world, v).map(|_| (*item, v)))
        }) else {
            return; // no hierarchy-valued items in this tiny world
        };
        let claim = Claim {
            item,
            value: leaf,
            section: ContentType::Txt,
            source_error: false,
        };
        let spec = ExtractorSpec {
            generalize_rate: 1.0,
            systematic_rate: 0.0,
            recall: 1.0,
            ..default_extractors()[0].clone()
        };
        let mut rng = SmallRng::seed_from_u64(9);
        let out = spec
            .extract(ExtractorId(0), &world, &claim, SiteId(0), &mut rng)
            .unwrap();
        assert_eq!(out.outcome, ExtractionOutcome::Generalized);
        assert_eq!(
            Some(out.triple.object),
            kf_types::ValueHierarchy::parent(&world, leaf)
        );
    }

    #[test]
    fn item_is_unchanged_except_for_linkage_moves() {
        // Entity-linkage on the subject and predicate-linkage change the
        // data item; everything else keeps it.
        let (world, web, _) = setup();
        let spec = default_extractors()[4].clone(); // DOM1
        let mut rng = SmallRng::seed_from_u64(10);
        for page in web.pages.iter().take(200) {
            for claim in &page.claims {
                if let Some(out) = spec.extract(ExtractorId(4), &world, claim, page.site, &mut rng)
                {
                    match out.outcome {
                        ExtractionOutcome::Faithful | ExtractionOutcome::Generalized => {
                            assert_eq!(out.triple.data_item(), claim.item);
                        }
                        _ => {
                            // Data item may or may not move; both fine.
                            let _ = out.triple.data_item();
                        }
                    }
                }
            }
        }
        let _ = DataItem::new(kf_types::EntityId(0), kf_types::PredicateId(0));
    }
}
