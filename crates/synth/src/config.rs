//! Configuration for the synthetic corpus generator.
//!
//! The defaults are tuned so that the generated corpus reproduces, at
//! laptop scale, the statistical properties the paper's evaluation depends
//! on — see DESIGN.md "Substitutions" for the full mapping.

use serde::{Deserialize, Serialize};

/// World-model parameters: the ground truth the web imperfectly reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Number of entity types (paper: 1.1K; scaled down).
    pub n_types: usize,
    /// Number of predicates (paper: 4.5K; scaled down).
    pub n_predicates: usize,
    /// Number of entities (paper: 43M; scaled down).
    pub n_entities: usize,
    /// Fraction of predicates that are functional (Table 3: 28%).
    pub functional_fraction: f64,
    /// Zipf exponent for entity popularity (how often entities appear on
    /// pages; drives the heavy-head skew of Table 1).
    pub entity_zipf_exponent: f64,
    /// Mean number of true values for a non-functional data item (most have
    /// 1–2; §3.2.1).
    pub mean_truths_nonfunctional: f64,
    /// Maximum number of true values for a non-functional item.
    pub max_truths: usize,
    /// Depth of the location-style value hierarchy (§5.4's
    /// `North America → USA → CA → San Francisco` chain has depth 4–5).
    pub hierarchy_depth: usize,
    /// Branching factor of the value hierarchy.
    pub hierarchy_branching: usize,
    /// Fraction of entity-valued predicates whose objects come from the
    /// hierarchy (e.g. birth place, location).
    pub hierarchical_predicate_fraction: f64,
    /// Fraction of data items each entity actually has facts for.
    pub item_density: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            n_types: 12,
            n_predicates: 64,
            // Sparse-tail regime: most data items are claimed on one or two
            // pages, so a large share of unique triples are singletons —
            // the paper's reality (1.6B unique triples, most with tiny
            // support) and the precondition for its Fig. 9 ordering, where
            // VOTE's P = 1 singletons make it the worst-calibrated method.
            n_entities: 30_000,
            functional_fraction: 0.28,
            entity_zipf_exponent: 1.05,
            mean_truths_nonfunctional: 1.7,
            max_truths: 8,
            hierarchy_depth: 4,
            hierarchy_branching: 6,
            hierarchical_predicate_fraction: 0.15,
            item_density: 0.6,
        }
    }
}

/// Freebase-style gold-KB parameters (§3.2.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GoldConfig {
    /// Probability that a data item is known to the gold KB (paper: 40% of
    /// extracted triples have gold labels).
    pub item_coverage: f64,
    /// For known non-functional items, probability that each additional
    /// true value beyond the first is recorded. Missing values are the
    /// paper's main LCWA artifact (5 of 20 sampled "false positives" were
    /// actually correct values absent from Freebase).
    pub truth_coverage: f64,
    /// Probability that the gold KB stores an outright wrong value for an
    /// item (paper: 1 of 20 sampled FPs was a Freebase error).
    pub wrong_value_rate: f64,
    /// For hierarchy-valued items, probability the gold KB stores the
    /// *leaf* value only (so correct general values get labelled false).
    pub leaf_only_rate: f64,
}

impl Default for GoldConfig {
    fn default() -> Self {
        GoldConfig {
            item_coverage: 0.40,
            truth_coverage: 0.70,
            wrong_value_rate: 0.004,
            leaf_only_rate: 0.85,
        }
    }
}

/// Web-corpus parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WebConfig {
    /// Number of web sites.
    pub n_sites: usize,
    /// Number of web pages (paper: 1B+; scaled down).
    pub n_pages: usize,
    /// Zipf exponent for pages-per-site skew.
    pub site_zipf_exponent: f64,
    /// Mean number of fact claims per page (paper: half the pages
    /// contribute a single triple; the largest contribute 50K).
    pub mean_claims_per_page: f64,
    /// Maximum claims on a single page.
    pub max_claims_per_page: usize,
    /// Probability that a page claim is factually wrong *at the source*
    /// (the paper attributes only ~4% of errors to sources; most are
    /// extraction errors).
    pub source_error_rate: f64,
    /// Probability that a wrong source claim is drawn from the data item's
    /// shared "popular false value" instead of a fresh error — models
    /// copying / widespread misinformation between sources (§5.2).
    pub copied_error_rate: f64,
    /// Per-content-type weights for page sections, ordered
    /// `[TXT, DOM, TBL, ANO]`. A page can carry several sections; DOM
    /// dominates (Fig. 3: DOM 1280M, TXT 301M, ANO 145M, TBL 10M triples).
    pub section_weights: [f64; 4],
}

impl Default for WebConfig {
    fn default() -> Self {
        WebConfig {
            n_sites: 500,
            n_pages: 24_000,
            site_zipf_exponent: 1.2,
            mean_claims_per_page: 5.0,
            max_claims_per_page: 600,
            source_error_rate: 0.03,
            copied_error_rate: 0.5,
            section_weights: [0.55, 0.90, 0.06, 0.18],
        }
    }
}

/// Copying scenario: extractor pairs that replicate each other's output.
///
/// When `dependence > 0`, every odd-indexed extractor becomes a *copier*
/// of the extractor one index below it (TXT2 copies TXT1, DOM2 copies
/// DOM1, …). On each page both run on, the copier replicates each record
/// the source produced — triple, pattern, confidence, mistakes and all —
/// with probability `dependence`, instead of extracting the claim itself.
/// Copied records carry the copier's own provenance, so vote-counting
/// methods see them as independent corroboration (§5.2's copying
/// phenomenon — exactly what ACCU-family methods mis-model without copy
/// detection).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CopyingConfig {
    /// Probability that a copier replicates a source record instead of
    /// doing its own extraction. `0.0` disables the scenario.
    pub dependence: f64,
}

impl Default for CopyingConfig {
    fn default() -> Self {
        CopyingConfig { dependence: 0.0 }
    }
}

/// Source-spam scenario: many low-quality pages pushing one wrong voice.
///
/// `n_pages` spam pages are appended after the organic web, spread
/// round-robin over `n_sites` fresh (General-class) sites. Each page
/// carries `claims_per_page` DOM claims cycling through `n_items`
/// deterministically chosen target items; every claim about an item
/// asserts the *same* wrong value (the item's popular false value when
/// one was minted, a fresh wrong value otherwise), flagged as a source
/// error.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpamConfig {
    /// Number of spam pages to append. `0` disables the scenario.
    pub n_pages: usize,
    /// Number of target items the spam campaign pushes values for.
    pub n_items: usize,
    /// Claims per spam page.
    pub claims_per_page: usize,
    /// Number of fresh sites the spam pages spread across.
    pub n_sites: usize,
}

impl Default for SpamConfig {
    fn default() -> Self {
        SpamConfig {
            n_pages: 0,
            n_items: 50,
            claims_per_page: 4,
            n_sites: 8,
        }
    }
}

/// Temporal-drift scenario: truth flips mid-corpus.
///
/// A `fraction` of data items (chosen deterministically by hash) are
/// *drifted*: the world holds their current truth, but every page whose
/// id falls before `position × n_pages` claims a stale pre-flip value
/// instead (flagged as a source error — the page is out of date). Early
/// and late pages therefore disagree, and the stale claims are faithful
/// extractions of source-wrong content (Fig. 17's LCWA-artifact shape).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Fraction of data items whose truth flipped. `0.0` disables the
    /// scenario.
    pub fraction: f64,
    /// Position of the flip within the page stream (0.0–1.0): pages with
    /// id below `position × n_pages` claim the stale value.
    pub position: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            fraction: 0.0,
            position: 0.5,
        }
    }
}

/// Hard-linkage scenario: an inflated confusable-entity surface.
///
/// `confusable_ring` controls the size of the confusable groups built
/// into the world: the default 2 pairs entities up symmetrically; larger
/// rings give every entity a confusable partner and chain the mistakes
/// (a → b → c → a), multiplying the distinct wrong values linkage errors
/// can land on. `error_boost` additionally scales every extractor's
/// entity- and predicate-linkage error weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkageConfig {
    /// Confusable group size (≥ 2). The default 2 is the honest world's
    /// symmetric pairing.
    pub confusable_ring: usize,
    /// Multiplier on the extractors' linkage error-profile weights
    /// (`1.0` = unchanged).
    pub error_boost: f64,
}

impl Default for LinkageConfig {
    fn default() -> Self {
        LinkageConfig {
            confusable_ring: 2,
            error_boost: 1.0,
        }
    }
}

/// Hostile-corpus scenario knobs. All defaults are no-ops: a default
/// `ScenarioConfig` takes exactly the honest generator's code paths and
/// produces byte-identical corpora (pinned by the
/// `scenario_defaults_preserve_default_corpus` regression test).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Correlated (copying) extractors.
    pub copying: CopyingConfig,
    /// Source spam.
    pub spam: SpamConfig,
    /// Temporal drift.
    pub drift: DriftConfig,
    /// Hard linkage.
    pub linkage: LinkageConfig,
}

impl ScenarioConfig {
    /// True when any scenario is active (any knob off its no-op default).
    pub fn any_active(&self) -> bool {
        self.copying.dependence > 0.0
            || self.spam.n_pages > 0
            || self.drift.fraction > 0.0
            || self.linkage.confusable_ring > 2
            || self.linkage.error_boost > 1.0
    }
}

/// Top-level generator configuration.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SynthConfig {
    /// World-model parameters.
    pub world: WorldConfig,
    /// Gold-KB parameters.
    pub gold: GoldConfig,
    /// Web-corpus parameters.
    pub web: WebConfig,
    /// Hostile-corpus scenario knobs (all no-ops by default).
    pub scenarios: ScenarioConfig,
}

impl SynthConfig {
    /// Tiny corpus for unit tests (hundreds of extractions).
    pub fn tiny() -> Self {
        SynthConfig {
            world: WorldConfig {
                n_types: 4,
                n_predicates: 12,
                n_entities: 200,
                ..Default::default()
            },
            gold: GoldConfig::default(),
            web: WebConfig {
                n_sites: 20,
                n_pages: 300,
                mean_claims_per_page: 5.0,
                ..Default::default()
            },
            scenarios: ScenarioConfig::default(),
        }
    }

    /// Small corpus for integration tests and examples (~10⁵ extractions,
    /// generates in well under a second).
    pub fn small() -> Self {
        SynthConfig {
            world: WorldConfig {
                n_types: 8,
                n_predicates: 32,
                n_entities: 1_500,
                ..Default::default()
            },
            gold: GoldConfig::default(),
            web: WebConfig {
                n_sites: 120,
                n_pages: 5_000,
                ..Default::default()
            },
            scenarios: ScenarioConfig::default(),
        }
    }

    /// The default experiment scale used by the `repro` harness
    /// (~2.5×10⁵ extraction records).
    pub fn paper() -> Self {
        SynthConfig::default()
    }

    /// Large corpus for scaling benches.
    pub fn large() -> Self {
        SynthConfig {
            world: WorldConfig {
                n_types: 16,
                n_predicates: 96,
                n_entities: 80_000,
                ..Default::default()
            },
            gold: GoldConfig::default(),
            web: WebConfig {
                n_sites: 2_000,
                n_pages: 100_000,
                ..Default::default()
            },
            scenarios: ScenarioConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_shape() {
        let c = SynthConfig::default();
        assert!((c.world.functional_fraction - 0.28).abs() < 1e-9);
        assert!((c.gold.item_coverage - 0.40).abs() < 1e-9);
        // DOM must dominate the section mix.
        let w = c.web.section_weights;
        assert!(w[1] > w[0] && w[1] > w[2] && w[1] > w[3]);
    }

    #[test]
    fn presets_are_ordered_by_scale() {
        let tiny = SynthConfig::tiny();
        let small = SynthConfig::small();
        let paper = SynthConfig::paper();
        let large = SynthConfig::large();
        assert!(tiny.web.n_pages < small.web.n_pages);
        assert!(small.web.n_pages < paper.web.n_pages);
        assert!(paper.web.n_pages < large.web.n_pages);
    }

    #[test]
    fn config_debug_lists_fields() {
        let c = SynthConfig::default();
        let dbg = format!("{c:?}");
        assert!(dbg.contains("n_pages"));
        assert!(dbg.contains("functional_fraction"));
    }
}
