//! # kf-synth — synthetic knowledge-extraction corpus
//!
//! The paper evaluates on 1.6B unique triples extracted by 12 proprietary
//! extractors from 1B+ crawled pages — data that cannot be obtained. This
//! crate is the substitution (see DESIGN.md): a generative simulator that
//! reproduces the *statistical properties the evaluation depends on*, at
//! laptop scale:
//!
//! * a ground-truth [`World`] of typed entities, functional and
//!   non-functional predicates, a location-style value hierarchy,
//!   confusable entities and sibling predicates;
//! * a partial, trusted gold KB ([`freebase::build_gold`]) whose local
//!   closed-world labelling exhibits the paper's artifact modes;
//! * a simulated [`Web`] of sites and pages carrying TXT/DOM/TBL/ANO
//!   sections with Zipf-skewed contributions and rare source-level errors
//!   (including shared "popular" false values);
//! * twelve [`ExtractorSpec`]s (TXT1–4, DOM1–5, TBL1–2, ANO) with bounded
//!   recall, per-pattern quality spread, the paper's 44/44/20 error-kind
//!   mix, systematic per-(pattern, item) breakage, shared entity-linkage
//!   components, hierarchy generalisation, and four confidence-score
//!   shapes;
//! * [`Corpus::generate`] tying it together deterministically from a seed,
//!   and [`stats`] computing the Tables 1–3 / Fig. 3 summaries;
//! * [`Corpus::save`] / [`Corpus::load`] ([`persist`]) checkpointing the
//!   whole corpus to a canonical, versioned binary file so sharded
//!   processes fan out from one snapshot instead of regenerating.

pub mod config;
pub mod corpus;
pub mod extractor;
pub mod freebase;
pub mod persist;
pub mod stats;
pub mod web;
pub mod world;

pub use config::{
    CopyingConfig, DriftConfig, GoldConfig, LinkageConfig, ScenarioConfig, SpamConfig, SynthConfig,
    WebConfig, WorldConfig,
};
pub use corpus::{Corpus, ScenarioTruth};
pub use extractor::{
    default_extractors, ConfidenceModel, ErrorProfile, ExtractionOutcome, ExtractorSpec, SiteFilter,
};
pub use freebase::{build_gold, sample_gold};
pub use web::{Claim, ContentType, Page, SiteClass, Web};
pub use world::World;
