//! End-to-end corpus generation: world → web → extractions → gold labels.

use crate::config::SynthConfig;
use crate::extractor::{default_extractors, ExtractionOutcome, ExtractorSpec, SimulatedExtraction};
use crate::freebase::build_gold;
use crate::web::{ContentType, Web};
use crate::world::World;
use kf_types::{
    hash, DataItem, Extraction, ExtractionBatch, ExtractorId, GoldStandard, Provenance,
    ScenarioPhenomenon, Triple, Value,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A fully generated synthetic corpus: the stand-in for the paper's 1.6B
/// unique triples extracted by 12 extractors from 1B+ pages.
///
/// A corpus can be checkpointed to disk and reloaded without
/// regeneration — see [`Corpus::save`] / [`Corpus::load`] in
/// [`crate::persist`].
#[derive(Debug, Clone, PartialEq)]
pub struct Corpus {
    /// Ground-truth world (full truth; *not* visible to fusion).
    pub world: World,
    /// The simulated web.
    pub web: Web,
    /// The Freebase-style gold standard (partial; visible to evaluation and
    /// to the semi-supervised accuracy initialisation).
    pub gold: GoldStandard,
    /// The extraction records — fusion's input.
    pub batch: ExtractionBatch,
    /// Content-type of each record (parallel to `batch.records`; Fig. 3).
    pub sections: Vec<ContentType>,
    /// Generator-truth outcome of each record (parallel to
    /// `batch.records`); lets tests and the error taxonomy validate
    /// behaviour without re-deriving causes.
    pub outcomes: Vec<ExtractionOutcome>,
    /// The extractor specifications used.
    pub extractors: Vec<ExtractorSpec>,
    /// The seed the corpus was generated from.
    pub seed: u64,
    /// Injected hostile-scenario ground truth (all-empty for an honest
    /// corpus). Persisted with the corpus so scenario gates can run on
    /// checkpoint snapshots.
    pub scenario: ScenarioTruth,
}

/// The per-phenomenon ground truth a hostile corpus carries: exactly what
/// the scenario generators injected, so the scenario matrix measures
/// method degradation against recorded fact rather than assumption.
///
/// Defaults to all-empty; [`Corpus::scenario_truth`] derives the
/// per-triple phenomenon join consumed by `kf-diagnose`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioTruth {
    /// Indices into `batch.records` of records emitted by a copier
    /// replicating its source extractor, ascending.
    pub copied_records: Vec<u32>,
    /// Spam targets: `(item, wrong value)` pushed by the spam campaign,
    /// sorted by item.
    pub spam: Vec<(DataItem, Value)>,
    /// First spam page id (pages `spam_page_start..` are spam; only
    /// meaningful when `spam` is non-empty).
    pub spam_page_start: u32,
    /// Drifted items and their stale pre-flip values, sorted by item.
    pub drift: Vec<(DataItem, Value)>,
    /// Pages with id below this claimed the stale value (0 when drift is
    /// inactive).
    pub drift_flip_page: u32,
    /// Whether the hard-linkage scenario was active (inflated confusable
    /// ring and/or boosted linkage error weights).
    pub linkage_boosted: bool,
}

impl ScenarioTruth {
    /// True when no scenario injected anything.
    pub fn is_empty(&self) -> bool {
        self.copied_records.is_empty()
            && self.spam.is_empty()
            && self.drift.is_empty()
            && !self.linkage_boosted
    }
}

impl Corpus {
    /// Generate a corpus with the default 12 extractors.
    pub fn generate(cfg: &SynthConfig, seed: u64) -> Corpus {
        Self::generate_with_extractors(cfg, default_extractors(), seed)
    }

    /// Generate a corpus with custom extractors (the `custom_extractor`
    /// example plugs in user-defined specs here).
    pub fn generate_with_extractors(
        cfg: &SynthConfig,
        extractors: Vec<ExtractorSpec>,
        seed: u64,
    ) -> Corpus {
        let sc = &cfg.scenarios;
        let world =
            World::generate_with_confusable_ring(&cfg.world, sc.linkage.confusable_ring, seed);
        let (web, injection) = Web::generate_with_scenarios(&world, &cfg.web, sc, seed);
        let gold = build_gold(&world, &cfg.gold, seed);

        // Hard linkage: scale every extractor's linkage error weights (the
        // corruption sampler normalizes, so composition shifts toward
        // linkage mistakes without raising the total error rate).
        let linkage_boosted = sc.linkage.confusable_ring > 2 || sc.linkage.error_boost > 1.0;
        let extractors: Vec<ExtractorSpec> = if sc.linkage.error_boost > 1.0 {
            extractors
                .into_iter()
                .map(|mut spec| {
                    spec.profile.entity_linkage *= sc.linkage.error_boost;
                    spec.profile.predicate_linkage *= sc.linkage.error_boost;
                    spec
                })
                .collect()
        } else {
            extractors
        };

        let copying = sc.copying.dependence > 0.0;
        let dependence = sc.copying.dependence.clamp(0.0, 1.0);

        let mut batch = ExtractionBatch::new();
        let mut sections = Vec::new();
        let mut outcomes = Vec::new();
        let mut copied_records: Vec<u32> = Vec::new();

        // Copying scratch: the source (even-indexed) extractor's per-claim
        // output on the current page, consumed by the copier one index up.
        let mut source_sims: Vec<Option<SimulatedExtraction>> = Vec::new();

        for page in &web.pages {
            let class = Web::site_class(page.site, web.n_sites);
            let mut source_from = usize::MAX;
            for (ex_index, spec) in extractors.iter().enumerate() {
                let ex_id = ExtractorId(ex_index as u16);
                let is_source = copying && ex_index % 2 == 0;
                if is_source {
                    // A source that skips the page leaves nothing to copy.
                    source_from = usize::MAX;
                }
                if !spec.site_filter.admits(class) {
                    continue;
                }
                // Deterministic per-(page, extractor) randomness: corpus
                // content is independent of iteration order and stable
                // across runs.
                let mut rng = SmallRng::seed_from_u64(hash::hash_u64(
                    seed ^ ((page.id.raw() as u64) << 16) ^ ex_index as u64,
                ));
                if !rng.gen_bool(spec.page_coverage) {
                    continue;
                }
                if is_source {
                    source_sims.clear();
                    source_sims.resize(page.claims.len(), None);
                    source_from = ex_index;
                }
                // The copier's dedicated rng keeps copy decisions out of
                // the extraction stream (same salt shape as the
                // per-(page, extractor) rng, distinct stream).
                let mut copy_rng = (copying && ex_index % 2 == 1 && source_from == ex_index - 1)
                    .then(|| {
                        SmallRng::seed_from_u64(hash::hash_u64(
                            seed ^ 0xc0b1_ed0f_f51e_57a1
                                ^ ((page.id.raw() as u64) << 16)
                                ^ ex_index as u64,
                        ))
                    });
                for (ci, claim) in page.claims.iter().enumerate() {
                    if let Some(crng) = copy_rng.as_mut() {
                        if let Some(src) = source_sims[ci] {
                            if crng.gen_bool(dependence) {
                                // Replicate the source's record wholesale —
                                // triple, pattern, confidence, outcome —
                                // under the copier's identity.
                                copied_records.push(batch.len() as u32);
                                batch.push(Extraction {
                                    triple: src.triple,
                                    provenance: Provenance::new(
                                        ex_id,
                                        page.id,
                                        page.site,
                                        src.pattern,
                                    ),
                                    confidence: src.confidence,
                                });
                                sections.push(claim.section);
                                outcomes.push(src.outcome);
                                continue;
                            }
                        }
                    }
                    let Some(sim) = spec.extract(ex_id, &world, claim, page.site, &mut rng) else {
                        continue;
                    };
                    if is_source {
                        source_sims[ci] = Some(sim);
                    }
                    let prov = Provenance::new(ex_id, page.id, page.site, sim.pattern);
                    batch.push(Extraction {
                        triple: sim.triple,
                        provenance: prov,
                        confidence: sim.confidence,
                    });
                    sections.push(claim.section);
                    outcomes.push(sim.outcome);
                }
            }
        }

        if copying {
            kf_telemetry::add("synth.scenario.copied_records", copied_records.len() as u64);
        }
        if linkage_boosted {
            kf_telemetry::add("synth.scenario.confusables", world.n_confusables() as u64);
        }

        let scenario = ScenarioTruth {
            copied_records,
            spam: injection.spam,
            spam_page_start: injection.spam_page_start,
            drift: injection.drift,
            drift_flip_page: injection.drift_flip_page,
            linkage_boosted,
        };

        Corpus {
            world,
            web,
            gold,
            batch,
            sections,
            outcomes,
            extractors,
            seed,
            scenario,
        }
    }

    /// Overall extraction accuracy against the *world* (exact-match).
    pub fn world_accuracy(&self) -> f64 {
        if self.batch.is_empty() {
            return 0.0;
        }
        let correct = self
            .batch
            .iter()
            .filter(|e| self.world.is_true(&e.triple))
            .count();
        correct as f64 / self.batch.len() as f64
    }

    /// The generator-truth outcome of each *unique* triple: the dominant
    /// (most frequent) [`ExtractionOutcome`] over the triple's extraction
    /// records, with frequency ties broken by severity (systematic >
    /// generalized > linkage kinds > faithful). This is the join the error
    /// taxonomy (`kf-diagnose`) scores its heuristic classifiers against:
    /// a fused triple is *injected-systematic* when most of the records
    /// that produced it came from a broken (pattern, item) cell.
    pub fn dominant_outcomes(&self) -> kf_types::FxHashMap<Triple, ExtractionOutcome> {
        // Tie-break priority per outcome slot: rarer, more structured
        // error kinds win so a 50/50 split never degrades to Faithful.
        fn priority(o: ExtractionOutcome) -> u8 {
            match o {
                ExtractionOutcome::SystematicError => 5,
                ExtractionOutcome::Generalized => 4,
                ExtractionOutcome::EntityLinkageError => 3,
                ExtractionOutcome::PredicateLinkageError => 2,
                ExtractionOutcome::TripleIdError => 1,
                ExtractionOutcome::Faithful => 0,
            }
        }
        let mut counts: kf_types::FxHashMap<Triple, [u32; 6]> = kf_types::FxHashMap::default();
        for (e, &outcome) in self.batch.iter().zip(&self.outcomes) {
            counts.entry(e.triple).or_default()[outcome.index()] += 1;
        }
        counts
            .into_iter()
            .map(|(triple, per_outcome)| {
                let dominant = ExtractionOutcome::ALL
                    .into_iter()
                    .max_by_key(|&o| (per_outcome[o.index()], priority(o)))
                    .expect("ALL is non-empty");
                (triple, dominant)
            })
            .collect()
    }

    /// [`Corpus::dominant_outcomes`] mapped onto the Fig. 17 category
    /// space — the ground-truth side of the heuristic-vs-injected
    /// confusion matrix.
    ///
    /// One refinement over the raw per-record outcome: Fig. 17's
    /// "systematic extraction error" is a *phenomenon* — "common
    /// extraction errors by one or two extractors on **a lot of
    /// Webpages**" — not a mechanism. A broken (pattern, item) cell whose
    /// claim appears on a single page produces exactly one wrong record,
    /// observationally identical to the one-off linkage / triple-id
    /// corruption it is built from (the cell corruption reuses the same
    /// three error kinds). Such single-page cases are therefore labelled
    /// [`ErrorCategory::LinkageError`](kf_types::ErrorCategory); the
    /// systematic category is reserved for triples whose wrong value was
    /// actually replicated across ≥ 2 distinct pages.
    pub fn taxonomy_truth(&self) -> kf_types::FxHashMap<Triple, kf_types::ErrorCategory> {
        use kf_types::{ErrorCategory, PageId};
        let dominant = self.dominant_outcomes();
        // Only systematic-dominant triples need the page check, and only
        // the ≥ 2 distinction matters — track (first page, saw another)
        // for that subset instead of a page set per unique triple.
        let mut spread: kf_types::FxHashMap<Triple, (PageId, bool)> =
            kf_types::FxHashMap::default();
        for e in self.batch.iter() {
            if dominant.get(&e.triple) == Some(&ExtractionOutcome::SystematicError) {
                let slot = spread.entry(e.triple).or_insert((e.provenance.page, false));
                slot.1 |= slot.0 != e.provenance.page;
            }
        }
        dominant
            .into_iter()
            .map(|(t, o)| {
                let mut cat = o.taxonomy_category();
                if cat == ErrorCategory::SystematicExtraction
                    && !spread.get(&t).is_some_and(|&(_, multi)| multi)
                {
                    cat = ErrorCategory::LinkageError;
                }
                (t, cat)
            })
            .collect()
    }

    /// The per-triple scenario-phenomenon join: which injected hostile
    /// phenomenon, if any, produced each unique triple. This is the
    /// ground-truth side of the scenario matrix — `kf-diagnose` joins it
    /// against a method's false positives so measured degradation traces
    /// back to what was actually injected.
    ///
    /// Precedence for triples touched by several phenomena (later inserts
    /// win): linkage < copied < drift < spam — the more targeted injection
    /// owns the triple. Linkage only joins when the linkage scenario was
    /// active; the honest corpus's background linkage noise is not a
    /// scenario phenomenon. Empty for an honest corpus.
    pub fn scenario_truth(&self) -> kf_types::FxHashMap<Triple, ScenarioPhenomenon> {
        let mut truth: kf_types::FxHashMap<Triple, ScenarioPhenomenon> =
            kf_types::FxHashMap::default();
        if self.scenario.is_empty() {
            return truth;
        }
        if self.scenario.linkage_boosted {
            for (triple, outcome) in self.dominant_outcomes() {
                if matches!(
                    outcome,
                    ExtractionOutcome::EntityLinkageError
                        | ExtractionOutcome::PredicateLinkageError
                ) {
                    truth.insert(triple, ScenarioPhenomenon::Linkage);
                }
            }
        }
        for &i in &self.scenario.copied_records {
            truth.insert(
                self.batch.records[i as usize].triple,
                ScenarioPhenomenon::Copied,
            );
        }
        for &(item, stale) in &self.scenario.drift {
            truth.insert(
                Triple::new(item.subject, item.predicate, stale),
                ScenarioPhenomenon::Drift,
            );
        }
        for &(item, value) in &self.scenario.spam {
            truth.insert(
                Triple::new(item.subject, item.predicate, value),
                ScenarioPhenomenon::Spam,
            );
        }
        truth
    }

    /// Overall extraction accuracy against the gold standard under LCWA
    /// (the paper's ~30% headline number), computed over labelled records.
    pub fn lcwa_accuracy(&self) -> f64 {
        let mut labelled = 0usize;
        let mut correct = 0usize;
        for e in self.batch.iter() {
            if let Some(ok) = self.gold.label(&e.triple).as_bool() {
                labelled += 1;
                correct += ok as usize;
            }
        }
        if labelled == 0 {
            0.0
        } else {
            correct as f64 / labelled as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthConfig;

    fn corpus() -> Corpus {
        Corpus::generate(&SynthConfig::small(), 17)
    }

    #[test]
    fn corpus_has_substance() {
        let c = corpus();
        assert!(c.batch.len() > 10_000, "only {} records", c.batch.len());
        assert_eq!(c.sections.len(), c.batch.len());
        assert_eq!(c.outcomes.len(), c.batch.len());
        assert!(
            c.batch.unique_triples() < c.batch.len(),
            "no duplicate extraction at all"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(&SynthConfig::tiny(), 5);
        let b = Corpus::generate(&SynthConfig::tiny(), 5);
        assert_eq!(a.batch.len(), b.batch.len());
        for (x, y) in a.batch.iter().zip(b.batch.iter()) {
            assert_eq!(x.triple, y.triple);
            assert_eq!(x.provenance, y.provenance);
            assert_eq!(x.confidence, y.confidence);
        }
    }

    #[test]
    fn different_seeds_give_different_corpora() {
        let a = Corpus::generate(&SynthConfig::tiny(), 1);
        let b = Corpus::generate(&SynthConfig::tiny(), 2);
        assert_ne!(a.batch.len(), b.batch.len());
    }

    #[test]
    fn overall_accuracy_is_paperlike() {
        // Paper: ~30% of extracted triples are correct (LCWA); extractor
        // accuracies range 0.09–0.78. Our corpus should land in a band
        // around that.
        let c = corpus();
        let acc = c.lcwa_accuracy();
        assert!((0.15..0.55).contains(&acc), "LCWA accuracy {acc}");
        let wacc = c.world_accuracy();
        assert!((0.2..0.7).contains(&wacc), "world accuracy {wacc}");
    }

    #[test]
    fn all_extractors_contribute() {
        let c = corpus();
        let mut seen = vec![false; c.extractors.len()];
        for e in c.batch.iter() {
            seen[e.provenance.extractor.index()] = true;
        }
        for (i, s) in seen.iter().enumerate() {
            assert!(*s, "extractor {} produced nothing", c.extractors[i].name);
        }
    }

    #[test]
    fn provenance_sites_match_pages() {
        let c = corpus();
        for e in c.batch.iter().take(5_000) {
            let page = &c.web.pages[e.provenance.page.index()];
            assert_eq!(page.site, e.provenance.site);
        }
    }

    #[test]
    fn most_records_carry_confidence() {
        // Paper: 99.5% of extractions have a confidence; ours is lower
        // because 2 of 12 extractors provide none, but the majority must.
        let c = corpus();
        let with_conf = c.batch.iter().filter(|e| e.confidence.is_some()).count();
        assert!(with_conf as f64 > 0.7 * c.batch.len() as f64);
    }

    #[test]
    fn outcome_bookkeeping_matches_world_truth() {
        let c = corpus();
        for (e, outcome) in c.batch.iter().zip(&c.outcomes).take(20_000) {
            match outcome {
                ExtractionOutcome::Faithful => {
                    // Faithful extraction of a source-error claim can still
                    // be false; faithful extraction of a correct claim must
                    // be world-true.
                    let page = &c.web.pages[e.provenance.page.index()];
                    let claim_true = page
                        .claims
                        .iter()
                        .any(|cl| cl.item == e.triple.data_item() && cl.value == e.triple.object);
                    assert!(claim_true, "faithful extraction not on page");
                }
                ExtractionOutcome::Generalized => {
                    // The object must be the hierarchy parent of some claim
                    // value on the page; hierarchy-truth additionally holds
                    // whenever the underlying claim was not a source error.
                    let page = &c.web.pages[e.provenance.page.index()];
                    let parent_of_claim = page.claims.iter().any(|cl| {
                        cl.item == e.triple.data_item()
                            && kf_types::ValueHierarchy::parent(&c.world, cl.value)
                                == Some(e.triple.object)
                    });
                    assert!(parent_of_claim, "generalized triple not parent of a claim");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn dominant_outcomes_cover_every_unique_triple() {
        let c = Corpus::generate(&SynthConfig::tiny(), 9);
        let dominant = c.dominant_outcomes();
        assert_eq!(dominant.len(), c.batch.unique_triples());
        // Every record's triple has a dominant outcome, and a triple seen
        // only once inherits that record's outcome exactly.
        let mut seen_once: kf_types::FxHashMap<_, Vec<ExtractionOutcome>> =
            kf_types::FxHashMap::default();
        for (e, &o) in c.batch.iter().zip(&c.outcomes) {
            seen_once.entry(e.triple).or_default().push(o);
        }
        for (triple, outcomes) in &seen_once {
            assert!(dominant.contains_key(triple));
            if outcomes.len() == 1 {
                assert_eq!(dominant[triple], outcomes[0]);
            }
        }
        // The truth join maps onto the taxonomy categories, except that a
        // dominant systematic outcome without the multi-page phenomenon
        // degrades to the linkage category.
        let truth = c.taxonomy_truth();
        assert_eq!(truth.len(), dominant.len());
        let mut pages: kf_types::FxHashMap<_, std::collections::HashSet<_>> =
            kf_types::FxHashMap::default();
        for e in c.batch.iter() {
            pages.entry(e.triple).or_default().insert(e.provenance.page);
        }
        for (triple, o) in dominant {
            let expected = match o.taxonomy_category() {
                kf_types::ErrorCategory::SystematicExtraction if pages[&triple].len() < 2 => {
                    kf_types::ErrorCategory::LinkageError
                }
                cat => cat,
            };
            assert_eq!(truth[&triple], expected);
        }
    }

    #[test]
    fn outcome_taxonomy_mapping_matches_fig17() {
        use kf_types::ErrorCategory;
        assert_eq!(
            ExtractionOutcome::Faithful.taxonomy_category(),
            ErrorCategory::LcwaArtifact
        );
        assert_eq!(
            ExtractionOutcome::Generalized.taxonomy_category(),
            ErrorCategory::WrongButGeneral
        );
        assert_eq!(
            ExtractionOutcome::SystematicError.taxonomy_category(),
            ErrorCategory::SystematicExtraction
        );
        for o in [
            ExtractionOutcome::TripleIdError,
            ExtractionOutcome::EntityLinkageError,
            ExtractionOutcome::PredicateLinkageError,
        ] {
            assert_eq!(o.taxonomy_category(), ErrorCategory::LinkageError);
        }
        // Index/ALL are consistent.
        for (i, o) in ExtractionOutcome::ALL.into_iter().enumerate() {
            assert_eq!(o.index(), i);
        }
    }

    #[test]
    fn single_extractor_corpus_works() {
        let specs = vec![default_extractors().remove(4)]; // DOM1
        let c = Corpus::generate_with_extractors(&SynthConfig::tiny(), specs, 3);
        assert!(!c.batch.is_empty());
        assert!(c
            .batch
            .iter()
            .all(|e| e.provenance.extractor == ExtractorId(0)));
    }
}
