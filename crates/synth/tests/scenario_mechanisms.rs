//! Mechanism tests for the four hostile-corpus scenarios: each one
//! asserts, against the generator's own injected ground truth, that the
//! corresponding knob actually produced the phenomenon it claims —
//! copiers replicate source records, spam pages push the recorded wrong
//! voice, pre-flip pages claim the stale drift value, and linkage knobs
//! inflate the confusable surface — plus the counter-vs-truth telemetry
//! consistency gate.

use kf_synth::{
    CopyingConfig, Corpus, DriftConfig, LinkageConfig, ScenarioConfig, SpamConfig, SynthConfig,
};
use kf_types::{FxHashMap, FxHashSet, ScenarioPhenomenon, Triple};

const SEED: u64 = 42;

fn tiny_with(scenarios: ScenarioConfig) -> SynthConfig {
    SynthConfig {
        scenarios,
        ..SynthConfig::tiny()
    }
}

#[test]
fn copying_replicates_source_records_under_the_copier_identity() {
    let cfg = tiny_with(ScenarioConfig {
        copying: CopyingConfig { dependence: 1.0 },
        ..Default::default()
    });
    let corpus = Corpus::generate(&cfg, SEED);
    let copied = &corpus.scenario.copied_records;
    assert!(!copied.is_empty(), "full dependence must copy something");
    assert!(
        copied.windows(2).all(|w| w[0] < w[1]),
        "copied indices are strictly ascending"
    );

    // Index every record by (triple, page, extractor, pattern, confidence
    // bits) so each copied record can be matched against a source
    // original one extractor index down.
    let key = |i: usize| {
        let e = &corpus.batch.records[i];
        (
            e.triple,
            e.provenance.page,
            e.provenance.extractor.raw(),
            e.provenance.pattern,
            e.confidence.map(f32::to_bits),
        )
    };
    let all: FxHashSet<_> = (0..corpus.batch.len()).map(key).collect();
    let copied_set: FxHashSet<u32> = copied.iter().copied().collect();
    for &i in copied {
        let (triple, page, ext, pattern, conf) = key(i as usize);
        assert_eq!(ext % 2, 1, "copiers are the odd-indexed extractors");
        assert!(
            all.contains(&(triple, page, ext - 1, pattern, conf)),
            "record {i} has no source original on the same page"
        );
        // The copied outcome is the source's, not a fresh draw.
        assert_eq!(
            corpus.outcomes[i as usize],
            corpus.outcomes[(0..corpus.batch.len())
                .find(|&j| !copied_set.contains(&(j as u32))
                    && key(j) == (triple, page, ext - 1, pattern, conf))
                .expect("source record exists")],
            "copied record {i} must carry the source's outcome"
        );
    }
    // The injected truth join tags every copied triple.
    let truth = corpus.scenario_truth();
    for &i in copied {
        let t = corpus.batch.records[i as usize].triple;
        assert!(
            truth.contains_key(&t),
            "copied triple missing from scenario_truth"
        );
    }
}

#[test]
fn spam_pages_push_the_recorded_wrong_voice_on_fresh_sites() {
    let honest = Corpus::generate(&SynthConfig::tiny(), SEED);
    let cfg = tiny_with(ScenarioConfig {
        spam: SpamConfig {
            n_pages: 40,
            n_items: 10,
            claims_per_page: 4,
            n_sites: 6,
        },
        ..Default::default()
    });
    let corpus = Corpus::generate(&cfg, SEED);

    assert_eq!(
        corpus.web.pages.len(),
        honest.web.pages.len() + 40,
        "spam pages append after the organic web"
    );
    assert_eq!(
        corpus.scenario.spam_page_start as usize,
        honest.web.pages.len()
    );
    assert_eq!(corpus.web.n_sites, honest.web.n_sites + 6);
    assert_eq!(corpus.scenario.spam.len(), 10);

    // The organic prefix is byte-identically the honest web.
    for (a, b) in corpus.web.pages.iter().zip(&honest.web.pages) {
        assert_eq!(a, b, "organic page changed under the spam scenario");
    }

    let voice: FxHashMap<_, _> = corpus.scenario.spam.iter().copied().collect();
    for page in &corpus.web.pages[corpus.scenario.spam_page_start as usize..] {
        assert!(
            page.site.index() >= honest.web.n_sites,
            "spam lives on fresh sites"
        );
        for claim in &page.claims {
            assert!(claim.source_error, "spam claims are source errors");
            assert_eq!(
                voice.get(&claim.item),
                Some(&claim.value),
                "spam claim deviates from the recorded wrong voice"
            );
            assert!(
                !corpus.world.truths(&claim.item).contains(&claim.value),
                "the spam voice must be world-false"
            );
        }
    }

    // Every spam target joins to the Spam phenomenon.
    let truth = corpus.scenario_truth();
    for &(item, value) in &corpus.scenario.spam {
        let t = Triple::new(item.subject, item.predicate, value);
        assert_eq!(truth.get(&t), Some(&ScenarioPhenomenon::Spam));
    }
}

#[test]
fn drift_claims_the_stale_value_only_before_the_flip() {
    let cfg = tiny_with(ScenarioConfig {
        drift: DriftConfig {
            fraction: 0.3,
            position: 0.5,
        },
        ..Default::default()
    });
    let corpus = Corpus::generate(&cfg, SEED);
    let flip = corpus.scenario.drift_flip_page;
    assert_eq!(flip, (0.5 * cfg.web.n_pages as f64) as u32);
    assert!(
        !corpus.scenario.drift.is_empty(),
        "a 30% fraction must drift some items"
    );

    let stale: FxHashMap<_, _> = corpus.scenario.drift.iter().copied().collect();
    let mut pre_flip_stale = 0usize;
    for page in &corpus.web.pages {
        for claim in &page.claims {
            let Some(&s) = stale.get(&claim.item) else {
                continue;
            };
            assert!(
                !corpus.world.truths(&claim.item).contains(&s),
                "the stale value must contradict the post-flip world"
            );
            if page.id.raw() < flip {
                assert_eq!(claim.value, s, "pre-flip pages claim the stale value");
                assert!(claim.source_error, "stale claims are source errors");
                pre_flip_stale += 1;
            } else {
                // Post-flip pages follow the honest generator; they can
                // still be wrong (source error) but never the stale value.
                assert_ne!(
                    claim.value, s,
                    "post-flip pages must not resurrect the stale value"
                );
            }
        }
    }
    assert!(
        pre_flip_stale > 0,
        "no pre-flip page mentioned a drifted item"
    );

    let truth = corpus.scenario_truth();
    for &(item, s) in &corpus.scenario.drift {
        let t = Triple::new(item.subject, item.predicate, s);
        assert_eq!(truth.get(&t), Some(&ScenarioPhenomenon::Drift));
    }
}

#[test]
fn linkage_knobs_inflate_confusables_and_linkage_error_mass() {
    use kf_synth::ExtractionOutcome;
    let honest = Corpus::generate(&SynthConfig::tiny(), SEED);
    let cfg = tiny_with(ScenarioConfig {
        linkage: LinkageConfig {
            confusable_ring: 6,
            error_boost: 4.0,
        },
        ..Default::default()
    });
    let corpus = Corpus::generate(&cfg, SEED);
    assert!(corpus.scenario.linkage_boosted);
    // The honest world pairs confusables symmetrically (following the
    // link twice returns home); a ring of 6 chains them, so somewhere the
    // round trip must fail — that asymmetry is what makes larger rings
    // *harder* linkage, not a bigger map.
    let round_trip_breaks = |c: &Corpus| {
        c.world.items().iter().any(|item| {
            c.world.confusable(item.subject).is_some_and(|next| {
                c.world
                    .confusable(next)
                    .is_some_and(|back| back != item.subject)
            })
        })
    };
    assert!(
        !round_trip_breaks(&honest),
        "honest confusables must stay symmetric pairs"
    );
    assert!(
        round_trip_breaks(&corpus),
        "ring size 6 must chain confusables beyond symmetric pairs"
    );

    let linkage_share = |c: &Corpus| {
        let n = c
            .outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    ExtractionOutcome::EntityLinkageError
                        | ExtractionOutcome::PredicateLinkageError
                )
            })
            .count();
        n as f64 / c.outcomes.len() as f64
    };
    assert!(
        linkage_share(&corpus) > 1.25 * linkage_share(&honest),
        "a 4x error boost must visibly shift error composition toward linkage: {} vs {}",
        linkage_share(&corpus),
        linkage_share(&honest)
    );

    // Linkage-dominant triples join to the Linkage phenomenon.
    let truth = corpus.scenario_truth();
    assert!(
        truth.values().any(|&p| p == ScenarioPhenomenon::Linkage),
        "no triple joined to the linkage phenomenon"
    );
}

/// Satellite: every `synth.scenario.*` counter equals the quantity the
/// persisted ground truth records — the counters are observability over
/// the same facts, never an independent estimate.
#[test]
fn scenario_counters_agree_with_injected_ground_truth() {
    let cfg = tiny_with(ScenarioConfig {
        copying: CopyingConfig { dependence: 0.5 },
        spam: SpamConfig {
            n_pages: 25,
            n_items: 8,
            claims_per_page: 3,
            n_sites: 5,
        },
        drift: DriftConfig {
            fraction: 0.2,
            position: 0.4,
        },
        linkage: LinkageConfig {
            confusable_ring: 4,
            error_boost: 2.0,
        },
    });
    let trace = kf_telemetry::Trace::new();
    let corpus = {
        let _t = kf_telemetry::install(&trace);
        Corpus::generate(&cfg, SEED)
    };
    let report = trace.snapshot();
    let counter = |name: &str| {
        report
            .counters
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("counter {name} missing"))
            .value
    };

    assert_eq!(
        counter("synth.scenario.copied_records"),
        corpus.scenario.copied_records.len() as u64
    );
    assert_eq!(counter("synth.scenario.spam_pages"), 25);
    let spam_claims: usize = corpus.web.pages[corpus.scenario.spam_page_start as usize..]
        .iter()
        .map(|p| p.claims.len())
        .sum();
    assert_eq!(counter("synth.scenario.spam_claims"), spam_claims as u64);
    assert_eq!(
        counter("synth.scenario.drift_items"),
        corpus.scenario.drift.len() as u64
    );
    let stale: FxHashMap<_, _> = corpus.scenario.drift.iter().copied().collect();
    let stale_claims = corpus.web.pages[..corpus.scenario.spam_page_start as usize]
        .iter()
        .filter(|p| p.id.raw() < corpus.scenario.drift_flip_page)
        .flat_map(|p| &p.claims)
        .filter(|c| stale.get(&c.item) == Some(&c.value))
        .count();
    assert_eq!(
        counter("synth.scenario.drift_stale_claims"),
        stale_claims as u64
    );
    assert_eq!(
        counter("synth.scenario.confusables"),
        corpus.world.n_confusables() as u64
    );
}

/// Phenomenon precedence: a triple claimed by several scenarios resolves
/// to the most targeted injection (linkage < copied < drift < spam).
#[test]
fn scenario_truth_applies_documented_precedence() {
    let cfg = tiny_with(ScenarioConfig {
        copying: CopyingConfig { dependence: 1.0 },
        spam: SpamConfig {
            n_pages: 30,
            n_items: 12,
            claims_per_page: 4,
            n_sites: 4,
        },
        drift: DriftConfig {
            fraction: 0.25,
            position: 0.5,
        },
        linkage: LinkageConfig {
            confusable_ring: 4,
            error_boost: 2.0,
        },
    });
    let corpus = Corpus::generate(&cfg, SEED);
    let truth = corpus.scenario_truth();
    assert!(!truth.is_empty());

    // Spam triples always win their slot.
    for &(item, value) in &corpus.scenario.spam {
        let t = Triple::new(item.subject, item.predicate, value);
        assert_eq!(truth.get(&t), Some(&ScenarioPhenomenon::Spam));
    }
    // Drift triples lose only to spam.
    let spam_set: FxHashSet<Triple> = corpus
        .scenario
        .spam
        .iter()
        .map(|&(item, v)| Triple::new(item.subject, item.predicate, v))
        .collect();
    for &(item, s) in &corpus.scenario.drift {
        let t = Triple::new(item.subject, item.predicate, s);
        if !spam_set.contains(&t) {
            assert_eq!(truth.get(&t), Some(&ScenarioPhenomenon::Drift));
        }
    }
    // All four phenomena appear somewhere in this fully hostile corpus.
    for phenomenon in ScenarioPhenomenon::ALL {
        assert!(
            truth.values().any(|&p| p == phenomenon),
            "{} never appears",
            phenomenon.name()
        );
    }
}
