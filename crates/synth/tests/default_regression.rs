//! Default-path byte-identity regression.
//!
//! The hostile-corpus scenario layer (copying, spam, drift, hard linkage)
//! must be *inert* when every knob sits at its default: disabled scenarios
//! take exactly the honest code paths and draw no extra randomness, so a
//! default corpus today is byte-identical to a default corpus generated
//! before the scenario layer existed. These fingerprints were captured
//! from the pre-scenario generator (seed 42, per-field `KvCodec`
//! encodings hashed with `kf_types::hash::hash_one`); if any of them
//! drifts, scenario plumbing has leaked into the honest path and every
//! pinned corpus snapshot, CI gate baseline and published report silently
//! changes meaning.

use kf_synth::{Corpus, SynthConfig};
use kf_types::{hash, KvCodec};

fn fp<T: KvCodec>(value: &T) -> u64 {
    let mut bytes = Vec::new();
    value.encode(&mut bytes);
    fp_bytes(&bytes)
}

fn fp_bytes(bytes: &[u8]) -> u64 {
    hash::hash_one(&bytes)
}

struct Expected {
    world: u64,
    web: u64,
    gold: u64,
    batch: u64,
    sections: u64,
    outcomes: u64,
    n_records: usize,
    n_pages: usize,
}

fn assert_fingerprints(cfg: &SynthConfig, expected: &Expected, label: &str) {
    assert!(
        !cfg.scenarios.any_active(),
        "{label}: preset must ship with all scenario knobs at defaults"
    );
    let corpus = Corpus::generate(cfg, 42);
    assert!(
        corpus.scenario.is_empty(),
        "{label}: default corpus must carry no scenario ground truth"
    );
    assert!(
        corpus.scenario_truth().is_empty(),
        "{label}: default corpus must join to an empty scenario-truth map"
    );
    assert_eq!(corpus.batch.len(), expected.n_records, "{label}: n_records");
    assert_eq!(corpus.web.pages.len(), expected.n_pages, "{label}: n_pages");
    let sections: Vec<u8> = corpus.sections.iter().map(|s| s.index() as u8).collect();
    let outcomes: Vec<u8> = corpus.outcomes.iter().map(|o| o.index() as u8).collect();
    assert_eq!(fp(&corpus.world), expected.world, "{label}: world bytes");
    assert_eq!(fp(&corpus.web), expected.web, "{label}: web bytes");
    assert_eq!(fp(&corpus.gold), expected.gold, "{label}: gold bytes");
    assert_eq!(fp(&corpus.batch), expected.batch, "{label}: batch bytes");
    assert_eq!(
        fp_bytes(&sections),
        expected.sections,
        "{label}: section bytes"
    );
    assert_eq!(
        fp_bytes(&outcomes),
        expected.outcomes,
        "{label}: outcome bytes"
    );
}

#[test]
fn tiny_default_corpus_is_byte_identical_to_pre_scenario_generator() {
    assert_fingerprints(
        &SynthConfig::tiny(),
        &Expected {
            world: 0x155dc126d77c32bc,
            web: 0xb08159ff16bf6148,
            gold: 0x91f59d036dd94542,
            batch: 0x192f8ad15147aabf,
            sections: 0x05bdfc44ba2efcde,
            outcomes: 0x92c47eb101927b10,
            n_records: 2626,
            n_pages: 300,
        },
        "tiny",
    );
}

#[test]
fn small_default_corpus_is_byte_identical_to_pre_scenario_generator() {
    assert_fingerprints(
        &SynthConfig::small(),
        &Expected {
            world: 0x00e019747f95440e,
            web: 0xdab4fbfab9ee6dbe,
            gold: 0x6e14120d7857e35d,
            batch: 0x5f96622f81804c20,
            sections: 0x50c6d74a70d21d64,
            outcomes: 0xa4fb674c5c163313,
            n_records: 49115,
            n_pages: 5000,
        },
        "small",
    );
}

/// Paper scale regenerates a ~250k-record corpus — too slow for the
/// default test pass; CI's gate job runs it with `--ignored` in release.
#[test]
#[ignore]
fn paper_default_corpus_is_byte_identical_to_pre_scenario_generator() {
    assert_fingerprints(
        &SynthConfig::paper(),
        &Expected {
            world: 0xf4294793e4f8ed69,
            web: 0xfa0e3dd281551d7b,
            gold: 0x37550584f3ba783f,
            batch: 0x1f39d27200f4efce,
            sections: 0x1b1b23a773c8e358,
            outcomes: 0xebb246a6a921e728,
            n_records: 247604,
            n_pages: 24000,
        },
        "paper",
    );
}
