//! Property tests for corpus checkpointing: for any corpus shape and
//! seed, `load(save(corpus))` must restore the corpus *exactly* —
//! including the derived generator-truth joins the error taxonomy is
//! scored against — and the encoding must be canonical (same logical
//! corpus ⇒ same bytes, regardless of which process encodes it).

use kf_synth::{
    CopyingConfig, Corpus, DriftConfig, LinkageConfig, ScenarioConfig, SpamConfig, SynthConfig,
    WebConfig, WorldConfig,
};
use kf_types::KvCodec;
use proptest::prelude::*;

/// Small corpus shapes spanning the axes generation branches on: entity
/// count, predicate count, hierarchy depth, page count, section mix and
/// error rates. Kept tiny so the full property suite stays fast.
fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (
        100usize..400,
        8usize..20,
        2usize..5,
        100usize..400,
        0.0f64..0.08,
        0.3f64..0.9,
    )
        .prop_map(
            |(n_entities, n_predicates, hierarchy_depth, n_pages, source_error_rate, dom_w)| {
                SynthConfig {
                    world: WorldConfig {
                        n_types: 4,
                        n_predicates,
                        n_entities,
                        hierarchy_depth,
                        ..WorldConfig::default()
                    },
                    web: WebConfig {
                        n_sites: 20,
                        n_pages,
                        source_error_rate,
                        section_weights: [0.5, dom_w, 0.1, 0.2],
                        ..WebConfig::default()
                    },
                    ..SynthConfig::tiny()
                }
            },
        )
}

/// Hostile-scenario knob combinations, from all-off to fully hostile —
/// the checkpoint must carry the injected ground truth through
/// `load(save(corpus))` for every mix of active phenomena.
fn arb_scenarios() -> impl Strategy<Value = ScenarioConfig> {
    (
        prop_oneof![Just(0.0f64), 0.2f64..1.0],
        prop_oneof![Just(0usize), 5usize..40],
        prop_oneof![Just(0.0f64), 0.05f64..0.4],
        0.2f64..0.8,
        prop_oneof![Just(2usize), 3usize..8],
        prop_oneof![Just(1.0f64), 1.5f64..5.0],
    )
        .prop_map(
            |(dependence, spam_pages, drift_fraction, drift_position, ring, boost)| {
                ScenarioConfig {
                    copying: CopyingConfig { dependence },
                    spam: SpamConfig {
                        n_pages: spam_pages,
                        n_items: 12,
                        claims_per_page: 3,
                        n_sites: 4,
                    },
                    drift: DriftConfig {
                        fraction: drift_fraction,
                        position: drift_position,
                    },
                    linkage: LinkageConfig {
                        confusable_ring: ring,
                        error_boost: boost,
                    },
                }
            },
        )
}

proptest! {
    /// The checkpoint codec is lossless over every corpus shape: the
    /// decoded corpus equals the original field-for-field, and the
    /// taxonomy ground-truth joins (`dominant_outcomes`,
    /// `taxonomy_truth`) — which fold per-record outcomes through
    /// hash-map state — are restored exactly.
    #[test]
    fn load_save_roundtrip_is_exact(cfg in arb_config(), seed in 0u64..1_000) {
        let corpus = Corpus::generate(&cfg, seed);
        let mut buf = Vec::new();
        corpus.encode(&mut buf);
        let mut input = &buf[..];
        let back = Corpus::decode(&mut input).expect("roundtrip decodes");
        prop_assert!(input.is_empty(), "decode must consume the whole encoding");
        prop_assert!(back == corpus, "decoded corpus differs (seed {})", seed);
        prop_assert_eq!(back.dominant_outcomes(), corpus.dominant_outcomes());
        prop_assert_eq!(back.taxonomy_truth(), corpus.taxonomy_truth());
    }

    /// Canonical bytes: re-encoding a decoded corpus reproduces the
    /// original byte stream (so shard processes that pass checkpoints
    /// around never amplify drift), and an independent same-seed
    /// generation encodes identically (so two processes snapshotting the
    /// same seed produce byte-diffable files).
    #[test]
    fn encoding_is_canonical(cfg in arb_config(), seed in 0u64..1_000) {
        let corpus = Corpus::generate(&cfg, seed);
        let mut first = Vec::new();
        corpus.encode(&mut first);
        let decoded = Corpus::decode(&mut &first[..]).expect("decodes");
        let mut second = Vec::new();
        decoded.encode(&mut second);
        prop_assert!(first == second, "re-encode differs (seed {})", seed);
        let regenerated = Corpus::generate(&cfg, seed);
        let mut third = Vec::new();
        regenerated.encode(&mut third);
        prop_assert!(first == third, "same-seed encode differs (seed {})", seed);
    }

    /// Hostile corpora persist exactly: the scenario ground-truth segment
    /// (copied record indices, spam voices, drift flips, linkage flag)
    /// survives `load(save(corpus))`, as does the derived
    /// `scenario_truth` join the matrix harness scores against — across
    /// every mix of active phenomena, including all-off.
    #[test]
    fn scenario_truth_roundtrips_through_persistence(
        scenarios in arb_scenarios(),
        seed in 0u64..500,
    ) {
        let cfg = SynthConfig { scenarios, ..SynthConfig::tiny() };
        let corpus = Corpus::generate(&cfg, seed);
        let mut buf = Vec::new();
        corpus.encode(&mut buf);
        let back = Corpus::decode(&mut &buf[..]).expect("roundtrip decodes");
        prop_assert!(back.scenario == corpus.scenario, "scenario truth differs (seed {})", seed);
        prop_assert!(back == corpus, "decoded corpus differs (seed {})", seed);
        prop_assert_eq!(back.scenario_truth(), corpus.scenario_truth());
        // The persisted flag agrees with the config that generated it.
        prop_assert_eq!(corpus.scenario.is_empty(), !cfg.scenarios.any_active());
    }
}

/// Trace histograms rode in on checkpoint format version 5: a reader of
/// this build must refuse a file stamped with any earlier version (the
/// pre-histogram 4, the pre-scenario 3, …) — or any other foreign
/// version — with a typed skew error naming the found version, never a
/// silent misparse of the new trailing bytes.
#[test]
fn stale_format_versions_are_rejected_with_typed_skew() {
    use kf_types::checkpoint::{self, ArtifactKind, CheckpointError, FORMAT_VERSION};
    assert_eq!(
        FORMAT_VERSION, 6,
        "the dist wire protocol shipped in v6; bump this test alongside the format"
    );
    let corpus = Corpus::generate(&SynthConfig::tiny(), 7);
    let mut bytes = checkpoint::encode(ArtifactKind::Corpus, &corpus);
    for stale in [5u16, 4, 3, 2, 1] {
        bytes[4..6].copy_from_slice(&stale.to_le_bytes());
        match checkpoint::decode::<Corpus>(ArtifactKind::Corpus, &bytes) {
            Err(CheckpointError::VersionSkew { found }) => assert_eq!(found, stale),
            other => panic!("version {stale} must skew, got {other:?}"),
        }
    }
}
