//! Property tests for corpus checkpointing: for any corpus shape and
//! seed, `load(save(corpus))` must restore the corpus *exactly* —
//! including the derived generator-truth joins the error taxonomy is
//! scored against — and the encoding must be canonical (same logical
//! corpus ⇒ same bytes, regardless of which process encodes it).

use kf_synth::{Corpus, SynthConfig, WebConfig, WorldConfig};
use kf_types::KvCodec;
use proptest::prelude::*;

/// Small corpus shapes spanning the axes generation branches on: entity
/// count, predicate count, hierarchy depth, page count, section mix and
/// error rates. Kept tiny so the full property suite stays fast.
fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (
        100usize..400,
        8usize..20,
        2usize..5,
        100usize..400,
        0.0f64..0.08,
        0.3f64..0.9,
    )
        .prop_map(
            |(n_entities, n_predicates, hierarchy_depth, n_pages, source_error_rate, dom_w)| {
                SynthConfig {
                    world: WorldConfig {
                        n_types: 4,
                        n_predicates,
                        n_entities,
                        hierarchy_depth,
                        ..WorldConfig::default()
                    },
                    web: WebConfig {
                        n_sites: 20,
                        n_pages,
                        source_error_rate,
                        section_weights: [0.5, dom_w, 0.1, 0.2],
                        ..WebConfig::default()
                    },
                    ..SynthConfig::tiny()
                }
            },
        )
}

proptest! {
    /// The checkpoint codec is lossless over every corpus shape: the
    /// decoded corpus equals the original field-for-field, and the
    /// taxonomy ground-truth joins (`dominant_outcomes`,
    /// `taxonomy_truth`) — which fold per-record outcomes through
    /// hash-map state — are restored exactly.
    #[test]
    fn load_save_roundtrip_is_exact(cfg in arb_config(), seed in 0u64..1_000) {
        let corpus = Corpus::generate(&cfg, seed);
        let mut buf = Vec::new();
        corpus.encode(&mut buf);
        let mut input = &buf[..];
        let back = Corpus::decode(&mut input).expect("roundtrip decodes");
        prop_assert!(input.is_empty(), "decode must consume the whole encoding");
        prop_assert!(back == corpus, "decoded corpus differs (seed {})", seed);
        prop_assert_eq!(back.dominant_outcomes(), corpus.dominant_outcomes());
        prop_assert_eq!(back.taxonomy_truth(), corpus.taxonomy_truth());
    }

    /// Canonical bytes: re-encoding a decoded corpus reproduces the
    /// original byte stream (so shard processes that pass checkpoints
    /// around never amplify drift), and an independent same-seed
    /// generation encodes identically (so two processes snapshotting the
    /// same seed produce byte-diffable files).
    #[test]
    fn encoding_is_canonical(cfg in arb_config(), seed in 0u64..1_000) {
        let corpus = Corpus::generate(&cfg, seed);
        let mut first = Vec::new();
        corpus.encode(&mut first);
        let decoded = Corpus::decode(&mut &first[..]).expect("decodes");
        let mut second = Vec::new();
        decoded.encode(&mut second);
        prop_assert!(first == second, "re-encode differs (seed {})", seed);
        let regenerated = Corpus::generate(&cfg, seed);
        let mut third = Vec::new();
        regenerated.encode(&mut third);
        prop_assert!(first == third, "same-seed encode differs (seed {})", seed);
    }
}
