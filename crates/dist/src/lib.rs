//! # kf-dist — the distributed coordinator/worker runtime
//!
//! The paper's production system runs fusion as MapReduce over a fleet
//! of machines (§6); PRs 2–5 only fanned out across *processes* on one
//! filesystem (`repro --shard i/n` + `--merge`). This crate is the next
//! step: the same shard/merge semantics over TCP.
//!
//! * A [`Coordinator`] listens on a socket, registers workers through a
//!   versioned handshake ([`kf_types::wire`]), ships each one the corpus
//!   checkpoint, dispatches preset-shard [`kf_types::TaskSpec`]s, and
//!   collects shard [`kf_eval::EvalReport`]s, k-way merging them exactly as
//!   `--merge` does ([`kf_eval::merge_reports`]).
//! * A worker ([`run_worker`]) connects (with exponential backoff),
//!   receives the corpus once, and answers tasks with checkpoint-framed
//!   shard reports, heartbeating from a side thread so a long fuse never
//!   reads as death.
//!
//! ## Robustness model
//!
//! Workers die; the merge must not notice. The coordinator tracks one
//! state machine per task (*pending → dispatched → done*):
//!
//! * A worker whose connection drops, or whose heartbeats go stale,
//!   is marked **lost**: its in-flight tasks are re-queued with
//!   exponential backoff and re-dispatched to survivors.
//! * A lost-but-alive worker (heartbeats stopped, socket open — the
//!   "hung" case) may still deliver results later. Completions are
//!   accepted **first-wins** per task; any later completion is counted
//!   (`dist.task.duplicate`) and discarded, so re-dispatch never
//!   double-counts a shard in the merge.
//! * Because every shard report is deterministic for a given corpus and
//!   task, *which* replica's completion wins cannot change the merged
//!   bytes — the merged `report.json` stays byte-identical to the
//!   single-process `--deterministic` run. Fault-injection tests (the
//!   `KF_DIST_FAIL` knob, [`FailSpec`]) pin this.
//!
//! ## Telemetry
//!
//! Both ends record `dist.rpc.sent` / `dist.rpc.recv` counters and
//! `dist.rpc.sent_bytes` / `dist.rpc.recv_bytes` histograms on the
//! installed process trace. The byte histograms are
//! [`kf_telemetry::HistKind::Traffic`]: frame counts depend on heartbeat
//! scheduling and re-dispatch timing, so the `--deterministic`
//! quarantine clears them entirely (count included) — the determinism
//! ledger records only that the metric exists.

pub mod coordinator;
pub mod worker;

pub use coordinator::{Coordinator, CoordinatorConfig};
pub use worker::{run_worker, FailMode, FailSpec, WorkerConfig};

use std::io;

/// Why a distributed run failed.
#[derive(Debug)]
pub enum DistError {
    /// Socket-level failure (bind, connect, or a broken stream at a
    /// point the protocol cannot recover from).
    Io(io::Error),
    /// The coordinator refused this worker's registration (version skew
    /// — see [`kf_types::wire`]'s handshake rules).
    Rejected(String),
    /// The peer sent a message the protocol does not allow in the
    /// current state.
    Protocol(String),
    /// A shipped artifact (corpus or shard report) failed checkpoint
    /// validation.
    Checkpoint(String),
    /// The collected shard reports do not merge (corpus mismatch,
    /// duplicate or unknown method) — see [`kf_eval::MergeError`].
    Merge(String),
    /// A task was re-dispatched more than the configured maximum and
    /// still has no result.
    TaskExhausted {
        /// The exhausted task.
        task_id: u32,
        /// Dispatch attempts consumed.
        attempts: u32,
        /// The most recent failure reason.
        last_error: String,
    },
    /// Tasks remain but no live worker exists and none arrived within
    /// the idle timeout.
    NoWorkers,
    /// The `KF_DIST_FAIL` fault injection killed this worker.
    Injected,
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "distributed I/O error: {e}"),
            DistError::Rejected(reason) => write!(f, "coordinator rejected worker: {reason}"),
            DistError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            DistError::Checkpoint(msg) => write!(f, "bad artifact on the wire: {msg}"),
            DistError::Merge(msg) => write!(f, "shard reports do not merge: {msg}"),
            DistError::TaskExhausted {
                task_id,
                attempts,
                last_error,
            } => write!(
                f,
                "task {task_id} exhausted {attempts} dispatch attempts (last error: {last_error})"
            ),
            DistError::NoWorkers => {
                f.write_str("no live workers and none arrived within the idle timeout")
            }
            DistError::Injected => f.write_str("KF_DIST_FAIL fault injection killed this worker"),
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DistError {
    fn from(e: io::Error) -> Self {
        DistError::Io(e)
    }
}
