//! The worker: connect with backoff, receive the corpus once, answer
//! tasks with checkpoint-framed shard reports, heartbeat from a side
//! thread — plus the `KF_DIST_FAIL` fault-injection knob the robustness
//! tests drive.

use crate::DistError;
use kf_eval::EvalReport;
use kf_synth::Corpus;
use kf_types::checkpoint::{self, ArtifactKind};
use kf_types::wire::{self, TaskSpec, WireMsg, PROTOCOL_VERSION};
use kf_types::FORMAT_VERSION;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How an injected fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailMode {
    /// Die abruptly: shut the socket both ways and return
    /// [`DistError::Injected`]. The coordinator sees EOF — the
    /// SIGKILL-equivalent for in-process workers.
    Kill,
    /// Go silent: stop heartbeating but keep working. The coordinator
    /// times the worker out and re-dispatches; the eventual late
    /// completion exercises duplicate suppression.
    Mute,
}

/// Parsed `KF_DIST_FAIL` directive: worker `NAME` fails after `M`
/// protocol frames (task/handshake frames sent plus received —
/// heartbeats excluded, so the trigger point is deterministic).
///
/// Syntax: `NAME:M` or `NAME:M:kill` or `NAME:M:mute`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailSpec {
    /// Which worker (by `--worker-name`) the fault arms on.
    pub worker: String,
    /// Protocol frames (sent + received, heartbeats excluded) before
    /// the fault fires.
    pub after_frames: u64,
    /// What firing does.
    pub mode: FailMode,
}

impl FailSpec {
    /// Parse a `NAME:M[:kill|mute]` directive.
    pub fn parse(s: &str) -> Result<FailSpec, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let (worker, frames, mode) = match parts.as_slice() {
            [w, m] => (*w, *m, "kill"),
            [w, m, mode] => (*w, *m, *mode),
            _ => return Err(format!("bad KF_DIST_FAIL {s:?}: want NAME:M[:kill|mute]")),
        };
        if worker.is_empty() {
            return Err(format!("bad KF_DIST_FAIL {s:?}: empty worker name"));
        }
        let after_frames: u64 = frames.parse().map_err(|_| {
            format!("bad KF_DIST_FAIL {s:?}: frame count {frames:?} is not a number")
        })?;
        let mode = match mode {
            "kill" => FailMode::Kill,
            "mute" => FailMode::Mute,
            other => return Err(format!("bad KF_DIST_FAIL {s:?}: unknown mode {other:?}")),
        };
        Ok(FailSpec {
            worker: worker.to_string(),
            after_frames,
            mode,
        })
    }

    /// Read the `KF_DIST_FAIL` environment variable; `Ok(None)` when
    /// unset, `Err` when set but malformed.
    pub fn from_env() -> Result<Option<FailSpec>, String> {
        match std::env::var("KF_DIST_FAIL") {
            Ok(s) if !s.is_empty() => Self::parse(&s).map(Some),
            _ => Ok(None),
        }
    }
}

/// A worker's connection settings.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub addr: String,
    /// Name reported in the handshake; `KF_DIST_FAIL` arms on it.
    pub name: String,
    /// Connect attempts before giving up (the coordinator may start
    /// after the workers do).
    pub connect_attempts: u32,
    /// Delay after the first failed connect; doubles per retry, capped
    /// at two seconds.
    pub connect_backoff: Duration,
    /// The armed fault, if any (see [`FailSpec::from_env`]).
    pub fail: Option<FailSpec>,
}

impl WorkerConfig {
    /// A config with default retry behavior and no fault armed.
    pub fn new(addr: impl Into<String>, name: impl Into<String>) -> WorkerConfig {
        WorkerConfig {
            addr: addr.into(),
            name: name.into(),
            connect_attempts: 10,
            connect_backoff: Duration::from_millis(50),
            fail: None,
        }
    }
}

/// Frame accounting for the armed fault. Counts only protocol frames
/// the worker's main loop sends or receives — heartbeats ride on their
/// own thread and cadence, so counting them would make the trigger
/// point scheduling-dependent.
struct FailState {
    armed: Option<(u64, FailMode)>,
    frames: u64,
    fired: bool,
}

impl FailState {
    fn new(config: &WorkerConfig) -> FailState {
        FailState {
            armed: config
                .fail
                .as_ref()
                .filter(|f| f.worker == config.name)
                .map(|f| (f.after_frames, f.mode)),
            frames: 0,
            fired: false,
        }
    }

    /// Count one frame; returns the mode to apply if the fault fires now.
    fn count(&mut self) -> Option<FailMode> {
        self.frames += 1;
        match self.armed {
            Some((after, mode)) if !self.fired && self.frames >= after => {
                self.fired = true;
                Some(mode)
            }
            _ => None,
        }
    }
}

fn connect_with_backoff(config: &WorkerConfig) -> Result<TcpStream, DistError> {
    let mut delay = config.connect_backoff;
    let attempts = config.connect_attempts.max(1);
    let mut last = None;
    for attempt in 0..attempts {
        match TcpStream::connect(&config.addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
        if attempt + 1 < attempts {
            std::thread::sleep(delay);
            delay = (delay * 2).min(Duration::from_secs(2));
        }
    }
    Err(DistError::Io(last.expect("at least one attempt")))
}

fn send_counted(writer: &Arc<Mutex<TcpStream>>, msg: &WireMsg) -> Result<usize, DistError> {
    let mut stream = writer.lock().unwrap_or_else(|p| p.into_inner());
    let bytes = wire::write_frame(&mut *stream, msg)?;
    kf_telemetry::add("dist.rpc.sent", 1);
    kf_telemetry::record_traffic("dist.rpc.sent_bytes", bytes as u64);
    Ok(bytes)
}

/// Run one worker to completion: handshake, receive the corpus, then
/// answer tasks until the coordinator says [`WireMsg::Shutdown`].
///
/// `runner` produces the shard report for one task; it is the engine
/// boundary — `kf-dist` knows nothing about presets or fusion, the
/// caller (the `repro` CLI, or a test) wires the actual run in. The
/// corpus is decoded once per connection and shared across tasks.
pub fn run_worker(
    config: &WorkerConfig,
    mut runner: impl FnMut(&Corpus, &TaskSpec) -> Result<EvalReport, String>,
) -> Result<(), DistError> {
    let reader = connect_with_backoff(config)?;
    let _ = reader.set_nodelay(true);
    let writer = Arc::new(Mutex::new(reader.try_clone()?));
    let mut reader = reader;
    let mut fail = FailState::new(config);
    let muted = Arc::new(AtomicBool::new(false));
    let stopped = Arc::new(AtomicBool::new(false));

    // One closure per direction so every frame is counted exactly once.
    let recv = |reader: &mut TcpStream| -> Result<WireMsg, DistError> {
        let (msg, bytes) = wire::read_frame(reader)?;
        kf_telemetry::add("dist.rpc.recv", 1);
        kf_telemetry::record_traffic("dist.rpc.recv_bytes", bytes as u64);
        Ok(msg)
    };
    let kill = |reader: &TcpStream, stopped: &AtomicBool| {
        stopped.store(true, Ordering::SeqCst);
        let _ = reader.shutdown(Shutdown::Both);
        DistError::Injected
    };

    // Handshake: Hello -> Welcome (or Reject) -> Corpus.
    send_counted(
        &writer,
        &WireMsg::Hello {
            protocol: PROTOCOL_VERSION,
            format: FORMAT_VERSION,
            worker: config.name.clone(),
        },
    )?;
    if fail.count() == Some(FailMode::Kill) {
        return Err(kill(&reader, &stopped));
    }
    let heartbeat_interval = match recv(&mut reader)? {
        WireMsg::Welcome {
            heartbeat_interval_ms,
            ..
        } => Duration::from_millis(heartbeat_interval_ms.max(1)),
        WireMsg::Reject { reason } => return Err(DistError::Rejected(reason)),
        other => {
            return Err(DistError::Protocol(format!(
                "expected welcome, got {}",
                other.name()
            )))
        }
    };
    match fail.count() {
        Some(FailMode::Kill) => return Err(kill(&reader, &stopped)),
        Some(FailMode::Mute) => muted.store(true, Ordering::SeqCst),
        None => {}
    }

    // Heartbeats ride a dedicated thread at the coordinator-dictated
    // cadence, so a long fuse never reads as death. Muting stops the
    // sends without stopping the work.
    let heartbeat = {
        let writer = writer.clone();
        let muted = muted.clone();
        let stopped = stopped.clone();
        std::thread::spawn(move || {
            let mut seq = 0u64;
            loop {
                std::thread::sleep(heartbeat_interval);
                if stopped.load(Ordering::SeqCst) {
                    break;
                }
                if muted.load(Ordering::SeqCst) {
                    continue;
                }
                seq += 1;
                if send_counted(&writer, &WireMsg::Heartbeat { seq }).is_err() {
                    break;
                }
            }
        })
    };

    let outcome = (|| -> Result<(), DistError> {
        let corpus = match recv(&mut reader)? {
            WireMsg::Corpus { bytes } => checkpoint::decode::<Corpus>(ArtifactKind::Corpus, &bytes)
                .map_err(|e| DistError::Checkpoint(format!("corpus: {e}")))?,
            other => {
                return Err(DistError::Protocol(format!(
                    "expected corpus, got {}",
                    other.name()
                )))
            }
        };
        match fail.count() {
            Some(FailMode::Kill) => return Err(kill(&reader, &stopped)),
            Some(FailMode::Mute) => muted.store(true, Ordering::SeqCst),
            None => {}
        }

        loop {
            let msg = match recv(&mut reader) {
                Ok(msg) => msg,
                // A killed coordinator (or our own injected shutdown
                // racing the reader) surfaces here.
                Err(_) if stopped.load(Ordering::SeqCst) => return Err(DistError::Injected),
                Err(e) => return Err(e),
            };
            match msg {
                WireMsg::Task { spec } => {
                    match fail.count() {
                        Some(FailMode::Kill) => return Err(kill(&reader, &stopped)),
                        Some(FailMode::Mute) => muted.store(true, Ordering::SeqCst),
                        None => {}
                    }
                    let reply = match runner(&corpus, &spec) {
                        Ok(report) => WireMsg::TaskDone {
                            task_id: spec.task_id,
                            report: checkpoint::encode(ArtifactKind::Report, &report),
                        },
                        Err(error) => WireMsg::TaskFailed {
                            task_id: spec.task_id,
                            error,
                        },
                    };
                    send_counted(&writer, &reply)?;
                    match fail.count() {
                        Some(FailMode::Kill) => return Err(kill(&reader, &stopped)),
                        Some(FailMode::Mute) => muted.store(true, Ordering::SeqCst),
                        None => {}
                    }
                }
                WireMsg::Shutdown => return Ok(()),
                other => {
                    return Err(DistError::Protocol(format!(
                        "unexpected {} frame",
                        other.name()
                    )))
                }
            }
        }
    })();

    stopped.store(true, Ordering::SeqCst);
    let _ = reader.shutdown(Shutdown::Both);
    let _ = heartbeat.join();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_spec_parses_all_forms() {
        assert_eq!(
            FailSpec::parse("w1:7").unwrap(),
            FailSpec {
                worker: "w1".into(),
                after_frames: 7,
                mode: FailMode::Kill,
            }
        );
        assert_eq!(FailSpec::parse("w2:3:mute").unwrap().mode, FailMode::Mute);
        assert_eq!(FailSpec::parse("w2:3:kill").unwrap().mode, FailMode::Kill);
        for bad in ["", "w1", "w1:x", ":3", "w1:3:explode", "w1:3:kill:extra"] {
            assert!(FailSpec::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn fail_state_fires_once_at_threshold_for_armed_worker_only() {
        let mut config = WorkerConfig::new("127.0.0.1:1", "w1");
        config.fail = Some(FailSpec::parse("w1:3:mute").unwrap());
        let mut state = FailState::new(&config);
        assert_eq!(state.count(), None);
        assert_eq!(state.count(), None);
        assert_eq!(state.count(), Some(FailMode::Mute));
        assert_eq!(state.count(), None, "fires exactly once");

        // Armed for a different worker: never fires.
        config.name = "w2".into();
        let mut other = FailState::new(&config);
        for _ in 0..10 {
            assert_eq!(other.count(), None);
        }
    }

    #[test]
    fn connect_backoff_gives_up_with_io_error() {
        // A port from the discard range with nothing listening; one
        // retry keeps the test fast.
        let mut config = WorkerConfig::new("127.0.0.1:9", "w");
        config.connect_attempts = 2;
        config.connect_backoff = Duration::from_millis(1);
        match connect_with_backoff(&config) {
            Err(DistError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
