//! The coordinator: task table, worker registry, heartbeat monitor and
//! the re-dispatch state machine.
//!
//! All protocol decisions run on the thread that called
//! [`Coordinator::run`]; one reader thread per connection does nothing
//! but turn frames into events on a channel. That single-threaded core
//! keeps the state machine auditable — there is exactly one place a
//! task changes state — and means every `dist.*` counter lands on the
//! trace installed by the caller.

use crate::DistError;
use kf_eval::EvalReport;
use kf_types::checkpoint::{self, ArtifactKind};
use kf_types::wire::{self, TaskSpec, WireMsg, PROTOCOL_VERSION};
use kf_types::FORMAT_VERSION;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Tuning knobs of a coordinator run. `Default` is sized for real
/// (CI/operator) runs; tests shrink the intervals.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Cadence workers are told to heartbeat at ([`WireMsg::Welcome`]).
    pub heartbeat_interval: Duration,
    /// Silence after which a worker is declared lost and its in-flight
    /// tasks re-queued. Must comfortably exceed the interval.
    pub heartbeat_timeout: Duration,
    /// Delay before the first re-dispatch of a failed task; doubles on
    /// every further attempt of the same task.
    pub redispatch_backoff: Duration,
    /// Re-dispatches a single task may consume before the run aborts
    /// with [`DistError::TaskExhausted`].
    pub max_redispatch: u32,
    /// With tasks outstanding, how long the run tolerates having no
    /// live workers (and no progress) before aborting with
    /// [`DistError::NoWorkers`].
    pub idle_timeout: Duration,
    /// Tasks a single worker may have outstanding at once. Workers fuse
    /// serially, so anything beyond 1 only front-loads the queue of
    /// whoever registers first — later registrants would sit idle — and
    /// widens the re-dispatch blast radius when that worker dies.
    pub max_in_flight: usize,
    /// Narrate registrations, dispatches, losses and completions on
    /// stderr — the operator transcript; tests leave it off.
    pub verbose: bool,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            heartbeat_interval: Duration::from_millis(500),
            heartbeat_timeout: Duration::from_millis(2_500),
            redispatch_backoff: Duration::from_millis(100),
            max_redispatch: 5,
            idle_timeout: Duration::from_secs(60),
            max_in_flight: 1,
            verbose: false,
        }
    }
}

/// A bound coordinator, ready to [`run`](Coordinator::run). Binding is
/// separate from running so callers (tests, the `--dist-addr-file`
/// subflow) can learn the OS-assigned port before any worker starts.
pub struct Coordinator {
    listener: TcpListener,
    tasks: Vec<TaskSpec>,
    corpus_bytes: Vec<u8>,
    config: CoordinatorConfig,
}

/// What a connection's reader thread reports to the core loop.
enum Event {
    /// One decoded frame, plus its size on the wire.
    Frame {
        conn: usize,
        msg: WireMsg,
        bytes: u64,
    },
    /// The connection hit EOF or an error; no more frames will come.
    Closed { conn: usize },
}

/// Where a task is in its life cycle.
#[derive(Debug)]
enum TaskStatus {
    /// Waiting for dispatch, not before the embedded deadline (backoff).
    Pending { not_before: Instant },
    /// Sent to a worker, result outstanding. (Which worker is tracked
    /// in the per-worker `in_flight` ledgers, where loss handling
    /// needs it.)
    Running,
    /// A completion was accepted; later replicas are duplicates.
    Done,
}

struct TaskState {
    status: TaskStatus,
    /// Dispatches consumed so far (first dispatch counts as 1).
    attempts: u32,
    last_error: String,
    report: Option<EvalReport>,
}

/// A registered worker's scheduling state.
struct WorkerState {
    name: String,
    last_seen: Instant,
    /// Lost workers are never dispatched to again, but their socket
    /// stays open: a hung worker may still deliver a late completion,
    /// which first-wins/duplicate accounting handles.
    lost: bool,
    in_flight: Vec<u32>,
}

struct ConnState {
    stream: TcpStream,
    open: bool,
    worker: Option<WorkerState>,
}

/// The single-threaded protocol core.
struct Engine {
    conns: Vec<ConnState>,
    tasks: Vec<TaskState>,
    specs: Vec<TaskSpec>,
    config: CoordinatorConfig,
    last_progress: Instant,
    fatal: Option<DistError>,
}

impl Coordinator {
    /// Bind the coordinator socket. `addr` may use port 0 to let the OS
    /// pick; read the result back with [`local_addr`](Self::local_addr).
    pub fn bind(
        addr: &str,
        tasks: Vec<TaskSpec>,
        corpus_bytes: Vec<u8>,
        config: CoordinatorConfig,
    ) -> Result<Coordinator, DistError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Coordinator {
            listener,
            tasks,
            corpus_bytes,
            config,
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Drive the job to completion and return the shard reports in task
    /// order. Blocks the calling thread; workers may connect at any
    /// point during the run.
    pub fn run(self) -> Result<Vec<EvalReport>, DistError> {
        let corpus_msg = WireMsg::Corpus {
            bytes: self.corpus_bytes,
        };
        let mut engine = Engine {
            conns: Vec::new(),
            tasks: self
                .tasks
                .iter()
                .map(|_| TaskState {
                    status: TaskStatus::Pending {
                        not_before: Instant::now(),
                    },
                    attempts: 0,
                    last_error: String::new(),
                    report: None,
                })
                .collect(),
            specs: self.tasks,
            config: self.config,
            last_progress: Instant::now(),
            fatal: None,
        };
        let (tx, rx) = mpsc::channel::<Event>();
        let mut readers = Vec::new();

        let outcome = loop {
            // Admit new connections; each gets a dedicated reader thread.
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        // Accepted sockets may inherit the listener's
                        // nonblocking flag on some platforms; readers
                        // want blocking reads.
                        stream.set_nonblocking(false)?;
                        let _ = stream.set_nodelay(true);
                        let conn = engine.conns.len();
                        let mut read_half = stream.try_clone()?;
                        let tx = tx.clone();
                        readers.push(std::thread::spawn(move || loop {
                            match wire::read_frame(&mut read_half) {
                                Ok((msg, bytes)) => {
                                    if tx
                                        .send(Event::Frame {
                                            conn,
                                            msg,
                                            bytes: bytes as u64,
                                        })
                                        .is_err()
                                    {
                                        break;
                                    }
                                }
                                Err(_) => {
                                    let _ = tx.send(Event::Closed { conn });
                                    break;
                                }
                            }
                        }));
                        engine.conns.push(ConnState {
                            stream,
                            open: true,
                            worker: None,
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) => return Err(e.into()),
                }
            }

            // Drain the event queue (bounded wait doubles as the tick).
            match rx.recv_timeout(Duration::from_millis(10)) {
                Ok(event) => {
                    engine.handle(event, &corpus_msg);
                    while let Ok(event) = rx.try_recv() {
                        engine.handle(event, &corpus_msg);
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => unreachable!("tx kept alive above"),
            }

            engine.check_heartbeats();
            engine.dispatch_pending();

            if let Some(fatal) = engine.fatal.take() {
                break Err(fatal);
            }
            if engine
                .tasks
                .iter()
                .all(|t| matches!(t.status, TaskStatus::Done))
            {
                break Ok(());
            }
            let live = engine
                .conns
                .iter()
                .any(|c| c.open && c.worker.as_ref().is_some_and(|w| !w.lost));
            if !live && engine.last_progress.elapsed() > engine.config.idle_timeout {
                break Err(DistError::NoWorkers);
            }
        };

        // Teardown: tell survivors to exit, then unblock and join every
        // reader. Errors here don't change the outcome.
        for conn in 0..engine.conns.len() {
            if engine.conns[conn].open && engine.conns[conn].worker.is_some() {
                engine.send(conn, &WireMsg::Shutdown);
            }
        }
        for conn in &mut engine.conns {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        drop(tx);
        for reader in readers {
            let _ = reader.join();
        }

        outcome?;
        Ok(engine
            .tasks
            .into_iter()
            .map(|t| t.report.expect("all tasks done on the success path"))
            .collect())
    }

    /// [`run`](Self::run), then merge the shard reports exactly as the
    /// `--merge` subflow does.
    pub fn run_merged(self) -> Result<EvalReport, DistError> {
        let reports = self.run()?;
        kf_eval::merge_reports(reports).map_err(|e| DistError::Merge(e.to_string()))
    }
}

impl Engine {
    /// Operator narration (the README transcript); off by default.
    fn log(&self, line: String) {
        if self.config.verbose {
            eprintln!("[coordinator] {line}");
        }
    }

    /// Display name for a connection: the registered worker name, or
    /// the connection id for unregistered peers.
    fn worker_name(&self, conn: usize) -> String {
        match self.conns[conn].worker.as_ref() {
            Some(w) => w.name.clone(),
            None => format!("conn#{conn}"),
        }
    }

    fn handle(&mut self, event: Event, corpus_msg: &WireMsg) {
        match event {
            Event::Closed { conn } => self.drop_conn(conn),
            Event::Frame { conn, msg, bytes } => {
                kf_telemetry::add("dist.rpc.recv", 1);
                kf_telemetry::record_traffic("dist.rpc.recv_bytes", bytes);
                match msg {
                    WireMsg::Hello {
                        protocol,
                        format,
                        worker,
                    } => self.handle_hello(conn, protocol, format, worker, corpus_msg),
                    WireMsg::Heartbeat { .. } => {
                        if let Some(w) = self.conns[conn].worker.as_mut() {
                            w.last_seen = Instant::now();
                        }
                    }
                    WireMsg::TaskDone { task_id, report } => {
                        self.handle_done(conn, task_id, &report)
                    }
                    WireMsg::TaskFailed { task_id, error } => {
                        kf_telemetry::add("dist.task.failed", 1);
                        self.requeue(task_id, &error);
                    }
                    other => {
                        // A coordinator-only message echoed back, or a
                        // frame before Hello: protocol violation.
                        kf_telemetry::add("dist.rpc.protocol_error", 1);
                        let _ = other;
                        self.drop_conn(conn);
                    }
                }
            }
        }
    }

    fn handle_hello(
        &mut self,
        conn: usize,
        protocol: u32,
        format: u16,
        name: String,
        corpus_msg: &WireMsg,
    ) {
        if self.conns[conn].worker.is_some() {
            self.drop_conn(conn); // double Hello
            return;
        }
        if protocol != PROTOCOL_VERSION || format != FORMAT_VERSION {
            let reason = format!(
                "version skew: worker speaks protocol {protocol} / format {format}, \
                 coordinator speaks {PROTOCOL_VERSION} / {FORMAT_VERSION}"
            );
            self.send(conn, &WireMsg::Reject { reason });
            self.drop_conn(conn);
            return;
        }
        let welcome = WireMsg::Welcome {
            worker_id: conn as u32,
            heartbeat_interval_ms: self.config.heartbeat_interval.as_millis() as u64,
        };
        if self.send(conn, &welcome) && self.send(conn, corpus_msg) {
            self.log(format!(
                "registered worker {name} (id {conn}), corpus shipped"
            ));
            self.conns[conn].worker = Some(WorkerState {
                name,
                last_seen: Instant::now(),
                lost: false,
                in_flight: Vec::new(),
            });
            kf_telemetry::add("dist.worker.registered", 1);
            self.last_progress = Instant::now();
        }
    }

    fn handle_done(&mut self, conn: usize, task_id: u32, report_bytes: &[u8]) {
        let Some(task) = self.tasks.get_mut(task_id as usize) else {
            self.drop_conn(conn);
            return;
        };
        if matches!(task.status, TaskStatus::Done) {
            // A re-dispatched task completed twice (hung worker woke
            // up, or two replicas raced). First completion won; this
            // one is suppressed so the merge never double-counts.
            kf_telemetry::add("dist.task.duplicate", 1);
            self.log(format!(
                "suppressed duplicate completion of task {task_id} from {}",
                self.worker_name(conn)
            ));
            return;
        }
        match checkpoint::decode::<EvalReport>(ArtifactKind::Report, report_bytes) {
            Ok(report) => {
                task.status = TaskStatus::Done;
                task.report = Some(report);
                kf_telemetry::add("dist.task.completed", 1);
                self.log(format!(
                    "task {task_id} completed by {}",
                    self.worker_name(conn)
                ));
                // The winning replica may not be the one this task is
                // marked Running on; clear it from every ledger.
                for c in &mut self.conns {
                    if let Some(w) = c.worker.as_mut() {
                        w.in_flight.retain(|&t| t != task_id);
                    }
                }
                self.last_progress = Instant::now();
            }
            Err(e) => {
                kf_telemetry::add("dist.task.failed", 1);
                self.requeue(task_id, &format!("undecodable shard report: {e}"));
            }
        }
    }

    /// Return a task to the pending queue with exponentially backed-off
    /// eligibility. No-op unless the task is currently `Running`.
    fn requeue(&mut self, task_id: u32, error: &str) {
        let Some(task) = self.tasks.get_mut(task_id as usize) else {
            return;
        };
        if !matches!(task.status, TaskStatus::Running) {
            return;
        }
        task.last_error = error.to_string();
        if task.attempts > self.config.max_redispatch {
            self.fatal = Some(DistError::TaskExhausted {
                task_id,
                attempts: task.attempts,
                last_error: task.last_error.clone(),
            });
            return;
        }
        let backoff = self.config.redispatch_backoff
            * 2u32.saturating_pow(task.attempts.saturating_sub(1).min(16));
        task.status = TaskStatus::Pending {
            not_before: Instant::now() + backoff,
        };
        for c in &mut self.conns {
            if let Some(w) = c.worker.as_mut() {
                w.in_flight.retain(|&t| t != task_id);
            }
        }
    }

    /// Declare workers with stale heartbeats lost and re-queue their
    /// in-flight tasks. The socket stays open — see [`WorkerState::lost`].
    fn check_heartbeats(&mut self) {
        let timeout = self.config.heartbeat_timeout;
        let mut orphaned: Vec<u32> = Vec::new();
        let mut stale: Vec<String> = Vec::new();
        for conn in &mut self.conns {
            if !conn.open {
                continue;
            }
            if let Some(w) = conn.worker.as_mut() {
                if !w.lost && w.last_seen.elapsed() > timeout {
                    w.lost = true;
                    kf_telemetry::add("dist.worker.lost", 1);
                    stale.push(w.name.clone());
                    orphaned.append(&mut w.in_flight);
                }
            }
        }
        for name in stale {
            self.log(format!(
                "worker {name} lost (heartbeats stale); re-queueing its tasks"
            ));
        }
        for task_id in orphaned {
            self.requeue(task_id, "worker heartbeats went stale");
        }
    }

    /// Hand every due pending task to the live worker with the least
    /// in-flight load (lowest connection id on ties).
    fn dispatch_pending(&mut self) {
        let now = Instant::now();
        for task_id in 0..self.tasks.len() {
            let due = match self.tasks[task_id].status {
                TaskStatus::Pending { not_before } => not_before <= now,
                _ => false,
            };
            if !due {
                continue;
            }
            let target = self
                .conns
                .iter()
                .enumerate()
                .filter(|(_, c)| {
                    c.open
                        && c.worker.as_ref().is_some_and(|w| {
                            !w.lost && w.in_flight.len() < self.config.max_in_flight
                        })
                })
                .min_by_key(|&(id, c)| {
                    (
                        c.worker.as_ref().map_or(usize::MAX, |w| w.in_flight.len()),
                        id,
                    )
                })
                .map(|(id, _)| id);
            let Some(conn) = target else {
                // Every live worker is at capacity (or none exists);
                // the task stays pending until a slot frees up.
                return;
            };
            let msg = WireMsg::Task {
                spec: self.specs[task_id].clone(),
            };
            if self.send(conn, &msg) {
                self.log(format!(
                    "dispatch task {task_id} -> worker {}",
                    self.worker_name(conn)
                ));
                let task = &mut self.tasks[task_id];
                task.status = TaskStatus::Running;
                kf_telemetry::add("dist.task.dispatched", 1);
                if task.attempts > 0 {
                    kf_telemetry::add("dist.task.redispatched", 1);
                }
                task.attempts += 1;
                if let Some(w) = self.conns[conn].worker.as_mut() {
                    w.in_flight.push(task_id as u32);
                }
                self.last_progress = Instant::now();
            }
            // On send failure the connection was dropped and its tasks
            // re-queued; the next tick retries against survivors.
        }
    }

    /// Write one frame; on failure the connection is dropped (with its
    /// tasks re-queued) and `false` returned.
    fn send(&mut self, conn: usize, msg: &WireMsg) -> bool {
        if !self.conns[conn].open {
            return false;
        }
        match wire::write_frame(&mut self.conns[conn].stream, msg) {
            Ok(bytes) => {
                kf_telemetry::add("dist.rpc.sent", 1);
                kf_telemetry::record_traffic("dist.rpc.sent_bytes", bytes as u64);
                true
            }
            Err(_) => {
                self.drop_conn(conn);
                false
            }
        }
    }

    /// Close a connection and re-queue whatever it was running.
    fn drop_conn(&mut self, conn: usize) {
        let state = &mut self.conns[conn];
        if !state.open {
            return;
        }
        state.open = false;
        let _ = state.stream.shutdown(Shutdown::Both);
        let (name, orphaned) = match state.worker.as_mut() {
            Some(w) => {
                if !w.lost {
                    w.lost = true;
                    kf_telemetry::add("dist.worker.lost", 1);
                }
                (Some(w.name.clone()), std::mem::take(&mut w.in_flight))
            }
            None => (None, Vec::new()),
        };
        if let Some(name) = name {
            self.log(format!(
                "worker {name} lost (connection closed); re-queueing its tasks"
            ));
        }
        for task_id in orphaned {
            self.requeue(task_id, "worker connection closed");
        }
    }
}
