//! End-to-end coordinator/worker tests over localhost TCP: clean runs,
//! injected worker death (kill), hung workers (mute), task failure
//! retry, version-skew rejection, and the no-workers timeout.
//!
//! The invariant every fault scenario pins: the merged report is
//! byte-identical to the reference single-process report, no matter
//! which worker died when.

use kf_dist::{run_worker, Coordinator, CoordinatorConfig, DistError, FailSpec, WorkerConfig};
use kf_eval::{merge_reports, AblationRunner, EvalReport, Preset};
use kf_synth::{Corpus, SynthConfig};
use kf_types::checkpoint::{self, ArtifactKind};
use kf_types::wire::{self, TaskSpec, WireMsg, PROTOCOL_VERSION};
use kf_types::FORMAT_VERSION;
use std::net::TcpStream;
use std::time::Duration;

fn tiny_corpus() -> Corpus {
    Corpus::generate(&SynthConfig::tiny(), 11)
}

fn ablation() -> AblationRunner {
    AblationRunner {
        n_bins: 10,
        workers: Some(2),
        scale: "tiny".into(),
        ..Default::default()
    }
}

/// One task per preset — the same split the repro CLI dispatches.
fn task_specs() -> Vec<TaskSpec> {
    Preset::ALL
        .iter()
        .enumerate()
        .map(|(i, p)| TaskSpec {
            task_id: i as u32,
            shard_index: i as u32,
            shard_count: Preset::ALL.len() as u32,
            presets: vec![p.name().to_string()],
            scale: "tiny".into(),
            bins: 10,
            workers: 2,
            diagnose: false,
            deterministic: true,
        })
        .collect()
}

/// The worker-side task runner: fuse the task's presets, quarantine
/// timings (the tasks say `deterministic`).
fn run_task(corpus: &Corpus, spec: &TaskSpec) -> Result<EvalReport, String> {
    let runner = ablation();
    let methods = spec
        .presets
        .iter()
        .map(|name| {
            let preset = Preset::by_name(name).ok_or_else(|| format!("unknown preset {name}"))?;
            Ok(runner.run_preset(corpus, preset))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let mut report = EvalReport {
        corpus: runner.corpus_summary(corpus),
        methods,
    };
    report.quarantine_timings();
    Ok(report)
}

/// The single-process reference the distributed merge must reproduce.
fn reference_report(corpus: &Corpus) -> EvalReport {
    let mut report = ablation().run(corpus);
    report.quarantine_timings();
    report
}

fn test_config() -> CoordinatorConfig {
    CoordinatorConfig {
        heartbeat_interval: Duration::from_millis(25),
        heartbeat_timeout: Duration::from_millis(150),
        redispatch_backoff: Duration::from_millis(5),
        max_redispatch: 10,
        idle_timeout: Duration::from_secs(30),
        max_in_flight: 1,
        verbose: false,
    }
}

fn bind_coordinator(corpus: &Corpus, config: CoordinatorConfig) -> (Coordinator, String) {
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        task_specs(),
        checkpoint::encode(ArtifactKind::Corpus, corpus),
        config,
    )
    .expect("bind");
    let addr = coordinator.local_addr().expect("local addr").to_string();
    (coordinator, addr)
}

#[test]
fn distributed_run_matches_single_process_report() {
    let corpus = tiny_corpus();
    let (coordinator, addr) = bind_coordinator(&corpus, test_config());
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                run_worker(&WorkerConfig::new(addr, format!("w{i}")), run_task)
            })
        })
        .collect();
    let merged = coordinator.run_merged().expect("distributed run");
    for w in workers {
        w.join().unwrap().expect("worker exits cleanly");
    }
    assert_eq!(
        merged.to_json_string(),
        reference_report(&corpus).to_json_string(),
        "merged distributed report must be byte-identical to the single-process run"
    );
}

#[test]
fn killed_worker_shard_is_redispatched_to_survivor() {
    let corpus = tiny_corpus();
    let (coordinator, addr) = bind_coordinator(&corpus, test_config());
    // Frames at the victim: hello(1) welcome(2) corpus(3) task(4) —
    // it dies the moment its first task arrives, before running it.
    let victim = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut config = WorkerConfig::new(addr, "victim");
            config.fail = Some(FailSpec::parse("victim:4:kill").unwrap());
            run_worker(&config, run_task)
        })
    };
    let survivor = {
        let addr = addr.clone();
        std::thread::spawn(move || run_worker(&WorkerConfig::new(addr, "survivor"), run_task))
    };
    let merged = coordinator
        .run_merged()
        .expect("run survives a worker kill");
    assert!(
        matches!(victim.join().unwrap(), Err(DistError::Injected)),
        "victim must report the injected kill"
    );
    survivor.join().unwrap().expect("survivor exits cleanly");
    assert_eq!(
        merged.to_json_string(),
        reference_report(&corpus).to_json_string()
    );
}

#[test]
fn mute_worker_is_timed_out_and_its_late_result_suppressed() {
    let corpus = tiny_corpus();
    let (coordinator, addr) = bind_coordinator(&corpus, test_config());
    // The mute worker stops heartbeating when its first task arrives
    // and then takes much longer than the heartbeat timeout, so the
    // coordinator re-dispatches; its eventual completion exercises the
    // first-wins/duplicate path.
    let mute = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut config = WorkerConfig::new(addr, "mute");
            config.fail = Some(FailSpec::parse("mute:4:mute").unwrap());
            run_worker(&config, |corpus, spec| {
                std::thread::sleep(Duration::from_millis(500));
                run_task(corpus, spec)
            })
        })
    };
    let fast = {
        let addr = addr.clone();
        std::thread::spawn(move || run_worker(&WorkerConfig::new(addr, "fast"), run_task))
    };
    // Run under a trace so the completion accounting is checkable: every
    // task completes exactly once; replicas land in the duplicate
    // counter, never in completed.
    let trace = kf_telemetry::Trace::new();
    let merged = {
        let _installed = kf_telemetry::install(&trace);
        coordinator
            .run_merged()
            .expect("run survives a hung worker")
    };
    let _ = mute.join().unwrap(); // exits Ok (late shutdown) or with a broken pipe
    fast.join().unwrap().expect("fast worker exits cleanly");
    let report = trace.snapshot();
    let counter = |name: &str| {
        report
            .counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    assert_eq!(
        counter("dist.task.completed"),
        Preset::ALL.len() as u64,
        "each task completes exactly once; replicas are suppressed"
    );
    assert!(counter("dist.worker.lost") >= 1, "mute worker must be lost");
    assert_eq!(
        merged.to_json_string(),
        reference_report(&corpus).to_json_string()
    );
}

#[test]
fn failing_task_is_retried_until_a_worker_succeeds() {
    let corpus = tiny_corpus();
    let (coordinator, addr) = bind_coordinator(&corpus, test_config());
    // This worker fails its first task (the coordinator re-queues it
    // with backoff) and succeeds afterwards.
    let flaky = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut failed_once = false;
            run_worker(&WorkerConfig::new(addr, "flaky"), move |corpus, spec| {
                if !failed_once {
                    failed_once = true;
                    return Err("injected first-task failure".into());
                }
                run_task(corpus, spec)
            })
        })
    };
    let steady = {
        let addr = addr.clone();
        std::thread::spawn(move || run_worker(&WorkerConfig::new(addr, "steady"), run_task))
    };
    let merged = coordinator
        .run_merged()
        .expect("run survives task failures");
    flaky.join().unwrap().expect("flaky worker exits cleanly");
    steady.join().unwrap().expect("steady worker exits cleanly");
    assert_eq!(
        merged.to_json_string(),
        reference_report(&corpus).to_json_string()
    );
}

#[test]
fn version_skew_is_rejected_at_the_handshake() {
    let corpus = tiny_corpus();
    let (coordinator, addr) = bind_coordinator(&corpus, test_config());
    let skewed = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            wire::write_frame(
                &mut stream,
                &WireMsg::Hello {
                    protocol: PROTOCOL_VERSION + 1,
                    format: FORMAT_VERSION,
                    worker: "stale-build".into(),
                },
            )
            .expect("send hello");
            match wire::read_frame(&mut stream).expect("read reply").0 {
                WireMsg::Reject { reason } => reason,
                other => panic!("expected reject, got {}", other.name()),
            }
        })
    };
    let worker = {
        let addr = addr.clone();
        std::thread::spawn(move || run_worker(&WorkerConfig::new(addr, "current"), run_task))
    };
    let merged = coordinator.run_merged().expect("run completes");
    let reason = skewed.join().unwrap();
    assert!(reason.contains("version skew"), "{reason}");
    worker
        .join()
        .unwrap()
        .expect("current worker exits cleanly");
    assert_eq!(merged.methods.len(), Preset::ALL.len());
}

#[test]
fn run_without_workers_hits_the_idle_timeout() {
    let corpus = tiny_corpus();
    let mut config = test_config();
    config.idle_timeout = Duration::from_millis(200);
    let (coordinator, _addr) = bind_coordinator(&corpus, config);
    match coordinator.run() {
        Err(DistError::NoWorkers) => {}
        other => panic!("expected NoWorkers, got {other:?}"),
    }
}

#[test]
fn shard_reports_merge_like_the_offline_path() {
    // The coordinator's merge is literally kf_eval::merge_reports; a
    // direct merge of per-task reports equals the reference too, so
    // task order cannot matter.
    let corpus = tiny_corpus();
    let mut reports: Vec<EvalReport> = task_specs()
        .iter()
        .map(|spec| run_task(&corpus, spec).unwrap())
        .collect();
    reports.reverse();
    let merged = merge_reports(reports).expect("merge");
    assert_eq!(
        merged.to_json_string(),
        reference_report(&corpus).to_json_string()
    );
}
