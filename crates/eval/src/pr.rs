//! Ranking quality: precision–recall curves, AUC-PR, precision@k.
//!
//! §5 of the paper complements calibration with the PR trade-off
//! (Figs. 10–15): sweep a probability threshold from high to low, accept
//! every triple at or above it, and measure precision and recall against
//! the LCWA labels. The curve is summarised by AUC-PR (trapezoidal) and by
//! precision@k for operational cut-offs.

/// One point of a PR curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// The probability threshold this point corresponds to.
    pub threshold: f64,
    /// True positives at this threshold.
    pub tp: usize,
    /// False positives at this threshold.
    pub fp: usize,
    /// Precision `tp / (tp + fp)`.
    pub precision: f64,
    /// Recall `tp / n_true`.
    pub recall: f64,
}

/// A full precision–recall curve.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PrCurve {
    /// Points in decreasing-threshold order (one per distinct probability).
    pub points: Vec<PrPoint>,
    /// Area under the curve by trapezoidal integration over recall,
    /// anchored at `(recall = 0, precision = precision of the top point)`.
    pub auc: f64,
}

/// Sorted copy of `predictions`, descending by probability. Stable, so ties
/// keep their input order and every derived metric is deterministic.
pub(crate) fn sort_descending(predictions: &[(f64, bool)]) -> Vec<(f64, bool)> {
    let mut sorted = predictions.to_vec();
    sorted.sort_by(|a, b| b.0.total_cmp(&a.0));
    sorted
}

/// Compute the PR curve over `(probability, is_true)` pairs.
///
/// Returns an empty curve when there are no pairs or no true pairs (recall
/// is undefined without positives).
pub fn pr_curve(predictions: &[(f64, bool)]) -> PrCurve {
    pr_curve_sorted(&sort_descending(predictions))
}

/// [`pr_curve`] over pairs already sorted descending by probability —
/// lets one sort serve every metric of an evaluation.
pub(crate) fn pr_curve_sorted(sorted: &[(f64, bool)]) -> PrCurve {
    let n_true = sorted.iter().filter(|&&(_, t)| t).count();
    if n_true == 0 {
        return PrCurve::default();
    }

    let mut points: Vec<PrPoint> = Vec::new();
    let (mut tp, mut fp) = (0usize, 0usize);
    for (i, &(p, t)) in sorted.iter().enumerate() {
        tp += t as usize;
        fp += (!t) as usize;
        // Emit one point per distinct threshold, after consuming all pairs
        // tied at that probability.
        let last_of_tie = i + 1 == sorted.len() || sorted[i + 1].0 < p;
        if last_of_tie {
            points.push(PrPoint {
                threshold: p,
                tp,
                fp,
                precision: tp as f64 / (tp + fp) as f64,
                recall: tp as f64 / n_true as f64,
            });
        }
    }

    // Trapezoid over recall, anchored at recall 0 with the first point's
    // precision.
    let mut auc = 0.0;
    let (mut prev_recall, mut prev_precision) = (0.0, points[0].precision);
    for pt in &points {
        auc += (pt.recall - prev_recall) * (pt.precision + prev_precision) / 2.0;
        prev_recall = pt.recall;
        prev_precision = pt.precision;
    }
    PrCurve { points, auc }
}

/// Precision among the `k` highest-probability predictions (`None` when
/// there are fewer than `k`).
pub fn precision_at_k(predictions: &[(f64, bool)], k: usize) -> Option<f64> {
    precision_at_k_sorted(&sort_descending(predictions), k)
}

/// [`precision_at_k`] over pairs already sorted descending by probability.
pub(crate) fn precision_at_k_sorted(sorted: &[(f64, bool)], k: usize) -> Option<f64> {
    if k == 0 || sorted.len() < k {
        return None;
    }
    let hits = sorted[..k].iter().filter(|&&(_, t)| t).count();
    Some(hits as f64 / k as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    /// Hand-computed fixture: [(0.9, T), (0.8, F), (0.7, T), (0.6, F)].
    ///
    /// Thresholds 0.9, 0.8, 0.7, 0.6 give
    /// (P, R) = (1, 1/2), (1/2, 1/2), (2/3, 1), (1/2, 1).
    /// Anchored at (R=0, P=1):
    /// AUC = ½·(1+1)/2 + 0 + ½·(½+⅔)/2 + 0 = 0.5 + 0.291666… = 0.791666…
    #[test]
    fn auc_matches_hand_computation() {
        let preds = [(0.9, true), (0.8, false), (0.7, true), (0.6, false)];
        let c = pr_curve(&preds);
        assert_eq!(c.points.len(), 4);
        assert!(approx(c.points[0].precision, 1.0));
        assert!(approx(c.points[0].recall, 0.5));
        assert!(approx(c.points[2].precision, 2.0 / 3.0));
        assert!(approx(c.points[2].recall, 1.0));
        let expected = 0.5 + 0.5 * (0.5 + 2.0 / 3.0) / 2.0;
        assert!(approx(c.auc, expected), "auc {}", c.auc);
    }

    #[test]
    fn perfect_ranking_has_auc_one() {
        let preds = [(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
        let c = pr_curve(&preds);
        assert!(approx(c.auc, 1.0), "auc {}", c.auc);
    }

    #[test]
    fn tied_probabilities_collapse_to_one_point() {
        let preds = [(0.5, true), (0.5, false), (0.5, true)];
        let c = pr_curve(&preds);
        assert_eq!(c.points.len(), 1);
        assert!(approx(c.points[0].precision, 2.0 / 3.0));
        assert!(approx(c.points[0].recall, 1.0));
        // Anchor precision = first point's precision ⇒ AUC = precision.
        assert!(approx(c.auc, 2.0 / 3.0));
    }

    #[test]
    fn recall_is_monotone_nonincreasing_in_threshold() {
        let preds: Vec<(f64, bool)> = (0..200)
            .map(|i| ((i * 7 % 101) as f64 / 101.0, i % 3 == 0))
            .collect();
        let c = pr_curve(&preds);
        for w in c.points.windows(2) {
            assert!(w[0].threshold > w[1].threshold);
            assert!(w[0].recall <= w[1].recall);
        }
        assert!(approx(c.points.last().unwrap().recall, 1.0));
    }

    #[test]
    fn no_positives_gives_empty_curve() {
        let c = pr_curve(&[(0.9, false), (0.5, false)]);
        assert!(c.points.is_empty());
        assert_eq!(c.auc, 0.0);
        assert!(pr_curve(&[]).points.is_empty());
    }

    /// Hand-computed precision@k on a known ranking.
    #[test]
    fn precision_at_k_fixture() {
        let preds = [
            (0.95, true),
            (0.9, true),
            (0.85, false),
            (0.8, true),
            (0.2, false),
        ];
        assert!(approx(precision_at_k(&preds, 1).unwrap(), 1.0));
        assert!(approx(precision_at_k(&preds, 2).unwrap(), 1.0));
        assert!(approx(precision_at_k(&preds, 3).unwrap(), 2.0 / 3.0));
        assert!(approx(precision_at_k(&preds, 4).unwrap(), 0.75));
        assert!(approx(precision_at_k(&preds, 5).unwrap(), 0.6));
        assert_eq!(precision_at_k(&preds, 6), None);
        assert_eq!(precision_at_k(&preds, 0), None);
    }

    #[test]
    fn precision_at_k_is_order_independent() {
        let a = [(0.1, false), (0.9, true), (0.5, true)];
        let b = [(0.9, true), (0.5, true), (0.1, false)];
        assert_eq!(precision_at_k(&a, 2), precision_at_k(&b, 2));
    }
}
