//! placeholder — evaluation suite lands here next.
