//! # kf-eval — calibration & PR-curve evaluation
//!
//! The measurement half of *From Data Fusion to Knowledge Fusion*: the
//! paper's contribution is less a new fusion algorithm than an evaluation
//! methodology — judge fused triples against Freebase under the local
//! closed-world assumption (§5.1) and ask two questions of the resulting
//! probabilities:
//!
//! 1. **Are they calibrated?** ([`calibration`]) Among triples predicted
//!    with probability ~p, is a fraction ~p actually true? Summarised by
//!    the paper's weighted deviation (WDEV) and the standard expected
//!    calibration error (ECE) over equal-width and equal-mass bins.
//! 2. **Do they rank well?** ([`pr`]) Precision–recall curves swept over
//!    probability thresholds, AUC-PR via trapezoidal integration, and
//!    precision@k, plus the coverage axis (how many triples get a
//!    prediction at all).
//!
//! [`ablation::AblationRunner`] closes the loop: it executes the paper's
//! five named systems (`vote`, `accu`, `popaccu`, `popaccu_plus_unsup`,
//! `popaccu_plus`) over a [`kf_synth::Corpus`] and emits a serializable
//! [`report::EvalReport`] (JSON via the in-repo [`json`] writer), so every
//! future performance PR can prove it did not regress fusion quality by
//! diffing `report.json`. The report's JSON schema is documented in the
//! [`report`] module.
//!
//! ```
//! use kf_eval::{AblationRunner, Preset};
//! use kf_synth::{Corpus, SynthConfig};
//!
//! let corpus = Corpus::generate(&SynthConfig::tiny(), 42);
//! let runner = AblationRunner { scale: "tiny".into(), ..Default::default() };
//! let eval = runner.run_preset(&corpus, Preset::PopAccu);
//! assert!(eval.wdev().is_finite());
//! assert!(eval.auc_pr() > 0.0);
//! ```

pub mod ablation;
pub mod calibration;
pub mod json;
pub mod labels;
pub mod persist;
pub mod pr;
pub mod report;

pub use ablation::{AblationRunner, Preset};
pub use calibration::{calibration_curve, Binning, CalibrationBin, CalibrationCurve};
pub use json::Json;
pub use labels::{LabeledOutput, LabeledTriple};
pub use persist::{merge_reports, MergeError};
pub use pr::{pr_curve, precision_at_k, PrCurve, PrPoint};
pub use report::{evaluate_labeled, trace_to_json, CorpusSummary, EvalReport, MethodEval};
