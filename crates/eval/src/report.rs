//! Serializable evaluation reports.
//!
//! One fusion run produces a [`MethodEval`]; an ablation over the paper's
//! five presets produces an [`EvalReport`]. Reports serialize to JSON (via
//! the in-repo [`crate::json`] writer) so successive PRs can diff
//! `report.json` and catch quality regressions, the same way `BENCH_*.json`
//! files track performance.
//!
//! # `report.json` schema (version 1)
//!
//! Everything except the wall-clock `fuse_ms` fields is deterministic for
//! a fixed corpus scale and seed.
//!
//! ```text
//! {
//!   "schema_version": 1,
//!   "corpus": {                      // CorpusSummary
//!     "scale": "paper",              // tiny | small | paper | large
//!     "seed": 42,                    // corpus generator seed (u64, exact)
//!     "n_records": …,                // extraction records fused
//!     "n_unique_triples": …,
//!     "n_data_items": …,
//!     "n_gold_items": …,             // items known to the gold KB
//!     "lcwa_accuracy": 0.0–1.0       // raw extraction accuracy under LCWA
//!   },
//!   "methods": [                     // one MethodEval per preset, in
//!     {                              // ablation order
//!       "name": "vote",              // preset id (vote | accu | popaccu |
//!                                    //   popaccu_plus_unsup | popaccu_plus)
//!       "label": "VOTE",             // display label from the paper
//!       "n_scored": …,               // scored unique triples
//!       "n_labelled": …,             // gold-labelled (true + false)
//!       "n_true": …,
//!       "n_unpredicted": …,          // labelled but no prediction
//!       "coverage": 0.0–1.0,         // labelled triples with a prediction
//!       "predicted_fraction": 0.0–1.0, // ALL triples with a prediction
//!       "wdev": …,                   // paper's weighted deviation
//!       "ece": …,                    // expected calibration error
//!       "auc_pr": …,                 // trapezoidal AUC-PR
//!       "precision_at": [ {"k": 100, "precision": …}, … ],
//!       "calibration_equal_width": { // CalibrationCurve
//!         "wdev": …, "ece": …,
//!         "bins": [ {"lo": …, "hi": …, "count": …,
//!                    "mean_predicted": …,
//!                    "observed_accuracy": …|null}, … ]  // null = empty bin
//!       },
//!       "calibration_equal_mass": {  // same shape, equal-mass binning
//!         …
//!       },
//!       "pr_curve": {
//!         "auc": …,
//!         "n_points": …,             // full in-memory curve size
//!         "points": [ {"threshold": …, "precision": …, "recall": …}, … ]
//!                                    // evenly strided subsample, at most
//!                                    // MAX_PR_POINTS_IN_REPORT + final point
//!       },
//!       "fuse_ms": …,                // wall clock; the one nondeterministic
//!                                    //   field
//!       "taxonomy": {                // Fig. 17 error taxonomy (kf-diagnose);
//!                                    //   omitted when diagnosis did not run
//!         "n_false_positives": …,    // classified FPs across all bands
//!         "n_labelled": …,           // labelled predicted triples in scope
//!         "bands": [                 // per confidence band, ascending
//!           {"lo": …, "hi": …, "n_labelled": …, "n_true": …,
//!            "categories": {"wrong_but_general": …, "lcwa_artifact": …,
//!                           "systematic_extraction": …, "linkage_error": …}},
//!           …                        // invariant: the four categories sum to
//!         ],                         //   n_labelled - n_true (exact partition)
//!         "predicates":  [ {"key": …, "label": …, "categories": {…}}, … ],
//!         "extractors":  [ … ],      // one FP counts toward EVERY supporting
//!                                    //   extractor (per-extractor attribution)
//!         "spread":      [ … ],      // support-shape classes (pages×extractors)
//!         "scenarios":   [ … ],      // injected hostile-scenario phenomena
//!                                    //   (copied/spam/drift/linkage); empty
//!                                    //   when no scenario truth was joined
//!         "confusion": [             // heuristic vs generator-injected category
//!           {"heuristic": "…", "injected": "…", "count": …}, …
//!         ],
//!         "mean_prov_accuracy": {"systematic_extraction": …, …},
//!         "systematic_attribution":  // the ≥0.9 CI gates (null when no
//!           {"correct": …, "total": …, "accuracy": …},  // ground truth)
//!         "generalized_attribution": {…}|null
//!       },
//!       "trace": {                   // kf-telemetry run trace for this
//!                                    //   method; omitted when not traced
//!         "deterministic": {         // byte-identical across same-seed runs
//!           "spans": {"name": "run", "calls": 1, "children": [ … ]},
//!           "counters": [ {"name": "mr.map_output", "value": …,
//!                          "merge": "add"|"max"}, … ],
//!           "series": [ {"name": "fuse.round_delta", "values": [ … ]}, … ],
//!           "histograms": [          // observation counts only
//!             {"name": "fuse.round_ns", "kind": "time"|"value",
//!              "count": …}, … ],
//!           "gauges": [ {"name": …, "value": …}, … ]
//!         },
//!         "timings": [               // wall clock, quarantined: all zero
//!           {"path": "run/fuse/round", "total_ns": …}, …  // under --deterministic
//!         ],
//!         "histograms": [            // the value ledger: full buckets and
//!           {"name": "fuse.round_ns",//   quantiles; time-kind entries are
//!            "kind": "time",         //   quarantined (empty) under
//!            "count": …, "sum": …,   //   --deterministic, value-kind
//!            "buckets": [            //   entries always survive
//!              {"lo": …, "hi": …, "count": …}, … ],
//!            "p50": …, "p95": …, "p99": …}, …
//!         ]
//!       }
//!     }, …
//!   ]
//! }
//! ```
//!
//! Numbers serialize via Rust's shortest-roundtrip float formatting;
//! non-finite values become `null`; counts and seeds are exact integers
//! (never f64-rounded). Bump `schema_version` when renaming or removing
//! fields — adding fields is backward-compatible.

use crate::calibration::{CalibrationBin, CalibrationCurve};
use crate::json::Json;
use crate::labels::LabeledOutput;
use crate::pr::PrCurve;
use kf_telemetry::{SpanNode, TraceReport};
use kf_types::{ErrorCategory, TaxonomyReport};

/// Maximum PR points serialized per method; the full curve (one point per
/// distinct probability) stays in memory, the report keeps an evenly
/// strided subsample plus the final point.
const MAX_PR_POINTS_IN_REPORT: usize = 200;

/// The evaluation of one fusion method over one corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodEval {
    /// Preset name (`vote`, `accu`, …).
    pub name: String,
    /// Display label as used in the paper (`VOTE`, `ACCU`, …).
    pub label: String,
    /// Triple counts and coverage from the gold join.
    pub n_scored: usize,
    /// Gold-labelled triples (true + false).
    pub n_labelled: usize,
    /// Labelled true.
    pub n_true: usize,
    /// Labelled but unpredicted.
    pub n_unpredicted: usize,
    /// Fraction of labelled triples with a prediction.
    pub coverage: f64,
    /// Fraction of *all* scored triples with a prediction.
    pub predicted_fraction: f64,
    /// Equal-width calibration curve (the paper's figures).
    pub calibration_width: CalibrationCurve,
    /// Equal-mass calibration curve.
    pub calibration_mass: CalibrationCurve,
    /// Precision–recall curve.
    pub pr: PrCurve,
    /// `(k, precision@k)` for the configured cut-offs (only cut-offs ≤ the
    /// number of predictions appear).
    pub precision_at: Vec<(usize, f64)>,
    /// Wall-clock milliseconds spent fusing (excludes evaluation).
    pub fuse_ms: f64,
    /// Fig. 17-style error taxonomy of the method's high-confidence false
    /// positives, when the diagnosis pass ran (`kf-diagnose`; the `repro`
    /// harness attaches one per preset). `None` omits the section.
    pub taxonomy: Option<TaxonomyReport>,
    /// `kf-telemetry` trace of this method's fuse + evaluate + diagnose
    /// work, when the harness recorded one (`repro` installs a per-method
    /// trace). `None` omits the section. Per-method traces ride through
    /// shard reports untouched, which is what lets `--merge` reassemble
    /// the whole-run trace exactly.
    pub trace: Option<TraceReport>,
}

impl MethodEval {
    /// The paper's weighted deviation, from the equal-width curve.
    pub fn wdev(&self) -> f64 {
        self.calibration_width.wdev
    }

    /// Expected calibration error, from the equal-width curve.
    pub fn ece(&self) -> f64 {
        self.calibration_width.ece
    }

    /// AUC-PR.
    pub fn auc_pr(&self) -> f64 {
        self.pr.auc
    }

    fn to_json(&self) -> Json {
        let mut fields: Vec<(&'static str, Json)> = vec![
            ("name", Json::from(self.name.clone())),
            ("label", Json::from(self.label.clone())),
            ("n_scored", Json::from(self.n_scored)),
            ("n_labelled", Json::from(self.n_labelled)),
            ("n_true", Json::from(self.n_true)),
            ("n_unpredicted", Json::from(self.n_unpredicted)),
            ("coverage", Json::from(self.coverage)),
            ("predicted_fraction", Json::from(self.predicted_fraction)),
            ("wdev", Json::from(self.wdev())),
            ("ece", Json::from(self.ece())),
            ("auc_pr", Json::from(self.auc_pr())),
            (
                "precision_at",
                Json::arr(self.precision_at.iter().map(|&(k, p)| {
                    Json::obj([("k", Json::from(k)), ("precision", Json::from(p))])
                })),
            ),
            (
                "calibration_equal_width",
                curve_to_json(&self.calibration_width),
            ),
            (
                "calibration_equal_mass",
                curve_to_json(&self.calibration_mass),
            ),
            ("pr_curve", pr_to_json(&self.pr)),
            ("fuse_ms", Json::from(self.fuse_ms)),
        ];
        if let Some(taxonomy) = &self.taxonomy {
            fields.push(("taxonomy", taxonomy_to_json(taxonomy)));
        }
        if let Some(trace) = &self.trace {
            fields.push(("trace", trace_to_json(trace)));
        }
        Json::obj(fields)
    }

    /// Zero every wall-clock field of this evaluation — `fuse_ms` and all
    /// span timings in the trace — leaving the deterministic sections
    /// untouched. The `--deterministic` quarantine.
    pub fn quarantine_timings(&mut self) {
        self.fuse_ms = 0.0;
        if let Some(trace) = &mut self.trace {
            trace.quarantine_timings();
        }
    }
}

/// Serialize a [`TraceReport`] with its deterministic section (span
/// calls, counters, series, gauges, histogram observation counts) split
/// from the quarantined sections: flat span paths with `total_ns`, and
/// a `histograms` value ledger whose buckets/sums/quantiles survive for
/// `value`-kind histograms but are zeroed for `time`-kind ones under
/// `--deterministic` (mirroring `quarantine_timings`). See the module
/// docs for the shape.
pub fn trace_to_json(t: &TraceReport) -> Json {
    fn span_to_json(n: &SpanNode) -> Json {
        let mut fields = vec![
            ("name", Json::from(n.name.clone())),
            ("calls", Json::from(n.calls)),
        ];
        if !n.children.is_empty() {
            fields.push(("children", Json::arr(n.children.iter().map(span_to_json))));
        }
        Json::obj(fields)
    }
    let deterministic = Json::obj([
        ("spans", span_to_json(&t.root)),
        (
            "counters",
            Json::arr(t.counters.iter().map(|c| {
                Json::obj([
                    ("name", Json::from(c.name.clone())),
                    ("value", Json::from(c.value)),
                    ("merge", Json::from(c.rule.name())),
                ])
            })),
        ),
        (
            "series",
            Json::arr(t.series.iter().map(|s| {
                Json::obj([
                    ("name", Json::from(s.name.clone())),
                    ("values", Json::arr(s.values.iter().map(|&v| Json::from(v)))),
                ])
            })),
        ),
        // Observation counts are input-determined for both histogram
        // kinds; the value distributions live in the quarantined ledger
        // below.
        (
            "histograms",
            Json::arr(t.histograms.iter().map(|h| {
                Json::obj([
                    ("name", Json::from(h.name.clone())),
                    ("kind", Json::from(h.kind.name())),
                    ("count", Json::from(h.count)),
                ])
            })),
        ),
        (
            "gauges",
            Json::arr(t.gauges.iter().map(|g| {
                Json::obj([
                    ("name", Json::from(g.name.clone())),
                    ("value", Json::from(g.value)),
                ])
            })),
        ),
    ]);
    let timings = Json::arr(t.flat_timings().into_iter().map(|(path, total_ns)| {
        Json::obj([
            ("path", Json::from(path)),
            ("total_ns", Json::from(total_ns)),
        ])
    }));
    // The value ledger: full distributions. For time-kind histograms
    // under --deterministic these are already quarantined (empty
    // buckets, zero sum), exactly like the span timings above — the
    // counts in the deterministic section still pin how many
    // observations happened.
    let histograms = Json::arr(t.histograms.iter().map(|h| {
        Json::obj([
            ("name", Json::from(h.name.clone())),
            ("kind", Json::from(h.kind.name())),
            ("count", Json::from(h.count)),
            ("sum", Json::from(h.sum)),
            (
                "buckets",
                Json::arr(h.buckets.iter().map(|b| {
                    let (lo, hi) = kf_telemetry::bucket_bounds(b.index as usize);
                    Json::obj([
                        ("lo", Json::from(lo)),
                        ("hi", Json::from(hi)),
                        ("count", Json::from(b.count)),
                    ])
                })),
            ),
            ("p50", Json::from(h.quantile(0.50))),
            ("p95", Json::from(h.quantile(0.95))),
            ("p99", Json::from(h.quantile(0.99))),
        ])
    }));
    Json::obj([
        ("deterministic", deterministic),
        ("timings", timings),
        ("histograms", histograms),
    ])
}

/// One count per category as a JSON object keyed by category name.
fn counts_to_json(c: &kf_types::CategoryCounts) -> Json {
    Json::obj(
        ErrorCategory::ALL
            .into_iter()
            .map(|cat| (cat.name(), Json::from(c.get(cat)))),
    )
}

/// Serialize a [`TaxonomyReport`] (see the schema note in the module
/// docs).
pub fn taxonomy_to_json(t: &TaxonomyReport) -> Json {
    let group = |g: &kf_types::GroupBreakdown| {
        Json::obj([
            ("key", Json::from(g.key as u64)),
            ("label", Json::from(g.label.clone())),
            ("categories", counts_to_json(&g.counts)),
        ])
    };
    let accuracy = |a: &Option<kf_types::CategoryAccuracy>| match a {
        None => Json::Null,
        Some(a) => Json::obj([
            ("correct", Json::from(a.correct)),
            ("total", Json::from(a.total)),
            ("accuracy", Json::from(a.accuracy())),
        ]),
    };
    Json::obj([
        ("n_false_positives", Json::from(t.n_false_positives)),
        ("n_labelled", Json::from(t.n_labelled)),
        (
            "bands",
            Json::arr(t.bands.iter().map(|b| {
                Json::obj([
                    ("lo", Json::from(b.lo)),
                    ("hi", Json::from(b.hi)),
                    ("n_labelled", Json::from(b.n_labelled)),
                    ("n_true", Json::from(b.n_true)),
                    ("categories", counts_to_json(&b.counts)),
                ])
            })),
        ),
        ("predicates", Json::arr(t.predicates.iter().map(group))),
        ("extractors", Json::arr(t.extractors.iter().map(group))),
        ("spread", Json::arr(t.spread.iter().map(group))),
        ("scenarios", Json::arr(t.scenarios.iter().map(group))),
        (
            "confusion",
            Json::arr(t.confusion.iter().map(|c| {
                Json::obj([
                    ("heuristic", Json::from(c.heuristic.name())),
                    ("injected", Json::from(c.injected.name())),
                    ("count", Json::from(c.count)),
                ])
            })),
        ),
        (
            "mean_prov_accuracy",
            Json::obj(
                t.mean_prov_accuracy
                    .iter()
                    .map(|&(cat, acc)| (cat.name(), Json::from(acc))),
            ),
        ),
        (
            "systematic_attribution",
            accuracy(&t.systematic_attribution),
        ),
        (
            "generalized_attribution",
            accuracy(&t.generalized_attribution),
        ),
    ])
}

fn bin_to_json(b: &CalibrationBin) -> Json {
    Json::obj([
        ("lo", Json::from(b.lo)),
        ("hi", Json::from(b.hi)),
        ("count", Json::from(b.count)),
        ("mean_predicted", Json::from(b.mean_predicted)),
        // NaN (empty bin) serializes as null.
        ("observed_accuracy", Json::from(b.observed_accuracy)),
    ])
}

fn curve_to_json(c: &CalibrationCurve) -> Json {
    Json::obj([
        ("wdev", Json::from(c.wdev)),
        ("ece", Json::from(c.ece)),
        ("bins", Json::arr(c.bins.iter().map(bin_to_json))),
    ])
}

fn pr_to_json(pr: &PrCurve) -> Json {
    let n = pr.points.len();
    let stride = n.div_ceil(MAX_PR_POINTS_IN_REPORT).max(1);
    let points = pr
        .points
        .iter()
        .enumerate()
        .filter(|(i, _)| i % stride == 0 || *i + 1 == n)
        .map(|(_, p)| {
            Json::obj([
                ("threshold", Json::from(p.threshold)),
                ("precision", Json::from(p.precision)),
                ("recall", Json::from(p.recall)),
            ])
        });
    Json::obj([
        ("auc", Json::from(pr.auc)),
        ("n_points", Json::from(n)),
        ("points", Json::arr(points)),
    ])
}

/// Corpus-level context recorded alongside the per-method results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CorpusSummary {
    /// Scale preset name (`tiny`/`small`/`paper`/`large`).
    pub scale: String,
    /// Generator seed.
    pub seed: u64,
    /// Extraction records.
    pub n_records: usize,
    /// Unique triples.
    pub n_unique_triples: usize,
    /// Unique data items.
    pub n_data_items: usize,
    /// Gold-KB items.
    pub n_gold_items: usize,
    /// Raw extraction accuracy under LCWA (the paper's ~30%).
    pub lcwa_accuracy: f64,
}

impl CorpusSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scale", Json::from(self.scale.clone())),
            ("seed", Json::from(self.seed)),
            ("n_records", Json::from(self.n_records)),
            ("n_unique_triples", Json::from(self.n_unique_triples)),
            ("n_data_items", Json::from(self.n_data_items)),
            ("n_gold_items", Json::from(self.n_gold_items)),
            ("lcwa_accuracy", Json::from(self.lcwa_accuracy)),
        ])
    }
}

/// A full ablation report: one corpus, several methods.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvalReport {
    /// Corpus context.
    pub corpus: CorpusSummary,
    /// Per-method evaluations, in ablation order.
    pub methods: Vec<MethodEval>,
}

impl EvalReport {
    /// The evaluation for `name`, if present.
    pub fn method(&self, name: &str) -> Option<&MethodEval> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// The report as a JSON tree.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::from(1usize)),
            ("corpus", self.corpus.to_json()),
            (
                "methods",
                Json::arr(self.methods.iter().map(|m| m.to_json())),
            ),
        ])
    }

    /// The report as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Zero every wall-clock field in the report (each method's `fuse_ms`
    /// and trace timings). One helper instead of per-field special cases:
    /// new timing fields are quarantined by construction.
    pub fn quarantine_timings(&mut self) {
        for m in &mut self.methods {
            m.quarantine_timings();
        }
    }

    /// The whole-run trace: per-method traces folded in ablation (=
    /// `methods`) order, each grafted under a phase named after its
    /// method. `None` when no method carries a trace. Because the fold
    /// order is the method order, a merged report reassembles exactly the
    /// trace a single-process run produces — series concatenate in
    /// ablation order either way.
    pub fn combined_trace(&self) -> Option<TraceReport> {
        let mut combined: Option<TraceReport> = None;
        for m in &self.methods {
            if let Some(trace) = &m.trace {
                combined
                    .get_or_insert_with(|| TraceReport::empty("run"))
                    .absorb(&m.name, trace);
            }
        }
        combined
    }

    /// Fixed-width summary table (one line per method) for terminal output.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8} {:>9}\n",
            "method", "coverage", "pred", "WDEV", "ECE", "AUC-PR", "P@100", "fuse_ms"
        ));
        for m in &self.methods {
            let p100 = m
                .precision_at
                .iter()
                .find(|&&(k, _)| k == 100)
                .map(|&(_, p)| format!("{p:8.3}"))
                .unwrap_or_else(|| format!("{:>8}", "-"));
            out.push_str(&format!(
                "{:<22} {:>9.3} {:>9.3} {:>8.4} {:>8.4} {:>8.3} {} {:>9.1}\n",
                m.label,
                m.coverage,
                m.predicted_fraction,
                m.wdev(),
                m.ece(),
                m.auc_pr(),
                p100,
                m.fuse_ms,
            ));
        }
        out
    }
}

/// Assemble a [`MethodEval`] from a labelled output.
pub fn evaluate_labeled(
    name: &str,
    label: &str,
    labeled: &LabeledOutput,
    predicted_fraction: f64,
    n_bins: usize,
    ks: &[usize],
    fuse_ms: f64,
) -> MethodEval {
    use crate::calibration::{calibration_curve, Binning};
    use crate::pr::{pr_curve_sorted, precision_at_k_sorted, sort_descending};

    let _eval = kf_telemetry::span("eval");
    kf_telemetry::add("eval.labelled", labeled.n_labelled() as u64);
    let preds = labeled.predictions();
    // One descending sort serves the PR curve and every precision@k.
    let (precision_at, pr) = {
        let _pr = kf_telemetry::span("pr");
        let sorted = sort_descending(&preds);
        let precision_at: Vec<(usize, f64)> = ks
            .iter()
            .filter_map(|&k| precision_at_k_sorted(&sorted, k).map(|p| (k, p)))
            .collect();
        (precision_at, pr_curve_sorted(&sorted))
    };
    let (calibration_width, calibration_mass) = {
        let _cal = kf_telemetry::span("calibration");
        (
            calibration_curve(&preds, Binning::EqualWidth(n_bins)),
            calibration_curve(&preds, Binning::EqualMass(n_bins)),
        )
    };
    MethodEval {
        name: name.to_string(),
        label: label.to_string(),
        n_scored: labeled.records.len(),
        n_labelled: labeled.n_labelled(),
        n_true: labeled.n_true,
        n_unpredicted: labeled.n_unpredicted,
        coverage: labeled.coverage(),
        predicted_fraction,
        calibration_width,
        calibration_mass,
        pr,
        precision_at,
        fuse_ms,
        taxonomy: None,
        trace: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::{calibration_curve, Binning};
    use crate::pr::pr_curve;

    fn method(name: &str, wdev_gap: f64) -> MethodEval {
        // All predictions at 0.5 + gap with observed accuracy 0.5.
        let preds: Vec<(f64, bool)> = (0..100).map(|i| (0.5 + wdev_gap, i % 2 == 0)).collect();
        MethodEval {
            name: name.to_string(),
            label: name.to_uppercase(),
            n_scored: 100,
            n_labelled: 100,
            n_true: 50,
            n_unpredicted: 0,
            coverage: 1.0,
            predicted_fraction: 1.0,
            calibration_width: calibration_curve(&preds, Binning::EqualWidth(10)),
            calibration_mass: calibration_curve(&preds, Binning::EqualMass(10)),
            pr: pr_curve(&preds),
            precision_at: vec![(100, 0.5)],
            fuse_ms: 1.0,
            taxonomy: None,
            trace: None,
        }
    }

    fn report() -> EvalReport {
        EvalReport {
            corpus: CorpusSummary {
                scale: "tiny".into(),
                seed: 42,
                n_records: 1000,
                n_unique_triples: 500,
                n_data_items: 300,
                n_gold_items: 120,
                lcwa_accuracy: 0.3,
            },
            methods: vec![method("vote", 0.3), method("popaccu_plus", 0.05)],
        }
    }

    #[test]
    fn json_contains_required_fields() {
        let s = report().to_json_string();
        for field in [
            "\"schema_version\"",
            "\"corpus\"",
            "\"methods\"",
            "\"wdev\"",
            "\"ece\"",
            "\"auc_pr\"",
            "\"coverage\"",
            "\"calibration_equal_width\"",
            "\"calibration_equal_mass\"",
            "\"bins\"",
            "\"observed_accuracy\"",
            "\"pr_curve\"",
            "\"precision_at\"",
        ] {
            assert!(s.contains(field), "missing {field} in report JSON");
        }
    }

    #[test]
    fn method_lookup_and_wdev_ordering() {
        let r = report();
        let vote = r.method("vote").unwrap();
        let plus = r.method("popaccu_plus").unwrap();
        assert!(plus.wdev() < vote.wdev());
        assert!(r.method("nope").is_none());
    }

    #[test]
    fn summary_table_has_one_line_per_method() {
        let r = report();
        let table = r.summary_table();
        assert_eq!(table.lines().count(), 3);
        assert!(table.contains("VOTE"));
        assert!(table.contains("POPACCU_PLUS"));
    }

    #[test]
    fn taxonomy_section_serializes_when_present() {
        use kf_types::{
            BandBreakdown, CategoryAccuracy, CategoryCounts, ConfusionCell, GroupBreakdown,
        };
        let mut counts = CategoryCounts::default();
        counts.add(ErrorCategory::SystematicExtraction, 4);
        counts.add(ErrorCategory::LcwaArtifact, 6);
        let taxonomy = TaxonomyReport {
            bands: vec![BandBreakdown {
                lo: 0.9,
                hi: 1.0,
                n_labelled: 30,
                n_true: 20,
                counts,
            }],
            predicates: vec![GroupBreakdown {
                key: 7,
                label: "predicate_7".into(),
                counts,
            }],
            extractors: vec![GroupBreakdown {
                key: 1,
                label: "TXT2".into(),
                counts,
            }],
            spread: vec![],
            scenarios: vec![],
            confusion: vec![ConfusionCell {
                heuristic: ErrorCategory::SystematicExtraction,
                injected: ErrorCategory::SystematicExtraction,
                count: 4,
            }],
            mean_prov_accuracy: vec![(ErrorCategory::SystematicExtraction, 0.93)],
            systematic_attribution: Some(CategoryAccuracy {
                correct: 4,
                total: 4,
            }),
            generalized_attribution: None,
            n_false_positives: 10,
            n_labelled: 30,
        };
        let mut m = method("vote", 0.1);
        // Without a taxonomy the key is omitted entirely.
        assert!(!Json::obj([("m", m.to_json())])
            .to_string_compact()
            .contains("\"taxonomy\""));
        m.taxonomy = Some(taxonomy);
        let s = m.to_json().to_string_pretty();
        for field in [
            "\"taxonomy\"",
            "\"bands\"",
            "\"categories\"",
            "\"systematic_extraction\"",
            "\"lcwa_artifact\"",
            "\"wrong_but_general\"",
            "\"linkage_error\"",
            "\"confusion\"",
            "\"heuristic\"",
            "\"injected\"",
            "\"extractors\"",
            "\"TXT2\"",
            "\"mean_prov_accuracy\"",
            "\"systematic_attribution\"",
            "\"accuracy\"",
        ] {
            assert!(s.contains(field), "missing {field} in taxonomy JSON");
        }
        // The absent gate serializes as null.
        assert!(s.contains("\"generalized_attribution\": null"));
    }

    #[test]
    fn pr_points_are_capped_in_json() {
        let preds: Vec<(f64, bool)> = (0..5000).map(|i| (i as f64 / 5000.0, i % 2 == 0)).collect();
        let pr = pr_curve(&preds);
        assert!(pr.points.len() > MAX_PR_POINTS_IN_REPORT);
        let json = pr_to_json(&pr).to_string_compact();
        let n_points = json.matches("\"threshold\"").count();
        assert!(
            n_points <= MAX_PR_POINTS_IN_REPORT + 1,
            "serialized {n_points} points"
        );
    }
}
