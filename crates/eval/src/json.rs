//! A minimal JSON document builder and writer.
//!
//! The evaluation report must serialize to JSON, but this workspace builds
//! without crates.io access, so `serde_json` is unavailable (the in-repo
//! `serde` shim only accepts derive annotations). Emitting JSON is the easy
//! half of the problem; this module implements exactly that: a [`Json`]
//! value tree with escaping-correct, locale-independent output. Parsing is
//! intentionally out of scope.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also the encoding of non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values serialize as `null`.
    Num(f64),
    /// An unsigned integer, serialized exactly (an f64 would corrupt
    /// values above 2^53 — e.g. corpus seeds).
    Uint(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Serialize compactly.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with 2-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's shortest-roundtrip float formatting is valid
                    // JSON for finite values.
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Uint(x) => out.push_str(&format!("{x}")),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(
                out,
                indent,
                depth,
                '[',
                ']',
                items.iter(),
                |out, item, d| item.write(out, indent, d),
            ),
            Json::Obj(pairs) => write_seq(
                out,
                indent,
                depth,
                '{',
                '}',
                pairs.iter(),
                |out, (k, v), d| {
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                },
            ),
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Uint(x as u64)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Uint(x)
    }
}

impl From<bool> for Json {
    fn from(x: bool) -> Json {
        Json::Bool(x)
    }
}

impl From<&str> for Json {
    fn from(x: &str) -> Json {
        Json::Str(x.to_string())
    }
}

impl From<String> for Json {
    fn from(x: String) -> Json {
        Json::Str(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.to_string_compact(), "null");
        assert_eq!(Json::Bool(true).to_string_compact(), "true");
        assert_eq!(Json::Num(1.5).to_string_compact(), "1.5");
        assert_eq!(Json::Num(5.0).to_string_compact(), "5");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn large_integers_are_exact() {
        // Above 2^53, f64 would round; Uint must not.
        assert_eq!(
            Json::from(u64::MAX).to_string_compact(),
            "18446744073709551615"
        );
        assert_eq!(
            Json::from(usize::MAX).to_string_compact(),
            usize::MAX.to_string()
        );
    }

    #[test]
    fn strings_are_escaped() {
        let j = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(j.to_string_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn nested_structure_compact() {
        let j = Json::obj([
            ("name", Json::from("vote")),
            ("bins", Json::arr([Json::from(1.0), Json::from(0.25)])),
            ("empty", Json::arr([])),
        ]);
        assert_eq!(
            j.to_string_compact(),
            r#"{"name":"vote","bins":[1,0.25],"empty":[]}"#
        );
    }

    #[test]
    fn pretty_output_is_indented_and_reparses_structurally() {
        let j = Json::obj([("a", Json::arr([Json::from(1.0)]))]);
        let s = j.to_string_pretty();
        assert!(s.contains("\n  \"a\": [\n    1\n  ]\n"), "{s}");
    }

    #[test]
    fn float_roundtrip_precision() {
        let x = 0.123456789012345_f64;
        let s = Json::Num(x).to_string_compact();
        assert_eq!(s.parse::<f64>().unwrap(), x);
    }
}
