//! The ablation runner: the paper's five named systems over one corpus.
//!
//! §4.3.4 / Figs. 9–15 compare VOTE, ACCU, POPACCU, POPACCU+unsup and
//! POPACCU+ (semi-supervised). [`Preset`] names those five configurations;
//! [`AblationRunner`] fuses a [`kf_synth::Corpus`] under each and evaluates
//! the result against the corpus's gold standard, producing a diffable
//! [`EvalReport`].

use crate::labels::LabeledOutput;
use crate::report::{evaluate_labeled, CorpusSummary, EvalReport, MethodEval};
use kf_core::{Fuser, FusionConfig};
use kf_synth::Corpus;
use kf_types::GoldStandard;
use std::time::Instant;

/// The five named systems of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Baseline VOTE.
    Vote,
    /// Basic ACCU.
    Accu,
    /// Basic POPACCU.
    PopAccu,
    /// POPACCU + granularity/coverage/threshold refinements, unsupervised.
    PopAccuPlusUnsup,
    /// POPACCU+ with gold-seeded accuracies (semi-supervised).
    PopAccuPlus,
}

impl Preset {
    /// All presets, in the paper's ablation order.
    pub const ALL: [Preset; 5] = [
        Preset::Vote,
        Preset::Accu,
        Preset::PopAccu,
        Preset::PopAccuPlusUnsup,
        Preset::PopAccuPlus,
    ];

    /// Machine-readable name (stable; used as the report key).
    pub fn name(self) -> &'static str {
        match self {
            Preset::Vote => "vote",
            Preset::Accu => "accu",
            Preset::PopAccu => "popaccu",
            Preset::PopAccuPlusUnsup => "popaccu_plus_unsup",
            Preset::PopAccuPlus => "popaccu_plus",
        }
    }

    /// Display label as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Preset::Vote => "VOTE",
            Preset::Accu => "ACCU",
            Preset::PopAccu => "POPACCU",
            Preset::PopAccuPlusUnsup => "POPACCU+unsup",
            Preset::PopAccuPlus => "POPACCU+",
        }
    }

    /// The preset's fusion configuration.
    pub fn config(self) -> FusionConfig {
        match self {
            Preset::Vote => FusionConfig::vote(),
            Preset::Accu => FusionConfig::accu(),
            Preset::PopAccu => FusionConfig::popaccu(),
            Preset::PopAccuPlusUnsup => FusionConfig::popaccu_plus_unsup(),
            Preset::PopAccuPlus => FusionConfig::popaccu_plus(),
        }
    }

    /// Whether the preset consumes the gold standard during fusion.
    pub fn needs_gold(self) -> bool {
        matches!(self, Preset::PopAccuPlus)
    }

    /// Look a preset up by its machine name.
    pub fn by_name(name: &str) -> Option<Preset> {
        Preset::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Runs presets over a corpus and assembles the report.
#[derive(Debug, Clone)]
pub struct AblationRunner {
    /// Calibration bins per curve (the paper uses coarse buckets; 10 is the
    /// Fig. 9 granularity).
    pub n_bins: usize,
    /// Precision@k cut-offs to report.
    pub ks: Vec<usize>,
    /// Worker threads for fusion (`None` = library default).
    pub workers: Option<usize>,
    /// Scale label recorded in the report (informational).
    pub scale: String,
}

impl Default for AblationRunner {
    fn default() -> Self {
        AblationRunner {
            n_bins: 10,
            ks: vec![10, 100, 1_000, 10_000],
            workers: None,
            scale: String::new(),
        }
    }
}

impl AblationRunner {
    /// Evaluate one preset over `corpus`.
    pub fn run_preset(&self, corpus: &Corpus, preset: Preset) -> MethodEval {
        let mut config = preset.config();
        if let Some(w) = self.workers {
            config = config.with_workers(w);
        }
        let gold = preset.needs_gold().then_some(&corpus.gold);
        let start = Instant::now();
        let output = Fuser::new(config).run(&corpus.batch, gold);
        let fuse_ms = start.elapsed().as_secs_f64() * 1e3;
        self.evaluate(preset, &output, &corpus.gold, fuse_ms)
    }

    /// Evaluate an already-fused output as `preset`.
    pub fn evaluate(
        &self,
        preset: Preset,
        output: &kf_core::FusionOutput,
        gold: &GoldStandard,
        fuse_ms: f64,
    ) -> MethodEval {
        let labeled = LabeledOutput::label(output, gold);
        evaluate_labeled(
            preset.name(),
            preset.label(),
            &labeled,
            output.predicted_fraction(),
            self.n_bins,
            &self.ks,
            fuse_ms,
        )
    }

    /// Run all five presets and assemble the full report.
    pub fn run(&self, corpus: &Corpus) -> EvalReport {
        let methods = Preset::ALL
            .into_iter()
            .map(|preset| self.run_preset(corpus, preset))
            .collect();
        EvalReport {
            corpus: self.corpus_summary(corpus),
            methods,
        }
    }

    /// Corpus context for the report header.
    pub fn corpus_summary(&self, corpus: &Corpus) -> CorpusSummary {
        CorpusSummary {
            scale: self.scale.clone(),
            seed: corpus.seed,
            n_records: corpus.batch.len(),
            n_unique_triples: corpus.batch.unique_triples(),
            n_data_items: corpus.batch.unique_data_items(),
            n_gold_items: corpus.gold.n_items(),
            lcwa_accuracy: corpus.lcwa_accuracy(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kf_synth::SynthConfig;

    #[test]
    fn preset_names_roundtrip() {
        for p in Preset::ALL {
            assert_eq!(Preset::by_name(p.name()), Some(p));
        }
        assert_eq!(Preset::by_name("bogus"), None);
    }

    #[test]
    fn preset_configs_match_kf_core_presets() {
        assert_eq!(Preset::Vote.config().method, FusionConfig::vote().method);
        assert!(Preset::PopAccuPlusUnsup.config().filter_by_coverage);
        assert!(Preset::PopAccuPlus.needs_gold());
        assert!(!Preset::PopAccuPlusUnsup.needs_gold());
    }

    #[test]
    fn ablation_over_tiny_corpus_produces_finite_metrics() {
        let corpus = Corpus::generate(&SynthConfig::tiny(), 7);
        let runner = AblationRunner {
            scale: "tiny".into(),
            workers: Some(2),
            ..Default::default()
        };
        let report = runner.run(&corpus);
        assert_eq!(report.methods.len(), 5);
        assert_eq!(report.corpus.n_records, corpus.batch.len());
        for m in &report.methods {
            assert!(m.n_labelled > 0, "{}: no labelled triples", m.name);
            assert!(m.wdev().is_finite() && m.wdev() >= 0.0);
            assert!(m.ece().is_finite() && (0.0..=1.0).contains(&m.ece()));
            assert!((0.0..=1.0 + 1e-9).contains(&m.auc_pr()), "{}", m.name);
            assert!((0.0..=1.0).contains(&m.coverage));
            assert_eq!(m.calibration_width.bins.len(), 10);
        }
        // The report serializes and names every preset.
        let json = report.to_json_string();
        for p in Preset::ALL {
            assert!(json.contains(&format!("\"{}\"", p.name())));
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let corpus = Corpus::generate(&SynthConfig::tiny(), 3);
        let runner = AblationRunner {
            workers: Some(2),
            ..Default::default()
        };
        let a = runner.run_preset(&corpus, Preset::PopAccu);
        let b = runner.run_preset(&corpus, Preset::PopAccu);
        assert_eq!(a.wdev(), b.wdev());
        assert_eq!(a.auc_pr(), b.auc_pr());
        assert_eq!(a.coverage, b.coverage);
    }
}
