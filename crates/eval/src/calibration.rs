//! Probability calibration: binned curves, weighted deviation, ECE.
//!
//! The paper's headline quality claim is *calibration* (§5.2, Figs. 6/9):
//! among triples predicted with probability ~p, a fraction ~p should be
//! true under LCWA. This module bins `(probability, is_true)` pairs two
//! ways — equal-width bins (the paper's figures) and equal-mass quantile
//! bins (robust when the probability mass piles up at the ends) — and
//! summarises each curve with:
//!
//! * **WDEV** — the paper's weighted deviation: the bin-count-weighted mean
//!   *squared* gap between mean predicted probability and observed
//!   accuracy.
//! * **ECE** — expected calibration error: the same weighting applied to
//!   the *absolute* gap (the standard ML-calibration summary).

/// How to partition `[0, 1]` into bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Binning {
    /// `n` bins of width `1/n` (the paper's Fig. 6/9 curves).
    EqualWidth(usize),
    /// `n` quantile bins with (near-)equal numbers of predictions.
    EqualMass(usize),
}

/// One calibration bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationBin {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge (inclusive for the last bin).
    pub hi: f64,
    /// Number of predictions in the bin.
    pub count: usize,
    /// Mean predicted probability (bin midpoint when empty).
    pub mean_predicted: f64,
    /// Fraction of the bin's predictions that are true (NaN when empty).
    pub observed_accuracy: f64,
}

/// A binned calibration curve with its summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationCurve {
    /// The binning that produced the curve.
    pub binning: Binning,
    /// The bins, in increasing probability order, partitioning `[0, 1]`.
    pub bins: Vec<CalibrationBin>,
    /// Weighted mean squared deviation (the paper's WDEV).
    pub wdev: f64,
    /// Expected calibration error (weighted mean absolute deviation).
    pub ece: f64,
}

/// Compute a calibration curve over `(probability, is_true)` pairs.
///
/// Probabilities are clamped into `[0, 1]`; the pair list may be empty, in
/// which case every bin is empty and both summaries are 0.
pub fn calibration_curve(predictions: &[(f64, bool)], binning: Binning) -> CalibrationCurve {
    let bins = match binning {
        Binning::EqualWidth(n) => equal_width_bins(predictions, n.max(1)),
        Binning::EqualMass(n) => equal_mass_bins(predictions, n.max(1)),
    };
    let total: usize = bins.iter().map(|b| b.count).sum();
    let (mut wdev, mut ece) = (0.0, 0.0);
    if total > 0 {
        for b in &bins {
            if b.count == 0 {
                continue;
            }
            let w = b.count as f64 / total as f64;
            let gap = b.mean_predicted - b.observed_accuracy;
            wdev += w * gap * gap;
            ece += w * gap.abs();
        }
    }
    CalibrationCurve {
        binning,
        bins,
        wdev,
        ece,
    }
}

fn equal_width_bins(predictions: &[(f64, bool)], n: usize) -> Vec<CalibrationBin> {
    let mut sums = vec![(0usize, 0.0f64, 0usize); n]; // (count, sum_p, n_true)
    for &(p, t) in predictions {
        let p = p.clamp(0.0, 1.0);
        let i = ((p * n as f64) as usize).min(n - 1);
        sums[i].0 += 1;
        sums[i].1 += p;
        sums[i].2 += t as usize;
    }
    sums.iter()
        .enumerate()
        .map(|(i, &(count, sum_p, n_true))| {
            let lo = i as f64 / n as f64;
            let hi = (i + 1) as f64 / n as f64;
            CalibrationBin {
                lo,
                hi,
                count,
                mean_predicted: if count > 0 {
                    sum_p / count as f64
                } else {
                    (lo + hi) / 2.0
                },
                observed_accuracy: if count > 0 {
                    n_true as f64 / count as f64
                } else {
                    f64::NAN
                },
            }
        })
        .collect()
}

fn equal_mass_bins(predictions: &[(f64, bool)], n: usize) -> Vec<CalibrationBin> {
    if predictions.is_empty() {
        return equal_width_bins(predictions, n);
    }
    let mut sorted: Vec<(f64, bool)> = predictions
        .iter()
        .map(|&(p, t)| (p.clamp(0.0, 1.0), t))
        .collect();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));

    // Contiguous chunks whose sizes differ by at most one; bin edges fall
    // halfway between adjacent chunks so the bins still partition [0, 1].
    let n = n.min(sorted.len());
    let base = sorted.len() / n;
    let extra = sorted.len() % n;
    let mut bins = Vec::with_capacity(n);
    let mut start = 0usize;
    let mut prev_edge = 0.0f64;
    for i in 0..n {
        let size = base + usize::from(i < extra);
        let chunk = &sorted[start..start + size];
        let hi = if i + 1 == n {
            1.0
        } else {
            let last = chunk[size - 1].0;
            let next = sorted[start + size].0;
            (last + next) / 2.0
        };
        let count = chunk.len();
        let sum_p: f64 = chunk.iter().map(|&(p, _)| p).sum();
        let n_true = chunk.iter().filter(|&&(_, t)| t).count();
        bins.push(CalibrationBin {
            lo: prev_edge,
            hi,
            count,
            mean_predicted: sum_p / count as f64,
            observed_accuracy: n_true as f64 / count as f64,
        });
        prev_edge = hi;
        start += size;
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    /// Hand-computed fixture: two populated width-2 bins.
    ///
    /// Bin [0, 0.5): predictions (0.2, F), (0.4, T) → mean_pred = 0.3,
    /// observed = 0.5, gap = −0.2.
    /// Bin [0.5, 1]: (0.8, T), (0.8, T), (1.0, F) → mean_pred ≈ 0.8667,
    /// observed = 2/3, gap = 0.2.
    /// Weights 2/5 and 3/5 ⇒ WDEV = 0.4·0.04 + 0.6·0.04 = 0.04,
    /// ECE = 0.4·0.2 + 0.6·0.2 = 0.2.
    #[test]
    fn wdev_and_ece_match_hand_computation() {
        let preds = [
            (0.2, false),
            (0.4, true),
            (0.8, true),
            (0.8, true),
            (1.0, false),
        ];
        let c = calibration_curve(&preds, Binning::EqualWidth(2));
        assert_eq!(c.bins.len(), 2);
        assert!(approx(c.bins[0].mean_predicted, 0.3));
        assert!(approx(c.bins[0].observed_accuracy, 0.5));
        assert!(approx(c.bins[1].mean_predicted, 2.6 / 3.0));
        assert!(approx(c.bins[1].observed_accuracy, 2.0 / 3.0));
        let gap1: f64 = 2.6 / 3.0 - 2.0 / 3.0; // 0.2
        assert!(approx(c.wdev, 0.4 * 0.04 + 0.6 * gap1 * gap1));
        assert!(approx(c.ece, 0.4 * 0.2 + 0.6 * gap1));
    }

    #[test]
    fn perfectly_calibrated_input_scores_zero() {
        // In each bin, observed accuracy equals mean predicted probability.
        let mut preds = Vec::new();
        for _ in 0..10 {
            preds.push((0.25, true));
            preds.push((0.25, false));
            preds.push((0.25, false));
            preds.push((0.25, false));
        }
        let c = calibration_curve(&preds, Binning::EqualWidth(4));
        assert!(c.wdev < 1e-24);
        assert!(c.ece < 1e-12);
    }

    #[test]
    fn probability_one_lands_in_last_bin() {
        let preds = [(1.0, true), (0.999, true)];
        let c = calibration_curve(&preds, Binning::EqualWidth(10));
        assert_eq!(c.bins[9].count, 2);
    }

    #[test]
    fn equal_width_bins_partition_unit_interval() {
        let c = calibration_curve(&[], Binning::EqualWidth(7));
        assert_eq!(c.bins.len(), 7);
        assert!(approx(c.bins[0].lo, 0.0));
        assert!(approx(c.bins[6].hi, 1.0));
        for w in c.bins.windows(2) {
            assert!(approx(w[0].hi, w[1].lo));
        }
        assert_eq!(c.wdev, 0.0);
        assert_eq!(c.ece, 0.0);
    }

    #[test]
    fn equal_mass_bins_balance_counts() {
        let preds: Vec<(f64, bool)> = (0..100).map(|i| (i as f64 / 100.0, i % 3 == 0)).collect();
        let c = calibration_curve(&preds, Binning::EqualMass(8));
        assert_eq!(c.bins.iter().map(|b| b.count).sum::<usize>(), 100);
        for b in &c.bins {
            assert!((12..=13).contains(&b.count), "bin count {}", b.count);
        }
        // Partition of [0, 1].
        assert!(approx(c.bins[0].lo, 0.0));
        assert!(approx(c.bins.last().unwrap().hi, 1.0));
        for w in c.bins.windows(2) {
            assert!(approx(w[0].hi, w[1].lo));
        }
    }

    #[test]
    fn equal_mass_with_fewer_points_than_bins() {
        let preds = [(0.1, true), (0.9, false)];
        let c = calibration_curve(&preds, Binning::EqualMass(10));
        assert_eq!(c.bins.len(), 2);
        assert_eq!(c.bins.iter().map(|b| b.count).sum::<usize>(), 2);
    }

    #[test]
    fn wdev_is_squared_so_smaller_than_ece_for_small_gaps() {
        let preds: Vec<(f64, bool)> = (0..50)
            .map(|i| (0.6, i < 25)) // predicted 0.6, observed 0.5
            .collect();
        let c = calibration_curve(&preds, Binning::EqualWidth(10));
        assert!(approx(c.ece, 0.1));
        assert!(approx(c.wdev, 0.01));
    }

    #[test]
    fn out_of_range_probabilities_are_clamped() {
        let preds = [(-0.5, false), (1.5, true)];
        let c = calibration_curve(&preds, Binning::EqualWidth(4));
        assert_eq!(c.bins[0].count, 1);
        assert_eq!(c.bins[3].count, 1);
    }
}
