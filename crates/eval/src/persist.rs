//! Report persistence and shard merging.
//!
//! A sharded reproduction run fuses disjoint slices of the preset list in
//! separate processes (see the `repro` CLI's `--shard i/n`). Each shard
//! evaluates its presets over the *same* corpus checkpoint and persists a
//! partial [`EvalReport`] — full [`CorpusSummary`], subset of methods —
//! as a [`kf_types::checkpoint`] file ([`ArtifactKind::Report`]). A merge
//! step ([`merge_reports`]) then validates that every shard saw the same
//! corpus, reassembles the methods in the paper's ablation order, and
//! yields a report whose JSON serialization is **byte-identical** to the
//! single-process run (asserted by `kf-bench`'s shard test and a CI
//! gate).
//!
//! Everything in a [`MethodEval`] — calibration curves, PR curves,
//! precision@k, the optional taxonomy section — implements [`KvCodec`],
//! making `EvalReport` the second whole-output artifact on the binary
//! codec path (after `TaxonomyReport` in PR 4) and completing the
//! corpus → fuse → evaluate pipeline's persistence story.

use crate::ablation::Preset;
use crate::calibration::{Binning, CalibrationBin, CalibrationCurve};
use crate::pr::{PrCurve, PrPoint};
use crate::report::{CorpusSummary, EvalReport, MethodEval};
use kf_types::checkpoint::{self, ArtifactKind, CheckpointError};
use kf_types::{KvCodec, TaxonomyReport};
use std::path::Path;

impl KvCodec for Binning {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Binning::EqualWidth(n) => {
                out.push(0);
                n.encode(out);
            }
            Binning::EqualMass(n) => {
                out.push(1);
                n.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(Binning::EqualWidth(usize::decode(input)?)),
            1 => Some(Binning::EqualMass(usize::decode(input)?)),
            _ => None,
        }
    }
}

impl KvCodec for CalibrationBin {
    fn encode(&self, out: &mut Vec<u8>) {
        self.lo.encode(out);
        self.hi.encode(out);
        self.count.encode(out);
        self.mean_predicted.encode(out);
        self.observed_accuracy.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(CalibrationBin {
            lo: f64::decode(input)?,
            hi: f64::decode(input)?,
            count: usize::decode(input)?,
            mean_predicted: f64::decode(input)?,
            observed_accuracy: f64::decode(input)?,
        })
    }
}

impl KvCodec for CalibrationCurve {
    fn encode(&self, out: &mut Vec<u8>) {
        self.binning.encode(out);
        self.bins.encode(out);
        self.wdev.encode(out);
        self.ece.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(CalibrationCurve {
            binning: Binning::decode(input)?,
            bins: Vec::decode(input)?,
            wdev: f64::decode(input)?,
            ece: f64::decode(input)?,
        })
    }
}

impl KvCodec for PrPoint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.threshold.encode(out);
        self.tp.encode(out);
        self.fp.encode(out);
        self.precision.encode(out);
        self.recall.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(PrPoint {
            threshold: f64::decode(input)?,
            tp: usize::decode(input)?,
            fp: usize::decode(input)?,
            precision: f64::decode(input)?,
            recall: f64::decode(input)?,
        })
    }
}

impl KvCodec for PrCurve {
    fn encode(&self, out: &mut Vec<u8>) {
        self.points.encode(out);
        self.auc.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(PrCurve {
            points: Vec::decode(input)?,
            auc: f64::decode(input)?,
        })
    }
}

impl KvCodec for MethodEval {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.label.encode(out);
        self.n_scored.encode(out);
        self.n_labelled.encode(out);
        self.n_true.encode(out);
        self.n_unpredicted.encode(out);
        self.coverage.encode(out);
        self.predicted_fraction.encode(out);
        self.calibration_width.encode(out);
        self.calibration_mass.encode(out);
        self.pr.encode(out);
        self.precision_at.encode(out);
        self.fuse_ms.encode(out);
        self.taxonomy.encode(out);
        self.trace.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(MethodEval {
            name: String::decode(input)?,
            label: String::decode(input)?,
            n_scored: usize::decode(input)?,
            n_labelled: usize::decode(input)?,
            n_true: usize::decode(input)?,
            n_unpredicted: usize::decode(input)?,
            coverage: f64::decode(input)?,
            predicted_fraction: f64::decode(input)?,
            calibration_width: CalibrationCurve::decode(input)?,
            calibration_mass: CalibrationCurve::decode(input)?,
            pr: PrCurve::decode(input)?,
            precision_at: Vec::decode(input)?,
            fuse_ms: f64::decode(input)?,
            taxonomy: Option::<TaxonomyReport>::decode(input)?,
            trace: Option::<kf_telemetry::TraceReport>::decode(input)?,
        })
    }
}

impl KvCodec for CorpusSummary {
    fn encode(&self, out: &mut Vec<u8>) {
        self.scale.encode(out);
        self.seed.encode(out);
        self.n_records.encode(out);
        self.n_unique_triples.encode(out);
        self.n_data_items.encode(out);
        self.n_gold_items.encode(out);
        self.lcwa_accuracy.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(CorpusSummary {
            scale: String::decode(input)?,
            seed: u64::decode(input)?,
            n_records: usize::decode(input)?,
            n_unique_triples: usize::decode(input)?,
            n_data_items: usize::decode(input)?,
            n_gold_items: usize::decode(input)?,
            lcwa_accuracy: f64::decode(input)?,
        })
    }
}

impl KvCodec for EvalReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.corpus.encode(out);
        self.methods.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(EvalReport {
            corpus: CorpusSummary::decode(input)?,
            methods: Vec::decode(input)?,
        })
    }
}

impl EvalReport {
    /// Atomically write this report (full or one shard's slice) as a
    /// headered binary checkpoint file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let _save = kf_telemetry::span("report_save");
        checkpoint::save(path.as_ref(), ArtifactKind::Report, self)?;
        if let Ok(meta) = std::fs::metadata(path.as_ref()) {
            kf_telemetry::add("persist.bytes_written", meta.len());
        }
        Ok(())
    }

    /// Load a report checkpoint written by [`EvalReport::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<EvalReport, CheckpointError> {
        let _load = kf_telemetry::span("report_load");
        let report = checkpoint::load(path.as_ref(), ArtifactKind::Report)?;
        if let Ok(meta) = std::fs::metadata(path.as_ref()) {
            kf_telemetry::add("persist.bytes_read", meta.len());
        }
        Ok(report)
    }
}

/// Why shard reports could not be merged.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// No shard reports were supplied.
    NoShards,
    /// A shard evaluated a different corpus than the first one (scale,
    /// seed or any count differs) — merging would splice incomparable
    /// results.
    CorpusMismatch {
        /// Name of a method carried by the mismatching shard (for the
        /// error message; empty when the shard is method-less).
        shard_method: String,
    },
    /// Two shards both evaluated this method.
    DuplicateMethod(String),
    /// A method name no preset claims — ablation order is undefined.
    UnknownMethod(String),
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::NoShards => f.write_str("no shard reports to merge"),
            MergeError::CorpusMismatch { shard_method } => write!(
                f,
                "shard (method {shard_method:?}) evaluated a different corpus; \
                 all shards must run from the same corpus checkpoint"
            ),
            MergeError::DuplicateMethod(name) => {
                write!(f, "method {name:?} appears in more than one shard")
            }
            MergeError::UnknownMethod(name) => {
                write!(f, "method {name:?} is not a known preset")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Merge shard reports into one full report.
///
/// Every shard must carry an identical [`CorpusSummary`] (they all ran
/// from the same corpus checkpoint); the union of their methods must be
/// duplicate-free and consist of known presets. Methods are reassembled
/// in the paper's ablation order ([`Preset::ALL`]), so merging the shards
/// of a run reproduces the single-process report exactly — byte-identical
/// JSON when fuse times are zeroed (`repro --deterministic`).
pub fn merge_reports(
    shards: impl IntoIterator<Item = EvalReport>,
) -> Result<EvalReport, MergeError> {
    let mut shards = shards.into_iter();
    let first = shards.next().ok_or(MergeError::NoShards)?;
    let corpus = first.corpus;
    let mut methods = first.methods;
    for shard in shards {
        if shard.corpus != corpus {
            return Err(MergeError::CorpusMismatch {
                shard_method: shard
                    .methods
                    .first()
                    .map(|m| m.name.clone())
                    .unwrap_or_default(),
            });
        }
        methods.extend(shard.methods);
    }
    let ablation_index = |m: &MethodEval| -> Result<usize, MergeError> {
        Preset::ALL
            .iter()
            .position(|p| p.name() == m.name)
            .ok_or_else(|| MergeError::UnknownMethod(m.name.clone()))
    };
    let mut seen = [false; Preset::ALL.len()];
    for m in &methods {
        let idx = ablation_index(m)?;
        if seen[idx] {
            return Err(MergeError::DuplicateMethod(m.name.clone()));
        }
        seen[idx] = true;
    }
    methods.sort_by_key(|m| {
        ablation_index(m).expect("method names validated against Preset::ALL above")
    });
    Ok(EvalReport { corpus, methods })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kf_synth::{Corpus, SynthConfig};
    use std::path::PathBuf;

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("kf-eval-persist-{}-{name}", std::process::id()))
    }

    /// A real (tiny) report so the codec test covers every nested type.
    fn full_report() -> EvalReport {
        let corpus = Corpus::generate(&SynthConfig::tiny(), 7);
        let runner = crate::AblationRunner {
            scale: "tiny".into(),
            workers: Some(2),
            ..Default::default()
        };
        runner.run(&corpus)
    }

    /// Bit-exact equality via the canonical encoding: report structs can
    /// hold NaN (empty calibration bins), so `==` would be false-negative
    /// while the byte encoding — NaN travels by bit pattern — is exact.
    fn assert_bits_eq(a: &EvalReport, b: &EvalReport) {
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        a.encode(&mut ea);
        b.encode(&mut eb);
        assert_eq!(ea, eb, "reports differ at the byte level");
    }

    fn slice(report: &EvalReport, names: &[&str]) -> EvalReport {
        EvalReport {
            corpus: report.corpus.clone(),
            methods: report
                .methods
                .iter()
                .filter(|m| names.contains(&m.name.as_str()))
                .cloned()
                .collect(),
        }
    }

    #[test]
    fn report_roundtrips_through_codec_and_file() {
        let report = full_report();
        let mut buf = Vec::new();
        report.encode(&mut buf);
        let mut input = &buf[..];
        let back = EvalReport::decode(&mut input).unwrap();
        assert!(input.is_empty());
        assert_bits_eq(&back, &report);
        // And the user-facing JSON is unchanged by the roundtrip.
        assert_eq!(back.to_json_string(), report.to_json_string());

        let path = tmp_path("report.kfr");
        report.save(&path).unwrap();
        assert_bits_eq(&EvalReport::load(&path).unwrap(), &report);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_report_checkpoints_never_parse() {
        let report = full_report();
        let bytes = kf_types::checkpoint::encode(ArtifactKind::Report, &report);
        let cuts: Vec<usize> = (0..16)
            .chain((16..bytes.len()).step_by(bytes.len() / 64 + 1))
            .collect();
        for cut in cuts {
            assert!(
                kf_types::checkpoint::decode::<EvalReport>(ArtifactKind::Report, &bytes[..cut])
                    .is_err(),
                "cut at {cut} parsed"
            );
        }
    }

    #[test]
    fn merge_reassembles_ablation_order_from_any_shard_split() {
        let report = full_report();
        // Round-robin split across 2 shards, merged in *reverse* shard
        // order: the merge must still restore the ablation order.
        let shard0 = slice(&report, &["vote", "popaccu", "popaccu_plus"]);
        let shard1 = slice(&report, &["accu", "popaccu_plus_unsup"]);
        let merged = merge_reports([shard1, shard0]).unwrap();
        assert_bits_eq(&merged, &report);
        assert_eq!(merged.to_json_string(), report.to_json_string());
    }

    #[test]
    fn merge_rejects_corpus_mismatch_duplicates_and_unknowns() {
        let report = full_report();
        let shard0 = slice(&report, &["vote"]);
        let mut other = slice(&report, &["accu"]);
        other.corpus.seed ^= 1;
        assert!(matches!(
            merge_reports([shard0.clone(), other]),
            Err(MergeError::CorpusMismatch { shard_method }) if shard_method == "accu"
        ));
        assert_eq!(
            merge_reports([shard0.clone(), shard0.clone()]),
            Err(MergeError::DuplicateMethod("vote".into()))
        );
        let mut rogue = slice(&report, &["accu"]);
        rogue.methods[0].name = "mystery".into();
        assert_eq!(
            merge_reports([shard0, rogue]),
            Err(MergeError::UnknownMethod("mystery".into()))
        );
        assert_eq!(merge_reports([]), Err(MergeError::NoShards));
    }

    #[test]
    fn single_shard_merge_is_identity() {
        let report = full_report();
        assert_bits_eq(&merge_reports([report.clone()]).unwrap(), &report);
    }
}
