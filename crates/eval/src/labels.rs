//! Gold-labeling fused output under the local closed-world assumption.
//!
//! §5.1 of the paper: every fused triple is labelled against Freebase —
//! **true** if present, **false** if the data item is known with different
//! values, **unknown** (excluded) otherwise. All downstream metrics
//! (calibration curves, PR curves) are computed over the labelled,
//! predicted subset; the sizes of the excluded subsets are reported so a
//! method cannot look better by predicting less.

use kf_core::FusionOutput;
use kf_types::{GoldStandard, Label, Triple};

/// One fused triple with its gold label.
#[derive(Debug, Clone, Copy)]
pub struct LabeledTriple {
    /// The triple.
    pub triple: Triple,
    /// Fused truthfulness probability (`None` when the method abstained).
    pub probability: Option<f64>,
    /// LCWA gold label.
    pub label: Label,
    /// Whether the probability came from the mean-accuracy fallback.
    pub fallback: bool,
}

/// A fusion output joined with the gold standard.
#[derive(Debug, Clone, Default)]
pub struct LabeledOutput {
    /// All fused triples with labels.
    pub records: Vec<LabeledTriple>,
    /// Labelled true.
    pub n_true: usize,
    /// Labelled false.
    pub n_false: usize,
    /// Unknown to the gold KB (excluded from metrics).
    pub n_unknown: usize,
    /// Labelled (true or false) but with no predicted probability.
    pub n_unpredicted: usize,
}

impl LabeledOutput {
    /// Join `output` with `gold`.
    pub fn label(output: &FusionOutput, gold: &GoldStandard) -> LabeledOutput {
        let mut out = LabeledOutput {
            records: Vec::with_capacity(output.scored.len()),
            ..Default::default()
        };
        for s in &output.scored {
            let label = gold.label(&s.triple);
            match label {
                Label::True => out.n_true += 1,
                Label::False => out.n_false += 1,
                Label::Unknown => out.n_unknown += 1,
            }
            if label != Label::Unknown && s.probability.is_none() {
                out.n_unpredicted += 1;
            }
            out.records.push(LabeledTriple {
                triple: s.triple,
                probability: s.probability,
                label,
                fallback: s.fallback,
            });
        }
        out
    }

    /// The `(probability, is_true)` pairs metrics are computed over:
    /// labelled triples that received a prediction.
    pub fn predictions(&self) -> Vec<(f64, bool)> {
        self.records
            .iter()
            .filter_map(|r| match (r.probability, r.label.as_bool()) {
                (Some(p), Some(t)) => Some((p, t)),
                _ => None,
            })
            .collect()
    }

    /// Labelled triples (true + false).
    pub fn n_labelled(&self) -> usize {
        self.n_true + self.n_false
    }

    /// Fraction of labelled triples that received a prediction — the
    /// paper's coverage axis (91.8%–99.4% across refinement settings).
    pub fn coverage(&self) -> f64 {
        let n = self.n_labelled();
        if n == 0 {
            return 0.0;
        }
        (n - self.n_unpredicted) as f64 / n as f64
    }

    /// Base rate: fraction of labelled triples that are true (the paper's
    /// ~30% headline extraction accuracy).
    pub fn base_rate(&self) -> f64 {
        let n = self.n_labelled();
        if n == 0 {
            return 0.0;
        }
        self.n_true as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kf_core::ScoredTriple;
    use kf_mapreduce::{JobStats, RoundOutcome};
    use kf_types::{DataItem, EntityId, PredicateId, Value};

    fn triple(s: u32, o: u32) -> Triple {
        Triple::new(EntityId(s), PredicateId(0), Value::Entity(EntityId(o)))
    }

    fn scored(s: u32, o: u32, p: Option<f64>) -> ScoredTriple {
        ScoredTriple {
            triple: triple(s, o),
            probability: p,
            n_provenances: 1,
            n_extractors: 1,
            n_pages: 1,
            fallback: false,
        }
    }

    fn output(scored_triples: Vec<ScoredTriple>) -> FusionOutput {
        FusionOutput {
            scored: scored_triples,
            outcome: RoundOutcome::Converged {
                rounds: 1,
                delta: 0.0,
            },
            round_deltas: vec![],
            n_provenances: 0,
            stats: JobStats::default(),
        }
    }

    fn gold() -> GoldStandard {
        // Item (1, 0) accepts object 10 only.
        let mut g = GoldStandard::new();
        g.insert(
            DataItem::new(EntityId(1), PredicateId(0)),
            Value::Entity(EntityId(10)),
        );
        g
    }

    #[test]
    fn labels_and_counts() {
        let out = output(vec![
            scored(1, 10, Some(0.9)), // true
            scored(1, 11, Some(0.2)), // false
            scored(2, 10, Some(0.5)), // unknown item
            scored(1, 12, None),      // false, unpredicted
        ]);
        let l = LabeledOutput::label(&out, &gold());
        assert_eq!(l.n_true, 1);
        assert_eq!(l.n_false, 2);
        assert_eq!(l.n_unknown, 1);
        assert_eq!(l.n_unpredicted, 1);
        assert_eq!(l.n_labelled(), 3);
        assert!((l.coverage() - 2.0 / 3.0).abs() < 1e-12);
        assert!((l.base_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn predictions_exclude_unknown_and_unpredicted() {
        let out = output(vec![
            scored(1, 10, Some(0.9)),
            scored(2, 10, Some(0.5)),
            scored(1, 12, None),
        ]);
        let preds = LabeledOutput::label(&out, &gold()).predictions();
        assert_eq!(preds, vec![(0.9, true)]);
    }

    #[test]
    fn empty_output_is_all_zeros() {
        let l = LabeledOutput::label(&output(vec![]), &gold());
        assert_eq!(l.n_labelled(), 0);
        assert_eq!(l.coverage(), 0.0);
        assert_eq!(l.base_rate(), 0.0);
        assert!(l.predictions().is_empty());
    }
}
