//! Property-based tests for the evaluation metrics: structural invariants
//! that must hold for any prediction set.

use kf_eval::{calibration_curve, pr_curve, precision_at_k, Binning};
use proptest::prelude::*;

fn arb_predictions() -> impl Strategy<Value = Vec<(f64, bool)>> {
    prop::collection::vec(
        (
            (0u32..=1_000).prop_map(|p| p as f64 / 1_000.0),
            any::<bool>(),
        ),
        0..300,
    )
}

proptest! {
    /// Equal-width calibration bins partition [0, 1]: first edge 0, last
    /// edge 1, contiguous in between, and every prediction lands in
    /// exactly one bin.
    #[test]
    fn equal_width_bins_partition_unit_interval(
        preds in arb_predictions(),
        n in 1usize..30,
    ) {
        let c = calibration_curve(&preds, Binning::EqualWidth(n));
        prop_assert_eq!(c.bins.len(), n);
        prop_assert!(c.bins[0].lo.abs() < 1e-12);
        prop_assert!((c.bins[n - 1].hi - 1.0).abs() < 1e-12);
        for w in c.bins.windows(2) {
            prop_assert!((w[0].hi - w[1].lo).abs() < 1e-12);
            prop_assert!(w[0].lo < w[0].hi);
        }
        let total: usize = c.bins.iter().map(|b| b.count).sum();
        prop_assert_eq!(total, preds.len());
    }

    /// Equal-mass bins also partition [0, 1], conserve mass, and have
    /// near-equal counts (differing by at most one).
    #[test]
    fn equal_mass_bins_partition_and_balance(
        preds in arb_predictions(),
        n in 1usize..30,
    ) {
        let c = calibration_curve(&preds, Binning::EqualMass(n));
        prop_assert!(c.bins[0].lo.abs() < 1e-12);
        prop_assert!((c.bins.last().unwrap().hi - 1.0).abs() < 1e-12);
        for w in c.bins.windows(2) {
            prop_assert!((w[0].hi - w[1].lo).abs() < 1e-12);
        }
        let total: usize = c.bins.iter().map(|b| b.count).sum();
        prop_assert_eq!(total, preds.len());
        if !preds.is_empty() {
            let min = c.bins.iter().map(|b| b.count).min().unwrap();
            let max = c.bins.iter().map(|b| b.count).max().unwrap();
            prop_assert!(max - min <= 1, "counts spread {min}..{max}");
        }
    }

    /// Calibration summaries are bounded: 0 ≤ WDEV ≤ ECE ≤ 1 (a squared
    /// gap never exceeds the absolute gap for gaps in [0, 1]).
    #[test]
    fn calibration_summaries_are_bounded(preds in arb_predictions(), n in 1usize..20) {
        for binning in [Binning::EqualWidth(n), Binning::EqualMass(n)] {
            let c = calibration_curve(&preds, binning);
            prop_assert!(c.wdev >= 0.0 && c.wdev.is_finite());
            prop_assert!(c.ece >= 0.0 && c.ece <= 1.0 + 1e-12);
            prop_assert!(c.wdev <= c.ece + 1e-12, "wdev {} > ece {}", c.wdev, c.ece);
        }
    }

    /// PR points are monotone in threshold: thresholds strictly decrease,
    /// recall never decreases, and tp/fp counts never decrease.
    #[test]
    fn pr_points_are_monotone_in_threshold(preds in arb_predictions()) {
        let c = pr_curve(&preds);
        for w in c.points.windows(2) {
            prop_assert!(w[0].threshold > w[1].threshold);
            prop_assert!(w[0].recall <= w[1].recall + 1e-12);
            prop_assert!(w[0].tp <= w[1].tp);
            prop_assert!(w[0].fp <= w[1].fp);
        }
        if let Some(last) = c.points.last() {
            // The lowest threshold accepts everything: recall = 1.
            prop_assert!((last.recall - 1.0).abs() < 1e-12);
        }
        prop_assert!((0.0..=1.0 + 1e-9).contains(&c.auc), "auc {}", c.auc);
    }

    /// Precision and recall at every point are valid probabilities, and
    /// precision equals tp/(tp+fp) exactly.
    #[test]
    fn pr_point_arithmetic_is_consistent(preds in arb_predictions()) {
        let c = pr_curve(&preds);
        let n_true = preds.iter().filter(|&&(_, t)| t).count();
        for p in &c.points {
            prop_assert!((0.0..=1.0).contains(&p.precision));
            prop_assert!((0.0..=1.0).contains(&p.recall));
            prop_assert!((p.precision - p.tp as f64 / (p.tp + p.fp) as f64).abs() < 1e-12);
            prop_assert!((p.recall - p.tp as f64 / n_true as f64).abs() < 1e-12);
        }
    }

    /// precision@k is defined iff k ∈ [1, n], and shrinking k toward the
    /// top of a sorted-by-confidence list can only use fewer predictions.
    #[test]
    fn precision_at_k_definedness(preds in arb_predictions(), k in 1usize..400) {
        let p = precision_at_k(&preds, k);
        prop_assert_eq!(p.is_some(), k <= preds.len());
        if let Some(p) = p {
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }
}
