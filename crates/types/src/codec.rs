//! Hand-rolled binary key/value codec for the external shuffle.
//!
//! The MapReduce engine's spill-to-disk partitions (see `kf-mapreduce`)
//! need to serialize `(key, values)` groups to sorted run files and read
//! them back byte-identically. The vendored `serde` shim is derive-only
//! (no real serialization), so this module provides a small, explicit
//! binary codec instead: fixed-width little-endian integers, tagged
//! enums, and length-prefixed sequences. No self-description, no
//! versioning — a run file is written and read by the same process, so
//! the schema is the Rust type itself.
//!
//! Implementations exist for the primitives and containers the fusion
//! shuffles move (unsigned/signed integers, `f64` via its bit pattern,
//! `bool`, `()`, `String`, `Option<T>`, `Vec<T>`, tuples up to arity 4)
//! and for the domain types that ride through shuffles (`Value`,
//! `DataItem`, `Triple`, [`ProvenanceKey`] via its
//! lossless `u128` packing, and every id newtype).
//!
//! # Contract
//!
//! For every implementation, decode is the exact inverse of encode:
//! `decode(&mut &encode(x)[..]) == Some(x)`, consuming precisely the
//! bytes encode produced. [`KvCodec::decode`] advances the input slice
//! past the decoded value and returns `None` (leaving the slice in an
//! unspecified position) on truncated or malformed input.

use crate::ids::{EntityId, ExtractorId, PageId, PatternId, PredicateId, SiteId, StrId, TypeId};
use crate::provenance::ProvenanceKey;
use crate::triple::{DataItem, Triple};
use crate::value::{Numeric, Value};

/// Binary encoding for shuffle keys and values, so the MapReduce engine
/// can spill grouped partitions to disk and merge them back losslessly.
///
/// ```
/// use kf_types::KvCodec;
///
/// let group = (String::from("tom cruise"), vec![1962u32, 7, 3]);
/// let mut buf = Vec::new();
/// group.encode(&mut buf);
///
/// let mut input = &buf[..];
/// let decoded = <(String, Vec<u32>)>::decode(&mut input).unwrap();
/// assert_eq!(decoded, group);
/// assert!(input.is_empty(), "decode consumed exactly what encode wrote");
/// ```
pub trait KvCodec: Sized {
    /// Append this value's binary encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode one value from the front of `input`, advancing it past the
    /// consumed bytes. Returns `None` on truncated or malformed input.
    fn decode(input: &mut &[u8]) -> Option<Self>;
}

/// Split `n` bytes off the front of `input`, advancing it.
#[inline]
fn take<'a>(input: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if input.len() < n {
        return None;
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Some(head)
}

macro_rules! int_codec {
    ($($ty:ty),*) => {$(
        impl KvCodec for $ty {
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn decode(input: &mut &[u8]) -> Option<Self> {
                let bytes = take(input, std::mem::size_of::<$ty>())?;
                Some(<$ty>::from_le_bytes(bytes.try_into().unwrap()))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, u128, i8, i16, i32, i64);

/// `usize` travels as `u64` so run files do not depend on the platform's
/// pointer width.
impl KvCodec for usize {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        usize::try_from(u64::decode(input)?).ok()
    }
}

/// `f64` travels as its IEEE-754 bit pattern: the roundtrip is exact for
/// every value including NaNs, negative zero and infinities.
impl KvCodec for f64 {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(f64::from_bits(u64::decode(input)?))
    }
}

impl KvCodec for bool {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl KvCodec for () {
    #[inline]
    fn encode(&self, _out: &mut Vec<u8>) {}
    #[inline]
    fn decode(_input: &mut &[u8]) -> Option<Self> {
        Some(())
    }
}

impl KvCodec for String {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = usize::try_from(u64::decode(input)?).ok()?;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl<T: KvCodec> KvCodec for Option<T> {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(None),
            1 => Some(Some(T::decode(input)?)),
            _ => None,
        }
    }
}

impl<T: KvCodec> KvCodec for Vec<T> {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = usize::try_from(u64::decode(input)?).ok()?;
        // Guard the pre-allocation against corrupt headers: each element
        // encodes to at least one byte unless `T` is zero-sized.
        if std::mem::size_of::<T>() > 0 && len > input.len() {
            return None;
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(input)?);
        }
        Some(items)
    }
}

macro_rules! tuple_codec {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: KvCodec),+> KvCodec for ($($name,)+) {
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) {
                $(self.$idx.encode(out);)+
            }
            #[inline]
            fn decode(input: &mut &[u8]) -> Option<Self> {
                Some(($($name::decode(input)?,)+))
            }
        }
    )+};
}

tuple_codec!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

macro_rules! id_codec {
    ($($ty:ty),*) => {$(
        impl KvCodec for $ty {
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) {
                self.0.encode(out);
            }
            #[inline]
            fn decode(input: &mut &[u8]) -> Option<Self> {
                Some(Self(KvCodec::decode(input)?))
            }
        }
    )*};
}

id_codec!(
    EntityId,
    PredicateId,
    TypeId,
    PageId,
    SiteId,
    ExtractorId,
    PatternId,
    StrId,
    Numeric
);

impl KvCodec for Value {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Entity(e) => {
                out.push(0);
                e.encode(out);
            }
            Value::Str(s) => {
                out.push(1);
                s.encode(out);
            }
            Value::Num(n) => {
                out.push(2);
                n.encode(out);
            }
        }
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(Value::Entity(EntityId::decode(input)?)),
            1 => Some(Value::Str(StrId::decode(input)?)),
            2 => Some(Value::Num(Numeric::decode(input)?)),
            _ => None,
        }
    }
}

impl KvCodec for DataItem {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.subject.encode(out);
        self.predicate.encode(out);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(DataItem {
            subject: EntityId::decode(input)?,
            predicate: PredicateId::decode(input)?,
        })
    }
}

impl KvCodec for Triple {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.subject.encode(out);
        self.predicate.encode(out);
        // Qualified: `Value` also has an inherent `encode(self) -> u64`.
        KvCodec::encode(&self.object, out);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(Triple {
            subject: EntityId::decode(input)?,
            predicate: PredicateId::decode(input)?,
            object: Value::decode(input)?,
        })
    }
}

/// Travels as the lossless `u128` packing of
/// [`ProvenanceKey::pack`](crate::ProvenanceKey::pack); the packed word
/// preserves key ordering within a granularity, so spilled runs sorted
/// on the decoded key match runs sorted on the encoding.
impl KvCodec for ProvenanceKey {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.pack().encode(out);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(ProvenanceKey::unpack(u128::decode(input)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::{Granularity, Provenance};

    fn roundtrip<T: KvCodec + PartialEq + std::fmt::Debug>(x: T) {
        let mut buf = Vec::new();
        x.encode(&mut buf);
        let mut input = &buf[..];
        assert_eq!(T::decode(&mut input), Some(x));
        assert!(input.is_empty(), "decode must consume the whole encoding");
    }

    #[test]
    fn integer_roundtrips() {
        roundtrip(0u8);
        roundtrip(u8::MAX);
        roundtrip(u16::MAX);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(u128::MAX);
        roundtrip(i64::MIN);
        roundtrip(-1i32);
        roundtrip(usize::MAX);
    }

    #[test]
    fn float_roundtrip_is_bit_exact() {
        roundtrip(0.0f64);
        roundtrip(-0.0f64);
        roundtrip(f64::INFINITY);
        roundtrip(1.0 / 3.0);
        // NaN: compare bit patterns since NaN != NaN.
        let mut buf = Vec::new();
        f64::NAN.encode(&mut buf);
        let decoded = f64::decode(&mut &buf[..]).unwrap();
        assert_eq!(decoded.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(String::from("síte/página?q=1"));
        roundtrip(String::new());
        roundtrip(Some(42u32));
        roundtrip(None::<u32>);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u8>::new());
        roundtrip((7u16, String::from("x")));
        roundtrip((1u8, 2u16, 3u32));
        roundtrip((1usize, Some(0.5f64), true, vec![(1u32, 2u32)]));
    }

    #[test]
    fn domain_type_roundtrips() {
        roundtrip(Value::Entity(EntityId(7)));
        roundtrip(Value::Str(StrId(9)));
        roundtrip(Value::Num(Numeric(-8849)));
        roundtrip(DataItem::new(EntityId(1), PredicateId(2)));
        roundtrip(Triple::new(
            EntityId(1),
            PredicateId(2),
            Value::Num(Numeric(1_962_000)),
        ));
        let prov = Provenance::new(ExtractorId(3), PageId(100), SiteId(7), PatternId(42));
        for g in Granularity::ALL {
            roundtrip(ProvenanceKey::at(g, &prov, PredicateId(5)));
        }
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut buf = Vec::new();
        (42u64, String::from("hello")).encode(&mut buf);
        for cut in 0..buf.len() {
            let mut input = &buf[..cut];
            assert_eq!(
                <(u64, String)>::decode(&mut input),
                None,
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn malformed_tags_are_rejected() {
        assert_eq!(bool::decode(&mut &[2u8][..]), None);
        assert_eq!(Option::<u8>::decode(&mut &[9u8, 0][..]), None);
        assert_eq!(Value::decode(&mut &[3u8, 0, 0, 0, 0][..]), None);
        // A Vec length header larger than the remaining input must not
        // cause a huge pre-allocation.
        let mut buf = Vec::new();
        (u64::MAX).encode(&mut buf);
        assert_eq!(Vec::<u32>::decode(&mut &buf[..]), None);
    }

    #[test]
    fn decode_advances_past_each_value() {
        let mut buf = Vec::new();
        1u32.encode(&mut buf);
        2u32.encode(&mut buf);
        let mut input = &buf[..];
        assert_eq!(u32::decode(&mut input), Some(1));
        assert_eq!(u32::decode(&mut input), Some(2));
        assert_eq!(u32::decode(&mut input), None);
    }
}
